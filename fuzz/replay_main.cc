/**
 * @file
 * Corpus replay driver: a plain main() over LLVMFuzzerTestOneInput so
 * the harness runs with any compiler (gcc included) — no
 * -fsanitize=fuzzer needed. Used by the CI fuzz smoke to replay every
 * checked-in corpus entry under ASan/UBSan; mutation-based fuzzing
 * still wants the real libFuzzer binary (clang).
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *data, size_t size);

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <corpus-file>...\n", argv[0]);
        return 1;
    }
    for (int i = 1; i < argc; i++) {
        std::ifstream in(argv[i], std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", argv[i]);
            return 1;
        }
        const std::vector<uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
        std::printf("%s: %zu bytes, clean\n", argv[i], bytes.size());
    }
    return 0;
}
