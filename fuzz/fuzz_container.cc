/**
 * @file
 * libFuzzer entry point for the untrusted-container surface: the
 * StreamDirectory framing parser, the full archive open
 * (SageDecoder::tryOpen — stream decompression, parameter decode,
 * consensus unpack, chunk-table validation), per-chunk decode, and
 * the trailer checksum walk. Every byte here is attacker-controlled;
 * the contract under test is "a Status, never a crash".
 *
 * Built behind -DSAGE_BUILD_FUZZERS=ON (clang only); see
 * fuzz/CMakeLists.txt. Seeds live in fuzz/corpus/ — a valid tiny
 * archive plus truncated/flipped variants gives the fuzzer the
 * framing structure to mutate from.
 */

#include <cstddef>
#include <cstdint>

#include "core/decoder.hh"
#include "io/byte_stream.hh"
#include "io/container.hh"

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    using namespace sage;
    const MemorySource source(data, size);

    // Framing alone: must always come back as a StatusOr.
    const StatusOr<StreamDirectory> dir =
        StreamDirectory::tryParse(source);
    (void)dir;

    // Trailer checksum walk over arbitrary bytes.
    (void)verifyArchiveChecksumStatus(source);

    // The full open; when the input happens to parse, decode every
    // chunk too — the per-read decode loop is the deepest consumer
    // of untrusted bytes.
    const StatusOr<std::unique_ptr<SageDecoder>> opened =
        SageDecoder::tryOpen(source);
    if (opened.ok()) {
        SageDecoder &decoder = **opened;
        for (size_t c = 0; c < decoder.chunkCount(); c++)
            (void)decoder.tryDecodeChunkShared(c);
    }
    return 0;
}
