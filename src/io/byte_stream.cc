#include "io/byte_stream.hh"

#include <cstring>

#include "util/logging.hh"

namespace sage {

std::vector<uint8_t>
ByteSource::read(uint64_t offset, size_t size) const
{
    std::vector<uint8_t> out(size);
    if (size > 0)
        readAt(offset, out.data(), size);
    return out;
}

std::vector<uint8_t>
ByteSource::readAll() const
{
    return read(0, static_cast<size_t>(size()));
}

void
ByteSource::readBatch(const Extent *extents, size_t count) const
{
    for (size_t i = 0; i < count; i++) {
        if (extents[i].size > 0)
            readAt(extents[i].offset, extents[i].dst, extents[i].size);
    }
}

Status
ByteSource::tryReadAt(uint64_t offset, void *dst, size_t size) const
{
    if (size == 0)
        return Status();
    const uint64_t total = this->size();
    if (offset > total || size > total - offset) {
        return Status::outOfRange("read past end of ", describe(), ": [",
                                  offset, ", ", offset + size, ") in ",
                                  total, " bytes");
    }
    readAt(offset, dst, size);
    return Status();
}

Status
ByteSource::tryReadBatch(const Extent *extents, size_t count) const
{
    for (size_t i = 0; i < count; i++) {
        if (extents[i].size == 0)
            continue;
        Status status = tryReadAt(extents[i].offset, extents[i].dst,
                                  extents[i].size);
        if (!status.ok())
            return status;
    }
    return Status();
}

Status
ByteSource::tryRead(uint64_t offset, size_t size,
                    std::vector<uint8_t> &out) const
{
    out.resize(size);
    if (size == 0)
        return Status();
    return tryReadAt(offset, out.data(), size);
}

void
MemorySource::readAt(uint64_t offset, void *dst, size_t size) const
{
    if (size == 0)
        return;
    if (offset > size_ || size > size_ - offset) {
        sage_fatal("read past end of ", describe(), ": [", offset, ", ",
                   offset + size, ") in ", size_, " bytes");
    }
    std::memcpy(dst, data_ + offset, size);
}

const uint8_t *
MemorySource::view(uint64_t offset, size_t size) const
{
    if (offset > size_ || size > size_ - offset)
        return nullptr;
    return data_ + offset;
}

void
MemorySink::write(const void *data, size_t size)
{
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    bytes_.insert(bytes_.end(), bytes, bytes + size);
}

} // namespace sage
