#include "io/container.hh"

#include <algorithm>
#include <utility>

#include "util/crc32.hh"
#include "util/logging.hh"

namespace sage {

namespace {

/**
 * Sequential varint reader over a bounded prefix of a source. All
 * failures — truncation, malformed varints, I/O errors — come back as
 * Status so the parse of untrusted framing never kills the process.
 */
class VarintCursor
{
  public:
    VarintCursor(const ByteSource &source, uint64_t limit)
        : source_(source), limit_(limit)
    {}

    uint64_t position() const { return pos_; }

    void
    skip(uint64_t bytes)
    {
        pos_ += bytes;
    }

    Status
    next(uint64_t &value)
    {
        value = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos_ >= limit_) {
                return Status::truncated("truncated archive ",
                                         source_.describe(),
                                         ": varint runs past byte ",
                                         limit_);
            }
            uint8_t byte;
            Status status = source_.tryReadAt(pos_++, &byte, 1);
            if (!status.ok())
                return status;
            value |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return Status();
            shift += 7;
            if (shift >= 64) {
                return Status::corrupt("malformed archive ",
                                       source_.describe(),
                                       ": varint overflow at byte ",
                                       pos_);
            }
        }
    }

  private:
    const ByteSource &source_;
    uint64_t limit_;
    uint64_t pos_ = 0;
};

} // namespace

StatusOr<StreamDirectory>
StreamDirectory::tryParse(const ByteSource &source)
{
    const uint64_t total = source.size();
    if (total < 4) {
        return Status::truncated("archive ", source.describe(),
                                 " too small (", total,
                                 " bytes): not a SAGe container");
    }
    const uint64_t body = total - 4; // CRC32 trailer.

    StreamDirectory dir;
    VarintCursor cursor(source, body);
    uint64_t count = 0;
    Status status = cursor.next(count);
    if (!status.ok())
        return status;
    // Each stream costs at least 3 framing bytes (empty name, empty
    // payload), so a count the body cannot hold is corrupt — reject
    // it before looping billions of times.
    if (count > body / 3 + 1) {
        return Status::corrupt("malformed archive ", source.describe(),
                               ": stream count ", count,
                               " cannot fit a ", body, "-byte body");
    }
    for (uint64_t i = 0; i < count; i++) {
        uint64_t name_len = 0;
        status = cursor.next(name_len);
        if (!status.ok())
            return status;
        if (name_len > body - std::min(cursor.position(), body)) {
            return Status::truncated("truncated archive ",
                                     source.describe(),
                                     ": stream name runs past the body");
        }
        std::string name(static_cast<size_t>(name_len), '\0');
        if (name_len > 0) {
            status = source.tryReadAt(cursor.position(), name.data(),
                                      static_cast<size_t>(name_len));
            if (!status.ok())
                return status;
        }
        cursor.skip(name_len);

        StreamExtent extent;
        status = cursor.next(extent.size);
        if (!status.ok())
            return status;
        extent.offset = cursor.position();
        if (extent.size > body - std::min(extent.offset, body)) {
            return Status::truncated(
                "truncated archive ", source.describe(), ": stream '",
                name, "' claims ", extent.size, " bytes at offset ",
                extent.offset, " of a ", body, "-byte body");
        }
        cursor.skip(extent.size);
        dir.extents_[name] = extent;
    }
    return dir;
}

StreamDirectory
StreamDirectory::parse(const ByteSource &source)
{
    StatusOr<StreamDirectory> parsed = tryParse(source);
    if (!parsed.ok())
        sage_fatal(parsed.status().message());
    return std::move(parsed.value());
}

bool
StreamDirectory::has(const std::string &name) const
{
    return extents_.count(name) > 0;
}

const StreamExtent &
StreamDirectory::extent(const std::string &name) const
{
    auto it = extents_.find(name);
    if (it == extents_.end())
        sage_fatal("missing stream: ", name);
    return it->second;
}

std::vector<uint8_t>
StreamDirectory::load(const ByteSource &source,
                      const std::string &name) const
{
    const StreamExtent &ext = extent(name);
    return source.read(ext.offset, static_cast<size_t>(ext.size));
}

Status
StreamDirectory::tryLoad(const ByteSource &source,
                         const std::string &name,
                         std::vector<uint8_t> &out) const
{
    auto it = extents_.find(name);
    if (it == extents_.end())
        return Status::corrupt("missing stream: ", name);
    return source.tryRead(it->second.offset,
                          static_cast<size_t>(it->second.size), out);
}

std::map<std::string, uint64_t>
StreamDirectory::sizes() const
{
    std::map<std::string, uint64_t> out;
    for (const auto &[name, extent] : extents_)
        out[name] = extent.size;
    return out;
}

Status
verifyArchiveChecksumStatus(const ByteSource &source)
{
    const uint64_t total = source.size();
    if (total < 4) {
        return Status::truncated("archive ", source.describe(),
                                 " too small (", total,
                                 " bytes) to hold a CRC32 trailer");
    }
    const uint64_t body = total - 4;

    Crc32 crc;
    constexpr size_t kBlock = 1 << 20;
    std::vector<uint8_t> block;
    for (uint64_t pos = 0; pos < body; pos += kBlock) {
        const size_t span = static_cast<size_t>(
            std::min<uint64_t>(kBlock, body - pos));
        if (const uint8_t *direct = source.view(pos, span)) {
            crc.update(direct, span);
        } else {
            block.resize(span);
            Status status = source.tryReadAt(pos, block.data(), span);
            if (!status.ok())
                return status;
            crc.update(block.data(), span);
        }
    }

    uint8_t trailer[4];
    Status status = source.tryReadAt(body, trailer, 4);
    if (!status.ok())
        return status;
    uint32_t stored = 0;
    for (int i = 0; i < 4; i++)
        stored |= static_cast<uint32_t>(trailer[i]) << (8 * i);
    if (crc.value() != stored) {
        return Status::corrupt("archive ", source.describe(),
                               " CRC mismatch: stored ", stored,
                               ", computed ", crc.value());
    }
    return Status();
}

bool
verifyArchiveChecksum(const ByteSource &source)
{
    return verifyArchiveChecksumStatus(source).ok();
}

} // namespace sage
