#include "io/container.hh"

#include <algorithm>

#include "util/crc32.hh"
#include "util/logging.hh"

namespace sage {

namespace {

/** Sequential varint reader over a bounded prefix of a source. */
class VarintCursor
{
  public:
    VarintCursor(const ByteSource &source, uint64_t limit)
        : source_(source), limit_(limit)
    {}

    uint64_t position() const { return pos_; }

    void
    skip(uint64_t bytes)
    {
        pos_ += bytes;
    }

    uint64_t
    next()
    {
        uint64_t value = 0;
        unsigned shift = 0;
        for (;;) {
            if (pos_ >= limit_) {
                sage_fatal("truncated archive ", source_.describe(),
                           ": varint runs past byte ", limit_);
            }
            uint8_t byte;
            source_.readAt(pos_++, &byte, 1);
            value |= static_cast<uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return value;
            shift += 7;
            if (shift >= 64) {
                sage_fatal("malformed archive ", source_.describe(),
                           ": varint overflow at byte ", pos_);
            }
        }
    }

  private:
    const ByteSource &source_;
    uint64_t limit_;
    uint64_t pos_ = 0;
};

} // namespace

StreamDirectory
StreamDirectory::parse(const ByteSource &source)
{
    const uint64_t total = source.size();
    if (total < 4) {
        sage_fatal("archive ", source.describe(), " too small (", total,
                   " bytes): not a SAGe container");
    }
    const uint64_t body = total - 4; // CRC32 trailer.

    StreamDirectory dir;
    VarintCursor cursor(source, body);
    const uint64_t count = cursor.next();
    for (uint64_t i = 0; i < count; i++) {
        const uint64_t name_len = cursor.next();
        if (name_len > body - std::min(cursor.position(), body)) {
            sage_fatal("truncated archive ", source.describe(),
                       ": stream name runs past the body");
        }
        std::string name(name_len, '\0');
        if (name_len > 0)
            source.readAt(cursor.position(), name.data(),
                          static_cast<size_t>(name_len));
        cursor.skip(name_len);

        StreamExtent extent;
        extent.size = cursor.next();
        extent.offset = cursor.position();
        if (extent.size > body - std::min(extent.offset, body)) {
            sage_fatal("truncated archive ", source.describe(),
                       ": stream '", name, "' claims ", extent.size,
                       " bytes at offset ", extent.offset, " of a ",
                       body, "-byte body");
        }
        cursor.skip(extent.size);
        dir.extents_[name] = extent;
    }
    return dir;
}

bool
StreamDirectory::has(const std::string &name) const
{
    return extents_.count(name) > 0;
}

const StreamExtent &
StreamDirectory::extent(const std::string &name) const
{
    auto it = extents_.find(name);
    if (it == extents_.end())
        sage_fatal("missing stream: ", name);
    return it->second;
}

std::vector<uint8_t>
StreamDirectory::load(const ByteSource &source,
                      const std::string &name) const
{
    const StreamExtent &ext = extent(name);
    return source.read(ext.offset, static_cast<size_t>(ext.size));
}

std::map<std::string, uint64_t>
StreamDirectory::sizes() const
{
    std::map<std::string, uint64_t> out;
    for (const auto &[name, extent] : extents_)
        out[name] = extent.size;
    return out;
}

bool
verifyArchiveChecksum(const ByteSource &source)
{
    const uint64_t total = source.size();
    if (total < 4)
        return false;
    const uint64_t body = total - 4;

    Crc32 crc;
    constexpr size_t kBlock = 1 << 20;
    std::vector<uint8_t> block;
    for (uint64_t pos = 0; pos < body; pos += kBlock) {
        const size_t span = static_cast<size_t>(
            std::min<uint64_t>(kBlock, body - pos));
        if (const uint8_t *direct = source.view(pos, span)) {
            crc.update(direct, span);
        } else {
            block.resize(span);
            source.readAt(pos, block.data(), span);
            crc.update(block.data(), span);
        }
    }

    uint8_t trailer[4];
    source.readAt(body, trailer, 4);
    uint32_t stored = 0;
    for (int i = 0; i < 4; i++)
        stored |= static_cast<uint32_t>(trailer[i]) << (8 * i);
    return crc.value() == stored;
}

} // namespace sage
