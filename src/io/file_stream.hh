/**
 * @file
 * File-backed ByteSource/ByteSink.
 *
 * FileSource serves random-access reads via pread(2), so a shared
 * source is safe for the chunk-parallel decode path (no shared file
 * offset); a small read-ahead cache keeps the many tiny sequential
 * reads of container-directory parsing cheap. FileSink buffers writes
 * in user space and flushes in large spans. Every failure path is
 * fatal with the offending path in the message — no silent short
 * reads or writes.
 */

#ifndef SAGE_IO_FILE_STREAM_HH
#define SAGE_IO_FILE_STREAM_HH

#include <atomic>
#include <memory>
#include <mutex>

#include "io/byte_stream.hh"

struct iovec; // <sys/uio.h>; only the .cc needs the definition.

namespace sage {

/** Seekable, buffered, thread-safe reader over a file on disk. */
class FileSource final : public ByteSource
{
  public:
    /** Open @p path; fatal (naming the path) when it cannot be read. */
    explicit FileSource(const std::string &path);
    ~FileSource() override;

    /** Non-fatal open: IoError (naming the path and errno) when the
     *  file cannot be opened or is not a regular file. The server-side
     *  archive-open path uses this — a bad path from a remote client
     *  must produce an error reply, not a crash. */
    static StatusOr<std::unique_ptr<FileSource>>
    tryOpen(const std::string &path);

    FileSource(const FileSource &) = delete;
    FileSource &operator=(const FileSource &) = delete;

    uint64_t size() const override { return size_; }
    void readAt(uint64_t offset, void *dst, size_t size) const override;
    /**
     * Scatter read via preadv(2): extents are sorted by offset and
     * runs whose inter-extent gaps stay below a skip threshold
     * coalesce into one vectored syscall (gap bytes land in a scratch
     * iovec), so fetching a chunk's 13 stream slices costs a few
     * syscalls instead of 13 preads when the slices sit near each
     * other in the container. Distant extents get their own preadv.
     */
    void readBatch(const Extent *extents, size_t count) const override;

    /**
     * Non-fatal reads: OutOfRange past the end, Truncated when the
     * file ends mid-read, IoError on syscall failure, Exhausted when
     * the transient-error retry budget runs out. EINTR is retried
     * immediately and EAGAIN/EWOULDBLOCK with bounded exponential
     * backoff (counted in transientRetries()) before giving up.
     */
    Status tryReadAt(uint64_t offset, void *dst,
                     size_t size) const override;
    Status tryReadBatch(const Extent *extents,
                        size_t count) const override;

    std::string describe() const override { return path_; }

    /** Transient-error retries (EINTR excluded) performed so far. */
    uint64_t
    transientRetries() const
    {
        return retries_.load(std::memory_order_relaxed);
    }

  private:
    /** Adopt an already-opened descriptor (tryOpen's tail). */
    FileSource(int fd, std::string path, uint64_t size)
        : path_(std::move(path)), fd_(fd), size_(size)
    {}

    /**
     * Only tiny reads (container-directory varints and names) go
     * through the read-ahead window; anything larger — chunk slice
     * fetches in particular — preads directly, so parallel decode
     * workers never contend on the window's mutex and never amplify
     * a few-KB slice fetch into a window fill.
     */
    static constexpr size_t kCachedReadBytes = 512;
    /** Size of the read-ahead window itself. */
    static constexpr size_t kCacheBytes = 64 * 1024;

    /** pread loop directly into @p dst (no cache). */
    void preadExact(uint64_t offset, void *dst, size_t size) const;

    /** preadv loop filling @p iov completely (mutates the iovecs to
     *  track partial progress). */
    void preadvExact(uint64_t offset, struct iovec *iov,
                     size_t count) const;

    /** Status-returning cores the fatal loops above wrap. */
    Status tryPreadExact(uint64_t offset, void *dst, size_t size) const;
    Status tryPreadvExact(uint64_t offset, struct iovec *iov,
                          size_t count) const;

    /** Shared errno handling for the two cores: decide whether to
     *  retry (returns Ok after sleeping) or give up (non-Ok). */
    Status classifyReadError(int err, uint64_t offset,
                             unsigned &transient_left) const;

    std::string path_;
    int fd_ = -1;
    uint64_t size_ = 0;
    mutable std::atomic<uint64_t> retries_{0};

    // Read-ahead window for small sequential reads (directory walks).
    mutable std::mutex mutex_;
    mutable std::vector<uint8_t> cache_;
    mutable uint64_t cacheOffset_ = 0;
};

/** Buffered writer creating/truncating a file on disk. */
class FileSink final : public ByteSink
{
  public:
    /** Create/truncate @p path; fatal (naming the path) on failure. */
    explicit FileSink(const std::string &path);

    /** Flushes and closes; write errors at destruction are fatal too
     *  (data loss must never be silent). Prefer an explicit close(). */
    ~FileSink() override;

    FileSink(const FileSink &) = delete;
    FileSink &operator=(const FileSink &) = delete;

    void write(const void *data, size_t size) override;
    uint64_t tell() const override { return written_; }
    void flush() override;

    /** Flush and close the file; further writes are a bug. */
    void close();

    const std::string &path() const { return path_; }

  private:
    static constexpr size_t kBufferBytes = 256 * 1024;

    /** write(2) loop with EINTR retry and bounded EAGAIN backoff. */
    void writeExact(const uint8_t *bytes, size_t size);

    std::string path_;
    int fd_ = -1;
    uint64_t written_ = 0;
    std::vector<uint8_t> buffer_;
};

} // namespace sage

#endif // SAGE_IO_FILE_STREAM_HH
