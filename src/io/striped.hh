/**
 * @file
 * Striped byte spaces: one logical archive fanned round-robin across N
 * backing sources/sinks in fixed-size stripes.
 *
 * This is the host-software analogue of the paper's SAGe data layout
 * (§5.3: pages striped across channels) lifted one level up, to whole
 * devices (§5.4 / Fig. 15 multi-SSD scaling): logical stripe s lives
 * on backing store s mod N at local offset (s div N) * stripeBytes.
 * Because SAGe v2 chunks are independently decodable byte slices, a
 * SageReader over a StripedSource fetches different chunks from
 * different devices concurrently with no reassembly pass.
 */

#ifndef SAGE_IO_STRIPED_HH
#define SAGE_IO_STRIPED_HH

#include "io/byte_stream.hh"

namespace sage {

/** Read side of a striped layout: N sources acting as one. */
class StripedSource final : public ByteSource
{
  public:
    /**
     * Assemble @p stripes (all non-null, outliving us) into one
     * logical space with @p stripe_bytes-sized stripes. The backing
     * sizes must form a valid round-robin layout (fatal otherwise).
     */
    StripedSource(std::vector<const ByteSource *> stripes,
                  uint64_t stripe_bytes);

    uint64_t size() const override { return size_; }
    void readAt(uint64_t offset, void *dst, size_t size) const override;
    /** Non-fatal readAt: forwards each stripe span through the backing
     *  source's tryReadAt, so a failing shard degrades per-request. */
    Status tryReadAt(uint64_t offset, void *dst,
                     size_t size) const override;
    const uint8_t *view(uint64_t offset, size_t size) const override;
    std::string describe() const override;

    uint64_t stripeBytes() const { return stripeBytes_; }
    size_t stripeCount() const { return stripes_.size(); }

  private:
    /** Backing store and local offset of logical offset @p offset. */
    struct Location
    {
        size_t stripe;
        uint64_t localOffset;
        uint64_t bytesLeftInStripe;
    };
    Location locate(uint64_t offset) const;

    std::vector<const ByteSource *> stripes_;
    uint64_t stripeBytes_;
    uint64_t size_ = 0;
};

/** Write side: appends round-robin across N sinks. */
class StripedSink final : public ByteSink
{
  public:
    StripedSink(std::vector<ByteSink *> stripes, uint64_t stripe_bytes);

    void write(const void *data, size_t size) override;
    uint64_t tell() const override { return written_; }
    void flush() override;

  private:
    std::vector<ByteSink *> stripes_;
    uint64_t stripeBytes_;
    uint64_t written_ = 0;
};

/**
 * Split @p data into @p stripes round-robin shards of
 * @p stripe_bytes-sized stripes — the byte layout StripedSource
 * expects, e.g. for writing one shard per device.
 */
std::vector<std::vector<uint8_t>>
stripeShards(const std::vector<uint8_t> &data, size_t stripes,
             uint64_t stripe_bytes);

} // namespace sage

#endif // SAGE_IO_STRIPED_HH
