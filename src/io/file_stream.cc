#include "io/file_stream.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/logging.hh"

namespace sage {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

} // namespace

FileSource::FileSource(const std::string &path)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        sage_fatal("cannot open ", path, " for reading: ", errnoText());
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        sage_fatal("cannot stat ", path, ": ", errnoText());
    size_ = static_cast<uint64_t>(st.st_size);
}

FileSource::~FileSource()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
FileSource::preadExact(uint64_t offset, void *dst, size_t size) const
{
    uint8_t *out = static_cast<uint8_t *>(dst);
    while (size > 0) {
        const ssize_t got = ::pread(fd_, out, size,
                                    static_cast<off_t>(offset));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            sage_fatal("read error on ", path_, " at offset ", offset,
                       ": ", errnoText());
        }
        if (got == 0) {
            sage_fatal("short read on ", path_, ": wanted ", size,
                       " more bytes at offset ", offset, " (file is ",
                       size_, " bytes)");
        }
        out += got;
        offset += static_cast<uint64_t>(got);
        size -= static_cast<size_t>(got);
    }
}

void
FileSource::readAt(uint64_t offset, void *dst, size_t size) const
{
    if (size == 0)
        return;
    if (offset > size_ || size > size_ - offset) {
        sage_fatal("read past end of ", path_, ": [", offset, ", ",
                   offset + size, ") in ", size_, " bytes");
    }

    // Everything but tiny directory reads bypasses the cache; pread
    // is thread-safe, so concurrent chunk fetches never contend here.
    if (size > kCachedReadBytes) {
        preadExact(offset, dst, size);
        return;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    const bool hit = offset >= cacheOffset_ &&
        offset + size <= cacheOffset_ + cache_.size();
    if (!hit) {
        cacheOffset_ = offset;
        cache_.resize(static_cast<size_t>(
            std::min<uint64_t>(kCacheBytes, size_ - offset)));
        preadExact(cacheOffset_, cache_.data(), cache_.size());
    }
    std::memcpy(dst, cache_.data() + (offset - cacheOffset_), size);
}

FileSink::FileSink(const std::string &path)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0)
        sage_fatal("cannot open ", path, " for writing: ", errnoText());
    buffer_.reserve(kBufferBytes);
}

FileSink::~FileSink()
{
    if (fd_ >= 0)
        close();
}

void
FileSink::write(const void *data, size_t size)
{
    sage_assert(fd_ >= 0, "write to closed FileSink: ", path_);
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    written_ += size;
    // Buffer small appends; spill oversized ones straight through.
    if (buffer_.size() + size <= kBufferBytes) {
        buffer_.insert(buffer_.end(), bytes, bytes + size);
        if (buffer_.size() == kBufferBytes)
            flush();
        return;
    }
    flush();
    while (size > 0) {
        const ssize_t put = ::write(fd_, bytes, size);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            sage_fatal("write error on ", path_, ": ", errnoText());
        }
        bytes += put;
        size -= static_cast<size_t>(put);
    }
}

void
FileSink::flush()
{
    if (fd_ < 0 || buffer_.empty())
        return;
    const uint8_t *bytes = buffer_.data();
    size_t size = buffer_.size();
    while (size > 0) {
        const ssize_t put = ::write(fd_, bytes, size);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            sage_fatal("write error on ", path_, ": ", errnoText());
        }
        bytes += put;
        size -= static_cast<size_t>(put);
    }
    buffer_.clear();
}

void
FileSink::close()
{
    if (fd_ < 0)
        return;
    flush();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0)
        sage_fatal("close error on ", path_, ": ", errnoText());
}

} // namespace sage
