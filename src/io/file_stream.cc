#include "io/file_stream.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include "util/logging.hh"

namespace sage {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

/** Transient (EAGAIN/EWOULDBLOCK) retries attempted per operation
 *  before giving up with StatusCode::Exhausted. */
constexpr unsigned kTransientRetryBudget = 8;

/** First backoff sleep; doubles per retry, capped at 1 ms. */
constexpr unsigned kBackoffStartMicros = 50;
constexpr unsigned kBackoffCapMicros = 1000;

} // namespace

FileSource::FileSource(const std::string &path)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        sage_fatal("cannot open ", path, " for reading: ", errnoText());
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        sage_fatal("cannot stat ", path, ": ", errnoText());
    size_ = static_cast<uint64_t>(st.st_size);
}

FileSource::~FileSource()
{
    if (fd_ >= 0)
        ::close(fd_);
}

StatusOr<std::unique_ptr<FileSource>>
FileSource::tryOpen(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        return Status::ioError("cannot open ", path,
                               " for reading: ", errnoText());
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        Status status =
            Status::ioError("cannot stat ", path, ": ", errnoText());
        ::close(fd);
        return status;
    }
    if (!S_ISREG(st.st_mode)) {
        ::close(fd);
        return Status::ioError(path, " is not a regular file");
    }
    return std::unique_ptr<FileSource>(new FileSource(
        fd, path, static_cast<uint64_t>(st.st_size)));
}

Status
FileSource::classifyReadError(int err, uint64_t offset,
                              unsigned &transient_left) const
{
    // EINTR: a signal interrupted the syscall before any bytes moved;
    // retry immediately, without touching the transient budget.
    if (err == EINTR)
        return Status();
    // EAGAIN/EWOULDBLOCK: the descriptor is momentarily unready.
    // Never expected of a regular file, but network filesystems and
    // fault injection produce it; back off and retry a bounded number
    // of times before reporting Exhausted.
    if (err == EAGAIN || err == EWOULDBLOCK) {
        if (transient_left == 0) {
            return Status::exhausted(
                "transient read errors exhausted the retry budget (",
                kTransientRetryBudget, ") on ", path_, " at offset ",
                offset);
        }
        const unsigned attempt = kTransientRetryBudget - transient_left;
        transient_left--;
        retries_.fetch_add(1, std::memory_order_relaxed);
        const unsigned sleep_us = std::min(
            kBackoffCapMicros, kBackoffStartMicros << attempt);
        std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        return Status();
    }
    return Status::ioError("read error on ", path_, " at offset ",
                           offset, ": ", std::strerror(err));
}

Status
FileSource::tryPreadExact(uint64_t offset, void *dst, size_t size) const
{
    uint8_t *out = static_cast<uint8_t *>(dst);
    unsigned transient_left = kTransientRetryBudget;
    while (size > 0) {
        const ssize_t got = ::pread(fd_, out, size,
                                    static_cast<off_t>(offset));
        if (got < 0) {
            Status status = classifyReadError(errno, offset,
                                              transient_left);
            if (!status.ok())
                return status;
            continue;
        }
        if (got == 0) {
            return Status::truncated("short read on ", path_,
                                     ": wanted ", size,
                                     " more bytes at offset ", offset,
                                     " (file is ", size_, " bytes)");
        }
        out += got;
        offset += static_cast<uint64_t>(got);
        size -= static_cast<size_t>(got);
    }
    return Status();
}

Status
FileSource::tryPreadvExact(uint64_t offset, struct iovec *iov,
                           size_t count) const
{
    unsigned transient_left = kTransientRetryBudget;
    while (count > 0) {
        const ssize_t got = ::preadv(fd_, iov, static_cast<int>(count),
                                     static_cast<off_t>(offset));
        if (got < 0) {
            Status status = classifyReadError(errno, offset,
                                              transient_left);
            if (!status.ok())
                return status;
            continue;
        }
        if (got == 0) {
            return Status::truncated("short read on ", path_,
                                     " at offset ", offset, " (file is ",
                                     size_, " bytes)");
        }
        offset += static_cast<uint64_t>(got);
        size_t left = static_cast<size_t>(got);
        while (count > 0 && left >= iov->iov_len) {
            left -= iov->iov_len;
            iov++;
            count--;
        }
        if (count > 0 && left > 0) {
            iov->iov_base = static_cast<uint8_t *>(iov->iov_base) + left;
            iov->iov_len -= left;
        }
    }
    return Status();
}

void
FileSource::preadExact(uint64_t offset, void *dst, size_t size) const
{
    Status status = tryPreadExact(offset, dst, size);
    if (!status.ok())
        sage_fatal(status.message());
}

void
FileSource::preadvExact(uint64_t offset, struct iovec *iov,
                        size_t count) const
{
    Status status = tryPreadvExact(offset, iov, count);
    if (!status.ok())
        sage_fatal(status.message());
}

Status
FileSource::tryReadBatch(const Extent *extents, size_t count) const
{
    // Gap size below which two extents share one preadv: the skipped
    // bytes are read into a discarded scratch iovec, which beats the
    // latency of another syscall. Matches the read-ahead window size.
    constexpr uint64_t kBatchGapBytes = 64 * 1024;
    // iovec budget per call, comfortably under IOV_MAX (1024).
    constexpr size_t kBatchMaxIovecs = 128;

    std::vector<size_t> order;
    order.reserve(count);
    for (size_t i = 0; i < count; i++) {
        const Extent &e = extents[i];
        if (e.size == 0)
            continue;
        if (e.offset > size_ || e.size > size_ - e.offset) {
            return Status::outOfRange("read past end of ", path_, ": [",
                                      e.offset, ", ", e.offset + e.size,
                                      ") in ", size_, " bytes");
        }
        order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return extents[a].offset < extents[b].offset;
    });

    std::vector<uint8_t> scratch; // Gap landing zone, sized on demand.
    std::vector<struct iovec> iov;
    size_t r = 0;
    while (r < order.size()) {
        // Open a run and extend it while the next extent starts within
        // kBatchGapBytes of the run's end. Overlapping or backwards
        // extents start their own run (the iovec walk is strictly
        // forward).
        iov.clear();
        const uint64_t run_offset = extents[order[r]].offset;
        uint64_t end = run_offset;
        do {
            const Extent &e = extents[order[r]];
            const uint64_t gap = e.offset - end;
            if (gap > 0) {
                if (scratch.empty())
                    scratch.resize(kBatchGapBytes);
                iov.push_back({scratch.data(),
                               static_cast<size_t>(gap)});
            }
            iov.push_back({e.dst, e.size});
            end = e.offset + e.size;
            r++;
        } while (r < order.size() &&
                 iov.size() + 2 <= kBatchMaxIovecs &&
                 extents[order[r]].offset >= end &&
                 extents[order[r]].offset - end <= kBatchGapBytes);

        Status status;
        if (iov.size() == 1) {
            status = tryPreadExact(run_offset, iov[0].iov_base,
                                   iov[0].iov_len);
        } else {
            status = tryPreadvExact(run_offset, iov.data(), iov.size());
        }
        if (!status.ok())
            return status;
    }
    return Status();
}

void
FileSource::readBatch(const Extent *extents, size_t count) const
{
    Status status = tryReadBatch(extents, count);
    if (!status.ok())
        sage_fatal(status.message());
}

Status
FileSource::tryReadAt(uint64_t offset, void *dst, size_t size) const
{
    if (size == 0)
        return Status();
    if (offset > size_ || size > size_ - offset) {
        return Status::outOfRange("read past end of ", path_, ": [",
                                  offset, ", ", offset + size, ") in ",
                                  size_, " bytes");
    }

    // Everything but tiny directory reads bypasses the cache; pread
    // is thread-safe, so concurrent chunk fetches never contend here.
    if (size > kCachedReadBytes)
        return tryPreadExact(offset, dst, size);

    std::lock_guard<std::mutex> lock(mutex_);
    const bool hit = offset >= cacheOffset_ &&
        offset + size <= cacheOffset_ + cache_.size();
    if (!hit) {
        std::vector<uint8_t> window(static_cast<size_t>(
            std::min<uint64_t>(kCacheBytes, size_ - offset)));
        Status status = tryPreadExact(offset, window.data(),
                                      window.size());
        if (!status.ok()) {
            // Leave the old window intact: a failed fill must not
            // poison later reads with stale mappings.
            return status;
        }
        cacheOffset_ = offset;
        cache_ = std::move(window);
    }
    std::memcpy(dst, cache_.data() + (offset - cacheOffset_), size);
    return Status();
}

void
FileSource::readAt(uint64_t offset, void *dst, size_t size) const
{
    Status status = tryReadAt(offset, dst, size);
    if (!status.ok())
        sage_fatal(status.message());
}

FileSink::FileSink(const std::string &path)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0)
        sage_fatal("cannot open ", path, " for writing: ", errnoText());
    buffer_.reserve(kBufferBytes);
}

FileSink::~FileSink()
{
    if (fd_ >= 0)
        close();
}

void
FileSink::write(const void *data, size_t size)
{
    sage_assert(fd_ >= 0, "write to closed FileSink: ", path_);
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    written_ += size;
    // Buffer small appends; spill oversized ones straight through.
    if (buffer_.size() + size <= kBufferBytes) {
        buffer_.insert(buffer_.end(), bytes, bytes + size);
        if (buffer_.size() == kBufferBytes)
            flush();
        return;
    }
    flush();
    writeExact(bytes, size);
}

void
FileSink::writeExact(const uint8_t *bytes, size_t size)
{
    // EINTR retries immediately; EAGAIN/EWOULDBLOCK (pipes, network
    // filesystems) backs off briefly and retries a bounded number of
    // times before dying — a write sink has no recoverable caller yet,
    // so exhaustion stays fatal.
    unsigned transient_left = kTransientRetryBudget;
    while (size > 0) {
        const ssize_t put = ::write(fd_, bytes, size);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            if ((errno == EAGAIN || errno == EWOULDBLOCK) &&
                transient_left > 0) {
                const unsigned attempt =
                    kTransientRetryBudget - transient_left;
                transient_left--;
                const unsigned sleep_us = std::min(
                    kBackoffCapMicros, kBackoffStartMicros << attempt);
                std::this_thread::sleep_for(
                    std::chrono::microseconds(sleep_us));
                continue;
            }
            sage_fatal("write error on ", path_, ": ", errnoText());
        }
        bytes += put;
        size -= static_cast<size_t>(put);
    }
}

void
FileSink::flush()
{
    if (fd_ < 0 || buffer_.empty())
        return;
    writeExact(buffer_.data(), buffer_.size());
    buffer_.clear();
}

void
FileSink::close()
{
    if (fd_ < 0)
        return;
    flush();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0)
        sage_fatal("close error on ", path_, ": ", errnoText());
}

} // namespace sage
