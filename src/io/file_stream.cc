#include "io/file_stream.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include "util/logging.hh"

namespace sage {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

} // namespace

FileSource::FileSource(const std::string &path)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0)
        sage_fatal("cannot open ", path, " for reading: ", errnoText());
    struct stat st;
    if (::fstat(fd_, &st) != 0)
        sage_fatal("cannot stat ", path, ": ", errnoText());
    size_ = static_cast<uint64_t>(st.st_size);
}

FileSource::~FileSource()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
FileSource::preadExact(uint64_t offset, void *dst, size_t size) const
{
    uint8_t *out = static_cast<uint8_t *>(dst);
    while (size > 0) {
        const ssize_t got = ::pread(fd_, out, size,
                                    static_cast<off_t>(offset));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            sage_fatal("read error on ", path_, " at offset ", offset,
                       ": ", errnoText());
        }
        if (got == 0) {
            sage_fatal("short read on ", path_, ": wanted ", size,
                       " more bytes at offset ", offset, " (file is ",
                       size_, " bytes)");
        }
        out += got;
        offset += static_cast<uint64_t>(got);
        size -= static_cast<size_t>(got);
    }
}

void
FileSource::preadvExact(uint64_t offset, struct iovec *iov,
                        size_t count) const
{
    while (count > 0) {
        const ssize_t got = ::preadv(fd_, iov, static_cast<int>(count),
                                     static_cast<off_t>(offset));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            sage_fatal("read error on ", path_, " at offset ", offset,
                       ": ", errnoText());
        }
        if (got == 0) {
            sage_fatal("short read on ", path_, " at offset ", offset,
                       " (file is ", size_, " bytes)");
        }
        offset += static_cast<uint64_t>(got);
        size_t left = static_cast<size_t>(got);
        while (count > 0 && left >= iov->iov_len) {
            left -= iov->iov_len;
            iov++;
            count--;
        }
        if (count > 0 && left > 0) {
            iov->iov_base = static_cast<uint8_t *>(iov->iov_base) + left;
            iov->iov_len -= left;
        }
    }
}

void
FileSource::readBatch(const Extent *extents, size_t count) const
{
    // Gap size below which two extents share one preadv: the skipped
    // bytes are read into a discarded scratch iovec, which beats the
    // latency of another syscall. Matches the read-ahead window size.
    constexpr uint64_t kBatchGapBytes = 64 * 1024;
    // iovec budget per call, comfortably under IOV_MAX (1024).
    constexpr size_t kBatchMaxIovecs = 128;

    std::vector<size_t> order;
    order.reserve(count);
    for (size_t i = 0; i < count; i++) {
        const Extent &e = extents[i];
        if (e.size == 0)
            continue;
        if (e.offset > size_ || e.size > size_ - e.offset) {
            sage_fatal("read past end of ", path_, ": [", e.offset,
                       ", ", e.offset + e.size, ") in ", size_,
                       " bytes");
        }
        order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return extents[a].offset < extents[b].offset;
    });

    std::vector<uint8_t> scratch; // Gap landing zone, sized on demand.
    std::vector<struct iovec> iov;
    size_t r = 0;
    while (r < order.size()) {
        // Open a run and extend it while the next extent starts within
        // kBatchGapBytes of the run's end. Overlapping or backwards
        // extents start their own run (the iovec walk is strictly
        // forward).
        iov.clear();
        const uint64_t run_offset = extents[order[r]].offset;
        uint64_t end = run_offset;
        do {
            const Extent &e = extents[order[r]];
            const uint64_t gap = e.offset - end;
            if (gap > 0) {
                if (scratch.empty())
                    scratch.resize(kBatchGapBytes);
                iov.push_back({scratch.data(),
                               static_cast<size_t>(gap)});
            }
            iov.push_back({e.dst, e.size});
            end = e.offset + e.size;
            r++;
        } while (r < order.size() &&
                 iov.size() + 2 <= kBatchMaxIovecs &&
                 extents[order[r]].offset >= end &&
                 extents[order[r]].offset - end <= kBatchGapBytes);

        if (iov.size() == 1)
            preadExact(run_offset, iov[0].iov_base, iov[0].iov_len);
        else
            preadvExact(run_offset, iov.data(), iov.size());
    }
}

void
FileSource::readAt(uint64_t offset, void *dst, size_t size) const
{
    if (size == 0)
        return;
    if (offset > size_ || size > size_ - offset) {
        sage_fatal("read past end of ", path_, ": [", offset, ", ",
                   offset + size, ") in ", size_, " bytes");
    }

    // Everything but tiny directory reads bypasses the cache; pread
    // is thread-safe, so concurrent chunk fetches never contend here.
    if (size > kCachedReadBytes) {
        preadExact(offset, dst, size);
        return;
    }

    std::lock_guard<std::mutex> lock(mutex_);
    const bool hit = offset >= cacheOffset_ &&
        offset + size <= cacheOffset_ + cache_.size();
    if (!hit) {
        cacheOffset_ = offset;
        cache_.resize(static_cast<size_t>(
            std::min<uint64_t>(kCacheBytes, size_ - offset)));
        preadExact(cacheOffset_, cache_.data(), cache_.size());
    }
    std::memcpy(dst, cache_.data() + (offset - cacheOffset_), size);
}

FileSink::FileSink(const std::string &path)
    : path_(path)
{
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0)
        sage_fatal("cannot open ", path, " for writing: ", errnoText());
    buffer_.reserve(kBufferBytes);
}

FileSink::~FileSink()
{
    if (fd_ >= 0)
        close();
}

void
FileSink::write(const void *data, size_t size)
{
    sage_assert(fd_ >= 0, "write to closed FileSink: ", path_);
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    written_ += size;
    // Buffer small appends; spill oversized ones straight through.
    if (buffer_.size() + size <= kBufferBytes) {
        buffer_.insert(buffer_.end(), bytes, bytes + size);
        if (buffer_.size() == kBufferBytes)
            flush();
        return;
    }
    flush();
    while (size > 0) {
        const ssize_t put = ::write(fd_, bytes, size);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            sage_fatal("write error on ", path_, ": ", errnoText());
        }
        bytes += put;
        size -= static_cast<size_t>(put);
    }
}

void
FileSink::flush()
{
    if (fd_ < 0 || buffer_.empty())
        return;
    const uint8_t *bytes = buffer_.data();
    size_t size = buffer_.size();
    while (size > 0) {
        const ssize_t put = ::write(fd_, bytes, size);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            sage_fatal("write error on ", path_, ": ", errnoText());
        }
        bytes += put;
        size -= static_cast<size_t>(put);
    }
    buffer_.clear();
}

void
FileSink::close()
{
    if (fd_ < 0)
        return;
    flush();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0)
        sage_fatal("close error on ", path_, ": ", errnoText());
}

} // namespace sage
