/**
 * @file
 * Streaming session API — the preferred way to produce and consume
 * SAGe archives.
 *
 *   SageWriter writer("reads.sage");
 *   writer.add(read_set);
 *   SageWriteStats stats = writer.finish(reference);
 *
 *   SageReader reader("reads.sage");
 *   ReadSet some = reader.decodeRange(first_chunk, n_chunks, &pool);
 *
 * SageWriter wraps the encoder and streams the container to a ByteSink
 * (a file, a memory buffer, or a striped device set) without ever
 * materializing the serialized archive as one buffer. SageReader
 * parses only the header + chunk table from a ByteSource and fetches
 * per-chunk byte slices on demand, so chunk-range random access over a
 * FileSource never loads the full archive — the software analogue of
 * the paper's SAGe_Read/SAGe_Write interface (§5.4), and the layer the
 * Fig. 15 multi-SSD mode plugs into via StripedSource.
 *
 * The legacy whole-buffer calls (sageCompress/sageDecompress,
 * core/encoder.hh + core/decoder.hh) remain as thin compatibility
 * wrappers over the same machinery.
 *
 * Note on write granularity: the container's stream-table layout
 * groups each stream's chunks contiguously, so the writer can only
 * stream the file out at finish() (stream by stream), not one chunk at
 * a time; a chunk-major v3 layout would lift that. The read side is
 * fully chunk-granular today.
 */

#ifndef SAGE_IO_SESSION_HH
#define SAGE_IO_SESSION_HH

#include <memory>
#include <string_view>

#include "core/decoder.hh"
#include "core/encoder.hh"
#include "core/format.hh"
#include "io/byte_stream.hh"
#include "io/file_stream.hh"

namespace sage {

class ThreadPool;

/** Accounting returned by SageWriter::finish (cf. SageArchive, minus
 *  the resident bytes — those went to the sink). */
struct SageWriteStats
{
    /** Serialized container size (bytes delivered to the sink). */
    uint64_t archiveBytes = 0;

    /** Per-stream sizes (bytes) for the Fig. 17 breakdown. */
    std::map<std::string, uint64_t> streamSizes;

    /** Wall-clock split, for Fig. 18. */
    double mapSeconds = 0.0;
    double encodeSeconds = 0.0;
    double tuneSeconds = 0.0;  ///< Algorithm 1 share (§8.6).

    /** DNA-stream bytes (consensus + arrays + escapes). */
    uint64_t dnaBytes = 0;
    /** Quality-stream bytes. */
    uint64_t qualityBytes = 0;
    /** Host-side metadata bytes (headers, order). */
    uint64_t metaBytes = 0;
};

/** Write session: accumulate reads, encode once, stream to a sink. */
class SageWriter
{
  public:
    /** Write to @p sink (must outlive the writer). */
    explicit SageWriter(ByteSink &sink, SageConfig config = {});

    /** Write to a file (owned FileSink; fatal naming the path). */
    explicit SageWriter(const std::string &path, SageConfig config = {});

    ~SageWriter();

    SageWriter(const SageWriter &) = delete;
    SageWriter &operator=(const SageWriter &) = delete;

    /** Queue one read for encoding. */
    void add(Read read);

    /** Queue a whole read set (copies the reads). */
    void add(const ReadSet &rs);

    /** Queue a whole read set without copying (moves the reads in) —
     *  keeps peak memory at one copy of the input, matching the old
     *  sageCompress(rs, ...) footprint. */
    void add(ReadSet &&rs);

    /** Reads queued so far. */
    uint64_t pendingReads() const { return pending_.reads.size(); }

    /**
     * Encode everything queued against @p consensus and stream the
     * container to the sink (flushed). One-shot: the writer is spent
     * afterwards.
     */
    SageWriteStats finish(std::string_view consensus,
                          ThreadPool *pool = nullptr);

  private:
    std::unique_ptr<FileSink> file_;  ///< Owned for the path ctor.
    ByteSink *sink_;
    SageConfig config_;
    ReadSet pending_;
    bool finished_ = false;
};

/** Read-session options. */
struct SageReaderOptions
{
    /** Skip host-side header/quality streams (accelerator prep path). */
    bool dnaOnly = false;
    /** Stream the whole archive through CRC32 before decoding. Off by
     *  default: it reads every byte, defeating chunk-range laziness.
     *  (The legacy sageDecompress wrapper always verifies.) */
    bool verifyChecksum = false;
    /**
     * Prefetch-next-chunk mode: a background task fetches chunk i+1's
     * byte slices through the source while chunk i decodes,
     * overlapping real FileSource/StripedSource I/O with decode on
     * the sequential paths (next(), decodeRange()/decodeAll() without
     * a decode pool). Byte-identical output; pointless over a
     * MemorySource (chunk fetches are zero-copy views there anyway).
     */
    bool prefetch = false;
    /**
     * Pool to run prefetch tasks on (must outlive the reader; one
     * thread is plenty — the task blocks on I/O). When null and
     * prefetch is set, the reader owns a one-thread pool. Sharing a
     * pool across many short-lived readers amortizes thread startup.
     */
    ThreadPool *prefetchPool = nullptr;
};

/**
 * Read session over a SAGe archive: header + chunk table up front,
 * per-chunk byte slices on demand.
 */
class SageReader
{
  public:
    /** Read through @p source (must outlive the reader). */
    explicit SageReader(const ByteSource &source,
                        SageReaderOptions options = {});

    /** Read from a file (owned FileSource; fatal naming the path). */
    explicit SageReader(const std::string &path,
                        SageReaderOptions options = {});

    ~SageReader();

    SageReader(const SageReader &) = delete;
    SageReader &operator=(const SageReader &) = delete;

    /** Structural info (sizes, params). */
    const ArchiveInfo &info() const { return decoder_->info(); }

    /** Number of independently decodable chunks (1 for v1 archives). */
    size_t chunkCount() const { return decoder_->chunkCount(); }

    /** Total reads in the archive. */
    uint64_t readCount() const { return info().params.numReads; }

    /** Reads stored in chunk @p chunk / its first stored-order index. */
    uint64_t
    chunkReadCount(size_t chunk) const
    {
        return decoder_->chunkReadCount(chunk);
    }
    uint64_t
    chunkFirstRead(size_t chunk) const
    {
        return decoder_->chunkFirstRead(chunk);
    }

    /**
     * Random access: decode chunk @p chunk alone, fetching only its
     * byte slices. Repeatable — reading the same chunk twice yields
     * identical reads (headers/quality included).
     */
    std::vector<Read> readChunk(size_t chunk);

    /**
     * Decode chunks [@p first_chunk, @p first_chunk + @p chunk_count)
     * in stored order, optionally chunk-parallel across @p pool. The
     * result equals the matching slice of decodeAll() on an archive
     * without a preserved-order permutation (the permutation is global,
     * so ranges always come back in stored order).
     */
    ReadSet decodeRange(size_t first_chunk, size_t chunk_count,
                        ThreadPool *pool = nullptr);

    /** True while sequential reads remain. */
    bool hasNext() const { return decoder_->hasNext(); }

    /** Decode the next read in stored order. */
    Read next() { return decoder_->next(); }

    /** Decode everything (restores preserved order; one-shot). */
    ReadSet
    decodeAll(ThreadPool *pool = nullptr)
    {
        return decoder_->decodeAll(pool);
    }

    /** Decode everything into packed analysis format (one-shot). */
    std::vector<std::vector<uint8_t>>
    decodeAllPacked(OutputFormat fmt, ThreadPool *pool = nullptr)
    {
        return decoder_->decodeAllPacked(fmt, pool);
    }

    /** Per-chunk compressed DNA bytes (chunk fetch cost). */
    std::vector<uint64_t>
    chunkCompressedBytes() const
    {
        return decoder_->chunkCompressedBytes();
    }

    /**
     * Stream the whole archive through the CRC32 trailer check and
     * report the outcome as a Status instead of dying: Corrupt on a
     * checksum mismatch, Truncated when the container cannot hold a
     * trailer, IoError when the bytes cannot be read. Reads every
     * byte; independent of decode state and repeatable.
     */
    Status verify() const;

  private:
    void enablePrefetch(const SageReaderOptions &options);

    std::unique_ptr<FileSource> file_;  ///< Owned for the path ctor.
    const ByteSource *source_ = nullptr;
    /** Owned fetch pool for SageReaderOptions::prefetch (unused when
     *  the options supplied one). Declared before decoder_: the
     *  decoder's destructor drains any in-flight fetch before the
     *  pool goes away. */
    std::unique_ptr<ThreadPool> prefetchPool_;
    std::unique_ptr<SageDecoder> decoder_;
};

} // namespace sage

#endif // SAGE_IO_SESSION_HH
