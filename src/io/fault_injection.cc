#include "io/fault_injection.hh"

#include <chrono>
#include <thread>

namespace sage {

namespace {

/** splitmix64: cheap, well-mixed hash of (seed, op index). */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a hash value. */
double
unitInterval(uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

FaultInjectionSource::FaultInjectionSource(const ByteSource &inner,
                                           FaultConfig config)
    : inner_(inner), config_(config)
{}

void
FaultInjectionSource::readAt(uint64_t offset, void *dst,
                             size_t size) const
{
    inner_.readAt(offset, dst, size);
}

void
FaultInjectionSource::readBatch(const Extent *extents, size_t count) const
{
    inner_.readBatch(extents, count);
}

const uint8_t *
FaultInjectionSource::view(uint64_t offset, size_t size) const
{
    // A view would bypass injection entirely; force callers through
    // the copying paths so the schedule sees every recoverable read.
    (void)offset;
    (void)size;
    return nullptr;
}

std::string
FaultInjectionSource::describe() const
{
    return "<fault-injected " + inner_.describe() + ">";
}

FaultCounters
FaultInjectionSource::counters() const
{
    FaultCounters out;
    out.operations = nextOp_.load(std::memory_order_relaxed);
    out.ioErrors = ioErrors_.load(std::memory_order_relaxed);
    out.shortReads = shortReads_.load(std::memory_order_relaxed);
    out.bitFlips = bitFlips_.load(std::memory_order_relaxed);
    return out;
}

FaultInjectionSource::Action
FaultInjectionSource::decide(uint64_t op) const
{
    if (config_.failEveryN > 0 && (op + 1) % config_.failEveryN == 0)
        return Action::IoError;
    // Derive independent uniform draws for each fault kind from
    // disjoint hash lanes so the rates compose without correlation.
    const uint64_t base = mix64(config_.seed ^ mix64(op));
    if (config_.ioErrorRate > 0.0 &&
        unitInterval(mix64(base ^ 0x10)) < config_.ioErrorRate) {
        return Action::IoError;
    }
    if (config_.shortReadRate > 0.0 &&
        unitInterval(mix64(base ^ 0x20)) < config_.shortReadRate) {
        return Action::ShortRead;
    }
    if (config_.bitFlipRate > 0.0 &&
        unitInterval(mix64(base ^ 0x30)) < config_.bitFlipRate) {
        return Action::BitFlip;
    }
    return Action::None;
}

Status
FaultInjectionSource::tryReadAt(uint64_t offset, void *dst,
                                size_t size) const
{
    if (size == 0 || !armed_.load(std::memory_order_relaxed))
        return inner_.tryReadAt(offset, dst, size);

    const uint64_t op = nextOp_.fetch_add(1, std::memory_order_relaxed);
    if (config_.latencyMicros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.latencyMicros));
    }

    switch (decide(op)) {
      case Action::IoError:
        ioErrors_.fetch_add(1, std::memory_order_relaxed);
        return Status::ioError("injected I/O error (op ", op, ") on ",
                               inner_.describe(), " at offset ", offset);
      case Action::ShortRead: {
        // Deliver a partial prefix, then report truncation — the shape
        // a shrinking file or failing device presents.
        const size_t partial = size / 2;
        if (partial > 0) {
            Status status = inner_.tryReadAt(offset, dst, partial);
            if (!status.ok())
                return status;
        }
        shortReads_.fetch_add(1, std::memory_order_relaxed);
        return Status::truncated("injected short read (op ", op, ") on ",
                                 inner_.describe(), ": wanted ", size,
                                 " bytes at offset ", offset, ", got ",
                                 partial);
      }
      case Action::BitFlip: {
        Status status = inner_.tryReadAt(offset, dst, size);
        if (!status.ok())
            return status;
        const uint64_t h = mix64(config_.seed ^ mix64(op) ^ 0x40);
        const size_t byte = static_cast<size_t>(h % size);
        static_cast<uint8_t *>(dst)[byte] ^=
            static_cast<uint8_t>(1u << ((h >> 32) & 7));
        bitFlips_.fetch_add(1, std::memory_order_relaxed);
        return Status();
      }
      case Action::None:
        break;
    }
    return inner_.tryReadAt(offset, dst, size);
}

} // namespace sage
