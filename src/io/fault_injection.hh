/**
 * @file
 * Deterministic fault injection for the recoverable I/O path.
 *
 * FaultInjectionSource wraps any ByteSource and perturbs its
 * *recoverable* reads (tryReadAt / tryReadBatch) on a seeded,
 * reproducible schedule: hard I/O errors, short reads, silent
 * bit-flips, and added latency. The fatal entry points (readAt,
 * readBatch) pass through uninjected — they are the "I cannot
 * continue without these bytes" contract (archive open, CLI decode),
 * and injecting there would just abort the process under test.
 *
 * The decision for operation k depends only on (seed, k), so a given
 * schedule always injects the same multiset of faults regardless of
 * thread interleaving; per-kind counters let harnesses reconcile
 * injected faults against ServiceStats.
 */

#ifndef SAGE_IO_FAULT_INJECTION_HH
#define SAGE_IO_FAULT_INJECTION_HH

#include <atomic>

#include "io/byte_stream.hh"

namespace sage {

/** Fault schedule knobs; all rates in [0, 1]. */
struct FaultConfig
{
    uint64_t seed = 1;          ///< Schedule seed (same seed = same faults).
    uint32_t failEveryN = 0;    ///< Hard-fail every Nth try-read (0 = off).
    double ioErrorRate = 0.0;   ///< P(hard IoError) per try-read.
    double shortReadRate = 0.0; ///< P(truncated read) per try-read.
    double bitFlipRate = 0.0;   ///< P(one silently flipped bit) per try-read.
    uint32_t latencyMicros = 0; ///< Added latency per try-read (0 = off).
};

/** Counts of injected faults, by kind. */
struct FaultCounters
{
    uint64_t operations = 0; ///< try-reads that reached the injector.
    uint64_t ioErrors = 0;   ///< Hard failures injected (IoError).
    uint64_t shortReads = 0; ///< Truncated reads injected.
    uint64_t bitFlips = 0;   ///< Silent single-bit corruptions injected.
};

/** ByteSource decorator injecting faults into the recoverable path. */
class FaultInjectionSource final : public ByteSource
{
  public:
    /** Wrap @p inner (must outlive us) with schedule @p config. */
    FaultInjectionSource(const ByteSource &inner, FaultConfig config);

    uint64_t size() const override { return inner_.size(); }

    /** Fatal path: passes through uninjected. */
    void readAt(uint64_t offset, void *dst, size_t size) const override;
    void readBatch(const Extent *extents, size_t count) const override;

    /** Recoverable path: subject to the fault schedule. Batches are
     *  injected per extent (base-class loop over tryReadAt). */
    Status tryReadAt(uint64_t offset, void *dst,
                     size_t size) const override;

    const uint8_t *view(uint64_t offset, size_t size) const override;
    std::string describe() const override;

    /** Snapshot of injected-fault counts so far. */
    FaultCounters counters() const;

    /** Master switch. Disarm to pass try-reads through untouched —
     *  e.g. while opening the archive, so setup I/O cannot trip the
     *  schedule — then re-arm for the workload under test. Disarmed
     *  operations are neither perturbed nor counted. */
    void setArmed(bool armed)
    {
        armed_.store(armed, std::memory_order_relaxed);
    }

  private:
    /** What the schedule says operation @p op does. */
    enum class Action : uint8_t { None, IoError, ShortRead, BitFlip };
    Action decide(uint64_t op) const;

    const ByteSource &inner_;
    FaultConfig config_;
    std::atomic<bool> armed_{true};
    mutable std::atomic<uint64_t> nextOp_{0};
    mutable std::atomic<uint64_t> ioErrors_{0};
    mutable std::atomic<uint64_t> shortReads_{0};
    mutable std::atomic<uint64_t> bitFlips_{0};
};

} // namespace sage

#endif // SAGE_IO_FAULT_INJECTION_HH
