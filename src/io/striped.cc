#include "io/striped.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sage {

namespace {

/** Bytes that land on backing store @p d in a round-robin layout of
 *  @p total bytes over @p n stores with @p stripe-sized stripes. */
uint64_t
expectedShardBytes(uint64_t total, size_t n, uint64_t stripe, size_t d)
{
    const uint64_t full_stripes = total / stripe;
    const uint64_t tail = total % stripe;
    // Full stripes assigned to d: one per whole round plus one more if
    // d comes before the cut-off in the last partial round.
    uint64_t count = full_stripes / n;
    if (d < full_stripes % n)
        count++;
    uint64_t bytes = count * stripe;
    if (tail > 0 && full_stripes % n == d)
        bytes += tail;
    return bytes;
}

} // namespace

StripedSource::StripedSource(std::vector<const ByteSource *> stripes,
                             uint64_t stripe_bytes)
    : stripes_(std::move(stripes)), stripeBytes_(stripe_bytes)
{
    sage_assert(!stripes_.empty(), "StripedSource needs >= 1 backing");
    sage_assert(stripeBytes_ > 0, "stripe size must be positive");
    for (const ByteSource *src : stripes_) {
        sage_assert(src != nullptr, "null backing source");
        size_ += src->size();
    }
    // Reject layouts the round-robin mapping cannot have produced
    // (e.g. shards from a different stripe size or device count).
    for (size_t d = 0; d < stripes_.size(); d++) {
        const uint64_t expect = expectedShardBytes(
            size_, stripes_.size(), stripeBytes_, d);
        if (stripes_[d]->size() != expect) {
            sage_fatal("stripe shard ", d, " (", stripes_[d]->describe(),
                       ") holds ", stripes_[d]->size(), " bytes; a ",
                       stripes_.size(), "-way layout of ", size_,
                       " bytes with ", stripeBytes_,
                       "-byte stripes requires ", expect);
        }
    }
}

StripedSource::Location
StripedSource::locate(uint64_t offset) const
{
    const uint64_t s = offset / stripeBytes_;
    const uint64_t within = offset % stripeBytes_;
    Location loc;
    loc.stripe = static_cast<size_t>(s % stripes_.size());
    loc.localOffset = (s / stripes_.size()) * stripeBytes_ + within;
    loc.bytesLeftInStripe = stripeBytes_ - within;
    return loc;
}

Status
StripedSource::tryReadAt(uint64_t offset, void *dst, size_t size) const
{
    if (size == 0)
        return Status();
    if (offset > size_ || size > size_ - offset) {
        return Status::outOfRange("read past end of ", describe(), ": [",
                                  offset, ", ", offset + size, ") in ",
                                  size_, " bytes");
    }
    uint8_t *out = static_cast<uint8_t *>(dst);
    while (size > 0) {
        const Location loc = locate(offset);
        const size_t span = static_cast<size_t>(
            std::min<uint64_t>(size, loc.bytesLeftInStripe));
        Status status = stripes_[loc.stripe]->tryReadAt(loc.localOffset,
                                                        out, span);
        if (!status.ok())
            return status;
        out += span;
        offset += span;
        size -= span;
    }
    return Status();
}

void
StripedSource::readAt(uint64_t offset, void *dst, size_t size) const
{
    Status status = tryReadAt(offset, dst, size);
    if (!status.ok())
        sage_fatal(status.message());
}

const uint8_t *
StripedSource::view(uint64_t offset, size_t size) const
{
    if (size == 0 || offset > size_ || size > size_ - offset)
        return nullptr;
    const Location loc = locate(offset);
    if (size > loc.bytesLeftInStripe)
        return nullptr; // Span crosses a stripe boundary.
    return stripes_[loc.stripe]->view(loc.localOffset, size);
}

std::string
StripedSource::describe() const
{
    return "<" + std::to_string(stripes_.size()) + "-way stripe of " +
        stripes_.front()->describe() + ">";
}

StripedSink::StripedSink(std::vector<ByteSink *> stripes,
                         uint64_t stripe_bytes)
    : stripes_(std::move(stripes)), stripeBytes_(stripe_bytes)
{
    sage_assert(!stripes_.empty(), "StripedSink needs >= 1 backing");
    sage_assert(stripeBytes_ > 0, "stripe size must be positive");
    for (ByteSink *sink : stripes_)
        sage_assert(sink != nullptr, "null backing sink");
}

void
StripedSink::write(const void *data, size_t size)
{
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    while (size > 0) {
        const uint64_t s = written_ / stripeBytes_;
        const uint64_t within = written_ % stripeBytes_;
        const size_t span = static_cast<size_t>(
            std::min<uint64_t>(size, stripeBytes_ - within));
        stripes_[static_cast<size_t>(s % stripes_.size())]->write(bytes,
                                                                  span);
        bytes += span;
        written_ += span;
        size -= span;
    }
}

void
StripedSink::flush()
{
    for (ByteSink *sink : stripes_)
        sink->flush();
}

std::vector<std::vector<uint8_t>>
stripeShards(const std::vector<uint8_t> &data, size_t stripes,
             uint64_t stripe_bytes)
{
    std::vector<MemorySink> sinks(stripes);
    std::vector<ByteSink *> refs;
    refs.reserve(stripes);
    for (MemorySink &sink : sinks)
        refs.push_back(&sink);
    StripedSink striped(std::move(refs), stripe_bytes);
    striped.writeBytes(data);
    std::vector<std::vector<uint8_t>> out;
    out.reserve(stripes);
    for (MemorySink &sink : sinks)
        out.push_back(sink.take());
    return out;
}

} // namespace sage
