/**
 * @file
 * ByteSource / ByteSink: the I/O layer the streaming session API
 * (io/session.hh) is built on.
 *
 * A ByteSource is a random-access, read-only byte space; a ByteSink is
 * an append-only byte stream. Decoupling the container walkers
 * (io/container.hh, core/decoder.hh) from any concrete storage lets
 * the same codec run over a resident buffer (MemorySource), a file on
 * disk without loading it (io/file_stream.hh), or a chunk-striped
 * device array (io/striped.hh) — the software analogue of the paper's
 * SAGe_Read/SAGe_Write storage interface (§5.4) and the Fig. 15
 * multi-SSD layout.
 */

#ifndef SAGE_IO_BYTE_STREAM_HH
#define SAGE_IO_BYTE_STREAM_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hh"

namespace sage {

/**
 * Random-access read-only byte space.
 *
 * readAt() must be safe to call concurrently from multiple threads:
 * the chunk-parallel decode path issues per-chunk fetches from worker
 * threads against one shared source.
 */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    /** Total bytes in the source. */
    virtual uint64_t size() const = 0;

    /**
     * Copy @p size bytes starting at @p offset into @p dst.
     * Fatal (with describe()) on out-of-range reads or I/O errors —
     * a short read never returns partial data silently.
     */
    virtual void readAt(uint64_t offset, void *dst, size_t size) const = 0;

    /**
     * Zero-copy access: a pointer to @p size contiguous bytes at
     * @p offset valid for the source's lifetime, or nullptr when the
     * source cannot provide one (files, cross-stripe spans). Callers
     * must fall back to readAt().
     */
    virtual const uint8_t *
    view(uint64_t offset, size_t size) const
    {
        (void)offset;
        (void)size;
        return nullptr;
    }

    /** One extent of a batched read: @p size bytes at @p offset into
     *  @p dst. */
    struct Extent
    {
        uint64_t offset = 0;
        void *dst = nullptr;
        size_t size = 0;
    };

    /**
     * Read several extents in one call. Semantically identical to
     * calling readAt() per extent (same fatal-on-error contract, safe
     * for concurrent callers); sources with a cheaper scatter path
     * override it — FileSource coalesces near-adjacent extents into
     * preadv(2) calls, so fetching a chunk's 13 stream slices costs a
     * couple of syscalls instead of 13. Extents may arrive in any
     * order and may be empty.
     */
    virtual void readBatch(const Extent *extents, size_t count) const;

    /**
     * Non-fatal flavor of readAt(): returns Status instead of killing
     * the process, so serving paths can degrade per-request. The
     * default bounds-checks (OutOfRange past the end) and forwards to
     * readAt(); sources with real failure modes (FileSource,
     * StripedSource) override with their own error mapping. Same
     * thread-safety contract as readAt().
     */
    virtual Status tryReadAt(uint64_t offset, void *dst,
                             size_t size) const;

    /**
     * Non-fatal flavor of readBatch(): first failing extent's Status
     * is returned and the remaining extents are left unread (their
     * buffers are unspecified). Overridden alongside readBatch() by
     * sources with a scatter path.
     */
    virtual Status tryReadBatch(const Extent *extents,
                                size_t count) const;

    /** Human-readable identity for error messages (path or kind). */
    virtual std::string describe() const = 0;

    /** Convenience: read a span into a fresh vector. */
    std::vector<uint8_t> read(uint64_t offset, size_t size) const;

    /** Convenience: non-fatal read of a span into @p out (resized). */
    Status tryRead(uint64_t offset, size_t size,
                   std::vector<uint8_t> &out) const;

    /** Convenience: read the entire source. */
    std::vector<uint8_t> readAll() const;
};

/** Append-only byte stream. */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;

    /** Append @p size bytes. Fatal (with identity) on I/O errors. */
    virtual void write(const void *data, size_t size) = 0;

    /** Bytes written so far. */
    virtual uint64_t tell() const = 0;

    /** Push buffered bytes to the backing store (no-op by default). */
    virtual void flush() {}

    /** Convenience: append a byte vector. */
    void
    writeBytes(const std::vector<uint8_t> &bytes)
    {
        write(bytes.data(), bytes.size());
    }
};

/** ByteSource over a resident buffer (viewed or owned). */
class MemorySource final : public ByteSource
{
  public:
    /** View @p size bytes at @p data (must outlive the source). */
    MemorySource(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    /** View a byte vector (must outlive the source). */
    explicit MemorySource(const std::vector<uint8_t> &bytes)
        : MemorySource(bytes.data(), bytes.size())
    {}

    /** Take ownership of a byte vector. */
    explicit MemorySource(std::vector<uint8_t> &&bytes)
        : owned_(std::move(bytes)), data_(owned_.data()),
          size_(owned_.size())
    {}

    uint64_t size() const override { return size_; }
    void readAt(uint64_t offset, void *dst, size_t size) const override;
    const uint8_t *view(uint64_t offset, size_t size) const override;
    std::string describe() const override { return "<memory>"; }

  private:
    std::vector<uint8_t> owned_;
    const uint8_t *data_;
    size_t size_;
};

/** ByteSink appending to a resident vector. */
class MemorySink final : public ByteSink
{
  public:
    void write(const void *data, size_t size) override;
    uint64_t tell() const override { return bytes_.size(); }

    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

} // namespace sage

#endif // SAGE_IO_BYTE_STREAM_HH
