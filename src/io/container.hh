/**
 * @file
 * Container directory access over a ByteSource.
 *
 * A SAGe archive is a StreamBundle (compress/streams.hh): a varint
 * count of named streams, each name/payload varint-length-prefixed,
 * with a trailing CRC32. StreamDirectory parses only the framing —
 * names and (offset, size) extents — seeking over the payloads, so an
 * archive's table of contents costs a few KB of reads no matter how
 * large the file is. The decoder then fetches exactly the byte slices
 * it needs (per-chunk, via the v2 chunk table) through the same
 * source.
 */

#ifndef SAGE_IO_CONTAINER_HH
#define SAGE_IO_CONTAINER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "io/byte_stream.hh"

namespace sage {

/** Byte span of one named stream inside the archive. */
struct StreamExtent
{
    uint64_t offset = 0;  ///< Absolute position of the payload.
    uint64_t size = 0;    ///< Payload bytes.
};

/** Parsed table of contents of a serialized StreamBundle. */
class StreamDirectory
{
  public:
    StreamDirectory() = default;

    /**
     * Parse the framing from @p source without touching payloads.
     * Fatal (naming the source) on truncated or malformed framing.
     */
    static StreamDirectory parse(const ByteSource &source);

    /**
     * Non-fatal parse of untrusted framing: every varint, name span,
     * and payload extent is bounds-checked against the body; a bad
     * container comes back as Truncated/Corrupt/OutOfRange instead of
     * killing the process. I/O failures surface as IoError.
     */
    static StatusOr<StreamDirectory> tryParse(const ByteSource &source);

    bool has(const std::string &name) const;

    /** Extent of stream @p name; fatal when missing. */
    const StreamExtent &extent(const std::string &name) const;

    /** Load one stream's payload through @p source. */
    std::vector<uint8_t> load(const ByteSource &source,
                              const std::string &name) const;

    /** Non-fatal load: Corrupt when the stream is missing, else the
     *  source's tryRead status. */
    Status tryLoad(const ByteSource &source, const std::string &name,
                   std::vector<uint8_t> &out) const;

    /** All extents, in name order (the bundle's serialization order). */
    const std::map<std::string, StreamExtent> &
    extents() const
    {
        return extents_;
    }

    /** Per-stream sizes (ArchiveInfo / Fig. 17 reporting). */
    std::map<std::string, uint64_t> sizes() const;

  private:
    std::map<std::string, StreamExtent> extents_;
};

/**
 * Stream the archive body through CRC32 in fixed blocks and compare
 * with the trailer. Reads the whole source (sequentially, without
 * holding it resident); callers on a streaming path usually skip this
 * and rely on per-read validation instead.
 */
bool verifyArchiveChecksum(const ByteSource &source);

/**
 * Status flavor of verifyArchiveChecksum: Ok when the trailer
 * matches, Corrupt (with both CRC values) when it does not,
 * Truncated when the source cannot even hold a trailer, and the
 * underlying read status on I/O failure.
 */
Status verifyArchiveChecksumStatus(const ByteSource &source);

} // namespace sage

#endif // SAGE_IO_CONTAINER_HH
