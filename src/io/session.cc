#include "io/session.hh"

#include <iterator>

#include "compress/streams.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace sage {

SageWriter::SageWriter(ByteSink &sink, SageConfig config)
    : sink_(&sink), config_(config)
{
}

SageWriter::SageWriter(const std::string &path, SageConfig config)
    : file_(std::make_unique<FileSink>(path)), sink_(file_.get()),
      config_(config)
{
}

SageWriter::~SageWriter() = default;

void
SageWriter::add(Read read)
{
    sage_assert(!finished_, "add() after finish()");
    pending_.reads.push_back(std::move(read));
}

void
SageWriter::add(const ReadSet &rs)
{
    sage_assert(!finished_, "add() after finish()");
    pending_.reads.insert(pending_.reads.end(), rs.reads.begin(),
                          rs.reads.end());
    if (pending_.name.empty())
        pending_.name = rs.name;
}

void
SageWriter::add(ReadSet &&rs)
{
    sage_assert(!finished_, "add() after finish()");
    if (pending_.reads.empty()) {
        pending_ = std::move(rs);
        return;
    }
    pending_.reads.insert(
        pending_.reads.end(),
        std::make_move_iterator(rs.reads.begin()),
        std::make_move_iterator(rs.reads.end()));
}

SageWriteStats
SageWriter::finish(std::string_view consensus, ThreadPool *pool)
{
    sage_assert(!finished_, "finish() called twice");
    finished_ = true;

    StreamBundle bundle;
    const SageArchive accounting =
        sageEncodeToBundle(pending_, consensus, config_, pool, bundle);
    pending_ = ReadSet{};

    SageWriteStats stats;
    stats.archiveBytes = bundle.writeTo(*sink_);
    sink_->flush();
    stats.streamSizes = accounting.streamSizes;
    stats.mapSeconds = accounting.mapSeconds;
    stats.encodeSeconds = accounting.encodeSeconds;
    stats.tuneSeconds = accounting.tuneSeconds;
    stats.dnaBytes = accounting.dnaBytes;
    stats.qualityBytes = accounting.qualityBytes;
    stats.metaBytes = accounting.metaBytes;
    return stats;
}

SageReader::SageReader(const ByteSource &source,
                       SageReaderOptions options)
    : source_(&source),
      decoder_(std::make_unique<SageDecoder>(source, options.dnaOnly,
                                             options.verifyChecksum))
{
    enablePrefetch(options);
}

SageReader::SageReader(const std::string &path, SageReaderOptions options)
    : file_(std::make_unique<FileSource>(path)), source_(file_.get()),
      decoder_(std::make_unique<SageDecoder>(*file_, options.dnaOnly,
                                             options.verifyChecksum))
{
    enablePrefetch(options);
}

Status
SageReader::verify() const
{
    return verifyArchiveChecksumStatus(*source_);
}

void
SageReader::enablePrefetch(const SageReaderOptions &options)
{
    if (!options.prefetch)
        return;
    ThreadPool *pool = options.prefetchPool;
    if (!pool) {
        // One thread suffices: the fetch task blocks on I/O, not CPU.
        prefetchPool_ = std::make_unique<ThreadPool>(1);
        pool = prefetchPool_.get();
    }
    decoder_->setPrefetchPool(pool);
}

SageReader::~SageReader() = default;

std::vector<Read>
SageReader::readChunk(size_t chunk)
{
    return decoder_->decodeChunks(chunk, 1).reads;
}

ReadSet
SageReader::decodeRange(size_t first_chunk, size_t chunk_count,
                        ThreadPool *pool)
{
    return decoder_->decodeChunks(first_chunk, chunk_count, pool);
}

} // namespace sage
