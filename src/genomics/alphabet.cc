#include "genomics/alphabet.hh"

#include "util/bitio.hh"

namespace sage {

std::vector<uint8_t>
packSequence(std::string_view seq, OutputFormat fmt)
{
    if (fmt == OutputFormat::Ascii)
        return std::vector<uint8_t>(seq.begin(), seq.end());

    const unsigned width = bitsPerBase(fmt);
    BitWriter bw;
    for (char c : seq) {
        const uint8_t code = baseToCode(c);
        if (fmt == OutputFormat::TwoBit) {
            sage_assert(code < 4,
                        "2-bit packing requires ACGT-only sequence");
        }
        bw.writeBits(code, width);
    }
    return bw.take();
}

std::string
unpackSequence(const uint8_t *packed, size_t packed_size,
               size_t num_bases, OutputFormat fmt)
{
    if (fmt == OutputFormat::Ascii)
        return std::string(packed, packed + packed_size);

    const unsigned width = bitsPerBase(fmt);
    BitReader br(packed, packed_size);
    std::string out;
    out.reserve(num_bases);
    for (size_t i = 0; i < num_bases; i++)
        out.push_back(codeToBase(static_cast<uint8_t>(br.readBits(width))));
    return out;
}

std::string
unpackSequence(const std::vector<uint8_t> &packed, size_t num_bases,
               OutputFormat fmt)
{
    return unpackSequence(packed.data(), packed.size(), num_bases, fmt);
}

} // namespace sage
