#include "genomics/alphabet.hh"

#include "genomics/kernels.hh"

namespace sage {

// Every bulk transform here routes through the runtime-dispatched
// kernel layer (genomics/kernels.hh): table-driven scalar baseline,
// SSSE3/AVX2 when the host has them, SAGE_FORCE_SCALAR=1 to override.
// Output is byte-identical to the historical per-bit implementations.

std::string
reverseComplement(std::string_view seq)
{
    std::string out(seq.size(), '\0');
    kernels::reverseComplement(seq.data(), seq.size(), out.data());
    return out;
}

void
reverseComplementInPlace(std::string &seq)
{
    // The SIMD kernels mirror while storing, so in-place needs a
    // scratch; keep it thread-local to spare the hot decode loop an
    // allocation per reverse-strand read.
    thread_local std::string scratch;
    scratch.assign(seq.size(), '\0');
    kernels::reverseComplement(seq.data(), seq.size(), scratch.data());
    seq.swap(scratch);
}

bool
isAcgtOnly(std::string_view seq)
{
    return kernels::isAcgtOnly(seq.data(), seq.size());
}

std::vector<uint8_t>
packSequence(std::string_view seq, OutputFormat fmt)
{
    if (fmt == OutputFormat::Ascii)
        return std::vector<uint8_t>(seq.begin(), seq.end());

    if (fmt == OutputFormat::TwoBit) {
        std::vector<uint8_t> out((seq.size() + 3) / 4);
        kernels::pack2bit(seq.data(), seq.size(), out.data());
        return out;
    }
    std::vector<uint8_t> out((3 * seq.size() + 7) / 8);
    kernels::pack3bit(seq.data(), seq.size(), out.data());
    return out;
}

std::string
unpackSequence(const uint8_t *packed, size_t packed_size,
               size_t num_bases, OutputFormat fmt)
{
    if (fmt == OutputFormat::Ascii)
        return std::string(packed, packed + packed_size);

    std::string out(num_bases, '\0');
    if (fmt == OutputFormat::TwoBit)
        kernels::unpack2bit(packed, packed_size, num_bases, out.data());
    else
        kernels::unpack3bit(packed, packed_size, num_bases, out.data());
    return out;
}

std::string
unpackSequence(const std::vector<uint8_t> &packed, size_t num_bases,
               OutputFormat fmt)
{
    return unpackSequence(packed.data(), packed.size(), num_bases, fmt);
}

} // namespace sage
