#include "genomics/fastq.hh"

#include <fstream>

#include "genomics/kernels.hh"
#include "io/file_stream.hh"
#include "util/logging.hh"

namespace sage {

std::string
toFastq(const ReadSet &rs)
{
    std::string out;
    out.reserve(rs.fastqBytes());
    for (const auto &read : rs.reads) {
        out.push_back('@');
        out.append(read.header);
        out.push_back('\n');
        out.append(read.bases);
        out.push_back('\n');
        out.append("+\n");
        out.append(read.quals);
        out.push_back('\n');
    }
    return out;
}

ReadSet
fromFastq(std::string_view text, const std::string &name)
{
    ReadSet rs;
    rs.name = name;

    size_t pos = 0;
    auto next_line = [&](std::string_view &line) -> bool {
        if (pos >= text.size())
            return false;
        size_t end = text.find('\n', pos);
        if (end == std::string_view::npos)
            end = text.size();
        line = text.substr(pos, end - pos);
        // CRLF input: the '\r' is line framing, not data — without
        // this it would land in the stored bases/quals (and trip the
        // base-character guard below).
        if (!line.empty() && line.back() == '\r')
            line.remove_suffix(1);
        pos = end + 1;
        return true;
    };

    std::string_view header, bases, plus, quals;
    while (next_line(header)) {
        if (header.empty())
            continue;
        if (header[0] != '@')
            sage_fatal("FASTQ record does not start with '@': ", header);
        if (!next_line(bases) || !next_line(plus) || !next_line(quals))
            sage_fatal("truncated FASTQ record: ", header);
        if (plus.empty() || plus[0] != '+')
            sage_fatal("FASTQ separator line missing '+': ", plus);
        if (!quals.empty() && quals.size() != bases.size()) {
            sage_fatal("FASTQ quality length ", quals.size(),
                       " != base length ", bases.size());
        }
        // Bulk-validate the sequence line (table-driven scan): binary
        // garbage and control characters die here with the record
        // named, instead of silently becoming N bases later.
        const size_t bad =
            kernels::findInvalidBase(bases.data(), bases.size());
        if (bad < bases.size()) {
            sage_fatal("FASTQ record ", header, ": invalid base ",
                       "character (byte value ",
                       static_cast<unsigned>(
                           static_cast<uint8_t>(bases[bad])),
                       ") at position ", bad);
        }
        Read read;
        read.header = std::string(header.substr(1));
        read.bases = std::string(bases);
        read.quals = std::string(quals);
        rs.reads.push_back(std::move(read));
    }
    return rs;
}

void
writeFastqFile(const ReadSet &rs, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        sage_fatal("cannot open for writing: ", path);
    const std::string text = toFastq(rs);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
}

ReadSet
readFastqFile(const std::string &path)
{
    // FileSource reports every failure mode — missing file, I/O error,
    // short read — fatally with the offending path; the old ifstream
    // slurp silently truncated on read errors.
    const FileSource source(path);
    const std::vector<uint8_t> bytes = source.readAll();
    if (bytes.empty())
        return fromFastq("", path);
    return fromFastq(
        std::string_view(reinterpret_cast<const char *>(bytes.data()),
                         bytes.size()),
        path);
}

} // namespace sage
