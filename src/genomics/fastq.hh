/**
 * @file
 * FASTQ serialization: the text format read sets are delivered in
 * (paper §2.1) and the format the data-preparation stage must produce for
 * analysis tools that want ASCII input.
 */

#ifndef SAGE_GENOMICS_FASTQ_HH
#define SAGE_GENOMICS_FASTQ_HH

#include <string>
#include <string_view>

#include "genomics/read.hh"

namespace sage {

/** Render a read set as FASTQ text. */
std::string toFastq(const ReadSet &rs);

/**
 * Parse FASTQ text into a ReadSet.
 *
 * Tolerates '+' comment repetition and missing trailing newline; rejects
 * structurally broken records (mismatched quality length) via sage_fatal.
 */
ReadSet fromFastq(std::string_view text, const std::string &name = "");

/** Write a read set to a FASTQ file on disk. */
void writeFastqFile(const ReadSet &rs, const std::string &path);

/** Read a FASTQ file from disk. */
ReadSet readFastqFile(const std::string &path);

} // namespace sage

#endif // SAGE_GENOMICS_FASTQ_HH
