/**
 * @file
 * DNA alphabet codecs.
 *
 * Genomic reads use the 4-letter alphabet A/C/G/T plus N for unknown bases
 * (paper §2.1). SAGe's hardware formats output as 2-bit (ACGT only), 3-bit
 * (with N) or ASCII on request (paper §5.2.2, step 12); the codecs for all
 * three live here so the software decompressor, the hardware model and the
 * analysis accelerators agree on representations.
 */

#ifndef SAGE_GENOMICS_ALPHABET_HH
#define SAGE_GENOMICS_ALPHABET_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/logging.hh"

namespace sage {

/** Numeric codes for DNA bases. */
enum class Base : uint8_t { A = 0, C = 1, G = 2, T = 3, N = 4 };

/** Number of distinct base codes including N. */
constexpr unsigned kBaseCodes = 5;

/** Map an ASCII base character (upper or lower case) to its code. */
inline uint8_t
baseToCode(char c)
{
    switch (c) {
      case 'A': case 'a': return 0;
      case 'C': case 'c': return 1;
      case 'G': case 'g': return 2;
      case 'T': case 't': return 3;
      default: return 4; // Everything unknown maps to N.
    }
}

/** Map a base code back to its ASCII character. */
inline char
codeToBase(uint8_t code)
{
    static constexpr char kBases[] = {'A', 'C', 'G', 'T', 'N'};
    sage_assert(code < kBaseCodes, "bad base code ", unsigned(code));
    return kBases[code];
}

/** Complement of a base character (N maps to N). */
inline char
complementBase(char c)
{
    switch (c) {
      case 'A': case 'a': return 'T';
      case 'C': case 'c': return 'G';
      case 'G': case 'g': return 'C';
      case 'T': case 't': return 'A';
      default: return 'N';
    }
}

/** Reverse complement of a sequence (SIMD-dispatched, kernels.hh). */
std::string reverseComplement(std::string_view seq);

/** Reverse complement @p seq in place (SIMD-dispatched). */
void reverseComplementInPlace(std::string &seq);

/** True if the sequence contains only A/C/G/T (SIMD-dispatched). */
bool isAcgtOnly(std::string_view seq);

/** Output formats SAGe_Read can request (paper §5.4). */
enum class OutputFormat : uint8_t {
    Ascii,     ///< One byte per base, FASTQ-style.
    TwoBit,    ///< 2 bits per base; only valid for ACGT-only reads.
    ThreeBit,  ///< 3 bits per base; supports N.
};

/** Bits per base for a given output format. */
inline unsigned
bitsPerBase(OutputFormat fmt)
{
    switch (fmt) {
      case OutputFormat::Ascii: return 8;
      case OutputFormat::TwoBit: return 2;
      case OutputFormat::ThreeBit: return 3;
    }
    return 8;
}

/** Pack a sequence at 2 or 3 bits/base (ASCII passes through). */
std::vector<uint8_t> packSequence(std::string_view seq, OutputFormat fmt);

/** Invert packSequence given the base count. */
std::string unpackSequence(const uint8_t *packed, size_t packed_size,
                           size_t num_bases, OutputFormat fmt);

/** Invert packSequence given the base count. */
std::string unpackSequence(const std::vector<uint8_t> &packed,
                           size_t num_bases, OutputFormat fmt);

} // namespace sage

#endif // SAGE_GENOMICS_ALPHABET_HH
