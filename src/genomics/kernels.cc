#include "genomics/kernels.hh"

#include <array>
#include <cstring>

#include "util/logging.hh"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAGE_KERNELS_X86 1
#include <immintrin.h>
#else
#define SAGE_KERNELS_X86 0
#endif

namespace sage {
namespace kernels {

namespace {

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/** Base code -> ASCII; codes 5-7 are invalid and rejected separately. */
constexpr char kCodeChar[8] = {'A', 'C', 'G', 'T', 'N', 'N', 'N', 'N'};

/** ASCII -> base code, baseToCode semantics (unknown -> 4). */
constexpr std::array<uint8_t, 256>
buildCharCode()
{
    std::array<uint8_t, 256> t{};
    for (size_t i = 0; i < t.size(); i++)
        t[i] = 4;
    t['A'] = t['a'] = 0;
    t['C'] = t['c'] = 1;
    t['G'] = t['g'] = 2;
    t['T'] = t['t'] = 3;
    return t;
}
constexpr std::array<uint8_t, 256> kCharCode = buildCharCode();

/** ASCII -> complement, complementBase semantics (unknown -> 'N'). */
constexpr std::array<char, 256>
buildComplement()
{
    std::array<char, 256> t{};
    for (size_t i = 0; i < t.size(); i++)
        t[i] = 'N';
    t['A'] = t['a'] = 'T';
    t['C'] = t['c'] = 'G';
    t['G'] = t['g'] = 'C';
    t['T'] = t['t'] = 'A';
    return t;
}
constexpr std::array<char, 256> kComplement = buildComplement();

/** Packed 2-bit byte -> its four ASCII bases (endian-independent). */
constexpr std::array<std::array<char, 4>, 256>
buildUnpack2()
{
    std::array<std::array<char, 4>, 256> t{};
    for (size_t b = 0; b < t.size(); b++) {
        for (size_t k = 0; k < 4; k++)
            t[b][k] = kCodeChar[(b >> (2 * k)) & 3];
    }
    return t;
}
constexpr std::array<std::array<char, 4>, 256> kUnpack2 = buildUnpack2();

/**
 * 12-bit group -> four ASCII bases for 3-bit unpack: 3 bytes hold
 * exactly eight 3-bit fields, split into two 12-bit halves of four
 * codes each. 16 KB of LUT (plus a 4 KB validity sidecar marking
 * groups containing codes 5-7) stays L1-resident and replaces four
 * shift/mask/branch chains per lookup.
 */
constexpr std::array<std::array<char, 4>, 4096>
buildUnpack3()
{
    std::array<std::array<char, 4>, 4096> t{};
    for (size_t w = 0; w < t.size(); w++) {
        for (size_t k = 0; k < 4; k++)
            t[w][k] = kCodeChar[(w >> (3 * k)) & 7];
    }
    return t;
}
constexpr std::array<std::array<char, 4>, 4096> kUnpack3 =
    buildUnpack3();

constexpr std::array<uint8_t, 4096>
buildUnpack3Bad()
{
    std::array<uint8_t, 4096> t{};
    for (size_t w = 0; w < t.size(); w++) {
        uint8_t bad = 0;
        for (size_t k = 0; k < 4; k++)
            bad |= static_cast<uint8_t>(((w >> (3 * k)) & 7) > 4);
        t[w] = bad;
    }
    return t;
}
constexpr std::array<uint8_t, 4096> kUnpack3Bad = buildUnpack3Bad();

/** Plausible FASTQ sequence characters: letters + gap markers. */
constexpr std::array<bool, 256>
buildSeqChar()
{
    std::array<bool, 256> t{};
    for (char c = 'A'; c <= 'Z'; c++)
        t[static_cast<uint8_t>(c)] = true;
    for (char c = 'a'; c <= 'z'; c++)
        t[static_cast<uint8_t>(c)] = true;
    t[static_cast<uint8_t>('.')] = true;
    t[static_cast<uint8_t>('-')] = true;
    t[static_cast<uint8_t>('*')] = true;
    return t;
}
constexpr std::array<bool, 256> kSeqChar = buildSeqChar();

// ---------------------------------------------------------------------
// Scalar baselines (table/word-driven)
// ---------------------------------------------------------------------

void
pack2bitScalar(const char *bases, size_t count, uint8_t *out)
{
    const uint8_t *s = reinterpret_cast<const uint8_t *>(bases);
    size_t i = 0, o = 0;
    uint8_t seen = 0;
    for (; i + 4 <= count; i += 4, o++) {
        const uint8_t c0 = kCharCode[s[i]];
        const uint8_t c1 = kCharCode[s[i + 1]];
        const uint8_t c2 = kCharCode[s[i + 2]];
        const uint8_t c3 = kCharCode[s[i + 3]];
        seen |= c0 | c1 | c2 | c3;
        out[o] = static_cast<uint8_t>(c0 | (c1 << 2) | (c2 << 4) |
                                      (c3 << 6));
    }
    if (i < count) {
        uint8_t byte = 0;
        for (unsigned shift = 0; i < count; i++, shift += 2) {
            const uint8_t c = kCharCode[s[i]];
            seen |= c;
            byte |= static_cast<uint8_t>((c & 3) << shift);
        }
        out[o] = byte;
    }
    // Code 4 (N/unknown) is the only value with bit 2 set.
    sage_assert((seen & 4) == 0,
                "2-bit packing requires ACGT-only sequence");
}

void
pack3bitScalar(const char *bases, size_t count, uint8_t *out)
{
    const uint8_t *s = reinterpret_cast<const uint8_t *>(bases);
    size_t i = 0, o = 0;
    for (; i + 8 <= count; i += 8, o += 3) {
        uint32_t w = 0;
        for (unsigned k = 0; k < 8; k++)
            w |= static_cast<uint32_t>(kCharCode[s[i + k]]) << (3 * k);
        out[o] = static_cast<uint8_t>(w);
        out[o + 1] = static_cast<uint8_t>(w >> 8);
        out[o + 2] = static_cast<uint8_t>(w >> 16);
    }
    if (i < count) {
        uint32_t acc = 0;
        unsigned bits = 0;
        for (; i < count; i++) {
            acc |= static_cast<uint32_t>(kCharCode[s[i]]) << bits;
            bits += 3;
        }
        for (; bits > 0; bits -= (bits < 8 ? bits : 8)) {
            out[o++] = static_cast<uint8_t>(acc);
            acc >>= 8;
        }
    }
}

void
unpack2bitScalar(const uint8_t *packed, size_t packed_size, size_t count,
                 char *out)
{
    sage_assert(packed_size >= (count + 3) / 4,
                "2-bit stream underrun");
    size_t i = 0;
    for (; i + 4 <= count; i += 4)
        std::memcpy(out + i, kUnpack2[packed[i >> 2]].data(), 4);
    if (i < count) {
        uint8_t byte = packed[i >> 2];
        for (; i < count; i++) {
            out[i] = kCodeChar[byte & 3];
            byte >>= 2;
        }
    }
}

void
unpack3bitScalar(const uint8_t *packed, size_t packed_size, size_t count,
                 char *out)
{
    sage_assert(packed_size >= (3 * count + 7) / 8,
                "3-bit stream underrun");
    size_t i = 0, o = 0;
    unsigned invalid = 0;
    for (; i + 8 <= count; i += 8, o += 3) {
        const uint32_t w = static_cast<uint32_t>(packed[o]) |
            (static_cast<uint32_t>(packed[o + 1]) << 8) |
            (static_cast<uint32_t>(packed[o + 2]) << 16);
        const uint32_t lo = w & 0xFFF;
        const uint32_t hi = w >> 12;
        invalid |= kUnpack3Bad[lo] | kUnpack3Bad[hi];
        std::memcpy(out + i, kUnpack3[lo].data(), 4);
        std::memcpy(out + i + 4, kUnpack3[hi].data(), 4);
    }
    // Tail: 3*i bits consumed == o whole bytes (i is a multiple of 8).
    for (uint64_t bit = 3 * static_cast<uint64_t>(i); i < count;
         i++, bit += 3) {
        const size_t byte = static_cast<size_t>(bit >> 3);
        const unsigned shift = static_cast<unsigned>(bit & 7);
        unsigned v = packed[byte] >> shift;
        if (shift > 5 && byte + 1 < packed_size)
            v |= static_cast<unsigned>(packed[byte + 1]) << (8 - shift);
        const unsigned code = v & 7;
        invalid |= static_cast<unsigned>(code > 4);
        out[i] = kCodeChar[code];
    }
    sage_assert(invalid == 0, "bad base code in 3-bit stream");
}

void
reverseComplementScalar(const char *seq, size_t count, char *out)
{
    const uint8_t *s = reinterpret_cast<const uint8_t *>(seq);
    for (size_t j = 0; j < count; j++)
        out[j] = kComplement[s[count - 1 - j]];
}

bool
isAcgtOnlyScalar(const char *seq, size_t count)
{
    const uint8_t *s = reinterpret_cast<const uint8_t *>(seq);
    for (size_t i = 0; i < count; i++) {
        if (kCharCode[s[i]] >= 4)
            return false;
    }
    return true;
}

#if SAGE_KERNELS_X86

// ---------------------------------------------------------------------
// SSSE3 kernels (128-bit pshufb)
//
// The complement/validation trick: fold case with `c & 0xDF` (the only
// preimages of 'A' under that mask are 'A' and 'a', and likewise for
// C/G/T), look the low nibble up in a 16-entry table of the expected
// source characters (invalid nibbles hold 0xFF, which no folded byte
// can equal), and compare: lanes where the folded byte equals the
// expected source are real bases, every other lane is forced to 'N' —
// exactly complementBase's semantics for arbitrary bytes.
// ---------------------------------------------------------------------

#define SAGE_TARGET_SSSE3 __attribute__((target("ssse3")))
#define SAGE_TARGET_AVX2 __attribute__((target("avx2")))

/** Expected folded byte per low nibble (0xFF = no base has it). */
#define SAGE_NIB_SRC                                                        \
    '\xFF', 'A', '\xFF', 'C', 'T', '\xFF', '\xFF', 'G', '\xFF', '\xFF',     \
        '\xFF', '\xFF', '\xFF', '\xFF', '\xFF', '\xFF'
/** Complement per low nibble (don't-care lanes masked to 'N'). */
#define SAGE_NIB_COMP                                                       \
    'N', 'T', 'N', 'G', 'A', 'N', 'N', 'C', 'N', 'N', 'N', 'N', 'N',        \
        'N', 'N', 'N'
/** Base code per low nibble (don't-care lanes rejected separately). */
#define SAGE_NIB_CODE                                                       \
    0, 0, 0, 1, 3, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0

SAGE_TARGET_SSSE3 void
unpack2bitSsse3(const uint8_t *packed, size_t packed_size, size_t count,
                char *out)
{
    sage_assert(packed_size >= (count + 3) / 4,
                "2-bit stream underrun");
    const __m128i ascii =
        _mm_setr_epi8('A', 'C', 'G', 'T', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                      0, 0);
    const __m128i mask3 = _mm_set1_epi8(0x03);
    size_t i = 0;
    for (; i + 64 <= count; i += 64) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(packed + (i >> 2)));
        const __m128i t0 = _mm_and_si128(x, mask3);
        const __m128i t1 = _mm_and_si128(_mm_srli_epi16(x, 2), mask3);
        const __m128i t2 = _mm_and_si128(_mm_srli_epi16(x, 4), mask3);
        const __m128i t3 = _mm_and_si128(_mm_srli_epi16(x, 6), mask3);
        const __m128i a = _mm_unpacklo_epi8(t0, t1);
        const __m128i b = _mm_unpackhi_epi8(t0, t1);
        const __m128i c = _mm_unpacklo_epi8(t2, t3);
        const __m128i d = _mm_unpackhi_epi8(t2, t3);
        __m128i *dst = reinterpret_cast<__m128i *>(out + i);
        _mm_storeu_si128(
            dst, _mm_shuffle_epi8(ascii, _mm_unpacklo_epi16(a, c)));
        _mm_storeu_si128(
            dst + 1, _mm_shuffle_epi8(ascii, _mm_unpackhi_epi16(a, c)));
        _mm_storeu_si128(
            dst + 2, _mm_shuffle_epi8(ascii, _mm_unpacklo_epi16(b, d)));
        _mm_storeu_si128(
            dst + 3, _mm_shuffle_epi8(ascii, _mm_unpackhi_epi16(b, d)));
    }
    if (i < count) {
        unpack2bitScalar(packed + (i >> 2), packed_size - (i >> 2),
                         count - i, out + i);
    }
}

SAGE_TARGET_AVX2 void
unpack2bitAvx2(const uint8_t *packed, size_t packed_size, size_t count,
               char *out)
{
    sage_assert(packed_size >= (count + 3) / 4,
                "2-bit stream underrun");
    const __m256i ascii = _mm256_setr_epi8(
        'A', 'C', 'G', 'T', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 'A',
        'C', 'G', 'T', 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0);
    const __m256i mask3 = _mm256_set1_epi8(0x03);
    size_t i = 0;
    for (; i + 128 <= count; i += 128) {
        const __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(packed + (i >> 2)));
        const __m256i t0 = _mm256_and_si256(x, mask3);
        const __m256i t1 =
            _mm256_and_si256(_mm256_srli_epi16(x, 2), mask3);
        const __m256i t2 =
            _mm256_and_si256(_mm256_srli_epi16(x, 4), mask3);
        const __m256i t3 =
            _mm256_and_si256(_mm256_srli_epi16(x, 6), mask3);
        const __m256i a = _mm256_unpacklo_epi8(t0, t1);
        const __m256i b = _mm256_unpackhi_epi8(t0, t1);
        const __m256i c = _mm256_unpacklo_epi8(t2, t3);
        const __m256i d = _mm256_unpackhi_epi8(t2, t3);
        // Unpacks interleave within 128-bit lanes, so r0..r3 hold the
        // expansions of packed bytes {0-3,16-19}, {4-7,20-23},
        // {8-11,24-27}, {12-15,28-31}; the cross-lane permutes below
        // stitch them back into sequential order.
        const __m256i r0 = _mm256_unpacklo_epi16(a, c);
        const __m256i r1 = _mm256_unpackhi_epi16(a, c);
        const __m256i r2 = _mm256_unpacklo_epi16(b, d);
        const __m256i r3 = _mm256_unpackhi_epi16(b, d);
        const __m256i s0 = _mm256_permute2x128_si256(r0, r1, 0x20);
        const __m256i s1 = _mm256_permute2x128_si256(r2, r3, 0x20);
        const __m256i s2 = _mm256_permute2x128_si256(r0, r1, 0x31);
        const __m256i s3 = _mm256_permute2x128_si256(r2, r3, 0x31);
        __m256i *dst = reinterpret_cast<__m256i *>(out + i);
        _mm256_storeu_si256(dst, _mm256_shuffle_epi8(ascii, s0));
        _mm256_storeu_si256(dst + 1, _mm256_shuffle_epi8(ascii, s1));
        _mm256_storeu_si256(dst + 2, _mm256_shuffle_epi8(ascii, s2));
        _mm256_storeu_si256(dst + 3, _mm256_shuffle_epi8(ascii, s3));
    }
    if (i < count) {
        unpack2bitSsse3(packed + (i >> 2), packed_size - (i >> 2),
                        count - i, out + i);
    }
}

// ---------------------------------------------------------------------
// Shuffle-based 3-bit unpack (genozip-style pshufb gathers).
//
// Eight 3-bit codes live in three bytes; code k of a group starts at
// bit 3k, i.e. inside byte 3k>>3 at shift 3k&7. pshufb replicates each
// code's covering byte *pair* into its own 16-bit lane, a per-lane
// multiply by 1 << (13 - shift) slides the field to bits 13..15 (the
// lanes' shifts differ, so the "variable shift" SSE lacks becomes a
// pmullw by per-lane constants), and one constant psrlw-by-13 drops
// every lane's code into bits 0..2. packus + a 16-entry ASCII table
// shuffle finish the job. Validation matches the scalar kernel: codes
// 5-7 render as 'N' and fail the stream assert.
// ---------------------------------------------------------------------

/** Byte-pair gather for codes 0-7 of a 3-byte group at offset @p base:
 *  lane k reads bytes (3k>>3)+base and (3k>>3)+base+1. */
#define SAGE_UNPACK3_SHUF(base)                                             \
    (base), (base) + 1, (base), (base) + 1, (base), (base) + 1,             \
        (base) + 1, (base) + 2, (base) + 1, (base) + 2, (base) + 1,         \
        (base) + 2, (base) + 2, (base) + 3, (base) + 2, (base) + 3
/** Per-lane 1 << (13 - (3k & 7)) multipliers for codes 0-7. */
#define SAGE_UNPACK3_MUL 8192, 1024, 128, 4096, 512, 64, 2048, 256

SAGE_TARGET_SSSE3 void
unpack3bitSsse3(const uint8_t *packed, size_t packed_size, size_t count,
                char *out)
{
    sage_assert(packed_size >= (3 * count + 7) / 8,
                "3-bit stream underrun");
    const __m128i shufLo = _mm_setr_epi8(SAGE_UNPACK3_SHUF(0));
    const __m128i shufHi = _mm_setr_epi8(SAGE_UNPACK3_SHUF(3));
    const __m128i mul = _mm_setr_epi16(SAGE_UNPACK3_MUL);
    const __m128i ascii =
        _mm_setr_epi8('A', 'C', 'G', 'T', 'N', 'N', 'N', 'N', 0, 0, 0,
                      0, 0, 0, 0, 0);
    const __m128i four = _mm_set1_epi8(4);
    __m128i badAcc = _mm_setzero_si128();
    size_t i = 0, o = 0;
    // Each iteration loads 16 bytes but consumes 6 (16 codes), so the
    // loop also needs the full load to stay inside the stream; the
    // last few groups fall through to the scalar kernel.
    for (; i + 16 <= count && o + 16 <= packed_size; i += 16, o += 6) {
        const __m128i x = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(packed + o));
        const __m128i lo = _mm_srli_epi16(
            _mm_mullo_epi16(_mm_shuffle_epi8(x, shufLo), mul), 13);
        const __m128i hi = _mm_srli_epi16(
            _mm_mullo_epi16(_mm_shuffle_epi8(x, shufHi), mul), 13);
        const __m128i codes = _mm_packus_epi16(lo, hi);
        badAcc = _mm_or_si128(badAcc, _mm_cmpgt_epi8(codes, four));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_shuffle_epi8(ascii, codes));
    }
    sage_assert(_mm_movemask_epi8(badAcc) == 0,
                "bad base code in 3-bit stream");
    if (i < count) {
        // i is a multiple of 8, so 3i/8 whole bytes are consumed.
        unpack3bitScalar(packed + o, packed_size - o, count - i,
                         out + i);
    }
}

SAGE_TARGET_AVX2 void
unpack3bitAvx2(const uint8_t *packed, size_t packed_size, size_t count,
               char *out)
{
    sage_assert(packed_size >= (3 * count + 7) / 8,
                "3-bit stream underrun");
    // One 16-byte load broadcast to both lanes feeds all 32 codes:
    // pshufb is in-lane, so the two shuffle controls give lane 0 codes
    // 0-7 / 16-23 and lane 1 codes 8-15 / 24-31 (byte offsets 0/3 and
    // 6/9 — at most byte 12 of the load).
    const __m256i shufA = _mm256_setr_epi8(SAGE_UNPACK3_SHUF(0),
                                           SAGE_UNPACK3_SHUF(3));
    const __m256i shufB = _mm256_setr_epi8(SAGE_UNPACK3_SHUF(6),
                                           SAGE_UNPACK3_SHUF(9));
    const __m256i mul = _mm256_setr_epi16(SAGE_UNPACK3_MUL,
                                          SAGE_UNPACK3_MUL);
    const __m256i ascii = _mm256_setr_epi8(
        'A', 'C', 'G', 'T', 'N', 'N', 'N', 'N', 0, 0, 0, 0, 0, 0, 0, 0,
        'A', 'C', 'G', 'T', 'N', 'N', 'N', 'N', 0, 0, 0, 0, 0, 0, 0,
        0);
    const __m256i four = _mm256_set1_epi8(4);
    __m256i badAcc = _mm256_setzero_si256();
    size_t i = 0, o = 0;
    for (; i + 32 <= count && o + 16 <= packed_size; i += 32, o += 12) {
        const __m256i x = _mm256_broadcastsi128_si256(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(packed + o)));
        const __m256i a = _mm256_srli_epi16(
            _mm256_mullo_epi16(_mm256_shuffle_epi8(x, shufA), mul), 13);
        const __m256i b = _mm256_srli_epi16(
            _mm256_mullo_epi16(_mm256_shuffle_epi8(x, shufB), mul), 13);
        // packus interleaves per lane (a0 b0 | a1 b1 in 64-bit units
        // holding codes 0-7, 16-23, 8-15, 24-31); permute to order.
        const __m256i codes = _mm256_permute4x64_epi64(
            _mm256_packus_epi16(a, b), 0xD8);
        badAcc =
            _mm256_or_si256(badAcc, _mm256_cmpgt_epi8(codes, four));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_shuffle_epi8(ascii, codes));
    }
    sage_assert(_mm256_movemask_epi8(badAcc) == 0,
                "bad base code in 3-bit stream");
    if (i < count) {
        unpack3bitSsse3(packed + o, packed_size - o, count - i,
                        out + i);
    }
}

SAGE_TARGET_SSSE3 void
pack2bitSsse3(const char *bases, size_t count, uint8_t *out)
{
    const __m128i fold = _mm_set1_epi8(static_cast<char>(0xDF));
    const __m128i lowNib = _mm_set1_epi8(0x0F);
    const __m128i nibSrc = _mm_setr_epi8(SAGE_NIB_SRC);
    const __m128i nibCode = _mm_setr_epi8(SAGE_NIB_CODE);
    const __m128i w14 = _mm_setr_epi8(1, 4, 1, 4, 1, 4, 1, 4, 1, 4, 1,
                                      4, 1, 4, 1, 4);
    const __m128i w116 =
        _mm_setr_epi16(1, 16, 1, 16, 1, 16, 1, 16);
    __m128i badAcc = _mm_setzero_si128();
    const __m128i ones = _mm_set1_epi8(static_cast<char>(0xFF));
    size_t i = 0;
    for (; i + 16 <= count; i += 16) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(bases + i));
        const __m128i f = _mm_and_si128(v, fold);
        const __m128i idx = _mm_and_si128(f, lowNib);
        const __m128i valid =
            _mm_cmpeq_epi8(f, _mm_shuffle_epi8(nibSrc, idx));
        badAcc = _mm_or_si128(badAcc, _mm_xor_si128(valid, ones));
        const __m128i codes = _mm_shuffle_epi8(nibCode, idx);
        // codes c0..c15 -> bytes (c0 | c1<<2 | c2<<4 | c3<<6), four at
        // a time: pairwise 1,4 weights then pairwise 1,16 weights.
        const __m128i m1 = _mm_maddubs_epi16(codes, w14);
        const __m128i m2 = _mm_madd_epi16(m1, w116);
        __m128i pk = _mm_packs_epi32(m2, m2);
        pk = _mm_packus_epi16(pk, pk);
        const int quad = _mm_cvtsi128_si32(pk);
        std::memcpy(out + (i >> 2), &quad, 4);
    }
    sage_assert(_mm_movemask_epi8(badAcc) == 0,
                "2-bit packing requires ACGT-only sequence");
    if (i < count)
        pack2bitScalar(bases + i, count - i, out + (i >> 2));
}

SAGE_TARGET_SSSE3 void
reverseComplementSsse3(const char *seq, size_t count, char *out)
{
    const __m128i fold = _mm_set1_epi8(static_cast<char>(0xDF));
    const __m128i lowNib = _mm_set1_epi8(0x0F);
    const __m128i nibSrc = _mm_setr_epi8(SAGE_NIB_SRC);
    const __m128i nibComp = _mm_setr_epi8(SAGE_NIB_COMP);
    const __m128i rev = _mm_setr_epi8(15, 14, 13, 12, 11, 10, 9, 8, 7,
                                      6, 5, 4, 3, 2, 1, 0);
    const __m128i allN = _mm_set1_epi8('N');
    size_t i = 0;
    for (; i + 16 <= count; i += 16) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(seq + count - 16 - i));
        const __m128i f = _mm_and_si128(v, fold);
        const __m128i idx = _mm_and_si128(f, lowNib);
        const __m128i valid =
            _mm_cmpeq_epi8(f, _mm_shuffle_epi8(nibSrc, idx));
        const __m128i comp = _mm_shuffle_epi8(nibComp, idx);
        const __m128i res =
            _mm_or_si128(_mm_and_si128(valid, comp),
                         _mm_andnot_si128(valid, allN));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_shuffle_epi8(res, rev));
    }
    for (; i < count; i++)
        out[i] = kComplement[static_cast<uint8_t>(seq[count - 1 - i])];
}

SAGE_TARGET_AVX2 void
reverseComplementAvx2(const char *seq, size_t count, char *out)
{
    const __m256i fold = _mm256_set1_epi8(static_cast<char>(0xDF));
    const __m256i lowNib = _mm256_set1_epi8(0x0F);
    const __m256i nibSrc =
        _mm256_setr_epi8(SAGE_NIB_SRC, SAGE_NIB_SRC);
    const __m256i nibComp =
        _mm256_setr_epi8(SAGE_NIB_COMP, SAGE_NIB_COMP);
    const __m256i rev = _mm256_setr_epi8(
        15, 14, 13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 15, 14,
        13, 12, 11, 10, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0);
    const __m256i allN = _mm256_set1_epi8('N');
    size_t i = 0;
    for (; i + 32 <= count; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(seq + count - 32 - i));
        const __m256i f = _mm256_and_si256(v, fold);
        const __m256i idx = _mm256_and_si256(f, lowNib);
        const __m256i valid =
            _mm256_cmpeq_epi8(f, _mm256_shuffle_epi8(nibSrc, idx));
        const __m256i comp = _mm256_shuffle_epi8(nibComp, idx);
        __m256i res =
            _mm256_or_si256(_mm256_and_si256(valid, comp),
                            _mm256_andnot_si256(valid, allN));
        // In-lane byte reverse, then swap the two lanes.
        res = _mm256_shuffle_epi8(res, rev);
        res = _mm256_permute2x128_si256(res, res, 0x01);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i), res);
    }
    for (; i < count; i++)
        out[i] = kComplement[static_cast<uint8_t>(seq[count - 1 - i])];
}

SAGE_TARGET_SSSE3 bool
isAcgtOnlySsse3(const char *seq, size_t count)
{
    const __m128i fold = _mm_set1_epi8(static_cast<char>(0xDF));
    const __m128i lowNib = _mm_set1_epi8(0x0F);
    const __m128i nibSrc = _mm_setr_epi8(SAGE_NIB_SRC);
    size_t i = 0;
    for (; i + 16 <= count; i += 16) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(seq + i));
        const __m128i f = _mm_and_si128(v, fold);
        const __m128i idx = _mm_and_si128(f, lowNib);
        const __m128i valid =
            _mm_cmpeq_epi8(f, _mm_shuffle_epi8(nibSrc, idx));
        if (_mm_movemask_epi8(valid) != 0xFFFF)
            return false;
    }
    return isAcgtOnlyScalar(seq + i, count - i);
}

SAGE_TARGET_AVX2 bool
isAcgtOnlyAvx2(const char *seq, size_t count)
{
    const __m256i fold = _mm256_set1_epi8(static_cast<char>(0xDF));
    const __m256i lowNib = _mm256_set1_epi8(0x0F);
    const __m256i nibSrc =
        _mm256_setr_epi8(SAGE_NIB_SRC, SAGE_NIB_SRC);
    size_t i = 0;
    for (; i + 32 <= count; i += 32) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(seq + i));
        const __m256i f = _mm256_and_si256(v, fold);
        const __m256i idx = _mm256_and_si256(f, lowNib);
        const __m256i valid =
            _mm256_cmpeq_epi8(f, _mm256_shuffle_epi8(nibSrc, idx));
        if (_mm256_movemask_epi8(valid) != -1)
            return false;
    }
    return isAcgtOnlyScalar(seq + i, count - i);
}

#endif // SAGE_KERNELS_X86

// ---------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------

struct KernelTable
{
    void (*pack2)(const char *, size_t, uint8_t *);
    void (*pack3)(const char *, size_t, uint8_t *);
    void (*unpack2)(const uint8_t *, size_t, size_t, char *);
    void (*unpack3)(const uint8_t *, size_t, size_t, char *);
    void (*revcomp)(const char *, size_t, char *);
    bool (*acgtOnly)(const char *, size_t);
    SimdLevel level;
};

constexpr KernelTable kScalarTable = {
    pack2bitScalar, pack3bitScalar, unpack2bitScalar, unpack3bitScalar,
    reverseComplementScalar, isAcgtOnlyScalar, SimdLevel::Scalar,
};

KernelTable
resolveKernels()
{
    KernelTable table = kScalarTable;
#if SAGE_KERNELS_X86
    const SimdLevel level = detectedSimdLevel();
    if (level >= SimdLevel::SSSE3) {
        table.pack2 = pack2bitSsse3;
        table.unpack2 = unpack2bitSsse3;
        table.unpack3 = unpack3bitSsse3;
        table.revcomp = reverseComplementSsse3;
        table.acgtOnly = isAcgtOnlySsse3;
        table.level = SimdLevel::SSSE3;
    }
    if (level >= SimdLevel::AVX2) {
        table.unpack2 = unpack2bitAvx2;
        table.unpack3 = unpack3bitAvx2;
        table.revcomp = reverseComplementAvx2;
        table.acgtOnly = isAcgtOnlyAvx2;
        table.level = SimdLevel::AVX2;
    }
#endif
    return table;
}

const KernelTable &
active()
{
    static const KernelTable table = resolveKernels();
    return table;
}

} // namespace

SimdLevel
activeLevel()
{
    return active().level;
}

const char *
activeLevelName()
{
    return simdLevelName(active().level);
}

void
pack2bit(const char *bases, size_t count, uint8_t *out)
{
    active().pack2(bases, count, out);
}

void
pack3bit(const char *bases, size_t count, uint8_t *out)
{
    active().pack3(bases, count, out);
}

void
unpack2bit(const uint8_t *packed, size_t packed_size, size_t count,
           char *out)
{
    active().unpack2(packed, packed_size, count, out);
}

void
unpack3bit(const uint8_t *packed, size_t packed_size, size_t count,
           char *out)
{
    active().unpack3(packed, packed_size, count, out);
}

void
reverseComplement(const char *seq, size_t count, char *out)
{
    active().revcomp(seq, count, out);
}

bool
isAcgtOnly(const char *seq, size_t count)
{
    return active().acgtOnly(seq, count);
}

void
basesToCodes(const char *bases, size_t count, uint8_t *codes)
{
    const uint8_t *s = reinterpret_cast<const uint8_t *>(bases);
    for (size_t i = 0; i < count; i++)
        codes[i] = kCharCode[s[i]];
}

void
codesToBases(const uint8_t *codes, size_t count, char *bases)
{
    unsigned invalid = 0;
    for (size_t i = 0; i < count; i++) {
        invalid |= static_cast<unsigned>(codes[i] > 4);
        bases[i] = kCodeChar[codes[i] & 7];
    }
    sage_assert(invalid == 0, "bad base code");
}

size_t
findInvalidBase(const char *bases, size_t count)
{
    const uint8_t *s = reinterpret_cast<const uint8_t *>(bases);
    for (size_t i = 0; i < count; i++) {
        if (!kSeqChar[s[i]])
            return i;
    }
    return count;
}

namespace scalar {

void
pack2bit(const char *bases, size_t count, uint8_t *out)
{
    pack2bitScalar(bases, count, out);
}

void
pack3bit(const char *bases, size_t count, uint8_t *out)
{
    pack3bitScalar(bases, count, out);
}

void
unpack2bit(const uint8_t *packed, size_t packed_size, size_t count,
           char *out)
{
    unpack2bitScalar(packed, packed_size, count, out);
}

void
unpack3bit(const uint8_t *packed, size_t packed_size, size_t count,
           char *out)
{
    unpack3bitScalar(packed, packed_size, count, out);
}

void
reverseComplement(const char *seq, size_t count, char *out)
{
    reverseComplementScalar(seq, count, out);
}

bool
isAcgtOnly(const char *seq, size_t count)
{
    return isAcgtOnlyScalar(seq, count);
}

} // namespace scalar

} // namespace kernels
} // namespace sage
