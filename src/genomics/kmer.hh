/**
 * @file
 * K-mer utilities: rolling 2-bit k-mer extraction and hashing, plus
 * canonical k-mers (min of forward/reverse-complement) and minimizer
 * selection. These back the consensus mapper's index and the GenStore-like
 * in-storage exact-match filter.
 */

#ifndef SAGE_GENOMICS_KMER_HH
#define SAGE_GENOMICS_KMER_HH

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "genomics/alphabet.hh"

namespace sage {

/** 64-bit integer mixer (splitmix-style) for k-mer hashing. */
inline uint64_t
hashKmer(uint64_t kmer)
{
    uint64_t z = kmer + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** A k-mer occurrence within a sequence. */
struct KmerHit
{
    uint64_t kmer;   ///< 2-bit packed k-mer value.
    uint32_t pos;    ///< Start offset in the source sequence.
};

/**
 * Enumerate all valid (N-free) k-mers of @p seq.
 * Windows containing N are skipped, mirroring standard seeding practice.
 */
std::vector<KmerHit> extractKmers(std::string_view seq, unsigned k);

/**
 * Select (w, k) minimizers: for each window of w consecutive k-mers keep
 * the one with the smallest hash. Returns deduplicated, position-sorted
 * hits. Minimizers keep the index small while preserving the ability to
 * find seed matches — the standard technique in read mappers.
 */
std::vector<KmerHit> extractMinimizers(std::string_view seq, unsigned k,
                                       unsigned w);

/** Canonical k-mer: lexicographic min of k-mer and reverse complement. */
uint64_t canonicalKmer(uint64_t kmer, unsigned k);

} // namespace sage

#endif // SAGE_GENOMICS_KMER_HH
