#include "genomics/kmer.hh"

#include <algorithm>
#include <deque>

namespace sage {

std::vector<KmerHit>
extractKmers(std::string_view seq, unsigned k)
{
    std::vector<KmerHit> hits;
    if (seq.size() < k || k == 0 || k > 31)
        return hits;

    const uint64_t mask = (uint64_t(1) << (2 * k)) - 1;
    uint64_t kmer = 0;
    unsigned valid = 0; // Number of consecutive non-N bases accumulated.
    for (size_t i = 0; i < seq.size(); i++) {
        const uint8_t code = baseToCode(seq[i]);
        if (code >= 4) {
            valid = 0;
            kmer = 0;
            continue;
        }
        kmer = ((kmer << 2) | code) & mask;
        if (++valid >= k) {
            hits.push_back({kmer,
                            static_cast<uint32_t>(i + 1 - k)});
        }
    }
    return hits;
}

std::vector<KmerHit>
extractMinimizers(std::string_view seq, unsigned k, unsigned w)
{
    std::vector<KmerHit> all = extractKmers(seq, k);
    std::vector<KmerHit> out;
    if (all.empty())
        return out;
    if (w <= 1)
        return all;

    // Sliding-window minimum over hash values using a monotonic deque.
    std::deque<size_t> window; // Indices into `all`, hashes increasing.
    uint32_t last_emitted_pos = UINT32_MAX;
    for (size_t i = 0; i < all.size(); i++) {
        const uint64_t h = hashKmer(all[i].kmer);
        while (!window.empty() &&
               hashKmer(all[window.back()].kmer) >= h) {
            window.pop_back();
        }
        window.push_back(i);
        // Evict k-mers that left the window of w consecutive positions.
        while (all[window.front()].pos + w <= all[i].pos)
            window.pop_front();
        if (i + 1 >= w) {
            const KmerHit &min_hit = all[window.front()];
            if (min_hit.pos != last_emitted_pos) {
                out.push_back(min_hit);
                last_emitted_pos = min_hit.pos;
            }
        }
    }
    return out;
}

uint64_t
canonicalKmer(uint64_t kmer, unsigned k)
{
    // Reverse complement in 2-bit space: complement is XOR 3, then
    // reverse base order.
    uint64_t rc = 0;
    uint64_t x = kmer;
    for (unsigned i = 0; i < k; i++) {
        rc = (rc << 2) | ((x & 3) ^ 3);
        x >>= 2;
    }
    return std::min(kmer, rc);
}

} // namespace sage
