#include "genomics/read.hh"

namespace sage {

uint64_t
ReadSet::fastqBytes() const
{
    uint64_t total = 0;
    for (const auto &read : reads) {
        total += 1 + read.header.size() + 1;  // '@' + header + '\n'
        total += read.bases.size() + 1;
        total += 2;                           // "+\n"
        total += read.quals.size() + 1;
    }
    return total;
}

} // namespace sage
