/**
 * @file
 * Runtime-dispatched sequence kernels: the hot base-level transforms
 * under every SAGe chunk decode and FASTQ ingest.
 *
 * The paper's premise (§3, §5.2) is that data preparation must run at
 * hardware speed; on the host that means the four transforms every
 * decode/encode pass leans on — 2/3-bit unpack, pack, reverse
 * complement, and bulk base validation — must not crawl through a bit
 * stream one base at a time. This layer provides:
 *
 *   - a portable scalar baseline that is already table/word-driven
 *     (4 bases per packed byte for 2-bit, 8 bases per 3 packed bytes
 *     for 3-bit, 256-entry LUTs for complement/validation), and
 *   - SSSE3/AVX2 shuffle kernels (16-entry pshufb LUTs, reversed
 *     vector stores) selected once at startup via util/cpu.hh.
 *
 * Dispatch honors SAGE_FORCE_SCALAR=1 so both paths can be exercised
 * by the same test suite. Every kernel is byte-identical to the
 * historical BitReader/BitWriter implementations (tests/test_kernels).
 *
 * Bit layout contract (matches util/bitio.hh): fields are LSB-first
 * within each byte; 2-bit base k of packed byte b sits at bits
 * [2k, 2k+2); 3-bit fields run little-endian across byte boundaries;
 * the final partial byte is zero-padded.
 */

#ifndef SAGE_GENOMICS_KERNELS_HH
#define SAGE_GENOMICS_KERNELS_HH

#include <cstddef>
#include <cstdint>

#include "util/cpu.hh"

namespace sage {
namespace kernels {

/** SIMD tier the dispatched kernels resolved to (after the
 *  SAGE_FORCE_SCALAR override). */
SimdLevel activeLevel();

/** Lower-case name of the active tier: "scalar", "ssse3", "avx2". */
const char *activeLevelName();

// ---------------------------------------------------------------------
// Dispatched kernels (scalar / SSSE3 / AVX2 chosen at startup)
// ---------------------------------------------------------------------

/**
 * Pack @p count ACGT bases at 2 bits/base into @p out
 * (capacity >= (count + 3) / 4 bytes; final byte zero-padded).
 * Panics when the sequence contains anything but A/C/G/T (either
 * case), matching the historical packSequence contract.
 */
void pack2bit(const char *bases, size_t count, uint8_t *out);

/**
 * Pack @p count bases at 3 bits/base into @p out
 * (capacity >= (3 * count + 7) / 8 bytes; final byte zero-padded).
 * Unknown characters map to N, as baseToCode always did.
 */
void pack3bit(const char *bases, size_t count, uint8_t *out);

/**
 * Unpack @p count 2-bit bases from @p packed (@p packed_size bytes)
 * into @p out (capacity >= count chars). Panics on underrun.
 */
void unpack2bit(const uint8_t *packed, size_t packed_size, size_t count,
                char *out);

/**
 * Unpack @p count 3-bit bases from @p packed (@p packed_size bytes)
 * into @p out (capacity >= count chars). Panics on underrun and on
 * invalid base codes (5-7), like codeToBase.
 */
void unpack3bit(const uint8_t *packed, size_t packed_size, size_t count,
                char *out);

/**
 * Reverse complement @p count bases of @p seq into @p out (capacity
 * >= count; must not alias @p seq). Case-folds to upper case; every
 * non-ACGT byte complements to 'N' (complementBase semantics).
 */
void reverseComplement(const char *seq, size_t count, char *out);

/** True when @p seq is A/C/G/T only (either case). */
bool isAcgtOnly(const char *seq, size_t count);

// ---------------------------------------------------------------------
// Bulk code conversion + ingest validation (table-driven scalar)
// ---------------------------------------------------------------------

/** Bulk baseToCode: unknown characters map to code 4 (N). */
void basesToCodes(const char *bases, size_t count, uint8_t *codes);

/** Bulk codeToBase; panics on codes > 4 like codeToBase. */
void codesToBases(const uint8_t *codes, size_t count, char *bases);

/**
 * FASTQ ingest guard: index of the first byte of @p bases that cannot
 * be a sequence character (we accept letters — the IUPAC codes, either
 * case — plus '.', '-' and '*' gap markers), or @p count when the
 * whole buffer is plausible. Catches binary garbage and control
 * characters at ingest instead of silently turning them into N bases.
 */
size_t findInvalidBase(const char *bases, size_t count);

// ---------------------------------------------------------------------
// Scalar baselines (always available; used by tests and benches to
// check and measure the dispatched kernels against)
// ---------------------------------------------------------------------

namespace scalar {

void pack2bit(const char *bases, size_t count, uint8_t *out);
void pack3bit(const char *bases, size_t count, uint8_t *out);
void unpack2bit(const uint8_t *packed, size_t packed_size, size_t count,
                char *out);
void unpack3bit(const uint8_t *packed, size_t packed_size, size_t count,
                char *out);
void reverseComplement(const char *seq, size_t count, char *out);
bool isAcgtOnly(const char *seq, size_t count);

} // namespace scalar

} // namespace kernels
} // namespace sage

#endif // SAGE_GENOMICS_KERNELS_HH
