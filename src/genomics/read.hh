/**
 * @file
 * Read and ReadSet: the central data model of the repository.
 *
 * A Read is one sequenced fragment (bases + optional per-base quality
 * scores + header); a ReadSet is the collection produced from one sample,
 * the unit that gets compressed, stored and analyzed (paper §2.1).
 */

#ifndef SAGE_GENOMICS_READ_HH
#define SAGE_GENOMICS_READ_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sage {

/** One sequencing read. */
struct Read
{
    std::string header;  ///< FASTQ header line without the leading '@'.
    std::string bases;   ///< A/C/G/T/N characters.
    std::string quals;   ///< Phred+33 ASCII; empty if not recorded.

    size_t length() const { return bases.size(); }
};

/** Sequencing technology class a read set was produced with. */
enum class Technology : uint8_t {
    ShortAccurate,  ///< Illumina-like: 75-300 bp, ~99.9% accuracy.
    LongNoisy,      ///< Nanopore/PacBio-like: 500 bp-2 Mbp, ~99% accuracy.
};

/** A collection of reads from one sample. */
struct ReadSet
{
    std::string name;
    Technology technology = Technology::ShortAccurate;
    std::vector<Read> reads;

    size_t readCount() const { return reads.size(); }

    /** Total DNA bases across all reads. */
    uint64_t
    totalBases() const
    {
        uint64_t total = 0;
        for (const auto &read : reads)
            total += read.bases.size();
        return total;
    }

    /** True if any read carries quality scores. */
    bool
    hasQualityScores() const
    {
        for (const auto &read : reads) {
            if (!read.quals.empty())
                return true;
        }
        return false;
    }

    /**
     * Uncompressed FASTQ byte size (header + bases + '+' line + quality
     * + newlines), the denominator of every compression ratio we report.
     */
    uint64_t fastqBytes() const;

    /** Uncompressed size of the DNA stream alone (bases + newlines). */
    uint64_t
    dnaBytes() const
    {
        uint64_t total = 0;
        for (const auto &read : reads)
            total += read.bases.size() + 1;
        return total;
    }

    /** Uncompressed size of the quality stream alone. */
    uint64_t
    qualityBytes() const
    {
        uint64_t total = 0;
        for (const auto &read : reads)
            total += read.quals.size() + 1;
        return total;
    }
};

} // namespace sage

#endif // SAGE_GENOMICS_READ_HH
