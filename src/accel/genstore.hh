/**
 * @file
 * GenStore-like in-storage filter (ISF) model (paper §7, [145]).
 *
 * GenStore filters, inside the SSD, reads that do not need expensive
 * mapping — for read sets with high reference similarity that means
 * exactly-matching reads — and sends only the remainder to the mapper.
 * The resulting pipeline is prep -> ISF -> mapping; its benefit scales
 * with the filtered fraction, which is workload-dependent (paper §8.1
 * notes RS-dependent ISF behaviour).
 *
 * We implement the filter functionally (an exact-match check against
 * the consensus via a k-mer anchor + verification) plus a timing model
 * for its in-SSD execution.
 */

#ifndef SAGE_ACCEL_GENSTORE_HH
#define SAGE_ACCEL_GENSTORE_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "consensus/index.hh"
#include "genomics/read.hh"
#include "ssd/nand.hh"

namespace sage {

/** Outcome of running the ISF over a read set. */
struct IsfResult
{
    uint64_t totalReads = 0;
    uint64_t filteredReads = 0;   ///< Exact matches, dropped in-SSD.
    uint64_t totalBases = 0;
    uint64_t filteredBases = 0;

    /** Fraction of reads the ISF removed. */
    double
    filterFraction() const
    {
        return totalReads == 0 ? 0.0
            : static_cast<double>(filteredReads) / totalReads;
    }

    /** Bases that still need mapping on the host/accelerator side. */
    uint64_t
    remainingBases() const
    {
        return totalBases - filteredBases;
    }
};

/** In-storage exact-match filter. */
class InStorageFilter
{
  public:
    /** Build over the reference the read set will be mapped against.
     *  @p reference must outlive the filter. */
    explicit InStorageFilter(std::string_view reference);

    /** True if @p bases occurs exactly in the reference (either
     *  strand) — i.e. the read needs no alignment. */
    bool matchesExactly(std::string_view bases) const;

    /** Run the filter over a read set. */
    IsfResult filter(const ReadSet &rs) const;

    /**
     * In-SSD filtering seconds for @p bases of (already decompressed)
     * reads: the filter streams reads at near-NAND bandwidth with
     * lightweight per-base hashing (GenStore's design point).
     */
    double filterSeconds(const SsdModel &ssd, uint64_t bases) const;

    /** Active power of the ISF logic in watts. */
    double activePowerWatts() const { return 0.8; }

  private:
    std::string_view reference_;
    MinimizerIndex index_;
};

} // namespace sage

#endif // SAGE_ACCEL_GENSTORE_HH
