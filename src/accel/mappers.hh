/**
 * @file
 * Genome analysis accelerator models (paper §7).
 *
 *  - GemModel: the GEM read-mapping accelerator. The paper itself uses
 *    the throughput reported by the GEM paper (69,200 KReads/s on short
 *    reads, Fig. 1); we do the same and convert to bases/s so long
 *    reads are handled consistently.
 *  - SoftwareMapperModel: the minimap2-class software baseline
 *    (446 KReads/s in Fig. 1).
 *
 * Both are throughput/power servers for the pipeline model; mapping
 * *results* are not needed by any reproduced experiment (the paper
 * reports end-to-end throughput, not mapping accuracy).
 */

#ifndef SAGE_ACCEL_MAPPERS_HH
#define SAGE_ACCEL_MAPPERS_HH

#include <cstdint>

namespace sage {

/** A mapping-stage throughput/power model. */
struct MapperModel
{
    /** Reads per second on the reference short-read length. */
    double readsPerSec = 69.2e6;
    /** Short-read length the figure was reported for. */
    double referenceReadLength = 100.0;
    /** Active power in watts. */
    double activePowerWatts = 8.0;
    /** Idle power in watts. */
    double idlePowerWatts = 1.0;

    /** Bases mapped per second (length-normalized throughput). */
    double
    basesPerSec() const
    {
        return readsPerSec * referenceReadLength;
    }

    /** Seconds to map @p bases of reads. */
    double
    mapSeconds(uint64_t bases) const
    {
        return static_cast<double>(bases) / basesPerSec();
    }

    /** Energy for a window of @p seconds with @p busy busy-seconds. */
    double
    energyJoules(double seconds, double busy) const
    {
        return idlePowerWatts * seconds + activePowerWatts * busy;
    }
};

/** GEM hardware read-mapping accelerator (paper [150], Fig. 1). */
MapperModel gemAccelerator();

/** Software mapper on the high-end host (Fig. 1 "Baseline"). */
MapperModel softwareMapper();

} // namespace sage

#endif // SAGE_ACCEL_MAPPERS_HH
