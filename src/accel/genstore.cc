#include "accel/genstore.hh"

#include <algorithm>

#include "genomics/alphabet.hh"
#include "genomics/kmer.hh"

namespace sage {

InStorageFilter::InStorageFilter(std::string_view reference)
    : reference_(reference), index_(reference)
{
}

bool
InStorageFilter::matchesExactly(std::string_view bases) const
{
    if (bases.size() < index_.config().k || !isAcgtOnly(bases))
        return false;

    auto check_orientation = [&](std::string_view oriented) {
        // Anchor with the read's minimizers, then verify bytewise.
        const auto seeds = extractMinimizers(oriented,
                                             index_.config().k,
                                             index_.config().w);
        for (size_t s = 0; s < std::min<size_t>(seeds.size(), 4); s++) {
            for (uint32_t cpos : index_.lookup(seeds[s].kmer)) {
                if (cpos < seeds[s].pos)
                    continue;
                const uint64_t start = cpos - seeds[s].pos;
                if (start + oriented.size() > reference_.size())
                    continue;
                if (reference_.substr(start, oriented.size()) == oriented)
                    return true;
            }
        }
        return false;
    };

    if (check_orientation(bases))
        return true;
    const std::string rc = reverseComplement(bases);
    return check_orientation(rc);
}

IsfResult
InStorageFilter::filter(const ReadSet &rs) const
{
    IsfResult result;
    result.totalReads = rs.reads.size();
    for (const auto &read : rs.reads) {
        result.totalBases += read.bases.size();
        if (matchesExactly(read.bases)) {
            result.filteredReads++;
            result.filteredBases += read.bases.size();
        }
    }
    return result;
}

double
InStorageFilter::filterSeconds(const SsdModel &ssd, uint64_t bases) const
{
    // GenStore's filter keeps up with NAND delivery; model its
    // throughput as in-SSD streaming over 2-bit-packed reads with a
    // modest logic efficiency factor.
    const double packed_bytes = static_cast<double>(bases) / 4.0;
    const double stream_sec =
        packed_bytes / ssd.internalReadBandwidth();
    constexpr double kLogicEfficiency = 0.85;
    return stream_sec / kLogicEfficiency;
}

} // namespace sage
