#include "accel/mappers.hh"

namespace sage {

MapperModel
gemAccelerator()
{
    MapperModel model;
    model.readsPerSec = 69.2e6;         // 69200 KReads/s (paper Fig. 1).
    model.referenceReadLength = 100.0;
    model.activePowerWatts = 8.0;       // Near-memory accelerator class.
    model.idlePowerWatts = 1.0;
    return model;
}

MapperModel
softwareMapper()
{
    MapperModel model;
    model.readsPerSec = 446e3;          // 446 KReads/s (paper Fig. 1).
    model.referenceReadLength = 100.0;
    model.activePowerWatts = 180.0;     // 128-core host under load.
    model.idlePowerWatts = 70.0;
    return model;
}

} // namespace sage
