/**
 * @file
 * SAGe interface commands (paper §5.4): the storage-facing API genome
 * analysis applications use.
 *
 *  - SAGe_Write: store a SAGe-compressed read set; the FTL stripes it
 *    across channels per the SAGe layout (§5.3).
 *  - SAGe_Read: stream the read set back, decompressed into the
 *    requested output format. Functionally this runs the software
 *    decoder; the returned timing reflects where the decompression
 *    hardware sits (host-attached vs in-SSD, paper Fig. 12).
 *
 * Non-genomic files (pigz/Spring archives for the baselines) use plain
 * read()/write(), and the SSD behaves conventionally for them.
 */

#ifndef SAGE_SSD_SAGE_DEVICE_HH
#define SAGE_SSD_SAGE_DEVICE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/sage.hh"
#include "ssd/ftl.hh"
#include "ssd/nand.hh"

namespace sage {

/** Where SAGe's decompression hardware sits (paper Fig. 12). */
enum class SageIntegration : uint8_t {
    HostAttached,  ///< Mode 1/2: decompress outside the SSD.
    InStorage,     ///< Mode 3: decompress inside the SSD controller.
};

/** Result of a SAGe_Read: payload plus modeled timing. */
struct SageReadResult
{
    /** Decompressed reads, packed in the requested format. */
    std::vector<std::vector<uint8_t>> packedReads;

    /** Seconds of NAND streaming (internal). */
    double nandSeconds = 0.0;
    /** Seconds on the external link (post-decompression bytes for
     *  in-storage mode; compressed bytes for host-attached). */
    double linkSeconds = 0.0;
    /** Compressed bytes streamed from NAND. */
    uint64_t compressedBytes = 0;
    /** Bytes delivered to the analysis system. */
    uint64_t deliveredBytes = 0;
};

/**
 * Physical placement of one archive chunk on the device: the chunk's
 * compressed bytes (summed over its 13 stream slices) and the logical
 * page span covering them. Chunk slices are scattered across the
 * archive's streams, so the span is a covering extent, not a dense
 * run; its pages sit in the SAGe striped layout and can be fetched at
 * full internal bandwidth (§5.3). This is what lets a device array
 * assign whole chunks to devices and a host overlap per-chunk fetches
 * with decode (Fig. 15).
 */
struct SageChunkExtent
{
    uint64_t bytes = 0;     ///< Compressed bytes belonging to the chunk.
    uint64_t firstLpn = 0;  ///< First logical page of the covering span.
    uint64_t lpnCount = 0;  ///< Pages in the covering span.
};

/** An SSD exposing the SAGe command set plus conventional I/O. */
class SageDevice
{
  public:
    SageDevice(SsdModel model = SsdModel::pciePerformance(),
               SageIntegration integration = SageIntegration::HostAttached);

    /** SAGe_Write: store an archive under @p name (striped layout). */
    void sageWrite(const std::string &name, const SageArchive &archive);

    /**
     * SAGe_Write of one stripe shard of a larger archive: the bytes go
     * into the genomic zone like any SAGe object, but they are not a
     * decodable archive on their own — a SageDeviceArray reassembles
     * the shards through a StripedSource (Fig. 15 mode).
     */
    void sageWriteShard(const std::string &name,
                        std::vector<uint8_t> shard);

    /** SAGe_Read: decompress + format an archive (paper §5.4). */
    SageReadResult sageRead(const std::string &name, OutputFormat fmt);

    /**
     * Per-chunk placement of a stored archive (v1 archives report one
     * chunk spanning the file). Parses the chunk table in place on the
     * device — the host never sees the archive bytes.
     */
    std::vector<SageChunkExtent>
    sageChunkExtents(const std::string &name) const;

    /** Conventional write of an opaque file (baseline archives). */
    void write(const std::string &name,
               const std::vector<uint8_t> &data);

    /**
     * Conventional read. Returns a copy: the device owns its file
     * table, and the bytes must stay valid across a later remove() or
     * write() of the same name.
     */
    std::vector<uint8_t> read(const std::string &name) const;

    /** Seconds to deliver file @p name to the host conventionally. */
    double conventionalReadSeconds(const std::string &name) const;

    /** Stored (compressed) size of a file. */
    uint64_t fileBytes(const std::string &name) const;

    /** Delete a file and trim its pages. */
    void remove(const std::string &name);

    const SageFtl &ftl() const { return ftl_; }
    const SsdModel &model() const { return model_; }
    SageIntegration integration() const { return integration_; }

  private:
    struct File
    {
        std::vector<uint8_t> data;
        uint64_t firstLpn = 0;
        uint64_t pages = 0;
        bool genomic = false;
    };

    const File &lookup(const std::string &name) const;

    SsdModel model_;
    SageIntegration integration_;
    SageFtl ftl_;
    std::map<std::string, File> files_;
};

} // namespace sage

#endif // SAGE_SSD_SAGE_DEVICE_HH
