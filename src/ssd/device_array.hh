/**
 * @file
 * Multi-SSD device array (paper Fig. 15, §5.4): N SageDevices acting
 * as one logical SAGe store.
 *
 * SAGe_Write stripes the serialized archive page-by-page round-robin
 * across the devices (io/striped.hh — the §5.3 channel layout lifted
 * to whole devices). SAGe_Read reassembles the shards through a
 * StripedSource and runs the shared decoder core over it, so chunk
 * fetches land on different devices and the NAND streaming time
 * scales with the array width, while the decoded output stays
 * byte-identical to a single-device SAGe_Read.
 */

#ifndef SAGE_SSD_DEVICE_ARRAY_HH
#define SAGE_SSD_DEVICE_ARRAY_HH

#include "ssd/sage_device.hh"

namespace sage {

class ThreadPool;

/** An array of identical SSDs exposing the SAGe command set. */
class SageDeviceArray
{
  public:
    explicit SageDeviceArray(
        unsigned devices, SsdModel model = SsdModel::pciePerformance(),
        SageIntegration integration = SageIntegration::HostAttached);

    unsigned
    deviceCount() const
    {
        return static_cast<unsigned>(devices_.size());
    }

    SageDevice &device(unsigned index);
    const SageDevice &device(unsigned index) const;

    /** Archive bytes per stripe (one device page). */
    uint64_t stripeBytes() const;

    /** SAGe_Write: stripe @p archive across the array under @p name. */
    void sageWrite(const std::string &name, const SageArchive &archive);

    /**
     * SAGe_Read across the array: decode the striped archive through a
     * StripedSource (optionally chunk-parallel across @p pool). The
     * packed output is byte-identical to a single device's sageRead;
     * the modeled NAND/link seconds reflect the devices streaming
     * their shards concurrently.
     */
    SageReadResult sageRead(const std::string &name, OutputFormat fmt,
                            ThreadPool *pool = nullptr);

    /** Total stored bytes of @p name across all shards. */
    uint64_t fileBytes(const std::string &name) const;

    /** Remove @p name's shards from every device. */
    void remove(const std::string &name);

  private:
    std::vector<SageDevice> devices_;
    SageIntegration integration_;
};

} // namespace sage

#endif // SAGE_SSD_DEVICE_ARRAY_HH
