#include "ssd/ftl.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sage {

SageFtl::SageFtl(const NandConfig &config)
    : config_(config)
{
    const uint32_t blocks_per_channel =
        config_.diesPerChannel * config_.planesPerDie
        * config_.blocksPerPlane;
    channels_.resize(config_.channels);
    for (auto &channel : channels_) {
        channel.blocks.resize(blocks_per_channel);
        channel.freeBlocks.reserve(blocks_per_channel);
        // Keep free list in descending order so allocation pops the
        // lowest-numbered block (deterministic tests).
        for (uint32_t b = blocks_per_channel; b > 0; b--)
            channel.freeBlocks.push_back(b - 1);
    }
}

uint32_t
SageFtl::allocateBlock(Channel &channel, bool genomic)
{
    sage_assert(!channel.freeBlocks.empty(),
                "FTL out of free blocks (GC required)");
    const uint32_t block = channel.freeBlocks.back();
    channel.freeBlocks.pop_back();
    channel.blocks[block] = Block{};
    channel.blocks[block].genomic = genomic;
    channel.blocks[block].open = true;
    return block;
}

void
SageFtl::sealGenomicRow()
{
    // Pad the remainder of a half-written row so the next object (or
    // GC batch) starts at channel 0 with aligned page offsets. Padding
    // pages occupy block space but map no LPN.
    while (genomicCursor_ != 0)
        writeGenomicPage();
}

Ppa
SageFtl::writeGenomicPage()
{
    // SAGe layout: all channels' open genomic blocks advance in
    // lockstep so page offsets stay aligned (paper §5.3). Open a fresh
    // aligned block row at rotation start when needed.
    if (genomicCursor_ == 0) {
        bool need_new_row = false;
        for (auto &channel : channels_) {
            if (channel.openGenomic < 0 ||
                channel.blocks[channel.openGenomic].writePointer >=
                    config_.pagesPerBlock) {
                need_new_row = true;
            }
        }
        if (need_new_row) {
            for (auto &channel : channels_) {
                if (channel.openGenomic >= 0)
                    channel.blocks[channel.openGenomic].open = false;
                channel.openGenomic =
                    static_cast<int32_t>(allocateBlock(channel, true));
            }
        }
    }

    Channel &channel = channels_[genomicCursor_];
    Block &block = channel.blocks[channel.openGenomic];
    Ppa ppa;
    ppa.channel = genomicCursor_;
    ppa.block = static_cast<uint32_t>(channel.openGenomic);
    ppa.page = block.writePointer++;
    genomicCursor_ = (genomicCursor_ + 1) % config_.channels;
    return ppa;
}

uint64_t
SageFtl::writeGenomic(uint64_t pages)
{
    sealGenomicRow();
    const uint64_t first_lpn = l2p_.size();
    for (uint64_t p = 0; p < pages; p++) {
        const Ppa ppa = writeGenomicPage();
        channels_[ppa.channel].blocks[ppa.block].validPages++;
        l2p_.push_back(ppa);
        genomicLpn_.push_back(true);
        stats_.hostWrites++;
    }
    return first_lpn;
}

uint64_t
SageFtl::writeNormal(uint64_t pages)
{
    const uint64_t first_lpn = l2p_.size();
    for (uint64_t p = 0; p < pages; p++) {
        // Conventional dynamic allocation: fill one channel at a time.
        const uint32_t ch =
            static_cast<uint32_t>((first_lpn + p)
                                  / config_.pagesPerBlock)
            % config_.channels;
        Channel &channel = channels_[ch];
        if (channel.openNormal < 0 ||
            channel.blocks[channel.openNormal].writePointer >=
                config_.pagesPerBlock) {
            if (channel.openNormal >= 0)
                channel.blocks[channel.openNormal].open = false;
            channel.openNormal =
                static_cast<int32_t>(allocateBlock(channel, false));
        }
        Block &block = channel.blocks[channel.openNormal];
        Ppa ppa;
        ppa.channel = ch;
        ppa.block = static_cast<uint32_t>(channel.openNormal);
        ppa.page = block.writePointer++;
        block.validPages++;
        l2p_.push_back(ppa);
        genomicLpn_.push_back(false);
        stats_.hostWrites++;
    }
    return first_lpn;
}

void
SageFtl::trim(uint64_t lpn, uint64_t pages)
{
    for (uint64_t p = lpn; p < lpn + pages && p < l2p_.size(); p++) {
        if (l2p_[p]) {
            Block &block =
                channels_[l2p_[p]->channel].blocks[l2p_[p]->block];
            sage_assert(block.validPages > 0, "trim underflow");
            block.validPages--;
            l2p_[p] = std::nullopt;
        }
    }
}

std::optional<Ppa>
SageFtl::translate(uint64_t lpn) const
{
    return lpn < l2p_.size() ? l2p_[lpn] : std::nullopt;
}

std::vector<std::optional<Ppa>>
SageFtl::translateRange(uint64_t lpn, uint64_t pages) const
{
    std::vector<std::optional<Ppa>> out;
    out.reserve(pages);
    for (uint64_t p = 0; p < pages; p++)
        out.push_back(translate(lpn + p));
    return out;
}

unsigned
SageFtl::channelsSpanned(uint64_t lpn, uint64_t pages) const
{
    std::vector<bool> seen(config_.channels, false);
    unsigned count = 0;
    for (uint64_t p = 0; p < pages; p++) {
        const std::optional<Ppa> ppa = translate(lpn + p);
        if (ppa && !seen[ppa->channel]) {
            seen[ppa->channel] = true;
            count++;
        }
    }
    return count;
}

bool
SageFtl::isGenomic(uint64_t lpn) const
{
    return lpn < genomicLpn_.size() && genomicLpn_[lpn] &&
           l2p_[lpn].has_value();
}

void
SageFtl::eraseBlock(uint32_t channel, uint32_t block)
{
    channels_[channel].blocks[block] = Block{};
    channels_[channel].freeBlocks.push_back(block);
    stats_.erases++;
}

void
SageFtl::collectGarbage(unsigned want_free_blocks)
{
    // Move valid pages of victims to fresh blocks, in LPN order, so the
    // genomic striping invariant survives (grouped GC, paper §5.3).
    for (unsigned round = 0; round < 1024; round++) {
        if (minFreeBlocksPerChannel() >= want_free_blocks)
            return;

        // Victim: pick the channel-0 genomic/normal block with the
        // fewest valid pages, then collect the whole aligned row for
        // genomic blocks (one victim per channel), or just the single
        // block for normal data.
        uint32_t best_block = UINT32_MAX;
        uint32_t best_valid = UINT32_MAX;
        bool best_genomic = false;
        for (uint32_t b = 0; b < channels_[0].blocks.size(); b++) {
            const Block &block = channels_[0].blocks[b];
            // Candidates: fully written blocks (open ones only once
            // their write pointer has reached the end).
            if (block.writePointer < config_.pagesPerBlock)
                continue;
            if (block.validPages < best_valid) {
                best_valid = block.validPages;
                best_block = b;
                best_genomic = block.genomic;
            }
        }
        if (best_block == UINT32_MAX)
            return; // Nothing collectible.

        // Gather victim set.
        std::vector<std::pair<uint32_t, uint32_t>> victims;
        if (best_genomic) {
            for (uint32_t ch = 0; ch < config_.channels; ch++)
                victims.emplace_back(ch, best_block);
        } else {
            victims.emplace_back(0, best_block);
        }

        // Collect valid LPNs living in victims, in LPN order.
        std::vector<uint64_t> movers;
        for (uint64_t lpn = 0; lpn < l2p_.size(); lpn++) {
            if (!l2p_[lpn])
                continue;
            for (const auto &[ch, blk] : victims) {
                if (l2p_[lpn]->channel == ch && l2p_[lpn]->block == blk)
                    movers.push_back(lpn);
            }
        }

        // Erase victims, then rewrite movers in logical-address order
        // ("sequentially rewritten in the order they were originally
        // written", paper §5.3). Detach any open-block pointers first.
        for (const auto &[ch, blk] : victims) {
            Channel &channel = channels_[ch];
            if (channel.openGenomic == static_cast<int32_t>(blk)) {
                channel.openGenomic = -1;
                genomicCursor_ = 0; // Row torn down; restart rotation.
            }
            if (channel.openNormal == static_cast<int32_t>(blk))
                channel.openNormal = -1;
            eraseBlock(ch, blk);
        }

        // Rewrite survivors as one striped batch so they re-form
        // aligned rows (grouped GC), or via the normal allocator.
        if (best_genomic)
            sealGenomicRow();
        for (uint64_t lpn : movers) {
            if (genomicLpn_[lpn]) {
                const Ppa ppa = writeGenomicPage();
                channels_[ppa.channel].blocks[ppa.block].validPages++;
                l2p_[lpn] = ppa;
            } else {
                l2p_[lpn] = std::nullopt;
                const uint64_t new_lpn = writeNormal(1);
                l2p_[lpn] = l2p_[new_lpn];
                l2p_.pop_back();
                genomicLpn_.pop_back();
                stats_.hostWrites--; // Not a host write.
            }
            stats_.gcWrites++;
        }
    }
}

bool
SageFtl::genomicLayoutAligned() const
{
    // Walk genomic LPNs in order. A stripe row is a maximal run of
    // strictly increasing channel indices (objects are padded to start
    // each row at channel 0); all pages within one row must share the
    // same block-relative page offset so multi-plane reads can fire
    // across all channels (paper §5.3).
    bool first = true;
    uint32_t row_page = 0;
    uint32_t prev_channel = 0;
    for (uint64_t lpn = 0; lpn < l2p_.size(); lpn++) {
        if (!genomicLpn_[lpn] || !l2p_[lpn])
            continue;
        const Ppa &ppa = *l2p_[lpn];
        if (first || ppa.channel <= prev_channel) {
            row_page = ppa.page; // New stripe row begins.
        } else if (ppa.page != row_page) {
            return false;
        }
        prev_channel = ppa.channel;
        first = false;
    }
    return true;
}

unsigned
SageFtl::minFreeBlocksPerChannel() const
{
    unsigned min_free = UINT32_MAX;
    for (const auto &channel : channels_) {
        min_free = std::min(
            min_free, static_cast<unsigned>(channel.freeBlocks.size()));
    }
    return min_free;
}

} // namespace sage
