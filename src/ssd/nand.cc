#include "ssd/nand.hh"

#include <algorithm>

namespace sage {

uint64_t
SsdModel::capacityBytes() const
{
    return static_cast<uint64_t>(config_.channels)
        * config_.diesPerChannel * config_.planesPerDie
        * config_.blocksPerPlane * config_.pagesPerBlock
        * config_.pageBytes;
}

double
SsdModel::channelReadBandwidth() const
{
    // One plane senses a page in readLatencySec; the channel bus moves
    // it in pageBytes / busRate. With P planes x D dies the sense time
    // overlaps transfers, so the channel achieves
    //   min(bus rate, parallelism * page / tR).
    const double sense_rate =
        static_cast<double>(config_.pageBytes) / config_.readLatencySec
        * config_.diesPerChannel * config_.planesPerDie;
    return std::min(config_.channelBusBytesPerSec, sense_rate);
}

double
SsdModel::internalReadBandwidth() const
{
    return channelReadBandwidth() * config_.channels;
}

double
SsdModel::singleChannelReadBandwidth() const
{
    return channelReadBandwidth();
}

double
SsdModel::externalBandwidth() const
{
    switch (link_) {
      case HostLink::PciePerformance:
        return 6.8e9;   // PCIe 4.0 x4-class sequential read.
      case HostLink::SataCost:
        return 0.53e9;  // SATA-6Gb/s effective.
    }
    return 6.8e9;
}

double
SsdModel::internalReadSeconds(uint64_t bytes) const
{
    return static_cast<double>(bytes) / internalReadBandwidth();
}

double
SsdModel::externalTransferSeconds(uint64_t bytes) const
{
    return static_cast<double>(bytes) / externalBandwidth();
}

double
SsdModel::internalWriteSeconds(uint64_t bytes) const
{
    // Program-limited streaming write across all parallel units.
    const double per_channel =
        std::min(config_.channelBusBytesPerSec,
                 static_cast<double>(config_.pageBytes)
                     / config_.programLatencySec
                     * config_.diesPerChannel * config_.planesPerDie);
    return static_cast<double>(bytes)
        / (per_channel * config_.channels);
}

double
SsdModel::energyJoules(double seconds, double busy_read,
                       double busy_write) const
{
    return config_.idlePowerWatts * seconds
        + config_.activeReadPowerWatts * busy_read
        + config_.activeWritePowerWatts * busy_write;
}

SsdModel
SsdModel::pciePerformance()
{
    return SsdModel(NandConfig{}, HostLink::PciePerformance);
}

SsdModel
SsdModel::sataCost()
{
    NandConfig config;
    config.channels = 8;
    config.channelBusBytesPerSec = 0.8e9; // Cheaper bus.
    return SsdModel(config, HostLink::SataCost);
}

} // namespace sage
