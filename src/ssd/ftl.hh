/**
 * @file
 * Flash translation layer with SAGe's data layout (paper §5.3).
 *
 * SAGe FTL designates blocks as genomic or non-genomic. Genomic data is
 * striped page-by-page round-robin across channels so that the active
 * blocks in every channel share the same page offset — the invariant
 * that enables multi-plane reads across all channels at full internal
 * bandwidth. Garbage collection for genomic data is *grouped*: victim
 * blocks are selected as whole parallel units and rewritten in original
 * logical order, preserving the alignment invariant.
 */

#ifndef SAGE_SSD_FTL_HH
#define SAGE_SSD_FTL_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "ssd/nand.hh"

namespace sage {

/** Physical page address. */
struct Ppa
{
    uint32_t channel = 0;
    uint32_t block = 0;    ///< Block index within the channel.
    uint32_t page = 0;     ///< Page offset within the block.

    bool
    operator==(const Ppa &other) const
    {
        return channel == other.channel && block == other.block &&
               page == other.page;
    }
};

/** FTL statistics (for tests and Table-3-style reporting). */
struct FtlStats
{
    uint64_t hostWrites = 0;   ///< Pages written by the host.
    uint64_t gcWrites = 0;     ///< Pages rewritten by GC.
    uint64_t erases = 0;       ///< Blocks erased.

    double
    writeAmplification() const
    {
        return hostWrites == 0 ? 1.0
            : static_cast<double>(hostWrites + gcWrites) / hostWrites;
    }
};

/**
 * Page-mapping FTL with a SAGe genomic zone.
 *
 * The model tracks logical-to-physical mappings and block metadata; it
 * is functional (used to check layout invariants in tests), while the
 * timing side of the SSD lives in SsdModel.
 */
class SageFtl
{
  public:
    explicit SageFtl(const NandConfig &config);

    /**
     * Write a genomic object of @p pages pages (SAGe_Write path).
     * Pages are striped round-robin across channels with aligned page
     * offsets. Returns the first logical page number (LPN).
     */
    uint64_t writeGenomic(uint64_t pages);

    /** Write non-genomic data; normal per-channel allocation. */
    uint64_t writeNormal(uint64_t pages);

    /** Invalidate an object's pages (e.g. file deletion). */
    void trim(uint64_t lpn, uint64_t pages);

    /** Translate one logical page. */
    std::optional<Ppa> translate(uint64_t lpn) const;

    /** Translate a logical page extent [@p lpn, @p lpn + @p pages)
     *  in one call (chunk-extent fetches, ssd/sage_device.hh). */
    std::vector<std::optional<Ppa>> translateRange(uint64_t lpn,
                                                   uint64_t pages) const;

    /** Distinct channels the extent's mapped pages occupy — how wide a
     *  multi-plane read across the extent can fan out (paper §5.3). */
    unsigned channelsSpanned(uint64_t lpn, uint64_t pages) const;

    /** Whether @p lpn belongs to the genomic zone. */
    bool isGenomic(uint64_t lpn) const;

    /**
     * Run garbage collection until at least @p want_free_blocks free
     * blocks exist per channel. Genomic victims are collected as
     * grouped parallel units (paper §5.3).
     */
    void collectGarbage(unsigned want_free_blocks);

    /**
     * Layout invariant check: for every genomic object, the k-th pages
     * across channels sit at identical (block-relative) page offsets.
     * Returns true when the invariant holds.
     */
    bool genomicLayoutAligned() const;

    /** Free blocks in the fullest channel's pool. */
    unsigned minFreeBlocksPerChannel() const;

    const FtlStats &stats() const { return stats_; }
    const NandConfig &config() const { return config_; }

  private:
    struct Block
    {
        uint32_t writePointer = 0;  ///< Next free page offset.
        uint32_t validPages = 0;
        bool genomic = false;
        bool open = false;
    };

    struct Channel
    {
        std::vector<Block> blocks;
        std::vector<uint32_t> freeBlocks;
        int32_t openGenomic = -1;  ///< Block index or -1.
        int32_t openNormal = -1;
    };

    uint32_t allocateBlock(Channel &channel, bool genomic);
    void eraseBlock(uint32_t channel, uint32_t block);

    /** Pad the current genomic row so the next write starts at
     *  channel 0 with aligned page offsets. */
    void sealGenomicRow();

    /** Write one genomic page at the striping cursor. */
    Ppa writeGenomicPage();

    NandConfig config_;
    std::vector<Channel> channels_;
    std::vector<std::optional<Ppa>> l2p_;   ///< Indexed by LPN.
    std::vector<bool> genomicLpn_;
    FtlStats stats_;
    /** Striping cursor: next channel within the current genomic row. */
    uint32_t genomicCursor_ = 0;
};

} // namespace sage

#endif // SAGE_SSD_FTL_HH
