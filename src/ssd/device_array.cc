#include "ssd/device_array.hh"

#include <algorithm>

#include "io/striped.hh"
#include "util/logging.hh"

namespace sage {

SageDeviceArray::SageDeviceArray(unsigned devices, SsdModel model,
                                 SageIntegration integration)
    : integration_(integration)
{
    sage_assert(devices >= 1, "device array needs >= 1 device");
    devices_.reserve(devices);
    for (unsigned d = 0; d < devices; d++)
        devices_.emplace_back(model, integration);
}

SageDevice &
SageDeviceArray::device(unsigned index)
{
    sage_assert(index < devices_.size(), "device index out of range");
    return devices_[index];
}

const SageDevice &
SageDeviceArray::device(unsigned index) const
{
    sage_assert(index < devices_.size(), "device index out of range");
    return devices_[index];
}

uint64_t
SageDeviceArray::stripeBytes() const
{
    return devices_.front().model().config().pageBytes;
}

void
SageDeviceArray::sageWrite(const std::string &name,
                           const SageArchive &archive)
{
    std::vector<std::vector<uint8_t>> shards =
        stripeShards(archive.bytes, devices_.size(), stripeBytes());
    for (size_t d = 0; d < devices_.size(); d++)
        devices_[d].sageWriteShard(name, std::move(shards[d]));
}

SageReadResult
SageDeviceArray::sageRead(const std::string &name, OutputFormat fmt,
                          ThreadPool *pool)
{
    // Fetch each device's shard and reassemble the logical archive
    // through a StripedSource — per-chunk slices then come off the
    // device that holds them, with no host-side reassembly copy.
    std::vector<MemorySource> shards;
    shards.reserve(devices_.size());
    SageReadResult result;
    double nand_seconds = 0.0;
    for (SageDevice &dev : devices_) {
        std::vector<uint8_t> bytes = dev.read(name);
        result.compressedBytes += bytes.size();
        // Devices stream their shards concurrently: the slowest one
        // (they are near-equal by construction) sets the NAND time.
        nand_seconds = std::max(
            nand_seconds, dev.model().internalReadSeconds(bytes.size()));
        shards.emplace_back(std::move(bytes));
    }
    std::vector<const ByteSource *> refs;
    refs.reserve(shards.size());
    for (const MemorySource &shard : shards)
        refs.push_back(&shard);
    const StripedSource striped(std::move(refs), stripeBytes());

    // The shards are fully resident here, so keep the single-device
    // contract: any bit flip dies on the container CRC before a read
    // is produced (SageDevice::sageRead verifies the same way).
    SageDecoder decoder(striped, /*dna_only=*/true,
                        /*verify_checksum=*/true);
    result.packedReads = decoder.decodeAllPacked(fmt, pool);
    for (const auto &read : result.packedReads)
        result.deliveredBytes += read.size();

    result.nandSeconds = nand_seconds;
    const SsdModel &model = devices_.front().model();
    const uint64_t link_bytes =
        integration_ == SageIntegration::InStorage
            ? result.deliveredBytes : result.compressedBytes;
    // Each device's share crosses its own host link; the links run in
    // parallel, so the per-device share bounds the transfer.
    result.linkSeconds = model.externalTransferSeconds(
        (link_bytes + devices_.size() - 1) / devices_.size());
    return result;
}

uint64_t
SageDeviceArray::fileBytes(const std::string &name) const
{
    uint64_t total = 0;
    for (const SageDevice &dev : devices_)
        total += dev.fileBytes(name);
    return total;
}

void
SageDeviceArray::remove(const std::string &name)
{
    for (SageDevice &dev : devices_)
        dev.remove(name);
}

} // namespace sage
