#include "ssd/sage_device.hh"

#include <algorithm>

#include "io/container.hh"
#include "util/logging.hh"

namespace sage {

SageDevice::SageDevice(SsdModel model, SageIntegration integration)
    : model_(model), integration_(integration), ftl_(model.config())
{
}

void
SageDevice::sageWrite(const std::string &name, const SageArchive &archive)
{
    sageWriteShard(name, archive.bytes);
}

void
SageDevice::sageWriteShard(const std::string &name,
                           std::vector<uint8_t> shard)
{
    File file;
    file.data = std::move(shard);
    file.genomic = true;
    file.pages = (file.data.size() + model_.config().pageBytes - 1)
        / model_.config().pageBytes;
    file.firstLpn = ftl_.writeGenomic(std::max<uint64_t>(file.pages, 1));
    files_[name] = std::move(file);
}

SageReadResult
SageDevice::sageRead(const std::string &name, OutputFormat fmt)
{
    const File &file = lookup(name);
    sage_assert(file.genomic, "SAGe_Read on a non-genomic file: ", name);

    SageReadResult result;
    result.compressedBytes = file.data.size();

    // Functional decompression through the shared decoder core. The
    // accelerator path is DNA-only: quality stays compressed on the
    // device until a host application asks for specific blocks.
    SageDecoder decoder(file.data, /*dna_only=*/true);
    result.packedReads = decoder.decodeAllPacked(fmt);
    for (const auto &read : result.packedReads)
        result.deliveredBytes += read.size();

    // Timing: compressed stream comes off NAND at full striped
    // bandwidth (the SAGe layout's whole point, §5.3).
    result.nandSeconds = model_.internalReadSeconds(file.data.size());
    if (integration_ == SageIntegration::InStorage) {
        // Mode 3: decompressed data crosses the external link.
        result.linkSeconds =
            model_.externalTransferSeconds(result.deliveredBytes);
    } else {
        // Modes 1/2: compressed data crosses the link; decompression
        // happens host-side (by SAGe hardware or software).
        result.linkSeconds =
            model_.externalTransferSeconds(file.data.size());
    }
    return result;
}

void
SageDevice::write(const std::string &name,
                  const std::vector<uint8_t> &data)
{
    File file;
    file.data = data;
    file.genomic = false;
    file.pages = (data.size() + model_.config().pageBytes - 1)
        / model_.config().pageBytes;
    file.firstLpn = ftl_.writeNormal(std::max<uint64_t>(file.pages, 1));
    files_[name] = std::move(file);
}

std::vector<uint8_t>
SageDevice::read(const std::string &name) const
{
    return lookup(name).data;
}

std::vector<SageChunkExtent>
SageDevice::sageChunkExtents(const std::string &name) const
{
    const File &file = lookup(name);
    sage_assert(file.genomic, "chunk extents of a non-genomic file: ",
                name);

    const MemorySource source(file.data);
    const StreamDirectory dir = StreamDirectory::parse(source);
    const SageParams params =
        SageParams::deserialize(dir.load(source, "params"));

    // DNA stream extents in ChunkStreamIndex order (docs/format.md).
    std::array<StreamExtent, kChunkStreamCount> extents;
    for (unsigned s = 0; s < kChunkStreamCount; s++)
        extents[s] = dir.extent(kChunkStreamNames[s]);

    // Per-chunk slice offsets: the chunk table for v2, one chunk
    // spanning every stream for v1.
    std::vector<std::array<uint64_t, kChunkStreamCount>> offsets;
    if (params.version >= kFormatVersionChunked) {
        const ChunkTable table =
            ChunkTable::deserialize(dir.load(source, "chunks"));
        for (const ChunkTable::Entry &entry : table.entries)
            offsets.push_back(entry.offsets);
    } else {
        offsets.emplace_back();
    }

    const uint32_t page = model_.config().pageBytes;
    std::vector<SageChunkExtent> out;
    out.reserve(offsets.size());
    for (size_t c = 0; c < offsets.size(); c++) {
        SageChunkExtent extent;
        uint64_t min_byte = UINT64_MAX;
        uint64_t max_byte = 0;
        for (unsigned s = 0; s < kChunkStreamCount; s++) {
            const uint64_t begin =
                extents[s].offset + offsets[c][s];
            const uint64_t end = c + 1 < offsets.size()
                ? extents[s].offset + offsets[c + 1][s]
                : extents[s].offset + extents[s].size;
            sage_assert(begin <= end, "chunk offsets out of order");
            if (begin == end)
                continue;
            extent.bytes += end - begin;
            min_byte = std::min(min_byte, begin);
            max_byte = std::max(max_byte, end);
        }
        if (extent.bytes > 0) {
            const uint64_t first_page = min_byte / page;
            const uint64_t last_page = (max_byte - 1) / page;
            extent.firstLpn = file.firstLpn + first_page;
            extent.lpnCount = last_page - first_page + 1;
        }
        out.push_back(extent);
    }
    return out;
}

double
SageDevice::conventionalReadSeconds(const std::string &name) const
{
    const File &file = lookup(name);
    // Internal fetch and external transfer overlap; the slower side
    // dominates a streaming read.
    const double internal = file.genomic
        ? model_.internalReadSeconds(file.data.size())
        : static_cast<double>(file.data.size())
              / model_.internalReadBandwidth();
    const double external =
        model_.externalTransferSeconds(file.data.size());
    return std::max(internal, external);
}

uint64_t
SageDevice::fileBytes(const std::string &name) const
{
    return lookup(name).data.size();
}

void
SageDevice::remove(const std::string &name)
{
    auto it = files_.find(name);
    if (it == files_.end())
        return;
    ftl_.trim(it->second.firstLpn, it->second.pages);
    files_.erase(it);
}

const SageDevice::File &
SageDevice::lookup(const std::string &name) const
{
    auto it = files_.find(name);
    if (it == files_.end())
        sage_fatal("no such file on device: ", name);
    return it->second;
}

} // namespace sage
