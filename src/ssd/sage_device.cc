#include "ssd/sage_device.hh"

#include "util/logging.hh"

namespace sage {

SageDevice::SageDevice(SsdModel model, SageIntegration integration)
    : model_(model), integration_(integration), ftl_(model.config())
{
}

void
SageDevice::sageWrite(const std::string &name, const SageArchive &archive)
{
    File file;
    file.data = archive.bytes;
    file.genomic = true;
    file.pages = (archive.bytes.size() + model_.config().pageBytes - 1)
        / model_.config().pageBytes;
    file.firstLpn = ftl_.writeGenomic(std::max<uint64_t>(file.pages, 1));
    files_[name] = std::move(file);
}

SageReadResult
SageDevice::sageRead(const std::string &name, OutputFormat fmt)
{
    const File &file = lookup(name);
    sage_assert(file.genomic, "SAGe_Read on a non-genomic file: ", name);

    SageReadResult result;
    result.compressedBytes = file.data.size();

    // Functional decompression through the shared decoder core. The
    // accelerator path is DNA-only: quality stays compressed on the
    // device until a host application asks for specific blocks.
    SageDecoder decoder(file.data, /*dna_only=*/true);
    result.packedReads = decoder.decodeAllPacked(fmt);
    for (const auto &read : result.packedReads)
        result.deliveredBytes += read.size();

    // Timing: compressed stream comes off NAND at full striped
    // bandwidth (the SAGe layout's whole point, §5.3).
    result.nandSeconds = model_.internalReadSeconds(file.data.size());
    if (integration_ == SageIntegration::InStorage) {
        // Mode 3: decompressed data crosses the external link.
        result.linkSeconds =
            model_.externalTransferSeconds(result.deliveredBytes);
    } else {
        // Modes 1/2: compressed data crosses the link; decompression
        // happens host-side (by SAGe hardware or software).
        result.linkSeconds =
            model_.externalTransferSeconds(file.data.size());
    }
    return result;
}

void
SageDevice::write(const std::string &name,
                  const std::vector<uint8_t> &data)
{
    File file;
    file.data = data;
    file.genomic = false;
    file.pages = (data.size() + model_.config().pageBytes - 1)
        / model_.config().pageBytes;
    file.firstLpn = ftl_.writeNormal(std::max<uint64_t>(file.pages, 1));
    files_[name] = std::move(file);
}

const std::vector<uint8_t> &
SageDevice::read(const std::string &name) const
{
    return lookup(name).data;
}

double
SageDevice::conventionalReadSeconds(const std::string &name) const
{
    const File &file = lookup(name);
    // Internal fetch and external transfer overlap; the slower side
    // dominates a streaming read.
    const double internal = file.genomic
        ? model_.internalReadSeconds(file.data.size())
        : static_cast<double>(file.data.size())
              / model_.internalReadBandwidth();
    const double external =
        model_.externalTransferSeconds(file.data.size());
    return std::max(internal, external);
}

uint64_t
SageDevice::fileBytes(const std::string &name) const
{
    return lookup(name).data.size();
}

void
SageDevice::remove(const std::string &name)
{
    auto it = files_.find(name);
    if (it == files_.end())
        return;
    ftl_.trim(it->second.firstLpn, it->second.pages);
    files_.erase(it);
}

const SageDevice::File &
SageDevice::lookup(const std::string &name) const
{
    auto it = files_.find(name);
    if (it == files_.end())
        sage_fatal("no such file on device: ", name);
    return it->second;
}

} // namespace sage
