/**
 * @file
 * NAND flash geometry and timing model (MQSim stand-in; DESIGN.md §2).
 *
 * Models the quantities the paper's evaluation depends on: per-channel
 * streaming read bandwidth (page read latency pipelined against channel
 * bus transfer, multiplied by plane/die parallelism), aggregate internal
 * bandwidth across channels, and the external host link (PCIe vs SATA).
 */

#ifndef SAGE_SSD_NAND_HH
#define SAGE_SSD_NAND_HH

#include <cstdint>

namespace sage {

/** External host interface type (paper §7 evaluates both). */
enum class HostLink : uint8_t {
    PciePerformance,  ///< Performance-optimized NVMe SSD (PM1735-like).
    SataCost,         ///< Cost-optimized SATA SSD (870 EVO-like).
};

/** NAND + controller geometry and timings. */
struct NandConfig
{
    unsigned channels = 8;
    unsigned diesPerChannel = 4;
    unsigned planesPerDie = 2;
    uint32_t pageBytes = 16 * 1024;
    uint32_t pagesPerBlock = 256;
    uint32_t blocksPerPlane = 1024;

    double readLatencySec = 60e-6;       ///< tR (TLC page sense).
    double programLatencySec = 700e-6;   ///< tPROG.
    double eraseLatencySec = 3.5e-3;     ///< tBERS.
    double channelBusBytesPerSec = 1.2e9; ///< ONFI/Toggle bus rate.

    double idlePowerWatts = 1.2;
    double activeReadPowerWatts = 4.2;
    double activeWritePowerWatts = 5.5;
};

/** SSD-level bandwidth/latency/energy model. */
class SsdModel
{
  public:
    explicit SsdModel(NandConfig config = {},
                      HostLink link = HostLink::PciePerformance)
        : config_(config), link_(link)
    {}

    /** Usable capacity in bytes. */
    uint64_t capacityBytes() const;

    /**
     * Per-channel streaming read bandwidth (bytes/s): page sense
     * pipelined with bus transfer across dies/planes; with enough
     * parallelism the channel bus is the limit (paper §5.3 relies on
     * multi-plane reads across all channels to reach full bandwidth).
     */
    double channelReadBandwidth() const;

    /** Aggregate internal streaming read bandwidth across channels. */
    double internalReadBandwidth() const;

    /**
     * Internal read bandwidth when data is NOT striped SAGe-style and a
     * stream occupies a single channel (what a conventional layout
     * yields for one sequential file region).
     */
    double singleChannelReadBandwidth() const;

    /** External host link bandwidth (bytes/s). */
    double externalBandwidth() const;

    /** Seconds to stream @p bytes NAND -> controller (full striping). */
    double internalReadSeconds(uint64_t bytes) const;

    /** Seconds to move @p bytes controller -> host over the link. */
    double externalTransferSeconds(uint64_t bytes) const;

    /** Seconds to stream-write @p bytes (program-limited). */
    double internalWriteSeconds(uint64_t bytes) const;

    /** Energy for a window of @p seconds with @p busy_read /
     *  @p busy_write seconds of NAND activity. */
    double energyJoules(double seconds, double busy_read,
                        double busy_write) const;

    const NandConfig &config() const { return config_; }
    HostLink link() const { return link_; }

    /** Paper §7 device presets. */
    static SsdModel pciePerformance();
    static SsdModel sataCost();

  private:
    NandConfig config_;
    HostLink link_;
};

} // namespace sage

#endif // SAGE_SSD_NAND_HH
