/**
 * @file
 * QoS vocabulary of the archive service layer (service/service.hh):
 * request priorities, per-request deadlines, cooperative cancellation
 * tokens, and the status a request completes with.
 *
 * A RequestOptions travels with every scheduled request and is checked
 * at the two points where abandoning is cheap: when the scheduler
 * dequeues the request (it may have sat behind a deep backlog) and
 * before each chunk decode (the expensive step). An expired or
 * cancelled request completes with a distinct RequestStatus instead of
 * burning a worker on an answer nobody is waiting for — that is what
 * lets an interactive client bail out from behind a 64-client batch
 * backlog instead of inflating its own tail latency.
 */

#ifndef SAGE_SERVICE_QOS_HH
#define SAGE_SERVICE_QOS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace sage {

/** Scheduling class of a service request. */
enum class RequestPriority : uint8_t {
    Interactive = 0,  ///< Latency-sensitive foreground reads.
    Normal = 1,       ///< Default for client requests.
    Background = 2,   ///< Cache warms / session readahead.
};

constexpr unsigned kRequestPriorityCount = 3;

/** Printable name of a priority class. */
inline const char *
requestPriorityName(RequestPriority priority)
{
    switch (priority) {
    case RequestPriority::Interactive: return "interactive";
    case RequestPriority::Normal: return "normal";
    case RequestPriority::Background: return "background";
    }
    return "?";
}

/** How a scheduled request completed. */
enum class RequestStatus : uint8_t {
    Ok = 0,         ///< Served in full.
    Expired = 1,    ///< Deadline passed before the work was done.
    Cancelled = 2,  ///< The request's CancelToken fired.
    /** A chunk this request needed failed to decode (I/O error or
     *  corrupt data). Scoped to this request: other clients and other
     *  chunks are unaffected, and unlike Expired/Cancelled the
     *  condition is not sticky — retrying the same request may
     *  succeed (e.g. after a transient I/O fault). */
    Error = 3,
};

/** Printable name of a completion status. */
inline const char *
requestStatusName(RequestStatus status)
{
    switch (status) {
    case RequestStatus::Ok: return "ok";
    case RequestStatus::Expired: return "expired";
    case RequestStatus::Cancelled: return "cancelled";
    case RequestStatus::Error: return "error";
    }
    return "?";
}

class CancelSource;

/**
 * Observer half of a cancellation pair. Default-constructed tokens are
 * never cancelled (the common no-cancellation case costs one null
 * check). Copies share the source's flag; checking is a relaxed-ish
 * atomic load, safe from any thread.
 */
class CancelToken
{
  public:
    CancelToken() = default;

    /** True when this token is wired to a CancelSource at all. */
    bool connected() const { return flag_ != nullptr; }

    /** True once the source fired. */
    bool
    cancelled() const
    {
        return flag_ && flag_->load(std::memory_order_acquire);
    }

  private:
    friend class CancelSource;
    explicit CancelToken(
        std::shared_ptr<const std::atomic<bool>> flag)
        : flag_(std::move(flag))
    {}

    std::shared_ptr<const std::atomic<bool>> flag_;
};

/**
 * Owner half of a cancellation pair: hand token() to any number of
 * requests, call cancel() once to abandon them all. Cancellation is
 * cooperative and sticky — there is no un-cancel.
 */
class CancelSource
{
  public:
    CancelSource()
        : flag_(std::make_shared<std::atomic<bool>>(false))
    {}

    void cancel() { flag_->store(true, std::memory_order_release); }

    bool
    cancelled() const
    {
        return flag_->load(std::memory_order_acquire);
    }

    CancelToken token() const { return CancelToken(flag_); }

  private:
    std::shared_ptr<std::atomic<bool>> flag_;
};

/**
 * Per-request QoS: priority class, absolute deadline, cancellation
 * token. The default is the pre-QoS behavior — Normal priority, no
 * deadline, no cancellation — so plain calls pay nothing.
 */
struct RequestOptions
{
    using Clock = std::chrono::steady_clock;

    RequestPriority priority = RequestPriority::Normal;

    /** Absolute deadline; Clock::time_point::max() = none. Checked at
     *  dequeue and before each chunk decode, not mid-decode. */
    Clock::time_point deadline = Clock::time_point::max();

    CancelToken cancel;

    bool
    hasDeadline() const
    {
        return deadline != Clock::time_point::max();
    }

    /** True when any abandon condition could ever trigger — lets the
     *  hot path skip clock reads entirely for plain requests. */
    bool
    abandonable() const
    {
        return hasDeadline() || cancel.connected();
    }

    /**
     * Evaluate the request's fate right now. Cancellation wins over
     * expiry when both hold (the caller explicitly walked away).
     */
    RequestStatus
    checkNow() const
    {
        if (cancel.cancelled())
            return RequestStatus::Cancelled;
        if (hasDeadline() && Clock::now() >= deadline)
            return RequestStatus::Expired;
        return RequestStatus::Ok;
    }

    /** An absolute deadline @p seconds from now. */
    static Clock::time_point
    deadlineIn(double seconds)
    {
        return Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(seconds));
    }
};

} // namespace sage

#endif // SAGE_SERVICE_QOS_HH
