/**
 * @file
 * Decoded-chunk cache for the archive service layer
 * (service/service.hh): a sharded, byte-budgeted LRU over immutable
 * decoded chunks, with single-flight decode so N clients hitting the
 * same cold chunk trigger exactly one decompression.
 *
 * Decoded chunks are shared as shared_ptr<const DecodedChunk>: an
 * eviction never invalidates a chunk a client is still reading — the
 * cache merely drops its reference, and the memory goes away when the
 * last reader does. That is what lets the cache run with a tiny
 * budget under heavy concurrency (the stress tests do exactly this)
 * without copying read data per client.
 */

#ifndef SAGE_SERVICE_CHUNK_CACHE_HH
#define SAGE_SERVICE_CHUNK_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "genomics/read.hh"

namespace sage {

/** One decoded, immutable archive chunk (stored-order reads). */
struct DecodedChunk
{
    std::vector<Read> reads;
    uint64_t firstRead = 0;  ///< Stored-order index of reads[0].
    uint64_t bytes = 0;      ///< Resident-size estimate for budgeting.

    /** Estimate the resident footprint of @p reads (string payloads
     *  plus per-read bookkeeping). */
    static uint64_t residentBytes(const std::vector<Read> &reads);
};

using DecodedChunkPtr = std::shared_ptr<const DecodedChunk>;

/** Aggregated cache counters (snapshot; see ChunkCache::stats). */
struct ChunkCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;       ///< Each miss is one decode.
    uint64_t evictions = 0;
    uint64_t inserts = 0;
    /** Requests that joined another request's in-flight decode
     *  instead of starting their own (single-flight coalescing). */
    uint64_t coalescedWaits = 0;
    uint64_t residentBytes = 0;
    uint64_t residentChunks = 0;

    double
    hitRate() const
    {
        const uint64_t lookups = hits + misses + coalescedWaits;
        return lookups == 0
            ? 0.0
            : static_cast<double>(hits + coalescedWaits) /
                static_cast<double>(lookups);
    }
};

/**
 * Sharded LRU cache of decoded chunks.
 *
 * The byte budget is split evenly across shards; chunk index modulo
 * shard count picks the shard, so a sequential client walk spreads
 * across every shard lock. All methods are thread-safe. The decode
 * callback passed to getOrDecode runs outside any shard lock.
 */
class ChunkCache
{
  public:
    /** @p budget_bytes total decoded-byte budget (0 disables caching:
     *  every lookup decodes, nothing is retained); @p shards is
     *  clamped to at least 1. */
    explicit ChunkCache(uint64_t budget_bytes, unsigned shards = 8);

    ChunkCache(const ChunkCache &) = delete;
    ChunkCache &operator=(const ChunkCache &) = delete;

    using DecodeFn = std::function<DecodedChunkPtr(size_t chunk)>;

    /**
     * Return chunk @p chunk, decoding at most once across all
     * concurrent callers: a hit returns the cached pointer; the first
     * misser runs @p decode (unlocked) while later requesters for the
     * same chunk block on its completion; the result is inserted and
     * the shard evicted down to budget (LRU order). An entry larger
     * than its shard's budget is served but not retained.
     */
    DecodedChunkPtr getOrDecode(size_t chunk, const DecodeFn &decode);

    /** True when @p chunk is resident right now (no stats impact, no
     *  LRU touch — a test/introspection helper). */
    bool contains(size_t chunk) const;

    /** Drop every resident entry (in-flight decodes are unaffected
     *  and still publish to their waiters, but are not retained). */
    void clear();

    /** Aggregate counters across shards. */
    ChunkCacheStats stats() const;

    uint64_t budgetBytes() const { return budget_; }
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

  private:
    /** An in-flight decode other callers can join. */
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable done;
        DecodedChunkPtr result;  ///< Set exactly once, then notified.
        bool ready = false;
        /** Shard generation at takeoff: a clear() in between bumps
         *  the shard's counter, and the stale flight's result is then
         *  served to its waiters but not retained. */
        uint64_t generation = 0;
    };

    struct Entry
    {
        size_t chunk = 0;
        DecodedChunkPtr data;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<size_t, std::list<Entry>::iterator> map;
        std::unordered_map<size_t, std::shared_ptr<Flight>> flights;
        uint64_t residentBytes = 0;
        uint64_t generation = 0;  ///< Bumped by clear().

        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t inserts = 0;
        uint64_t coalescedWaits = 0;
    };

    Shard &shardFor(size_t chunk);
    const Shard &shardFor(size_t chunk) const;

    /** Insert under the shard lock, then evict to budget. */
    void insertAndTrim(Shard &shard, size_t chunk,
                       const DecodedChunkPtr &data);

    uint64_t budget_;
    uint64_t shardBudget_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace sage

#endif // SAGE_SERVICE_CHUNK_CACHE_HH
