/**
 * @file
 * Decoded-chunk cache for the archive service layer
 * (service/service.hh): a sharded, byte-budgeted cache over immutable
 * decoded chunks with scan-resistant (SIEVE-style) admission, a ghost
 * set that lets genuinely re-referenced chunks earn protected
 * residency, and single-flight decode so N clients hitting the same
 * cold chunk trigger exactly one decompression.
 *
 * Decoded chunks are shared as shared_ptr<const DecodedChunk>: an
 * eviction never invalidates a chunk a client is still reading — the
 * cache merely drops its reference, and the memory goes away when the
 * last reader does. That is what lets the cache run with a tiny
 * budget under heavy concurrency (the stress tests do exactly this)
 * without copying read data per client.
 *
 * Why not LRU: when every client performs a sequential walk, pure LRU
 * degenerates — each single-touch streaming chunk evicts something on
 * insert, so a genuinely hot chunk is flushed by traffic that will
 * never come back (BENCH_service.json's 4 MiB x 64-client row
 * documented exactly this). SIEVE keeps a visited bit per entry and
 * evicts at a hand that sweeps from the oldest entry toward the
 * newest: one-touch scan traffic is evicted almost immediately, while
 * an entry that was re-referenced since the hand last passed survives
 * the sweep. The ghost set (recently evicted keys, no payload) closes
 * the loop: a miss on a ghosted key means the chunk *was* wanted again
 * after eviction, so its re-decode is admitted pre-visited — it
 * re-enters as a protected resident rather than scan fodder.
 */

#ifndef SAGE_SERVICE_CHUNK_CACHE_HH
#define SAGE_SERVICE_CHUNK_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "genomics/read.hh"
#include "service/qos.hh"
#include "util/status.hh"

namespace sage {

/** One decoded, immutable archive chunk (stored-order reads). */
struct DecodedChunk
{
    std::vector<Read> reads;
    uint64_t firstRead = 0;  ///< Stored-order index of reads[0].
    uint64_t bytes = 0;      ///< Resident-size estimate for budgeting.

    /** Estimate the resident footprint of @p reads (string payloads
     *  plus per-read bookkeeping). */
    static uint64_t residentBytes(const std::vector<Read> &reads);
};

using DecodedChunkPtr = std::shared_ptr<const DecodedChunk>;

/** Aggregated cache counters (snapshot; see ChunkCache::stats). */
struct ChunkCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;       ///< Each miss is one decode.
    uint64_t evictions = 0;
    uint64_t inserts = 0;      ///< Admissions into the resident set.
    /** Requests that joined another request's in-flight decode
     *  instead of starting their own (single-flight coalescing). */
    uint64_t coalescedWaits = 0;
    /** Coalesced waiters that abandoned the wait (their request was
     *  cancelled or expired); the leader still populates the cache. */
    uint64_t abandonedWaits = 0;
    /** Misses whose key was in the ghost set: the chunk was evicted
     *  recently and wanted again, so it was re-admitted protected
     *  (pre-visited — it survives the next hand sweep). */
    uint64_t ghostHits = 0;
    /** Decodes served but not retained because the entry alone
     *  exceeds its shard's byte budget. */
    uint64_t oversizedRejects = 0;
    /** Decodes that failed (I/O error / corrupt chunk). Nothing was
     *  cached; the failure was delivered to the leader and every
     *  coalesced waiter, and the next request retries the decode. */
    uint64_t decodeErrors = 0;
    uint64_t residentBytes = 0;
    uint64_t residentChunks = 0;
    uint64_t ghostChunks = 0;  ///< Keys currently in the ghost set.

    double
    hitRate() const
    {
        const uint64_t lookups = hits + misses + coalescedWaits;
        return lookups == 0
            ? 0.0
            : static_cast<double>(hits + coalescedWaits) /
                static_cast<double>(lookups);
    }
};

/**
 * Sharded, scan-resistant cache of decoded chunks.
 *
 * The byte budget is split evenly across shards; chunk index modulo
 * shard count picks the shard, so a sequential client walk spreads
 * across every shard lock. All methods are thread-safe. The decode
 * callback passed to getOrDecode runs outside any shard lock.
 */
class ChunkCache
{
  public:
    /** @p budget_bytes total decoded-byte budget (0 disables caching:
     *  every lookup decodes, nothing is retained); @p shards is
     *  clamped to at least 1; @p ghost_keys_per_shard bounds the
     *  ghost set (keys only, a few bytes each). */
    explicit ChunkCache(uint64_t budget_bytes, unsigned shards = 8,
                        unsigned ghost_keys_per_shard = 128);

    ChunkCache(const ChunkCache &) = delete;
    ChunkCache &operator=(const ChunkCache &) = delete;

    /** Decode callback: a chunk pointer on success, a non-Ok Status on
     *  failure (lambdas returning a bare DecodedChunkPtr convert). */
    using DecodeFn =
        std::function<StatusOr<DecodedChunkPtr>(size_t chunk)>;

    /**
     * Return chunk @p chunk, decoding at most once across all
     * concurrent callers: a hit returns the cached pointer (and marks
     * the entry visited — it will survive the next eviction sweep);
     * the first misser runs @p decode (unlocked) while later
     * requesters for the same chunk block on its completion; the
     * result is admitted and the shard evicted down to budget (SIEVE
     * order). An entry larger than its shard's budget is served but
     * not retained.
     *
     * When @p qos is non-null, a caller *waiting on another request's
     * decode* re-checks it while parked and returns nullptr if the
     * request is cancelled or expired — the leader is unaffected and
     * still populates the cache for everyone else. A caller that
     * becomes the leader always completes its decode (followers may
     * be parked on it).
     *
     * A failed decode — @p decode returned a Status or threw
     * StatusError — never poisons the cache: nothing is inserted, the
     * flight is torn down so the next request retries, and nullptr is
     * returned with the failure copied into @p error (for the leader
     * *and* every coalesced waiter; an abandoned wait leaves @p error
     * Ok). Decode exceptions other than StatusError remain fatal —
     * they indicate bugs, not bad data.
     */
    DecodedChunkPtr getOrDecode(size_t chunk, const DecodeFn &decode,
                                const RequestOptions *qos = nullptr,
                                Status *error = nullptr);

    /** True when @p chunk is resident right now (no stats impact, no
     *  visited-bit touch — a test/introspection helper). */
    bool contains(size_t chunk) const;

    /** Drop every resident entry and the ghost set (in-flight decodes
     *  are unaffected and still publish to their waiters, but are not
     *  retained). */
    void clear();

    /** Aggregate counters across shards. */
    ChunkCacheStats stats() const;

    uint64_t budgetBytes() const { return budget_; }
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

  private:
    /** An in-flight decode other callers can join. */
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable done;
        DecodedChunkPtr result;  ///< Set exactly once, then notified.
        /** Non-Ok (with result null) when the decode failed; waiters
         *  surface it instead of hanging or faulting. */
        Status status;
        bool ready = false;
        /** Shard generation at takeoff: a clear() in between bumps
         *  the shard's counter, and the stale flight's result is then
         *  served to its waiters but not retained. */
        uint64_t generation = 0;
    };

    struct Entry
    {
        size_t chunk = 0;
        DecodedChunkPtr data;
        /** Re-referenced since insertion / since the hand last swept
         *  past. A visited entry survives one eviction sweep. */
        bool visited = false;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        /** Front = most recently inserted. Entries never move; only
         *  the visited bit and the hand change on a hit/sweep. */
        std::list<Entry> entries;
        std::unordered_map<size_t, std::list<Entry>::iterator> map;
        /** SIEVE eviction hand: next eviction candidate, sweeping
         *  from the oldest entry toward the newest; entries.end()
         *  means "reset to the oldest". */
        std::list<Entry>::iterator hand;
        /** Ghost set: keys of recently evicted chunks, FIFO-bounded.
         *  Front = most recently ghosted. */
        std::list<size_t> ghosts;
        std::unordered_map<size_t, std::list<size_t>::iterator>
            ghostMap;
        std::unordered_map<size_t, std::shared_ptr<Flight>> flights;
        uint64_t residentBytes = 0;
        uint64_t generation = 0;  ///< Bumped by clear().

        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t inserts = 0;
        uint64_t coalescedWaits = 0;
        uint64_t abandonedWaits = 0;
        uint64_t ghostHits = 0;
        uint64_t oversizedRejects = 0;
        uint64_t decodeErrors = 0;

        Shard() : hand(entries.end()) {}
    };

    Shard &shardFor(size_t chunk);
    const Shard &shardFor(size_t chunk) const;

    /** Admit under the shard lock (ghost lookup decides the visited
     *  bit), then evict to budget with the SIEVE hand. */
    void insertAndTrim(Shard &shard, size_t chunk,
                       const DecodedChunkPtr &data);

    /** Evict at the hand until the shard fits its budget. */
    void evictToBudget(Shard &shard);

    /** Record an evicted key in the bounded ghost set. */
    void ghostKey(Shard &shard, size_t chunk);

    uint64_t budget_;
    uint64_t shardBudget_;
    unsigned ghostCapacity_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

} // namespace sage

#endif // SAGE_SERVICE_CHUNK_CACHE_HH
