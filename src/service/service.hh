/**
 * @file
 * SageArchiveService: a concurrent, multi-client serving layer over
 * one open SAGe archive.
 *
 * The paper's thesis is that decode stops being the bottleneck once
 * it is cheap and overlapped with I/O (§5.2); this layer addresses
 * the next bottleneck at scale — many consumers of the *same*
 * archive each re-reading and re-decoding the same chunks. The
 * service owns an open archive (any ByteSource: file, memory, or a
 * striped device array) and serves N clients through:
 *
 *   - a sharded, byte-budgeted, scan-resistant cache of decoded
 *     chunks (service/chunk_cache.hh: SIEVE-style admission with a
 *     ghost set) with single-flight decode, so a hot chunk is
 *     decompressed once no matter how many clients want it and a
 *     64-client sequential sweep cannot flush it;
 *   - a request scheduler that drains readRange()/readChunk()
 *     requests onto a shared util/thread_pool in FIFO-within-priority
 *     order (an Interactive request overtakes queued Background
 *     warms, requests of equal priority run in arrival order);
 *   - per-request QoS (service/qos.hh): RequestOptions carry a
 *     deadline and a CancelToken, checked when the request is
 *     dequeued and before each chunk decode, so an interactive
 *     request abandons the queue instead of waiting out a deep batch
 *     backlog; expired/cancelled requests complete with a distinct
 *     RequestStatus and are counted in ServiceStats;
 *   - per-client ServiceSession handles that track sequential
 *     position, letting the service speculate each client's next
 *     chunk into the cache (the serving-layer analogue of
 *     SageReaderOptions::prefetch);
 *   - ServiceStats: request/byte counters, cache hit rate, queue
 *     depth, and request latency both overall and per priority class
 *     (util/histogram.hh's LatencyHistogram), snapshotted
 *     consistently against scheduler mutation.
 *
 * Requests address reads by stored-order index — readRange(first,
 * count) spans chunk boundaries transparently — or whole chunks by
 * index. Sync, future- and callback-based async flavors all funnel
 * through the same scheduler. See docs/service.md for the cache and
 * scheduling model plus sizing guidance.
 */

#ifndef SAGE_SERVICE_SERVICE_HH
#define SAGE_SERVICE_SERVICE_HH

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/decoder.hh"
#include "io/file_stream.hh"
#include "service/chunk_cache.hh"
#include "service/qos.hh"
#include "util/histogram.hh"

namespace sage {

class ThreadPool;

/** Service construction knobs. */
struct ServiceOptions
{
    /** Decoded-chunk cache budget. The decoded working set is roughly
     *  the FASTQ size of the cached span (docs/service.md has sizing
     *  guidance); 0 disables retention (every request decodes). */
    uint64_t cacheBudgetBytes = 256ull << 20;

    /** Cache shards (lock striping; power of two recommended). */
    unsigned cacheShards = 8;

    /** Skip host-side header/quality streams, like
     *  SageReaderOptions::dnaOnly (accelerator-feeding deployments). */
    bool dnaOnly = false;

    /** Worker pool the scheduler drains onto (must outlive the
     *  service). When null the service owns a pool of
     *  @ref ownedPoolThreads workers. */
    ThreadPool *pool = nullptr;

    /** Owned-pool size when @ref pool is null (0 = hardware
     *  concurrency). */
    unsigned ownedPoolThreads = 0;

    /** Speculate each session's next chunk into the cache as a
     *  Background request when its sequential walk crosses a chunk
     *  boundary. */
    bool sessionReadahead = true;

    /** Re-attempts of a chunk decode that failed with a *transient*
     *  I/O error (StatusCode::IoError) before the failure is delivered
     *  to the request. Corrupt/truncated data never retries — bad
     *  bytes stay bad. 0 makes every fault surface immediately
     *  (deterministic counter tests want this). */
    unsigned decodeRetries = 2;
};

/** What a QoS-bearing request completed with. */
struct ReadResult
{
    RequestStatus status = RequestStatus::Ok;
    /** Empty unless status == Ok (an abandoned or errored request
     *  delivers no partial data — the reads it did assemble are
     *  dropped). */
    std::vector<Read> reads;
    /** Why status == Error, when it is (the failing chunk's decode
     *  Status: IoError, Corrupt, ...); Ok otherwise. */
    Status error;

    bool ok() const { return status == RequestStatus::Ok; }
};

/** Snapshot of the service's counters (see stats()). */
struct ServiceStats
{
    /** Completed requests (every status), total and per priority. */
    uint64_t requests = 0;
    std::array<uint64_t, kRequestPriorityCount> requestsByPriority{};

    /** Requests that completed Expired / Cancelled / Error (subsets
     *  of @ref requests; the remainder completed Ok). */
    uint64_t expired = 0;
    uint64_t cancelled = 0;
    uint64_t errored = 0;

    /** Chunk decodes that ultimately failed with an I/O-side fault
     *  (IoError after retries, or an exhausted retry budget). Counted
     *  once per failed decode, not per affected request — coalesced
     *  waiters share their leader's count, so these reconcile with
     *  fault-injection counters. */
    uint64_t ioErrors = 0;

    /** Chunk decodes rejected for bad bytes (Corrupt / Truncated /
     *  OutOfRange). Same once-per-decode accounting as ioErrors. */
    uint64_t corruptChunks = 0;

    /** Transient-fault decode re-attempts (each successful retry is
     *  a request that degraded gracefully instead of erroring). */
    uint64_t retries = 0;

    uint64_t readsServed = 0;  ///< Reads delivered to clients.
    uint64_t bytesServed = 0;  ///< Payload bytes (bases + quality).

    /** Requests queued / executing right now, and the queue's
     *  high-water mark. */
    uint64_t queueDepth = 0;
    uint64_t executing = 0;
    uint64_t maxQueueDepth = 0;

    /** Background cache warms issued by session readahead. */
    uint64_t readaheadWarms = 0;

    /** Cache counters (hit rate, evictions, ghost hits, resident). */
    ChunkCacheStats cache;

    /** Request latency, enqueue to completion, across every priority
     *  class (kept for compatibility — the per-priority summaries
     *  below are the ones to alert on: this mix dilutes an
     *  interactive p99 with background warms that by design soak at
     *  the queue tail). */
    uint64_t latencySamples = 0;
    double meanLatencySeconds = 0.0;
    double p50LatencySeconds = 0.0;
    double p99LatencySeconds = 0.0;
    double maxLatencySeconds = 0.0;

    /** Latency split by priority class (index by RequestPriority). */
    std::array<LatencySummary, kRequestPriorityCount>
        latencyByPriority{};
};

class SageArchiveService;

/**
 * Per-client handle: a sequential cursor over the archive served
 * through the shared cache. Cheap to create (no decode until the
 * first read); must not outlive its service. Not thread-safe — one
 * session per client thread, any number of sessions per service.
 *
 * A session opened with RequestOptions carrying a CancelToken (or
 * deadline) stops fetching once it fires: read() returns the reads
 * assembled so far (possibly none) and lastStatus() reports why. The
 * cancel check is chunk-grained — reads already resident are still
 * returned.
 *
 * A chunk that fails to decode (I/O fault, corrupt bytes) surfaces as
 * lastStatus() == RequestStatus::Error with the cursor parked before
 * the bad chunk. Unlike cancellation/expiry the condition is not
 * sticky: the next read()/next() retries the fetch.
 */
class ServiceSession
{
  public:
    /** Stored-order index of the next read this session returns. */
    uint64_t position() const { return position_; }

    /** Reads left until the archive is exhausted. */
    uint64_t remaining() const;

    bool hasNext() const { return remaining() > 0; }

    /** Next read in stored order (copies out of the shared decoded
     *  chunk; chunk-grained fetches + readahead behind the scenes).
     *  Fatal on a cancelled/expired session — poll lastStatus() or
     *  use read() when the session carries a token. */
    Read next();

    /** Next @p count reads in stored order (clamped to remaining;
     *  stops short when the session's token/deadline fires). */
    std::vector<Read> read(uint64_t count);

    /** Jump the cursor (a non-sequential client). */
    void seek(uint64_t read_index);

    /** Ok until the session's deadline/cancellation fired. */
    RequestStatus lastStatus() const { return status_; }

  private:
    friend class SageArchiveService;
    ServiceSession(SageArchiveService &service, RequestOptions options)
        : service_(&service), options_(std::move(options))
    {}

    /** Ensure chunk_ covers position_ (fetch + readahead on miss).
     *  Returns false when the fetch was abandoned (status_ set). */
    bool ensureChunk();

    SageArchiveService *service_;
    RequestOptions options_;
    RequestStatus status_ = RequestStatus::Ok;
    uint64_t position_ = 0;
    DecodedChunkPtr chunk_;  ///< Shared decoded chunk under the cursor.
};

/** Concurrent multi-client server over one open archive. */
class SageArchiveService
{
  public:
    /** Serve @p source (must outlive the service). */
    explicit SageArchiveService(const ByteSource &source,
                                ServiceOptions options = {});

    /** Serve a file (owned FileSource; fatal naming the path). */
    explicit SageArchiveService(const std::string &path,
                                ServiceOptions options = {});

    /** Serve a pre-opened decoder (and optionally the source it reads
     *  from). This is the recoverable-open path: callers that must not
     *  die on a bad archive — the network front end in particular —
     *  open via SageDecoder::tryOpen() and hand the result here.
     *  ServiceOptions::dnaOnly is ignored (decided at tryOpen time). */
    SageArchiveService(std::unique_ptr<SageDecoder> decoder,
                       std::unique_ptr<ByteSource> owned_source,
                       ServiceOptions options = {});

    /** Drains outstanding requests before tearing down. */
    ~SageArchiveService();

    SageArchiveService(const SageArchiveService &) = delete;
    SageArchiveService &operator=(const SageArchiveService &) = delete;

    // ---- structure ---------------------------------------------------

    const ArchiveInfo &info() const { return decoder_->info(); }
    size_t chunkCount() const { return decoder_->chunkCount(); }
    uint64_t readCount() const { return info().params.numReads; }

    /** Stored-order index of chunk @p chunk's first read. */
    uint64_t
    chunkFirstRead(size_t chunk) const
    {
        return decoder_->chunkFirstRead(chunk);
    }

    /** Number of reads stored in chunk @p chunk. */
    uint64_t
    chunkReadCount(size_t chunk) const
    {
        return decoder_->chunkReadCount(chunk);
    }

    // ---- synchronous API (blocks the calling client thread) ----------

    /**
     * Reads [@p first_read, @p first_read + @p count) in stored
     * order, assembled from the covering chunks through the cache.
     * Scheduled like every other request; the caller blocks until its
     * turn completes. Fatal on an out-of-range span.
     */
    std::vector<Read>
    readRange(uint64_t first_read, uint64_t count,
              RequestPriority priority = RequestPriority::Normal);

    /** All of chunk @p chunk's reads, in stored order. */
    std::vector<Read>
    readChunk(size_t chunk,
              RequestPriority priority = RequestPriority::Normal);

    // ---- QoS API: deadlines + cancellation ---------------------------

    /**
     * QoS flavor of readRange: the request's deadline and CancelToken
     * are checked when the scheduler dequeues it and again before
     * each chunk decode; an abandoned request completes with
     * RequestStatus::Expired/Cancelled and empty reads instead of
     * occupying a worker behind a deep backlog.
     */
    ReadResult readRange(uint64_t first_read, uint64_t count,
                         const RequestOptions &options);

    /** QoS flavor of readChunk. */
    ReadResult readChunk(size_t chunk, const RequestOptions &options);

    /** Future-based QoS flavor. */
    std::future<ReadResult>
    readRangeAsync(uint64_t first_read, uint64_t count,
                   const RequestOptions &options);

    /** Future-based QoS flavor of readChunk. */
    std::future<ReadResult>
    readChunkAsync(size_t chunk, const RequestOptions &options);

    /** Callback-based QoS flavor (same worker-thread rule as
     *  readRangeCallback). */
    void readRangeCallback(uint64_t first_read, uint64_t count,
                           std::function<void(ReadResult)> done,
                           const RequestOptions &options);

    // ---- asynchronous API --------------------------------------------

    /** Future-based flavor of readRange. */
    std::future<std::vector<Read>>
    readRangeAsync(uint64_t first_read, uint64_t count,
                   RequestPriority priority = RequestPriority::Normal);

    /** Future-based flavor of readChunk. */
    std::future<std::vector<Read>>
    readChunkAsync(size_t chunk,
                   RequestPriority priority = RequestPriority::Normal);

    /**
     * Callback-based flavor: @p done runs on a worker thread with the
     * assembled reads once the request is served. The callback must
     * not block on another sync request to this service from the same
     * thread pool (it would occupy the worker it is waiting for).
     */
    void readRangeCallback(uint64_t first_read, uint64_t count,
                           std::function<void(std::vector<Read>)> done,
                           RequestPriority priority =
                               RequestPriority::Normal);

    // ---- sessions / cache control ------------------------------------

    /** Open a sequential per-client cursor. */
    ServiceSession
    openSession(RequestPriority priority = RequestPriority::Normal)
    {
        RequestOptions options;
        options.priority = priority;
        return ServiceSession(*this, std::move(options));
    }

    /** Open a cursor with full QoS (deadline / CancelToken apply to
     *  every chunk fetch the session issues). */
    ServiceSession
    openSession(const RequestOptions &options)
    {
        return ServiceSession(*this, options);
    }

    /**
     * Fire-and-forget cache warm of @p chunk at Background priority
     * (no-op when resident or out of range). Single-flight makes
     * duplicate warms free.
     */
    void warmChunk(size_t chunk);

    /** Counter snapshot, consistent against concurrent scheduler and
     *  request-completion mutation (both domains are locked for the
     *  read, so e.g. requests == sum(requestsByPriority) always
     *  holds). */
    ServiceStats stats() const;

    /** The worker pool requests execute on. */
    ThreadPool &pool() { return *pool_; }

    /**
     * Requests enqueued but not yet started, as a single relaxed
     * atomic load. The admission-control hot path (net/ front end)
     * polls this per incoming request, so it must not contend with the
     * scheduler or stats locks the way a full stats() snapshot does.
     * The value is exact under schedMutex_ and momentarily stale
     * without it — fine for a high-water-mark comparison.
     */
    uint64_t
    queueDepth() const
    {
        return queued_.load(std::memory_order_relaxed);
    }

    /** Queue-depth high-water mark (same relaxed-read contract). */
    uint64_t
    queueDepthHighWater() const
    {
        return maxQueueDepth_.load(std::memory_order_relaxed);
    }

  private:
    friend class ServiceSession;

    /** Shared constructor tail (pool setup, chunk prefix table). */
    void init();

    /** Chunk containing stored-order read @p read_index. */
    size_t chunkForRead(uint64_t read_index) const;

    /** Cache-mediated decoded chunk (single-flight on cold misses).
     *  With @p qos, a coalesced wait is abandonable (nullptr with
     *  @p error left Ok). A failed decode returns nullptr with the
     *  failure in @p error — for the decoding leader and every
     *  coalesced waiter alike. */
    DecodedChunkPtr fetchChunk(size_t chunk,
                               const RequestOptions *qos = nullptr,
                               Status *error = nullptr);

    /** fetchChunk + session-readahead of the successor chunk. */
    DecodedChunkPtr fetchChunkForSession(size_t chunk,
                                         const RequestOptions *qos,
                                         Status *error = nullptr);

    /** tryDecodeChunkShared with the transient-retry policy applied:
     *  IoError re-attempts up to ServiceOptions::decodeRetries times
     *  (counted in stats().retries); a terminal failure is classified
     *  into ioErrors/corruptChunks exactly once. */
    StatusOr<std::vector<Read>> decodeChunkWithRetry(size_t chunk);

    /** Classify a terminal chunk-decode failure into the counters. */
    void recordChunkError(const Status &status);

    /** Copy the reads of [first, first+count) out of cached chunks,
     *  re-checking @p options before each chunk decode. */
    ReadResult assembleRange(uint64_t first_read, uint64_t count,
                             const RequestOptions &options);

    /** Shared body of every range flavor: validate, enqueue, check
     *  QoS at dequeue, assemble, record, then hand the result to
     *  @p deliver on the worker. */
    void scheduleRange(uint64_t first_read, uint64_t count,
                       RequestOptions options,
                       std::function<void(ReadResult)> deliver);

    /** Queue @p work at @p priority; returns after enqueue. */
    void enqueue(RequestPriority priority, std::function<void()> work);

    /** Pop and run the oldest request of the best priority. */
    void runOne();

    /** Record a completed request's latency + served payload. */
    void recordRequest(RequestPriority priority, RequestStatus status,
                       double seconds,
                       const std::vector<Read> &served);

    /** Owned for the path and pre-opened-decoder ctors. */
    std::unique_ptr<ByteSource> file_;
    std::unique_ptr<SageDecoder> decoder_;
    ServiceOptions options_;
    std::unique_ptr<ThreadPool> ownedPool_;
    ThreadPool *pool_;
    ChunkCache cache_;

    /** Prefix read-start of every chunk (chunkForRead binary search). */
    std::vector<uint64_t> chunkFirstRead_;

    // Scheduler state: one deque per priority, drained best-first.
    mutable std::mutex schedMutex_;
    std::condition_variable schedIdle_;
    std::array<std::deque<std::function<void()>>, kRequestPriorityCount>
        queues_;
    /** Requests enqueued, not yet started. Mutated only under
     *  schedMutex_; atomic so queueDepth() can read it lock-free. */
    std::atomic<uint64_t> queued_{0};
    uint64_t executing_ = 0;    ///< Requests currently running.
    std::atomic<uint64_t> maxQueueDepth_{0};

    // Counter state (separate lock: hot request completions must not
    // contend with scheduling; stats() alone takes both locks at once
    // so its snapshot is consistent across the two domains). The
    // served tallies are atomics, not mutex-guarded: sessions bump
    // them per delivered read — the hottest path in the service — and
    // must not serialize every client on one lock.
    mutable std::mutex statsMutex_;
    uint64_t requests_ = 0;
    std::array<uint64_t, kRequestPriorityCount> requestsByPriority_{};
    uint64_t expired_ = 0;
    uint64_t cancelled_ = 0;
    uint64_t errored_ = 0;
    uint64_t ioErrors_ = 0;
    uint64_t corruptChunks_ = 0;
    uint64_t retries_ = 0;
    std::atomic<uint64_t> readsServed_{0};
    std::atomic<uint64_t> bytesServed_{0};
    uint64_t readaheadWarms_ = 0;
    LatencyHistogram latency_;
    std::array<LatencyHistogram, kRequestPriorityCount>
        latencyByPriority_{};
};

} // namespace sage

#endif // SAGE_SERVICE_SERVICE_HH
