#include "service/chunk_cache.hh"

#include <algorithm>
#include <chrono>
#include <exception>

#include "util/logging.hh"

namespace sage {

uint64_t
DecodedChunk::residentBytes(const std::vector<Read> &reads)
{
    // String payloads plus the Read object itself; small-string
    // storage is approximated by the payload size, which is close
    // enough for budget enforcement.
    uint64_t bytes = 0;
    for (const Read &read : reads) {
        bytes += read.bases.size() + read.quals.size() +
            read.header.size() + sizeof(Read);
    }
    return bytes;
}

ChunkCache::ChunkCache(uint64_t budget_bytes, unsigned shards,
                       unsigned ghost_keys_per_shard)
    : budget_(budget_bytes), ghostCapacity_(ghost_keys_per_shard)
{
    const unsigned n = std::max(1u, shards);
    shardBudget_ = budget_bytes / n;
    shards_.reserve(n);
    for (unsigned s = 0; s < n; s++)
        shards_.push_back(std::make_unique<Shard>());
}

ChunkCache::Shard &
ChunkCache::shardFor(size_t chunk)
{
    return *shards_[chunk % shards_.size()];
}

const ChunkCache::Shard &
ChunkCache::shardFor(size_t chunk) const
{
    return *shards_[chunk % shards_.size()];
}

void
ChunkCache::ghostKey(Shard &shard, size_t chunk)
{
    if (ghostCapacity_ == 0)
        return;
    if (shard.ghostMap.find(chunk) != shard.ghostMap.end())
        return;  // Already remembered (evicted twice in a window).
    shard.ghosts.push_front(chunk);
    shard.ghostMap.emplace(chunk, shard.ghosts.begin());
    while (shard.ghosts.size() > ghostCapacity_) {
        shard.ghostMap.erase(shard.ghosts.back());
        shard.ghosts.pop_back();
    }
}

void
ChunkCache::evictToBudget(Shard &shard)
{
    // SIEVE sweep: the hand walks from the oldest entry toward the
    // newest; a visited entry is spared once (bit cleared, hand moves
    // on), an unvisited one is evicted and its key ghosted. The loop
    // terminates: every iteration either clears a visited bit (finite
    // supply) or removes an entry.
    while (shard.residentBytes > shardBudget_ &&
           !shard.entries.empty()) {
        if (shard.hand == shard.entries.end())
            shard.hand = std::prev(shard.entries.end());  // Oldest.
        if (shard.hand->visited) {
            shard.hand->visited = false;
            // Toward the newest; wrap to the oldest off the front.
            if (shard.hand == shard.entries.begin())
                shard.hand = shard.entries.end();
            else
                --shard.hand;
            continue;
        }
        const auto victim = shard.hand;
        if (shard.hand == shard.entries.begin())
            shard.hand = shard.entries.end();
        else
            --shard.hand;
        shard.residentBytes -= victim->data->bytes;
        shard.map.erase(victim->chunk);
        ghostKey(shard, victim->chunk);
        shard.entries.erase(victim);
        shard.evictions++;
    }
}

void
ChunkCache::insertAndTrim(Shard &shard, size_t chunk,
                          const DecodedChunkPtr &data)
{
    sage_assert(shard.map.find(chunk) == shard.map.end(),
                "double insert of chunk ", chunk);
    // Admission: an entry that alone exceeds the shard budget can
    // never be resident — serve it to the caller (who holds a
    // reference) without evicting the entire shard for nothing.
    if (data->bytes > shardBudget_) {
        shard.oversizedRejects++;
        return;
    }
    // Ghost lookup: a re-decode of a recently evicted chunk proves
    // re-reference — admit it pre-visited so the next hand sweep
    // spares it (it earned residency; scan traffic did not).
    bool visited = false;
    const auto ghost = shard.ghostMap.find(chunk);
    if (ghost != shard.ghostMap.end()) {
        shard.ghosts.erase(ghost->second);
        shard.ghostMap.erase(ghost);
        shard.ghostHits++;
        visited = true;
    }
    shard.entries.push_front(Entry{chunk, data, visited});
    shard.map.emplace(chunk, shard.entries.begin());
    shard.residentBytes += data->bytes;
    shard.inserts++;
    evictToBudget(shard);
}

DecodedChunkPtr
ChunkCache::getOrDecode(size_t chunk, const DecodeFn &decode,
                        const RequestOptions *qos, Status *error)
{
    Shard &shard = shardFor(chunk);
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto hit = shard.map.find(chunk);
        if (hit != shard.map.end()) {
            shard.hits++;
            // Mark re-referenced: the entry survives the next sweep.
            hit->second->visited = true;
            return hit->second->data;
        }
        auto inflight = shard.flights.find(chunk);
        if (inflight != shard.flights.end()) {
            shard.coalescedWaits++;
            flight = inflight->second;
        } else {
            shard.misses++;
            flight = std::make_shared<Flight>();
            flight->generation = shard.generation;
            shard.flights.emplace(chunk, flight);
            leader = true;
        }
    }

    if (!leader) {
        // Join the in-flight decode. The leader publishes exactly
        // once. A QoS-bearing follower re-checks its fate while
        // parked: a cancelled/expired request walks away with nullptr
        // instead of waiting out a decode it no longer wants — the
        // leader and the other waiters are unaffected.
        std::unique_lock<std::mutex> lock(flight->mutex);
        if (qos && qos->abandonable()) {
            while (!flight->done.wait_for(
                       lock, std::chrono::milliseconds(1),
                       [&] { return flight->ready; })) {
                if (qos->checkNow() != RequestStatus::Ok) {
                    lock.unlock();
                    std::lock_guard<std::mutex> shard_lock(
                        shard.mutex);
                    shard.abandonedWaits++;
                    return nullptr;
                }
            }
        } else {
            flight->done.wait(lock, [&] { return flight->ready; });
        }
        // The leader's decode may have failed; propagate its Status so
        // every coalesced waiter degrades to an errored request rather
        // than dereferencing a null chunk.
        if (!flight->result && error && !flight->status.ok())
            *error = flight->status;
        return flight->result;
    }

    // Leader: decode outside every lock (this is the expensive part —
    // a full chunk fetch + decompression), then publish and cache. A
    // decode that throws must not unwind past the flight: waiters
    // parked on it — and every future requester joining it — would
    // hang forever. Data-dependent failures (a Status return, or a
    // StatusError escaping the decoder) publish the failure to every
    // waiter and tear the flight down so the next request retries; any
    // other exception is a bug and stays fatal. The leader never
    // abandons mid-decode: followers may already be parked on its
    // flight.
    DecodedChunkPtr data;
    Status failure;
    try {
        StatusOr<DecodedChunkPtr> decoded = decode(chunk);
        if (decoded.ok()) {
            data = std::move(decoded.value());
            sage_assert(data != nullptr, "chunk decode returned null");
        } else {
            failure = decoded.status();
        }
    } catch (const StatusError &err) {
        failure = err.status();
    } catch (const std::exception &err) {
        sage_fatal("decode of chunk ", chunk,
                   " failed with exception: ", err.what());
    }
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.flights.erase(chunk);
        if (!failure.ok()) {
            // Never cache a failure: the flight is gone, so the next
            // requester for this chunk starts a fresh decode.
            shard.decodeErrors++;
        } else if (flight->generation == shard.generation) {
            // A clear() while this decode was in flight bumped the
            // generation; honoring it means serving the waiters but
            // not re-populating the cache the caller just released.
            insertAndTrim(shard, chunk, data);
        }
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->result = data;
        flight->status = failure;
        flight->ready = true;
    }
    flight->done.notify_all();
    if (!failure.ok() && error)
        *error = failure;
    return data;
}

bool
ChunkCache::contains(size_t chunk) const
{
    const Shard &shard = shardFor(chunk);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.map.find(chunk) != shard.map.end();
}

void
ChunkCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->entries.clear();
        shard->map.clear();
        shard->hand = shard->entries.end();
        shard->ghosts.clear();
        shard->ghostMap.clear();
        shard->residentBytes = 0;
        shard->generation++;  // Invalidate in-flight publishes.
    }
}

ChunkCacheStats
ChunkCache::stats() const
{
    ChunkCacheStats total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.evictions += shard->evictions;
        total.inserts += shard->inserts;
        total.coalescedWaits += shard->coalescedWaits;
        total.abandonedWaits += shard->abandonedWaits;
        total.ghostHits += shard->ghostHits;
        total.oversizedRejects += shard->oversizedRejects;
        total.decodeErrors += shard->decodeErrors;
        total.residentBytes += shard->residentBytes;
        total.residentChunks += shard->entries.size();
        total.ghostChunks += shard->ghosts.size();
    }
    return total;
}

} // namespace sage
