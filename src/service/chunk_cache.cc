#include "service/chunk_cache.hh"

#include <algorithm>
#include <exception>

#include "util/logging.hh"

namespace sage {

uint64_t
DecodedChunk::residentBytes(const std::vector<Read> &reads)
{
    // String payloads plus the Read object itself; small-string
    // storage is approximated by the payload size, which is close
    // enough for budget enforcement.
    uint64_t bytes = 0;
    for (const Read &read : reads) {
        bytes += read.bases.size() + read.quals.size() +
            read.header.size() + sizeof(Read);
    }
    return bytes;
}

ChunkCache::ChunkCache(uint64_t budget_bytes, unsigned shards)
    : budget_(budget_bytes)
{
    const unsigned n = std::max(1u, shards);
    shardBudget_ = budget_bytes / n;
    shards_.reserve(n);
    for (unsigned s = 0; s < n; s++)
        shards_.push_back(std::make_unique<Shard>());
}

ChunkCache::Shard &
ChunkCache::shardFor(size_t chunk)
{
    return *shards_[chunk % shards_.size()];
}

const ChunkCache::Shard &
ChunkCache::shardFor(size_t chunk) const
{
    return *shards_[chunk % shards_.size()];
}

void
ChunkCache::insertAndTrim(Shard &shard, size_t chunk,
                          const DecodedChunkPtr &data)
{
    sage_assert(shard.map.find(chunk) == shard.map.end(),
                "double insert of chunk ", chunk);
    shard.lru.push_front(Entry{chunk, data});
    shard.map.emplace(chunk, shard.lru.begin());
    shard.residentBytes += data->bytes;
    shard.inserts++;
    // Evict LRU-first down to the shard's budget. The entry just
    // inserted is evicted too when it alone exceeds the budget —
    // callers hold their own reference, so an oversized chunk is
    // served without ever being retained.
    while (shard.residentBytes > shardBudget_ && !shard.lru.empty()) {
        const Entry &victim = shard.lru.back();
        shard.residentBytes -= victim.data->bytes;
        shard.map.erase(victim.chunk);
        shard.lru.pop_back();
        shard.evictions++;
    }
}

DecodedChunkPtr
ChunkCache::getOrDecode(size_t chunk, const DecodeFn &decode)
{
    Shard &shard = shardFor(chunk);
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto hit = shard.map.find(chunk);
        if (hit != shard.map.end()) {
            shard.hits++;
            // Touch: move to the front of the LRU list.
            shard.lru.splice(shard.lru.begin(), shard.lru, hit->second);
            return hit->second->data;
        }
        auto inflight = shard.flights.find(chunk);
        if (inflight != shard.flights.end()) {
            shard.coalescedWaits++;
            flight = inflight->second;
        } else {
            shard.misses++;
            flight = std::make_shared<Flight>();
            flight->generation = shard.generation;
            shard.flights.emplace(chunk, flight);
            leader = true;
        }
    }

    if (!leader) {
        // Join the in-flight decode. The leader publishes exactly once.
        std::unique_lock<std::mutex> lock(flight->mutex);
        flight->done.wait(lock, [&] { return flight->ready; });
        return flight->result;
    }

    // Leader: decode outside every lock (this is the expensive part —
    // a full chunk fetch + decompression), then publish and cache. A
    // decode that throws (std::bad_alloc is the realistic case) must
    // not unwind past the flight: waiters parked on it — and every
    // future requester joining it — would hang forever. Decode
    // failure is fatal, like every other I/O/decode failure in this
    // codebase.
    DecodedChunkPtr data;
    try {
        data = decode(chunk);
    } catch (const std::exception &error) {
        sage_fatal("decode of chunk ", chunk,
                   " failed with exception: ", error.what());
    }
    sage_assert(data != nullptr, "chunk decode returned null");
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.flights.erase(chunk);
        // A clear() while this decode was in flight bumped the
        // generation; honoring it means serving the waiters but not
        // re-populating the cache the caller just released.
        if (flight->generation == shard.generation)
            insertAndTrim(shard, chunk, data);
    }
    {
        std::lock_guard<std::mutex> lock(flight->mutex);
        flight->result = data;
        flight->ready = true;
    }
    flight->done.notify_all();
    return data;
}

bool
ChunkCache::contains(size_t chunk) const
{
    const Shard &shard = shardFor(chunk);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.map.find(chunk) != shard.map.end();
}

void
ChunkCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->lru.clear();
        shard->map.clear();
        shard->residentBytes = 0;
        shard->generation++;  // Invalidate in-flight publishes.
    }
}

ChunkCacheStats
ChunkCache::stats() const
{
    ChunkCacheStats total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total.hits += shard->hits;
        total.misses += shard->misses;
        total.evictions += shard->evictions;
        total.inserts += shard->inserts;
        total.coalescedWaits += shard->coalescedWaits;
        total.residentBytes += shard->residentBytes;
        total.residentChunks += shard->lru.size();
    }
    return total;
}

} // namespace sage
