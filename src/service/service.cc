#include "service/service.hh"

#include <algorithm>
#include <exception>

#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/timing.hh"

namespace sage {

namespace {

/** Payload bytes a read vector delivers to a client. */
uint64_t
payloadBytes(const std::vector<Read> &reads)
{
    uint64_t bytes = 0;
    for (const Read &read : reads)
        bytes += read.bases.size() + read.quals.size();
    return bytes;
}

} // namespace

// ---------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------

SageArchiveService::SageArchiveService(const ByteSource &source,
                                       ServiceOptions options)
    : decoder_(std::make_unique<SageDecoder>(source, options.dnaOnly)),
      options_(options),
      pool_(options.pool),
      cache_(options.cacheBudgetBytes, options.cacheShards)
{
    init();
}

SageArchiveService::SageArchiveService(const std::string &path,
                                       ServiceOptions options)
    : file_(std::make_unique<FileSource>(path)),
      decoder_(std::make_unique<SageDecoder>(*file_, options.dnaOnly)),
      options_(options),
      pool_(options.pool),
      cache_(options.cacheBudgetBytes, options.cacheShards)
{
    init();
}

void
SageArchiveService::init()
{
    if (!pool_) {
        ownedPool_ =
            std::make_unique<ThreadPool>(options_.ownedPoolThreads);
        pool_ = ownedPool_.get();
    }
    chunkFirstRead_.reserve(decoder_->chunkCount());
    for (size_t c = 0; c < decoder_->chunkCount(); c++)
        chunkFirstRead_.push_back(decoder_->chunkFirstRead(c));
}

SageArchiveService::~SageArchiveService()
{
    // Drain: every enqueued request holds a reference to this service,
    // so teardown must wait until the last one has left runOne().
    std::unique_lock<std::mutex> lock(schedMutex_);
    schedIdle_.wait(lock,
                    [&] { return queued_ == 0 && executing_ == 0; });
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

void
SageArchiveService::enqueue(RequestPriority priority,
                            std::function<void()> work)
{
    {
        std::lock_guard<std::mutex> lock(schedMutex_);
        queues_[static_cast<size_t>(priority)].push_back(
            std::move(work));
        queued_++;
        maxQueueDepth_ = std::max(maxQueueDepth_, queued_);
    }
    // The pool task is a generic "run the best queued request"
    // trampoline: the pool drains FIFO, but each trampoline re-picks
    // the highest-priority request at execution time, so Interactive
    // requests overtake queued Background work while equal priorities
    // keep arrival order.
    pool_->submit([this] { runOne(); });
}

void
SageArchiveService::runOne()
{
    std::function<void()> work;
    {
        std::lock_guard<std::mutex> lock(schedMutex_);
        for (auto &queue : queues_) {
            if (!queue.empty()) {
                work = std::move(queue.front());
                queue.pop_front();
                break;
            }
        }
        sage_assert(work != nullptr,
                    "scheduler trampoline found no queued request");
        queued_--;
        executing_++;
    }
    // A throwing request (std::bad_alloc while assembling reads) must
    // not unwind past the executing_ decrement below: the destructor's
    // drain would wait on it forever. Request failure is fatal.
    try {
        work();
    } catch (const std::exception &error) {
        sage_fatal("service request failed with exception: ",
                   error.what());
    }
    {
        // Notify under the lock: once the destructor's drain wakes and
        // takes the mutex, this trampoline no longer touches service
        // state.
        std::lock_guard<std::mutex> lock(schedMutex_);
        executing_--;
        if (queued_ == 0 && executing_ == 0)
            schedIdle_.notify_all();
    }
}

// ---------------------------------------------------------------------
// Chunk plumbing
// ---------------------------------------------------------------------

size_t
SageArchiveService::chunkForRead(uint64_t read_index) const
{
    sage_assert(read_index < readCount(), "read index ", read_index,
                " out of range (", readCount(), " reads)");
    const auto it = std::upper_bound(chunkFirstRead_.begin(),
                                     chunkFirstRead_.end(), read_index);
    return static_cast<size_t>(it - chunkFirstRead_.begin()) - 1;
}

DecodedChunkPtr
SageArchiveService::fetchChunk(size_t chunk)
{
    return cache_.getOrDecode(chunk, [this](size_t index) {
        auto decoded = std::make_shared<DecodedChunk>();
        decoded->reads = decoder_->decodeChunkShared(index);
        decoded->firstRead = decoder_->chunkFirstRead(index);
        decoded->bytes = DecodedChunk::residentBytes(decoded->reads);
        return decoded;
    });
}

DecodedChunkPtr
SageArchiveService::fetchChunkForSession(size_t chunk)
{
    DecodedChunkPtr data = fetchChunk(chunk);
    // Speculate the client's next sequential chunk into the cache as
    // Background work — the serving-layer analogue of the reader's
    // prefetch-next-chunk mode, but per client and deduplicated by
    // the cache's single-flight machinery. Pointless without a
    // retaining cache (the warm's decode would be evicted on insert
    // and re-done when the session arrives), so a zero budget
    // disables speculation.
    if (options_.sessionReadahead && cache_.budgetBytes() > 0 &&
        chunk + 1 < chunkCount() && !cache_.contains(chunk + 1)) {
        warmChunk(chunk + 1);
    }
    return data;
}

std::vector<Read>
SageArchiveService::assembleRange(uint64_t first_read, uint64_t count)
{
    std::vector<Read> out;
    out.reserve(static_cast<size_t>(count));
    uint64_t pos = first_read;
    const uint64_t end = first_read + count;
    while (pos < end) {
        const DecodedChunkPtr chunk = fetchChunk(chunkForRead(pos));
        const uint64_t chunk_end =
            chunk->firstRead + chunk->reads.size();
        const uint64_t take = std::min(end, chunk_end) - pos;
        for (uint64_t i = 0; i < take; i++) {
            out.push_back(
                chunk->reads[static_cast<size_t>(
                    pos - chunk->firstRead + i)]);
        }
        pos += take;
    }
    return out;
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

void
SageArchiveService::recordRequest(RequestPriority priority,
                                  double seconds,
                                  const std::vector<Read> &served)
{
    readsServed_.fetch_add(served.size(), std::memory_order_relaxed);
    bytesServed_.fetch_add(payloadBytes(served),
                           std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(statsMutex_);
    requests_++;
    requestsByPriority_[static_cast<size_t>(priority)]++;
    latency_.record(seconds);
}

void
SageArchiveService::scheduleRange(
    uint64_t first_read, uint64_t count, RequestPriority priority,
    std::function<void(std::vector<Read>)> deliver)
{
    sage_assert(first_read <= readCount() &&
                count <= readCount() - first_read,
                "read range [", first_read, ", ", first_read + count,
                ") exceeds the archive's ", readCount(), " reads");
    const Stopwatch clock;  // Latency includes the queue wait.
    enqueue(priority, [this, first_read, count, priority, clock,
                       deliver = std::move(deliver)] {
        std::vector<Read> out = assembleRange(first_read, count);
        recordRequest(priority, clock.seconds(), out);
        deliver(std::move(out));
    });
}

std::future<std::vector<Read>>
SageArchiveService::readRangeAsync(uint64_t first_read, uint64_t count,
                                   RequestPriority priority)
{
    auto promise =
        std::make_shared<std::promise<std::vector<Read>>>();
    std::future<std::vector<Read>> future = promise->get_future();
    scheduleRange(first_read, count, priority,
                  [promise](std::vector<Read> reads) {
                      promise->set_value(std::move(reads));
                  });
    return future;
}

std::future<std::vector<Read>>
SageArchiveService::readChunkAsync(size_t chunk,
                                   RequestPriority priority)
{
    sage_assert(chunk < chunkCount(), "chunk index ", chunk,
                " out of range (", chunkCount(), " chunks)");
    return readRangeAsync(decoder_->chunkFirstRead(chunk),
                          decoder_->chunkReadCount(chunk), priority);
}

std::vector<Read>
SageArchiveService::readRange(uint64_t first_read, uint64_t count,
                              RequestPriority priority)
{
    return readRangeAsync(first_read, count, priority).get();
}

std::vector<Read>
SageArchiveService::readChunk(size_t chunk, RequestPriority priority)
{
    return readChunkAsync(chunk, priority).get();
}

void
SageArchiveService::readRangeCallback(
    uint64_t first_read, uint64_t count,
    std::function<void(std::vector<Read>)> done,
    RequestPriority priority)
{
    scheduleRange(first_read, count, priority, std::move(done));
}

void
SageArchiveService::warmChunk(size_t chunk)
{
    if (chunk >= chunkCount() || cache_.contains(chunk))
        return;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        readaheadWarms_++;
    }
    const Stopwatch clock;
    enqueue(RequestPriority::Background, [this, chunk, clock] {
        fetchChunk(chunk);
        recordRequest(RequestPriority::Background, clock.seconds(), {});
    });
}

ServiceStats
SageArchiveService::stats() const
{
    ServiceStats out;
    out.readsServed = readsServed_.load(std::memory_order_relaxed);
    out.bytesServed = bytesServed_.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        out.requests = requests_;
        out.requestsByPriority = requestsByPriority_;
        out.readaheadWarms = readaheadWarms_;
        out.latencySamples = latency_.count();
        out.meanLatencySeconds = latency_.meanSeconds();
        out.p50LatencySeconds = latency_.quantileSeconds(0.50);
        out.p99LatencySeconds = latency_.quantileSeconds(0.99);
        out.maxLatencySeconds = latency_.maxSeconds();
    }
    {
        std::lock_guard<std::mutex> lock(schedMutex_);
        out.queueDepth = queued_;
        out.maxQueueDepth = maxQueueDepth_;
    }
    out.cache = cache_.stats();
    return out;
}

// ---------------------------------------------------------------------
// ServiceSession
// ---------------------------------------------------------------------

uint64_t
ServiceSession::remaining() const
{
    return service_->readCount() - position_;
}

void
ServiceSession::seek(uint64_t read_index)
{
    sage_assert(read_index <= service_->readCount(),
                "seek past end of archive");
    position_ = read_index;
    chunk_.reset();
}

void
ServiceSession::ensureChunk()
{
    if (chunk_ && position_ >= chunk_->firstRead &&
        position_ < chunk_->firstRead + chunk_->reads.size()) {
        return;
    }
    // Chunk fetches go through the scheduler like any other request
    // so a flood of Background warms cannot starve them.
    const size_t index = service_->chunkForRead(position_);
    auto promise = std::make_shared<std::promise<DecodedChunkPtr>>();
    std::future<DecodedChunkPtr> future = promise->get_future();
    const Stopwatch clock;
    SageArchiveService *service = service_;
    const RequestPriority priority = priority_;
    service_->enqueue(priority, [service, index, priority, promise,
                                 clock] {
        DecodedChunkPtr data = service->fetchChunkForSession(index);
        service->recordRequest(priority, clock.seconds(), {});
        promise->set_value(std::move(data));
    });
    chunk_ = future.get();
}

Read
ServiceSession::next()
{
    sage_assert(hasNext(), "session exhausted");
    ensureChunk();
    Read read =
        chunk_->reads[static_cast<size_t>(position_ -
                                          chunk_->firstRead)];
    position_++;
    service_->readsServed_.fetch_add(1, std::memory_order_relaxed);
    service_->bytesServed_.fetch_add(
        read.bases.size() + read.quals.size(),
        std::memory_order_relaxed);
    return read;
}

std::vector<Read>
ServiceSession::read(uint64_t count)
{
    count = std::min(count, remaining());
    std::vector<Read> out;
    out.reserve(static_cast<size_t>(count));
    uint64_t taken_bytes = 0;
    while (count > 0) {
        ensureChunk();
        const uint64_t chunk_end =
            chunk_->firstRead + chunk_->reads.size();
        const uint64_t take = std::min(count, chunk_end - position_);
        for (uint64_t i = 0; i < take; i++) {
            const Read &read = chunk_->reads[static_cast<size_t>(
                position_ - chunk_->firstRead + i)];
            taken_bytes += read.bases.size() + read.quals.size();
            out.push_back(read);
        }
        position_ += take;
        count -= take;
    }
    service_->readsServed_.fetch_add(out.size(),
                                     std::memory_order_relaxed);
    service_->bytesServed_.fetch_add(taken_bytes,
                                     std::memory_order_relaxed);
    return out;
}

} // namespace sage
