#include "service/service.hh"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/timing.hh"

namespace sage {

namespace {

/** Payload bytes a read vector delivers to a client. */
uint64_t
payloadBytes(const std::vector<Read> &reads)
{
    uint64_t bytes = 0;
    for (const Read &read : reads)
        bytes += read.bases.size() + read.quals.size();
    return bytes;
}

} // namespace

// ---------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------

SageArchiveService::SageArchiveService(const ByteSource &source,
                                       ServiceOptions options)
    : decoder_(std::make_unique<SageDecoder>(source, options.dnaOnly)),
      options_(options),
      pool_(options.pool),
      cache_(options.cacheBudgetBytes, options.cacheShards)
{
    init();
}

SageArchiveService::SageArchiveService(const std::string &path,
                                       ServiceOptions options)
    : file_(std::make_unique<FileSource>(path)),
      decoder_(std::make_unique<SageDecoder>(*file_, options.dnaOnly)),
      options_(options),
      pool_(options.pool),
      cache_(options.cacheBudgetBytes, options.cacheShards)
{
    init();
}

SageArchiveService::SageArchiveService(
    std::unique_ptr<SageDecoder> decoder,
    std::unique_ptr<ByteSource> owned_source, ServiceOptions options)
    : file_(std::move(owned_source)),
      decoder_(std::move(decoder)),
      options_(options),
      pool_(options.pool),
      cache_(options.cacheBudgetBytes, options.cacheShards)
{
    sage_assert(decoder_ != nullptr,
                "service constructed without a decoder");
    init();
}

void
SageArchiveService::init()
{
    if (!pool_) {
        ownedPool_ =
            std::make_unique<ThreadPool>(options_.ownedPoolThreads);
        pool_ = ownedPool_.get();
    }
    chunkFirstRead_.reserve(decoder_->chunkCount());
    for (size_t c = 0; c < decoder_->chunkCount(); c++)
        chunkFirstRead_.push_back(decoder_->chunkFirstRead(c));
}

SageArchiveService::~SageArchiveService()
{
    // Drain: every enqueued request holds a reference to this service,
    // so teardown must wait until the last one has left runOne().
    std::unique_lock<std::mutex> lock(schedMutex_);
    schedIdle_.wait(lock,
                    [&] { return queued_ == 0 && executing_ == 0; });
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

void
SageArchiveService::enqueue(RequestPriority priority,
                            std::function<void()> work)
{
    {
        std::lock_guard<std::mutex> lock(schedMutex_);
        queues_[static_cast<size_t>(priority)].push_back(
            std::move(work));
        // queued_/maxQueueDepth_ are written only under schedMutex_;
        // the atomics exist for queueDepth()'s lock-free readers, so
        // relaxed ordering suffices on this side too.
        const uint64_t depth =
            queued_.load(std::memory_order_relaxed) + 1;
        queued_.store(depth, std::memory_order_relaxed);
        if (depth > maxQueueDepth_.load(std::memory_order_relaxed))
            maxQueueDepth_.store(depth, std::memory_order_relaxed);
    }
    // The pool task is a generic "run the best queued request"
    // trampoline: the pool drains FIFO, but each trampoline re-picks
    // the highest-priority request at execution time, so Interactive
    // requests overtake queued Background work while equal priorities
    // keep arrival order.
    pool_->submit([this] { runOne(); });
}

void
SageArchiveService::runOne()
{
    std::function<void()> work;
    {
        std::lock_guard<std::mutex> lock(schedMutex_);
        for (auto &queue : queues_) {
            if (!queue.empty()) {
                work = std::move(queue.front());
                queue.pop_front();
                break;
            }
        }
        sage_assert(work != nullptr,
                    "scheduler trampoline found no queued request");
        queued_.store(queued_.load(std::memory_order_relaxed) - 1,
                      std::memory_order_relaxed);
        executing_++;
    }
    // A throwing request (std::bad_alloc while assembling reads) must
    // not unwind past the executing_ decrement below: the destructor's
    // drain would wait on it forever. Request failure is fatal.
    try {
        work();
    } catch (const std::exception &error) {
        sage_fatal("service request failed with exception: ",
                   error.what());
    }
    {
        // Notify under the lock: once the destructor's drain wakes and
        // takes the mutex, this trampoline no longer touches service
        // state.
        std::lock_guard<std::mutex> lock(schedMutex_);
        executing_--;
        if (queued_ == 0 && executing_ == 0)
            schedIdle_.notify_all();
    }
}

// ---------------------------------------------------------------------
// Chunk plumbing
// ---------------------------------------------------------------------

size_t
SageArchiveService::chunkForRead(uint64_t read_index) const
{
    sage_assert(read_index < readCount(), "read index ", read_index,
                " out of range (", readCount(), " reads)");
    const auto it = std::upper_bound(chunkFirstRead_.begin(),
                                     chunkFirstRead_.end(), read_index);
    return static_cast<size_t>(it - chunkFirstRead_.begin()) - 1;
}

StatusOr<std::vector<Read>>
SageArchiveService::decodeChunkWithRetry(size_t chunk)
{
    for (unsigned attempt = 0;; attempt++) {
        StatusOr<std::vector<Read>> reads =
            decoder_->tryDecodeChunkShared(chunk);
        if (reads.ok())
            return reads;
        // Only plain I/O errors are worth retrying: a flaky device
        // may serve the same bytes fine a moment later. Corrupt or
        // truncated data is deterministic, and Exhausted means the
        // source already burned its own retry budget.
        if (reads.status().code() == StatusCode::IoError &&
            attempt < options_.decodeRetries) {
            std::lock_guard<std::mutex> lock(statsMutex_);
            retries_++;
            continue;
        }
        recordChunkError(reads.status());
        return reads;
    }
}

void
SageArchiveService::recordChunkError(const Status &status)
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    switch (status.code()) {
      case StatusCode::IoError:
      case StatusCode::Exhausted:
        ioErrors_++;
        break;
      default:
        corruptChunks_++;
        break;
    }
}

DecodedChunkPtr
SageArchiveService::fetchChunk(size_t chunk, const RequestOptions *qos,
                               Status *error)
{
    return cache_.getOrDecode(
        chunk,
        [this](size_t index) -> StatusOr<DecodedChunkPtr> {
            StatusOr<std::vector<Read>> reads =
                decodeChunkWithRetry(index);
            if (!reads.ok())
                return reads.status();
            auto decoded = std::make_shared<DecodedChunk>();
            decoded->reads = std::move(reads.value());
            decoded->firstRead = decoder_->chunkFirstRead(index);
            decoded->bytes =
                DecodedChunk::residentBytes(decoded->reads);
            return DecodedChunkPtr(std::move(decoded));
        },
        qos, error);
}

DecodedChunkPtr
SageArchiveService::fetchChunkForSession(size_t chunk,
                                         const RequestOptions *qos,
                                         Status *error)
{
    DecodedChunkPtr data = fetchChunk(chunk, qos, error);
    // Speculate the client's next sequential chunk into the cache as
    // Background work — the serving-layer analogue of the reader's
    // prefetch-next-chunk mode, but per client and deduplicated by
    // the cache's single-flight machinery. Pointless without a
    // retaining cache (the warm's decode would be evicted on insert
    // and re-done when the session arrives), so a zero budget
    // disables speculation.
    if (data && options_.sessionReadahead && cache_.budgetBytes() > 0 &&
        chunk + 1 < chunkCount() && !cache_.contains(chunk + 1)) {
        warmChunk(chunk + 1);
    }
    return data;
}

ReadResult
SageArchiveService::assembleRange(uint64_t first_read, uint64_t count,
                                  const RequestOptions &options)
{
    ReadResult result;
    result.reads.reserve(static_cast<size_t>(count));
    const bool abandonable = options.abandonable();
    uint64_t pos = first_read;
    const uint64_t end = first_read + count;
    while (pos < end) {
        // The pre-decode QoS check: a chunk fetch is the expensive
        // step, so an expired/cancelled request abandons here rather
        // than decoding data nobody will consume. Partial reads are
        // dropped — the contract is all-or-status.
        if (abandonable) {
            result.status = options.checkNow();
            if (result.status != RequestStatus::Ok) {
                result.reads.clear();
                return result;
            }
        }
        Status error;
        const DecodedChunkPtr chunk =
            fetchChunk(chunkForRead(pos),
                       abandonable ? &options : nullptr, &error);
        if (!chunk) {
            result.reads.clear();
            if (!error.ok()) {
                // The chunk failed to decode (I/O fault or corrupt
                // bytes). Only this request degrades: the cache kept
                // no poisoned entry and other chunks are untouched.
                result.status = RequestStatus::Error;
                result.error = error;
                return result;
            }
            // Abandoned while coalesced-waiting on another request's
            // decode; the status check is sticky, so re-reading it
            // names the reason.
            result.status = options.checkNow();
            sage_assert(result.status != RequestStatus::Ok,
                        "null chunk from a live request");
            return result;
        }
        const uint64_t chunk_end =
            chunk->firstRead + chunk->reads.size();
        const uint64_t take = std::min(end, chunk_end) - pos;
        for (uint64_t i = 0; i < take; i++) {
            result.reads.push_back(
                chunk->reads[static_cast<size_t>(
                    pos - chunk->firstRead + i)]);
        }
        pos += take;
    }
    return result;
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

void
SageArchiveService::recordRequest(RequestPriority priority,
                                  RequestStatus status, double seconds,
                                  const std::vector<Read> &served)
{
    readsServed_.fetch_add(served.size(), std::memory_order_relaxed);
    bytesServed_.fetch_add(payloadBytes(served),
                           std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(statsMutex_);
    requests_++;
    requestsByPriority_[static_cast<size_t>(priority)]++;
    if (status == RequestStatus::Expired)
        expired_++;
    else if (status == RequestStatus::Cancelled)
        cancelled_++;
    else if (status == RequestStatus::Error)
        errored_++;
    latency_.record(seconds);
    latencyByPriority_[static_cast<size_t>(priority)].record(seconds);
}

void
SageArchiveService::scheduleRange(
    uint64_t first_read, uint64_t count, RequestOptions options,
    std::function<void(ReadResult)> deliver)
{
    sage_assert(first_read <= readCount() &&
                count <= readCount() - first_read,
                "read range [", first_read, ", ", first_read + count,
                ") exceeds the archive's ", readCount(), " reads");
    const Stopwatch clock;  // Latency includes the queue wait.
    enqueue(options.priority,
            [this, first_read, count, clock,
             options = std::move(options),
             deliver = std::move(deliver)] {
                // Dequeue-time QoS check: a request that sat out its
                // deadline behind a backlog (or was cancelled while
                // queued) completes immediately with its status — no
                // decode, no assembly.
                ReadResult result;
                result.status = options.checkNow();
                if (result.status == RequestStatus::Ok) {
                    result =
                        assembleRange(first_read, count, options);
                }
                recordRequest(options.priority, result.status,
                              clock.seconds(), result.reads);
                deliver(std::move(result));
            });
}

// ---- QoS flavors -----------------------------------------------------

std::future<ReadResult>
SageArchiveService::readRangeAsync(uint64_t first_read, uint64_t count,
                                   const RequestOptions &options)
{
    auto promise = std::make_shared<std::promise<ReadResult>>();
    std::future<ReadResult> future = promise->get_future();
    scheduleRange(first_read, count, options,
                  [promise](ReadResult result) {
                      promise->set_value(std::move(result));
                  });
    return future;
}

std::future<ReadResult>
SageArchiveService::readChunkAsync(size_t chunk,
                                   const RequestOptions &options)
{
    sage_assert(chunk < chunkCount(), "chunk index ", chunk,
                " out of range (", chunkCount(), " chunks)");
    return readRangeAsync(decoder_->chunkFirstRead(chunk),
                          decoder_->chunkReadCount(chunk), options);
}

ReadResult
SageArchiveService::readRange(uint64_t first_read, uint64_t count,
                              const RequestOptions &options)
{
    return readRangeAsync(first_read, count, options).get();
}

ReadResult
SageArchiveService::readChunk(size_t chunk,
                              const RequestOptions &options)
{
    return readChunkAsync(chunk, options).get();
}

void
SageArchiveService::readRangeCallback(
    uint64_t first_read, uint64_t count,
    std::function<void(ReadResult)> done,
    const RequestOptions &options)
{
    scheduleRange(first_read, count, options, std::move(done));
}

// ---- plain (no-QoS) flavors ------------------------------------------

std::future<std::vector<Read>>
SageArchiveService::readRangeAsync(uint64_t first_read, uint64_t count,
                                   RequestPriority priority)
{
    RequestOptions options;
    options.priority = priority;
    auto promise =
        std::make_shared<std::promise<std::vector<Read>>>();
    std::future<std::vector<Read>> future = promise->get_future();
    scheduleRange(first_read, count, std::move(options),
                  [promise](ReadResult result) {
                      // No deadline/token => always Ok.
                      promise->set_value(std::move(result.reads));
                  });
    return future;
}

std::future<std::vector<Read>>
SageArchiveService::readChunkAsync(size_t chunk,
                                   RequestPriority priority)
{
    sage_assert(chunk < chunkCount(), "chunk index ", chunk,
                " out of range (", chunkCount(), " chunks)");
    return readRangeAsync(decoder_->chunkFirstRead(chunk),
                          decoder_->chunkReadCount(chunk), priority);
}

std::vector<Read>
SageArchiveService::readRange(uint64_t first_read, uint64_t count,
                              RequestPriority priority)
{
    return readRangeAsync(first_read, count, priority).get();
}

std::vector<Read>
SageArchiveService::readChunk(size_t chunk, RequestPriority priority)
{
    return readChunkAsync(chunk, priority).get();
}

void
SageArchiveService::readRangeCallback(
    uint64_t first_read, uint64_t count,
    std::function<void(std::vector<Read>)> done,
    RequestPriority priority)
{
    RequestOptions options;
    options.priority = priority;
    scheduleRange(first_read, count, std::move(options),
                  [done = std::move(done)](ReadResult result) {
                      done(std::move(result.reads));
                  });
}

void
SageArchiveService::warmChunk(size_t chunk)
{
    if (chunk >= chunkCount() || cache_.contains(chunk))
        return;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        readaheadWarms_++;
    }
    const Stopwatch clock;
    enqueue(RequestPriority::Background, [this, chunk, clock] {
        // A failed warm is already classified by the decode path; the
        // request record just notes it did not complete Ok.
        Status error;
        const DecodedChunkPtr data = fetchChunk(chunk, nullptr, &error);
        recordRequest(RequestPriority::Background,
                      data ? RequestStatus::Ok : RequestStatus::Error,
                      clock.seconds(), {});
    });
}

ServiceStats
SageArchiveService::stats() const
{
    ServiceStats out;
    out.readsServed = readsServed_.load(std::memory_order_relaxed);
    out.bytesServed = bytesServed_.load(std::memory_order_relaxed);
    {
        // One atomic snapshot across both counter domains: holding
        // the scheduler and stats locks *together* means no request
        // can complete (statsMutex_) or be enqueued/dequeued
        // (schedMutex_) between the reads below, so cross-domain
        // invariants (requests == sum by priority, expired+cancelled
        // <= requests, queueDepth <= maxQueueDepth) hold in every
        // snapshot. Taking the locks one after the other — the
        // pre-QoS behavior — let a request slip between the two
        // acquisitions and skew the pair.
        std::scoped_lock lock(statsMutex_, schedMutex_);
        out.requests = requests_;
        out.requestsByPriority = requestsByPriority_;
        out.expired = expired_;
        out.cancelled = cancelled_;
        out.errored = errored_;
        out.ioErrors = ioErrors_;
        out.corruptChunks = corruptChunks_;
        out.retries = retries_;
        out.readaheadWarms = readaheadWarms_;
        out.latencySamples = latency_.count();
        out.meanLatencySeconds = latency_.meanSeconds();
        out.p50LatencySeconds = latency_.quantileSeconds(0.50);
        out.p99LatencySeconds = latency_.quantileSeconds(0.99);
        out.maxLatencySeconds = latency_.maxSeconds();
        for (size_t p = 0; p < kRequestPriorityCount; p++)
            out.latencyByPriority[p] = latencyByPriority_[p].summary();
        out.queueDepth = queued_;
        out.executing = executing_;
        out.maxQueueDepth = maxQueueDepth_;
    }
    out.cache = cache_.stats();
    return out;
}

// ---------------------------------------------------------------------
// ServiceSession
// ---------------------------------------------------------------------

uint64_t
ServiceSession::remaining() const
{
    return service_->readCount() - position_;
}

void
ServiceSession::seek(uint64_t read_index)
{
    sage_assert(read_index <= service_->readCount(),
                "seek past end of archive");
    position_ = read_index;
    chunk_.reset();
}

bool
ServiceSession::ensureChunk()
{
    if (chunk_ && position_ >= chunk_->firstRead &&
        position_ < chunk_->firstRead + chunk_->reads.size()) {
        return true;
    }
    // Abandonment is sticky; a chunk-decode Error is not — a later
    // call retries the fetch (the fault may have been transient, and
    // the cache kept no poisoned entry).
    if (status_ == RequestStatus::Expired ||
        status_ == RequestStatus::Cancelled) {
        return false;
    }
    status_ = RequestStatus::Ok;
    // Chunk fetches go through the scheduler like any other request
    // so a flood of Background warms cannot starve them.
    const size_t index = service_->chunkForRead(position_);
    using Outcome = std::pair<DecodedChunkPtr, RequestStatus>;
    auto promise = std::make_shared<std::promise<Outcome>>();
    std::future<Outcome> future = promise->get_future();
    const Stopwatch clock;
    SageArchiveService *service = service_;
    const RequestOptions &options = options_;
    service_->enqueue(
        options_.priority,
        [service, index, options, promise, clock] {
            // Dequeue-time check, then an abandonable fetch: the
            // session's token/deadline covers every fetch it issues.
            RequestStatus status = options.checkNow();
            DecodedChunkPtr data;
            if (status == RequestStatus::Ok) {
                Status error;
                data = service->fetchChunkForSession(
                    index, options.abandonable() ? &options : nullptr,
                    &error);
                if (data)
                    status = RequestStatus::Ok;
                else if (!error.ok())
                    status = RequestStatus::Error;
                else
                    status = options.checkNow();
            }
            service->recordRequest(options.priority, status,
                                   clock.seconds(), {});
            promise->set_value(Outcome{std::move(data), status});
        });
    Outcome outcome = future.get();
    chunk_ = std::move(outcome.first);
    if (!chunk_) {
        status_ = outcome.second;
        sage_assert(status_ != RequestStatus::Ok,
                    "session fetch abandoned without a cause");
        return false;
    }
    return true;
}

Read
ServiceSession::next()
{
    sage_assert(hasNext(), "session exhausted");
    sage_assert(ensureChunk(), "session ",
                requestStatusName(status_),
                " - poll lastStatus() or use read()");
    Read read =
        chunk_->reads[static_cast<size_t>(position_ -
                                          chunk_->firstRead)];
    position_++;
    service_->readsServed_.fetch_add(1, std::memory_order_relaxed);
    service_->bytesServed_.fetch_add(
        read.bases.size() + read.quals.size(),
        std::memory_order_relaxed);
    return read;
}

std::vector<Read>
ServiceSession::read(uint64_t count)
{
    count = std::min(count, remaining());
    std::vector<Read> out;
    out.reserve(static_cast<size_t>(count));
    uint64_t taken_bytes = 0;
    while (count > 0) {
        if (!ensureChunk())
            break;  // Cancelled/expired: deliver what is assembled.
        const uint64_t chunk_end =
            chunk_->firstRead + chunk_->reads.size();
        const uint64_t take = std::min(count, chunk_end - position_);
        for (uint64_t i = 0; i < take; i++) {
            const Read &read = chunk_->reads[static_cast<size_t>(
                position_ - chunk_->firstRead + i)];
            taken_bytes += read.bases.size() + read.quals.size();
            out.push_back(read);
        }
        position_ += take;
        count -= take;
    }
    service_->readsServed_.fetch_add(out.size(),
                                     std::memory_order_relaxed);
    service_->bytesServed_.fetch_add(taken_bytes,
                                     std::memory_order_relaxed);
    return out;
}

} // namespace sage
