#include "pipeline/pipeline.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sage {

double
pipelineMakespan(const std::vector<std::vector<double>> &t)
{
    if (t.empty())
        return 0.0;
    const size_t stages = t.front().size();
    std::vector<double> finish(stages, 0.0);
    for (const auto &batch : t) {
        sage_assert(batch.size() == stages, "ragged pipeline matrix");
        double ready = 0.0;
        for (size_t s = 0; s < stages; s++) {
            // Enter stage s when both the previous batch has left it
            // and this batch has left stage s-1.
            const double start = std::max(ready, finish[s]);
            finish[s] = start + batch[s];
            ready = finish[s];
        }
    }
    return finish.back();
}

const char *
prepConfigName(PrepConfig config)
{
    switch (config) {
      case PrepConfig::Pigz: return "pigz";
      case PrepConfig::NSpr: return "(N)Spr";
      case PrepConfig::NSprAC: return "(N)SprAC";
      case PrepConfig::ZeroTimeDec: return "0TimeDec";
      case PrepConfig::SageSW: return "SAGeSW";
      case PrepConfig::SageHW: return "SAGe";
      case PrepConfig::SageSSD: return "SAGeSSD";
    }
    return "?";
}

namespace {

/** Stage-time totals for one configuration (split into batches later). */
struct StageTotals
{
    double io = 0.0;     ///< Compressed-data delivery.
    double prep = 0.0;   ///< Decompression/formatting.
    double isf = 0.0;    ///< In-storage filter (SageSSD+ISF only).
    double map = 0.0;    ///< Read mapping.

    // Busy-time attribution for energy.
    double hostCpuBusy = 0.0;
    double hostDramBusy = 0.0;
    double ssdBusy = 0.0;
    double sageHwBusy = 0.0;
    double mapperBusy = 0.0;
    double isfBusy = 0.0;
    bool inStorageHw = false;
};

StageTotals
stageTotals(const WorkloadMeasurement &work, PrepConfig prep,
            const SystemConfig &system)
{
    StageTotals tot;
    const double ssd_scale = std::max(1u, system.numSsds);
    const SsdModel &ssd = system.ssd;

    // Bytes the mapper consumes (2-bit-packed reads, the format GEM
    // and GenStore-class accelerators operate on).
    const uint64_t packed_bytes = work.totalBases / 4;

    auto conventional_io = [&](uint64_t bytes) {
        const double internal =
            ssd.internalReadSeconds(bytes) / ssd_scale;
        const double external =
            ssd.externalTransferSeconds(bytes) / ssd_scale;
        return std::max(internal, external);
    };

    uint64_t mapped_bases = work.totalBases;

    switch (prep) {
      case PrepConfig::Pigz:
        tot.io = conventional_io(work.pigzBytes);
        tot.prep = work.pigzDecompSeconds;
        tot.hostCpuBusy = tot.prep;
        tot.hostDramBusy = tot.prep;
        tot.ssdBusy = ssd.internalReadSeconds(work.pigzBytes) / ssd_scale;
        break;
      case PrepConfig::NSpr:
        tot.io = conventional_io(work.springBytes);
        tot.prep = work.springDecompSeconds
            / system.hostParallelSpeedup;
        tot.hostCpuBusy = tot.prep;
        tot.hostDramBusy = tot.prep;
        tot.ssdBusy =
            ssd.internalReadSeconds(work.springBytes) / ssd_scale;
        break;
      case PrepConfig::NSprAC:
        tot.io = conventional_io(work.springBytes);
        tot.prep = std::max(
            0.0, work.springDecompSeconds - work.springBackendSeconds)
            / system.hostParallelSpeedup;
        tot.hostCpuBusy = tot.prep;
        tot.hostDramBusy = tot.prep;
        tot.ssdBusy =
            ssd.internalReadSeconds(work.springBytes) / ssd_scale;
        break;
      case PrepConfig::ZeroTimeDec:
        tot.io = conventional_io(work.springBytes);
        tot.prep = 0.0;
        tot.ssdBusy =
            ssd.internalReadSeconds(work.springBytes) / ssd_scale;
        break;
      case PrepConfig::SageSW: {
        tot.io = conventional_io(work.sageBytes);
        // Projection from the sequential measurement, capped by what
        // was actually measured on this host: the chunk-parallel
        // decode (v2 archives decode per-chunk across cores) and the
        // prefetch-overlapped file decode (SageReader prefetch mode:
        // chunk I/O hidden behind decode, I/O included in the wall
        // clock). The modeled host cannot be slower than a real run.
        double prep = work.sageSwDecompSeconds
            / system.hostParallelSpeedup;
        if (work.sageSwParDecompSeconds > 0.0)
            prep = std::min(prep, work.sageSwParDecompSeconds);
        if (work.sageSwFilePrefetchSeconds > 0.0)
            prep = std::min(prep, work.sageSwFilePrefetchSeconds);
        // Shared-archive consumers: the measured multi-client serving
        // wall clock (SageArchiveService, decoded-chunk cache +
        // single-flight decode) delivered the full stream to
        // sageSwServeClients concurrent consumers. A fleet larger
        // than the measured one still amortizes decode, but the
        // copy-out/serving work grows with consumers, so scale the
        // measured wall linearly in fleet ratio before using it as a
        // cap — never extrapolate a 4-client figure to 64 consumers
        // unscaled.
        if (system.sharedConsumers > 1 &&
            work.sageSwServeSeconds > 0.0 &&
            work.sageSwServeClients > 0.0) {
            const double fleet_ratio =
                std::max(1.0, static_cast<double>(
                                  system.sharedConsumers) /
                                  work.sageSwServeClients);
            prep = std::min(prep,
                            work.sageSwServeSeconds * fleet_ratio);
        }
        tot.prep = prep;
        tot.hostCpuBusy = tot.prep;
        tot.hostDramBusy = tot.prep;
        tot.ssdBusy =
            ssd.internalReadSeconds(work.sageBytes) / ssd_scale;
        break;
      }
      case PrepConfig::SageHW: {
        // Host-attached hardware (Fig. 12 modes 1/2): compressed data
        // crosses the link; the units decompress at streaming rate.
        tot.io = conventional_io(work.sageBytes);
        SageHwModel hw;
        tot.prep = hw.computeSeconds(work.sageDnaStreamBytes,
                                     work.totalBases) / ssd_scale;
        tot.sageHwBusy = tot.prep;
        tot.ssdBusy =
            ssd.internalReadSeconds(work.sageBytes) / ssd_scale;
        break;
      }
      case PrepConfig::SageSSD: {
        // In-storage (mode 3): NAND streaming and decompression fuse
        // into one in-SSD stage; decompressed (and possibly filtered)
        // reads cross the external link.
        SageHwConfig hw_config;
        hw_config.inStorageRegisters = true;
        SageHwModel hw(hw_config);
        tot.prep = hw.decompressSeconds(ssd, work.sageDnaStreamBytes,
                                        work.totalBases) / ssd_scale;
        tot.sageHwBusy = tot.prep;
        tot.ssdBusy = tot.prep;
        tot.inStorageHw = true;

        uint64_t out_bytes = packed_bytes;
        if (system.useIsf) {
            // ISF runs in-SSD right after decompression; only the
            // unfiltered remainder leaves the device.
            const double keep = 1.0 - work.isfFilterFraction;
            mapped_bases = static_cast<uint64_t>(
                static_cast<double>(work.totalBases) * keep);
            out_bytes = mapped_bases / 4;
            // Filter streams all decompressed bases.
            const double packed_all =
                static_cast<double>(work.totalBases) / 4.0;
            tot.isf = packed_all / ssd.internalReadBandwidth()
                / 0.85 / ssd_scale;
            tot.isfBusy = tot.isf;
        }
        tot.io = ssd.externalTransferSeconds(out_bytes) / ssd_scale;
        break;
      }
    }

    if (system.useIsf && prep != PrepConfig::SageSSD) {
        // A host-side prep cannot feed an in-storage filter without
        // moving data back into the SSD — the paper's argument for why
        // only SAGeSSD composes with ISF. Model the ping-pong cost:
        // decompressed reads go host -> SSD, are filtered, and the
        // remainder returns.
        const double keep = 1.0 - work.isfFilterFraction;
        mapped_bases = static_cast<uint64_t>(
            static_cast<double>(work.totalBases) * keep);
        const double packed_all =
            static_cast<double>(work.totalBases) / 4.0;
        tot.isf = (packed_all / ssd.externalBandwidth()      // in
                   + packed_all / ssd.internalReadBandwidth() // filter
                   + packed_all * keep / ssd.externalBandwidth()) // out
            / ssd_scale;
        tot.isfBusy = tot.isf;
    }

    tot.map = system.mapper.mapSeconds(mapped_bases);
    tot.mapperBusy = tot.map;
    return tot;
}

/**
 * Batch weights for the flow shop. By default @p batches uniform
 * batches; SAGe configurations with a multi-chunk archive batch by
 * real chunks instead, each weighted by its compressed bytes — chunks
 * are the archive's unit of independent I/O and decode, so this
 * overlaps per-chunk fetches with per-chunk decompression exactly the
 * way a chunk-granular host pipeline (SageReader::decodeRange over a
 * striped device array) would.
 */
std::vector<double>
batchWeights(const WorkloadMeasurement &work, PrepConfig prep,
             unsigned batches)
{
    const bool sage_prep = prep == PrepConfig::SageSW ||
        prep == PrepConfig::SageHW || prep == PrepConfig::SageSSD;
    if (sage_prep && work.sageChunkBytes.size() > 1) {
        uint64_t total = 0;
        for (uint64_t bytes : work.sageChunkBytes)
            total += bytes;
        if (total > 0) {
            std::vector<double> weights;
            weights.reserve(work.sageChunkBytes.size());
            for (uint64_t bytes : work.sageChunkBytes) {
                weights.push_back(static_cast<double>(bytes) /
                                  static_cast<double>(total));
            }
            return weights;
        }
    }
    return std::vector<double>(std::max(1u, batches),
                               1.0 / std::max(1u, batches));
}

} // namespace

EndToEndResult
evaluateEndToEnd(const WorkloadMeasurement &work, PrepConfig prep,
                 const SystemConfig &system)
{
    const StageTotals tot = stageTotals(work, prep, system);

    // Split stage totals over batches and run the flow shop.
    const std::vector<double> weights =
        batchWeights(work, prep, system.batches);
    std::vector<std::vector<double>> t;
    t.reserve(weights.size());
    for (double w : weights)
        t.push_back({tot.io * w, tot.prep * w, tot.isf * w,
                     tot.map * w});
    EndToEndResult result;
    result.seconds = pipelineMakespan(t);
    result.ioSeconds = tot.io;
    result.prepSeconds = tot.prep;
    result.isfSeconds = tot.isf;
    result.mapSeconds = tot.map;

    // Energy: idle power over the makespan + active power over busy
    // time, per component.
    const double T = result.seconds;
    result.energy.hostCpu = system.hostIdlePowerWatts * T
        + (system.hostActivePowerWatts - system.hostIdlePowerWatts)
              * tot.hostCpuBusy;
    result.energy.hostDram =
        system.hostDram.energyJoules(T, tot.hostDramBusy);
    result.energy.ssd = system.ssd.energyJoules(T, tot.ssdBusy, 0.0)
        * std::max(1u, system.numSsds);
    {
        SageHwConfig hw_config;
        hw_config.inStorageRegisters = tot.inStorageHw;
        SageHwModel hw(hw_config);
        result.energy.sageHw = hw.energyJoules(tot.sageHwBusy);
    }
    result.energy.mapper =
        system.mapper.energyJoules(T, tot.mapperBusy);
    result.energy.isf = 0.8 * tot.isfBusy;
    return result;
}

double
dataPrepSeconds(const WorkloadMeasurement &work, PrepConfig prep,
                const SystemConfig &system)
{
    const StageTotals tot = stageTotals(work, prep, system);
    const std::vector<double> weights =
        batchWeights(work, prep, system.batches);
    std::vector<std::vector<double>> t;
    t.reserve(weights.size());
    for (double w : weights)
        t.push_back({tot.io * w, tot.prep * w});
    return pipelineMakespan(t);
}

} // namespace sage
