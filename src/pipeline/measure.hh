/**
 * @file
 * Workload measurement: run the repository's real codecs over a
 * synthesized read set and collect the compressed sizes and measured
 * decompression times the pipeline model consumes.
 *
 * Mirrors the paper's methodology (§7): software decompressor
 * performance is *measured* on a real host (here: this machine, with
 * its own core count — all software baselines share it, so relative
 * comparisons are meaningful), while hardware components come from
 * models.
 */

#ifndef SAGE_PIPELINE_MEASURE_HH
#define SAGE_PIPELINE_MEASURE_HH

#include "pipeline/pipeline.hh"
#include "simgen/synthesize.hh"

namespace sage {

/** Measurement knobs. */
struct MeasureConfig
{
    /** Threads for parallel codecs (0 = hardware concurrency). */
    unsigned threads = 0;
    /** Timing repetitions (median taken). */
    unsigned repetitions = 1;
    /** Compress quality streams too (matches Table 2 accounting). */
    bool keepQuality = true;
};

/** Detailed artifacts of one measured workload (for Table 2/17/18). */
struct MeasuredArtifacts
{
    WorkloadMeasurement work;

    // Compression-side outputs for ratio/time reporting.
    uint64_t dnaBytesUncompressed = 0;
    uint64_t qualBytesUncompressed = 0;
    uint64_t pigzDnaBytes = 0;        ///< pigz over the DNA stream.
    uint64_t pigzQualBytes = 0;
    uint64_t springDnaBytes = 0;
    uint64_t springQualBytes = 0;
    uint64_t sageDnaBytes = 0;
    uint64_t sageQualBytes = 0;

    double pigzCompressSeconds = 0.0;
    double springCompressSeconds = 0.0;
    double springMapSeconds = 0.0;    ///< "Finding mismatches" share.
    double sageCompressSeconds = 0.0;
    double sageMapSeconds = 0.0;
    double sageTuneSeconds = 0.0;     ///< Algorithm 1 share (§8.6).

    /** SpringLike decode working set (Table 3). */
    uint64_t springWorkingSetBytes = 0;
    /** SAGe software decode working set (Table 3). */
    uint64_t sageWorkingSetBytes = 0;
};

/** Run every codec over @p ds and measure (real wall clock). */
MeasuredArtifacts measureWorkload(const SimulatedDataset &ds,
                                  const MeasureConfig &config = {});

/** Synthesize + measure one preset in one call. */
MeasuredArtifacts measurePreset(const DatasetSpec &spec,
                                const MeasureConfig &config = {});

} // namespace sage

#endif // SAGE_PIPELINE_MEASURE_HH
