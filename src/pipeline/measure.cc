#include "pipeline/measure.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <thread>

#include "accel/genstore.hh"
#include "compress/gpzip.hh"
#include "compress/quality.hh"
#include "compress/springlike.hh"
#include "core/sage.hh"
#include "genomics/fastq.hh"
#include "io/session.hh"
#include "util/thread_pool.hh"
#include "util/timing.hh"

namespace sage {

namespace {

/** Median of repeated timings of @p fn. */
double
timeMedian(unsigned reps, const std::function<void()> &fn)
{
    std::vector<double> times;
    for (unsigned r = 0; r < std::max(1u, reps); r++) {
        Stopwatch clock;
        fn();
        times.push_back(clock.seconds());
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

} // namespace

MeasuredArtifacts
measureWorkload(const SimulatedDataset &ds, const MeasureConfig &config)
{
    MeasuredArtifacts art;
    ThreadPool pool(config.threads);

    const ReadSet &rs = ds.readSet;
    art.work.name = rs.name;
    art.work.fastqBytes = rs.fastqBytes();
    art.work.totalReads = rs.readCount();
    art.work.totalBases = rs.totalBases();
    art.dnaBytesUncompressed = rs.dnaBytes();
    art.qualBytesUncompressed = rs.qualityBytes();

    // ---- pigz stand-in -------------------------------------------------
    // Whole-FASTQ compression (how gzip is used in practice), plus
    // DNA/quality-only runs for the Table 2 per-stream ratios.
    const std::string fastq = toFastq(rs);
    std::vector<uint8_t> pigz_archive;
    art.pigzCompressSeconds = timeMedian(1, [&] {
        pigz_archive = gpzip::compress(fastq, {}, &pool);
    });
    art.work.pigzBytes = pigz_archive.size();
    {
        std::string dna, qual;
        for (const auto &read : rs.reads) {
            dna += read.bases;
            dna.push_back('\n');
            qual += read.quals;
            qual.push_back('\n');
        }
        art.pigzDnaBytes = gpzip::compress(dna, {}, &pool).size();
        art.pigzQualBytes = gpzip::compress(qual, {}, &pool).size();
    }
    // pigz decompression is effectively serial (the gzip stream is
    // sequential), hence no pool here.
    art.work.pigzDecompSeconds = timeMedian(config.repetitions, [&] {
        auto out = gpzip::decompress(pigz_archive);
        (void)out;
    });

    // ---- SpringLike ----------------------------------------------------
    springlike::Config spring_config;
    spring_config.keepQuality = config.keepQuality;
    springlike::CompressResult spring;
    art.springCompressSeconds = timeMedian(1, [&] {
        spring = springlike::compress(rs, ds.reference, spring_config,
                                      &pool);
    });
    art.springMapSeconds = spring.mapSeconds;
    art.work.springBytes = spring.archive.size();
    art.springDnaBytes = spring.dnaBytes;
    art.springQualBytes = spring.qualityBytes;
    {
        // Measured single-threaded; the pipeline model applies the
        // host-parallelism factor to parallel-capable decompressors
        // (Spring-class tools and SAGeSW) uniformly — pigz's decode is
        // inherently serial and gets no factor (see SystemConfig).
        springlike::DecompressResult out;
        art.work.springDecompSeconds =
            timeMedian(config.repetitions, [&] {
                out = springlike::decompress(spring.archive, nullptr);
            });
        art.work.springBackendSeconds = out.backendSeconds;
        art.springWorkingSetBytes = out.workingSetBytes;
    }

    // ---- SAGe ------------------------------------------------------------
    SageConfig sage_config;
    sage_config.keepQuality = config.keepQuality;
    SageArchive sage;
    art.sageCompressSeconds = timeMedian(1, [&] {
        sage = sageCompress(rs, ds.reference, sage_config, &pool);
    });
    art.sageMapSeconds = sage.mapSeconds;
    art.sageTuneSeconds = sage.tuneSeconds;
    art.work.sageBytes = sage.bytes.size();
    art.sageDnaBytes = sage.dnaBytes;
    art.sageQualBytes = sage.qualityBytes;
    {
        SageDecoder info_probe(sage.bytes);
        art.work.sageDnaStreamBytes = info_probe.info().dnaStreamBytes();
        art.sageWorkingSetBytes = info_probe.workingSetBytes();
        // Per-chunk fetch costs let the pipeline model overlap chunk
        // I/O with decode (chunk-weighted batches, pipeline.cc).
        if (info_probe.chunkCount() > 1)
            art.work.sageChunkBytes = info_probe.chunkCompressedBytes();
    }
    // DNA-only decode: the mapping pipeline never touches quality
    // scores (paper §5.1.5); they stay compressed and are fetched
    // lazily per block during later variant calling. Measured twice
    // with the same decodeAll() shape (so the two numbers compare
    // like with like): sequentially (the portable baseline the
    // pipeline model scales by its host-parallelism factor) and
    // chunk-parallel across the pool (real multi-core decode, which
    // caps the model's projection).
    art.work.sageSwDecompSeconds = timeMedian(config.repetitions, [&] {
        SageDecoder decoder(sage.bytes, /*dna_only=*/true);
        const ReadSet out = decoder.decodeAll();
        (void)out;
    });
    art.work.sageSwParDecompSeconds =
        timeMedian(config.repetitions, [&] {
            SageDecoder decoder(sage.bytes, /*dna_only=*/true);
            const ReadSet out = decoder.decodeAll(&pool);
            (void)out;
        });
    art.work.sageSwDecodeThreads =
        static_cast<double>(pool.threadCount());

    // File-backed decode, prefetch off vs on: same sequential decode,
    // but chunk slices now come off a real file. With prefetch, chunk
    // i+1's pread runs behind chunk i's decode (SageReader prefetch
    // mode), so the on/off delta is the I/O the overlap hides; the
    // pipeline model uses the overlapped time as a measured cap.
    {
        // PID-keyed temp name: concurrent measurement passes in one
        // directory (two bench harnesses racing a cold cache) must not
        // time each other's half-written archives.
        const std::string path = "sage_measure_" + rs.name + "." +
            std::to_string(static_cast<long>(::getpid())) + ".sage.tmp";
        {
            FileSink sink(path);
            sink.writeBytes(sage.bytes);
        }
        SageReaderOptions opt;
        opt.dnaOnly = true;
        art.work.sageSwFileDecompSeconds =
            timeMedian(config.repetitions, [&] {
                SageReader reader(path, opt);
                const ReadSet out = reader.decodeAll();
                (void)out;
            });
        // Shared fetch pool: thread startup stays outside the timing,
        // as it would in any long-lived ingest process.
        ThreadPool prefetch_pool(1);
        opt.prefetch = true;
        opt.prefetchPool = &prefetch_pool;
        art.work.sageSwFilePrefetchSeconds =
            timeMedian(config.repetitions, [&] {
                SageReader reader(path, opt);
                const ReadSet out = reader.decodeAll();
                (void)out;
            });

        // Multi-client serving: N concurrent consumers over one
        // SageArchiveService on the same file. The decoded-chunk
        // cache means hot chunks decompress once for the whole fleet,
        // so the wall clock is what any one shared-archive consumer
        // waits for its full read stream (SystemConfig::
        // sharedConsumers uses it as a measured prep cap).
        {
            const unsigned clients = 4;
            art.work.sageSwServeSeconds =
                timeMedian(config.repetitions, [&] {
                    ServiceOptions service_options;
                    service_options.dnaOnly = true;
                    SageArchiveService service(path, service_options);
                    std::vector<std::thread> fleet;
                    for (unsigned c = 0; c < clients; c++) {
                        fleet.emplace_back([&service] {
                            ServiceSession session =
                                service.openSession();
                            while (session.hasNext())
                                session.read(1024);
                        });
                    }
                    for (auto &client : fleet)
                        client.join();
                });
            art.work.sageSwServeClients =
                static_cast<double>(clients);
        }
        std::remove(path.c_str());
    }

    // ---- ISF filter fraction (functional GenStore) -----------------------
    {
        InStorageFilter isf(ds.reference);
        const IsfResult result = isf.filter(rs);
        art.work.isfFilterFraction = result.filterFraction();
    }
    return art;
}

MeasuredArtifacts
measurePreset(const DatasetSpec &spec, const MeasureConfig &config)
{
    const SimulatedDataset ds = synthesizeDataset(spec);
    return measureWorkload(ds, config);
}

} // namespace sage
