/**
 * @file
 * End-to-end pipeline model (paper §3.1, §7): I/O, data preparation,
 * optional in-storage filtering, and read mapping run on batches in a
 * pipelined manner, so stages partially overlap and the slowest stage
 * sets the steady-state throughput.
 *
 * This module assembles the component models (ssd, dram, hw, accel)
 * plus *measured* software decompression times into the end-to-end
 * times and energies reported by Figs. 1, 4, 13, 14, 15 and 16.
 */

#ifndef SAGE_PIPELINE_PIPELINE_HH
#define SAGE_PIPELINE_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "accel/mappers.hh"
#include "dram/dram.hh"
#include "hw/sage_hw.hh"
#include "ssd/nand.hh"

namespace sage {

/**
 * Makespan of a linear pipeline: t[b][s] is the time batch b spends in
 * stage s. Classic flow-shop recurrence — batch b cannot enter stage s
 * before batch b-1 leaves it, nor before batch b leaves stage s-1.
 */
double pipelineMakespan(const std::vector<std::vector<double>> &t);

/** Data-preparation configurations evaluated by the paper (§7). */
enum class PrepConfig {
    Pigz,        ///< Parallel gzip baseline (serial decode).
    NSpr,        ///< Spring/NanoSpring-class software compressor.
    NSprAC,      ///< (N)Spr with an idealized backend accelerator.
    ZeroTimeDec, ///< Idealized zero-time decompression (host-side only).
    SageSW,      ///< SAGe algorithm, software decode on the host.
    SageHW,      ///< SAGe hardware, host-attached (Fig. 12 modes 1/2).
    SageSSD,     ///< SAGe hardware inside the SSD (Fig. 12 mode 3).
};

/** Printable name of a prep configuration. */
const char *prepConfigName(PrepConfig config);

/** Everything measured/derived once per read set (real runs of the
 *  repository's codecs; see measure.hh). */
struct WorkloadMeasurement
{
    std::string name;
    uint64_t fastqBytes = 0;     ///< Uncompressed FASTQ size.
    uint64_t totalReads = 0;
    uint64_t totalBases = 0;

    uint64_t pigzBytes = 0;      ///< Compressed sizes on the SSD.
    uint64_t springBytes = 0;
    uint64_t sageBytes = 0;
    uint64_t sageDnaStreamBytes = 0;

    double pigzDecompSeconds = 0.0;    ///< Measured, serial decode.
    double springDecompSeconds = 0.0;  ///< Measured, parallel.
    double springBackendSeconds = 0.0; ///< Backend share of the above.
    double sageSwDecompSeconds = 0.0;  ///< Measured, sequential decode.
    /** Measured chunk-parallel SAGe decode across sageSwDecodeThreads
     *  host threads (0 when not measured, e.g. stale caches). */
    double sageSwParDecompSeconds = 0.0;
    double sageSwDecodeThreads = 1.0;

    /**
     * Measured sequential SAGe decode over a real FileSource — I/O
     * included — without and with prefetch-next-chunk mode
     * (SageReaderOptions::prefetch: chunk i+1's slices fetched in the
     * background while chunk i decodes). The prefetched number is an
     * end-to-end I/O+decode wall clock with the two stages overlapped,
     * so the SageSW pipeline projection treats it as another measured
     * upper bound (0 when not measured, e.g. stale caches).
     */
    double sageSwFileDecompSeconds = 0.0;
    double sageSwFilePrefetchSeconds = 0.0;

    /**
     * Measured multi-client serving wall clock: sageSwServeClients
     * concurrent consumers each received the complete read stream from
     * one file-backed SageArchiveService (shared decoded-chunk cache +
     * request scheduling, service/service.hh) in this many seconds.
     * Because hot chunks decode once and are served from cache, this
     * is the per-consumer data-preparation time a shared-archive
     * deployment actually observes (0 when not measured, e.g. stale
     * caches).
     */
    double sageSwServeSeconds = 0.0;
    double sageSwServeClients = 0.0;

    double isfFilterFraction = 0.0;    ///< Functional ISF result.

    /**
     * Per-chunk compressed DNA bytes of the SAGe archive (v2 chunk
     * table; empty for v1/single-chunk archives). When present, the
     * SAGe pipeline configurations batch by real chunks — each batch's
     * I/O time proportional to its chunk's bytes — so the flow shop
     * overlaps per-chunk I/O with decode instead of assuming uniform
     * batches (ROADMAP: multi-SSD sharding follow-on).
     */
    std::vector<uint64_t> sageChunkBytes;

    /** Scale factor vs the paper's dataset sizes (for reporting). */
    double scaleNote = 1.0;
};

/** System assembly for one experiment. */
struct SystemConfig
{
    SsdModel ssd = SsdModel::pciePerformance();
    unsigned numSsds = 1;
    MapperModel mapper;            ///< Defaults to GEM via preset.
    DramModel hostDram = DramModel::hostDdr4();
    DramModel ssdDram = DramModel::ssdInternal();
    unsigned batches = 32;
    /** Host CPU power (active/idle) for software prep stages. */
    double hostActivePowerWatts = 180.0;
    double hostIdlePowerWatts = 70.0;
    bool useIsf = false;           ///< GenStore ISF before mapping.
    /**
     * Parallel speedup the evaluation host provides to parallel-capable
     * software decompressors over our single-threaded measurements.
     * The paper's host has 128 cores but genomic decompressors saturate
     * around 32 threads on 8 DRAM channels (§3.2); pigz's gzip decode
     * is inherently serial and never receives this factor.
     */
    double hostParallelSpeedup = 24.0;
    /**
     * Consumers sharing one archive through a SageArchiveService.
     * At 1 (default), every configuration models a private pipeline.
     * Above 1, the SageSW preparation stage additionally caps at the
     * measured multi-client serving time (sageSwServeSeconds, scaled
     * linearly when the modeled fleet exceeds the measured
     * sageSwServeClients): the decoded-chunk cache amortizes decode
     * across consumers, while the per-consumer serving work still
     * grows with the fleet. Other prep configurations are unaffected
     * (they have no serving layer to share).
     */
    unsigned sharedConsumers = 1;
};

/** Per-component energy accounting (joules). */
struct EnergyBreakdown
{
    double hostCpu = 0.0;
    double hostDram = 0.0;
    double ssd = 0.0;
    double sageHw = 0.0;
    double mapper = 0.0;
    double isf = 0.0;

    double
    total() const
    {
        return hostCpu + hostDram + ssd + sageHw + mapper + isf;
    }
};

/** End-to-end evaluation output. */
struct EndToEndResult
{
    double seconds = 0.0;          ///< Pipeline makespan.
    double ioSeconds = 0.0;        ///< Total I/O stage time.
    double prepSeconds = 0.0;      ///< Total preparation stage time.
    double isfSeconds = 0.0;       ///< Total ISF stage time.
    double mapSeconds = 0.0;       ///< Total mapping stage time.
    EnergyBreakdown energy;

    double
    readsPerSec(uint64_t reads) const
    {
        return seconds == 0.0 ? 0.0
            : static_cast<double>(reads) / seconds;
    }
};

/** Evaluate one (read set, prep config, system) combination. */
EndToEndResult evaluateEndToEnd(const WorkloadMeasurement &work,
                                PrepConfig prep,
                                const SystemConfig &system);

/** Preparation-only time for Fig. 14 (I/O + decompression pipeline,
 *  no analysis stage). */
double dataPrepSeconds(const WorkloadMeasurement &work, PrepConfig prep,
                       const SystemConfig &system);

} // namespace sage

#endif // SAGE_PIPELINE_PIPELINE_HH
