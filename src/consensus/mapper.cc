#include "consensus/mapper.hh"

#include <algorithm>
#include <cmath>

#include "genomics/alphabet.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace sage {

/** One anchor chain: co-linear seed matches on a shared diagonal band. */
struct ConsensusMapper::Chain
{
    /** Anchor (read offset, consensus offset) pairs, read-sorted. */
    std::vector<std::pair<uint32_t, uint32_t>> anchors;
    uint32_t score = 0;  ///< Read span covered (proxy for quality).

    uint32_t readStart() const { return anchors.front().first; }
    uint32_t readEnd() const { return anchors.back().first; }
};

ConsensusMapper::ConsensusMapper(std::string_view consensus,
                                 MapperConfig config)
    : consensus_(consensus), config_(config),
      index_(consensus, config.index)
{
}

std::vector<ConsensusMapper::Chain>
ConsensusMapper::buildChains(std::string_view bases) const
{
    const unsigned k = config_.index.k;
    const auto seeds = extractMinimizers(bases, k, config_.index.w);

    // Collect anchors.
    std::vector<std::pair<uint32_t, uint32_t>> anchors;
    for (const auto &seed : seeds) {
        for (uint32_t cpos : index_.lookup(seed.kmer))
            anchors.emplace_back(seed.pos, cpos);
    }
    std::sort(anchors.begin(), anchors.end());

    // Greedy chaining: attach each anchor to the chain with the closest
    // compatible diagonal; otherwise start a new chain.
    std::vector<Chain> chains;
    for (const auto &[rpos, cpos] : anchors) {
        const int64_t diag = static_cast<int64_t>(cpos)
                             - static_cast<int64_t>(rpos);
        Chain *best = nullptr;
        int64_t best_gap = -1;
        for (auto &chain : chains) {
            const auto &[lr, lc] = chain.anchors.back();
            if (rpos <= lr || cpos <= lc)
                continue; // Must advance in both coordinates.
            const uint32_t gap = rpos - lr;
            const int64_t last_diag = static_cast<int64_t>(lc)
                                      - static_cast<int64_t>(lr);
            if (std::llabs(diag - last_diag) >
                static_cast<int64_t>(config_.chainSlack(gap))) {
                continue;
            }
            if (best == nullptr || gap < best_gap) {
                best = &chain;
                best_gap = gap;
            }
        }
        if (best != nullptr) {
            best->anchors.emplace_back(rpos, cpos);
        } else {
            Chain chain;
            chain.anchors.emplace_back(rpos, cpos);
            chains.push_back(std::move(chain));
        }
    }

    // Score and prune.
    std::vector<Chain> kept;
    for (auto &chain : chains) {
        if (chain.anchors.size() < config_.minChainAnchors)
            continue;
        chain.score = chain.readEnd() - chain.readStart() + k;
        kept.push_back(std::move(chain));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Chain &a, const Chain &b)
              { return a.score > b.score; });
    return kept;
}

bool
ConsensusMapper::alignChain(std::string_view bases, const Chain &chain,
                            uint32_t read_start, uint32_t read_end,
                            AlignedSegment &out) const
{
    // Keep only anchors inside the assigned read interval.
    std::vector<std::pair<uint32_t, uint32_t>> anchors;
    for (const auto &a : chain.anchors) {
        if (a.first >= read_start && a.first < read_end)
            anchors.push_back(a);
    }
    if (anchors.empty())
        return false;

    // Project the segment's consensus start from the first anchor.
    const int64_t first_diag = static_cast<int64_t>(anchors[0].second)
                               - static_cast<int64_t>(anchors[0].first);
    int64_t cons_start = static_cast<int64_t>(read_start) + first_diag;
    cons_start = std::clamp<int64_t>(
        cons_start, 0, static_cast<int64_t>(consensus_.size()) - 1);

    out.consensusPos = static_cast<uint64_t>(cons_start);
    out.readStart = read_start;
    out.readLength = read_end - read_start;
    out.ops.clear();

    // Piecewise alignment between anchor waypoints. Waypoints tile the
    // consensus contiguously, so the concatenated edit scripts form one
    // valid segment script (see reconstructSegment).
    struct Piece { uint32_t rBegin, rEnd; int64_t cBegin, cEnd; };
    std::vector<Piece> pieces;

    uint32_t cur_r = read_start;
    int64_t cur_c = cons_start;
    for (const auto &[ar, ac] : anchors) {
        if (ar <= cur_r || static_cast<int64_t>(ac) <= cur_c)
            continue; // Skip anchors that do not advance.
        pieces.push_back({cur_r, ar, cur_c, static_cast<int64_t>(ac)});
        cur_r = ar;
        cur_c = static_cast<int64_t>(ac);
    }
    // Tail piece: project an equal-length consensus window.
    {
        const int64_t want = static_cast<int64_t>(read_end) - cur_r;
        const int64_t c_end = std::min<int64_t>(
            cur_c + want, static_cast<int64_t>(consensus_.size()));
        pieces.push_back({cur_r, read_end, cur_c, c_end});
    }

    for (const auto &piece : pieces) {
        if (piece.rBegin == piece.rEnd && piece.cBegin == piece.cEnd)
            continue;
        std::string_view query =
            bases.substr(piece.rBegin, piece.rEnd - piece.rBegin);
        std::string_view target = consensus_.substr(
            static_cast<size_t>(piece.cBegin),
            static_cast<size_t>(piece.cEnd - piece.cBegin));

        const int64_t diff = static_cast<int64_t>(target.size())
                             - static_cast<int64_t>(query.size());
        uint32_t band = config_.basePad
            + static_cast<uint32_t>(std::llabs(diff));
        std::optional<AlignResult> aligned;
        while (true) {
            aligned = bandedAlign(target, query, band);
            if (aligned || band >= config_.maxBand)
                break;
            band = std::min(config_.maxBand, band * 2);
        }
        if (!aligned)
            return false;

        const uint32_t offset = piece.rBegin - read_start;
        for (auto &op : aligned->ops) {
            op.readPos += offset;
            out.ops.push_back(std::move(op));
        }
    }
    return true;
}

ReadMapping
ConsensusMapper::mapSequence(std::string_view bases) const
{
    ReadMapping mapping;
    if (bases.size() < config_.index.k)
        return mapping;

    // Try both strands and keep the better chain set.
    std::vector<Chain> fwd = buildChains(bases);
    const std::string rc = reverseComplement(bases);
    std::vector<Chain> rev = buildChains(rc);

    const uint32_t fwd_score = fwd.empty() ? 0 : fwd.front().score;
    const uint32_t rev_score = rev.empty() ? 0 : rev.front().score;
    const bool use_rev = rev_score > fwd_score;
    const std::vector<Chain> &chains = use_rev ? rev : fwd;
    const std::string_view oriented = use_rev
        ? std::string_view(rc) : bases;
    if (chains.empty())
        return mapping;

    // Select up to maxSegments chains with limited read overlap
    // (chimeric reads map in pieces; paper §5.1.2, N = 3).
    struct Pick { uint32_t start, end; const Chain *chain; };
    std::vector<Pick> picks;
    for (const auto &chain : chains) {
        if (picks.size() >= config_.maxSegments)
            break;
        const uint32_t start = chain.readStart();
        const uint32_t end = chain.readEnd() + config_.index.k;
        bool overlaps = false;
        for (const auto &pick : picks) {
            const uint32_t lo = std::max(start, pick.start);
            const uint32_t hi = std::min(end, pick.end);
            if (hi > lo && (hi - lo) * 2 > (end - start))
                overlaps = true;
        }
        if (!overlaps)
            picks.push_back({start, end, &chain});
    }
    std::sort(picks.begin(), picks.end(),
              [](const Pick &a, const Pick &b)
              { return a.start < b.start; });

    // Partition the full read across the picked chains at midpoints.
    std::vector<uint32_t> bounds;
    bounds.push_back(0);
    for (size_t i = 0; i + 1 < picks.size(); i++) {
        uint32_t mid = (picks[i].end + picks[i + 1].start) / 2;
        mid = std::clamp<uint32_t>(mid, bounds.back() + 1,
                                   static_cast<uint32_t>(bases.size()) - 1);
        bounds.push_back(mid);
    }
    bounds.push_back(static_cast<uint32_t>(bases.size()));

    mapping.reverse = use_rev;
    uint64_t edits = 0;
    for (size_t i = 0; i < picks.size(); i++) {
        AlignedSegment seg;
        if (!alignChain(oriented, *picks[i].chain, bounds[i],
                        bounds[i + 1], seg)) {
            return ReadMapping{}; // Escape path handles this read.
        }
        for (const auto &op : seg.ops)
            edits += op.length;
        mapping.segments.push_back(std::move(seg));
    }

    if (static_cast<double>(edits) >
        config_.maxEditFraction * static_cast<double>(bases.size())) {
        return ReadMapping{};
    }
    mapping.mapped = true;
    return mapping;
}

std::vector<ReadMapping>
ConsensusMapper::mapAll(const ReadSet &rs, ThreadPool *pool) const
{
    std::vector<ReadMapping> mappings(rs.reads.size());
    auto work = [&](size_t i) {
        mappings[i] = mapSequence(rs.reads[i].bases);
    };
    if (pool != nullptr) {
        pool->parallelFor(rs.reads.size(), work);
    } else {
        for (size_t i = 0; i < rs.reads.size(); i++)
            work(i);
    }
    return mappings;
}

MappingStats
ConsensusMapper::summarize(const std::vector<ReadMapping> &maps,
                           const ReadSet &rs)
{
    MappingStats stats;
    stats.totalReads = maps.size();
    for (size_t i = 0; i < maps.size(); i++) {
        const auto &mapping = maps[i];
        if (!mapping.mapped)
            continue;
        stats.mappedReads++;
        if (mapping.reverse)
            stats.reverseReads++;
        if (mapping.segments.size() > 1)
            stats.chimericReads++;
        for (const auto &seg : mapping.segments)
            stats.totalEdits += seg.ops.size();
        stats.totalAlignedBases += rs.reads[i].bases.size();
    }
    return stats;
}

} // namespace sage
