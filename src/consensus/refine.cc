#include "consensus/refine.hh"

#include <array>

#include "genomics/alphabet.hh"
#include "genomics/kernels.hh"

namespace sage {

std::string
refineConsensus(std::string_view draft, const ReadSet &rs,
                const std::vector<ReadMapping> &mappings,
                const RefineConfig &config, RefineStats *stats)
{
    // Per-position vote counters for A/C/G/T (N never wins a vote).
    std::vector<std::array<uint32_t, 4>> votes(
        draft.size(), std::array<uint32_t, 4>{0, 0, 0, 0});

    for (size_t i = 0; i < mappings.size() && i < rs.reads.size(); i++) {
        const ReadMapping &mapping = mappings[i];
        if (!mapping.mapped)
            continue;
        const std::string oriented = mapping.reverse
            ? reverseComplement(rs.reads[i].bases)
            : rs.reads[i].bases;
        // Convert the whole read to codes once (bulk kernel) instead
        // of re-deriving a code per covered position below.
        std::vector<uint8_t> codes(oriented.size());
        kernels::basesToCodes(oriented.data(), oriented.size(),
                              codes.data());

        // Walk the alignment exactly as reconstruction does, crediting
        // the read base at each consensus position it covers (copies
        // and substitutions vote; insertions/deletions do not).
        for (const AlignedSegment &seg : mapping.segments) {
            uint64_t cons_j = seg.consensusPos;
            uint32_t read_i = 0;
            auto vote_until = [&](uint32_t target) {
                while (read_i < target && cons_j < draft.size()) {
                    const uint8_t code = codes[seg.readStart + read_i];
                    if (code < 4)
                        votes[cons_j][code]++;
                    cons_j++;
                    read_i++;
                }
            };
            for (const EditOp &op : seg.ops) {
                vote_until(op.readPos);
                switch (op.type) {
                  case EditType::Sub:
                    if (cons_j < draft.size()) {
                        const uint8_t code = baseToCode(op.bases[0]);
                        if (code < 4)
                            votes[cons_j][code]++;
                    }
                    cons_j++;
                    read_i++;
                    break;
                  case EditType::Ins:
                    read_i += op.length;
                    break;
                  case EditType::Del:
                    cons_j += op.length;
                    break;
                }
            }
            vote_until(seg.readLength);
        }
    }

    std::string refined(draft);
    RefineStats local;
    for (size_t pos = 0; pos < draft.size(); pos++) {
        uint32_t depth = 0;
        unsigned best = 0;
        for (unsigned b = 0; b < 4; b++) {
            depth += votes[pos][b];
            if (votes[pos][b] > votes[pos][best])
                best = b;
        }
        if (depth == 0)
            continue;
        local.positionsVoted++;
        if (depth < config.minDepth)
            continue;
        const double share =
            static_cast<double>(votes[pos][best]) / depth;
        const char winner = codeToBase(static_cast<uint8_t>(best));
        if (share >= config.majority && winner != draft[pos]) {
            refined[pos] = winner;
            local.positionsChanged++;
        }
    }
    if (stats != nullptr)
        *stats = local;
    return refined;
}

} // namespace sage
