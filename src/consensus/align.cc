#include "consensus/align.hh"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/logging.hh"

namespace sage {

namespace {

constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max() / 2;

/** Traceback move codes. */
enum Move : uint8_t { kNone = 0, kDiag = 1, kUp = 2, kLeft = 3 };

/** True when the two bases should be scored as a match. */
inline bool
basesMatch(char q, char t)
{
    // N never matches so unknown bases always surface as explicit edits.
    return q == t && q != 'N' && q != 'n';
}

struct BandShape
{
    int64_t diff;     // target length - query length
    int64_t band;

    int64_t
    lo(int64_t i, int64_t n) const
    {
        return std::clamp<int64_t>(i + std::min<int64_t>(0, diff) - band,
                                   0, n);
    }

    int64_t
    hi(int64_t i, int64_t n) const
    {
        return std::clamp<int64_t>(i + std::max<int64_t>(0, diff) + band,
                                   0, n);
    }
};

/** Merge single-base traceback ops into block ops (Ins/Del runs). */
std::vector<EditOp>
mergeOps(std::vector<EditOp> ops)
{
    std::vector<EditOp> merged;
    for (auto &op : ops) {
        if (!merged.empty()) {
            EditOp &prev = merged.back();
            if (op.type == EditType::Ins && prev.type == EditType::Ins &&
                prev.readPos + prev.length == op.readPos) {
                prev.length += op.length;
                prev.bases += op.bases;
                continue;
            }
            if (op.type == EditType::Del && prev.type == EditType::Del &&
                prev.readPos == op.readPos) {
                prev.length += op.length;
                continue;
            }
        }
        merged.push_back(std::move(op));
    }
    return merged;
}

} // namespace

std::optional<AlignResult>
bandedAlign(std::string_view target, std::string_view query, uint32_t band)
{
    const int64_t m = static_cast<int64_t>(query.size());
    const int64_t n = static_cast<int64_t>(target.size());
    const BandShape shape{n - m, static_cast<int64_t>(band)};

    // Validate the band can reach the terminal corner at all.
    if (std::llabs(shape.diff) > static_cast<int64_t>(band) + n + m)
        return std::nullopt;

    // Rolling DP rows plus a full move matrix for traceback.
    const int64_t width = 2 * static_cast<int64_t>(band)
                          + std::llabs(shape.diff) + 1;
    std::vector<uint32_t> prev_row(width + 2, kInf);
    std::vector<uint32_t> cur_row(width + 2, kInf);
    std::vector<uint8_t> moves(static_cast<size_t>((m + 1) * width), kNone);

    auto move_at = [&](int64_t i, int64_t j) -> uint8_t & {
        const int64_t off = j - shape.lo(i, n);
        return moves[static_cast<size_t>(i * width + off)];
    };

    // Row 0: deleting leading target bases.
    {
        const int64_t lo0 = shape.lo(0, n), hi0 = shape.hi(0, n);
        for (int64_t j = lo0; j <= hi0; j++) {
            prev_row[j - lo0] = static_cast<uint32_t>(j);
            if (j > 0)
                move_at(0, j) = kLeft;
        }
    }

    for (int64_t i = 1; i <= m; i++) {
        const int64_t lo = shape.lo(i, n), hi = shape.hi(i, n);
        const int64_t plo = shape.lo(i - 1, n), phi = shape.hi(i - 1, n);
        std::fill(cur_row.begin(), cur_row.end(), kInf);
        for (int64_t j = lo; j <= hi; j++) {
            uint32_t best = kInf;
            uint8_t mv = kNone;
            // Diagonal (match/substitution).
            if (j > 0 && j - 1 >= plo && j - 1 <= phi) {
                const uint32_t d = prev_row[j - 1 - plo]
                    + (basesMatch(query[i - 1], target[j - 1]) ? 0 : 1);
                if (d < best) { best = d; mv = kDiag; }
            }
            // Up (insertion in query).
            if (j >= plo && j <= phi) {
                const uint32_t d = prev_row[j - plo] + 1;
                if (d < best) { best = d; mv = kUp; }
            }
            // Left (deletion of target base).
            if (j > lo) {
                const uint32_t d = cur_row[j - 1 - lo] + 1;
                if (d < best) { best = d; mv = kLeft; }
            }
            cur_row[j - lo] = best;
            if (mv != kNone)
                move_at(i, j) = mv;
        }
        std::swap(prev_row, cur_row);
    }

    const int64_t lo_m = shape.lo(m, n), hi_m = shape.hi(m, n);
    if (n < lo_m || n > hi_m || prev_row[n - lo_m] >= kInf)
        return std::nullopt;

    AlignResult result;
    result.editDistance = prev_row[n - lo_m];

    // Traceback, emitting single-base ops in reverse alignment order.
    std::vector<EditOp> ops;
    int64_t i = m, j = n;
    while (i > 0 || j > 0) {
        const uint8_t mv = move_at(i, j);
        if (mv == kDiag) {
            if (!basesMatch(query[i - 1], target[j - 1])) {
                EditOp op;
                op.readPos = static_cast<uint32_t>(i - 1);
                op.type = EditType::Sub;
                op.length = 1;
                op.bases = std::string(1, query[i - 1]);
                ops.push_back(std::move(op));
            }
            i--; j--;
        } else if (mv == kUp) {
            EditOp op;
            op.readPos = static_cast<uint32_t>(i - 1);
            op.type = EditType::Ins;
            op.length = 1;
            op.bases = std::string(1, query[i - 1]);
            ops.push_back(std::move(op));
            i--;
        } else if (mv == kLeft) {
            EditOp op;
            op.readPos = static_cast<uint32_t>(i);
            op.type = EditType::Del;
            op.length = 1;
            ops.push_back(std::move(op));
            j--;
        } else {
            sage_panic("banded alignment traceback escaped the band");
        }
    }
    std::reverse(ops.begin(), ops.end());
    result.ops = mergeOps(std::move(ops));
    return result;
}

std::optional<uint32_t>
bandedDistance(std::string_view target, std::string_view query,
               uint32_t band)
{
    // Distance-only variant: same recurrence, no move matrix.
    const int64_t m = static_cast<int64_t>(query.size());
    const int64_t n = static_cast<int64_t>(target.size());
    const BandShape shape{n - m, static_cast<int64_t>(band)};
    const int64_t width = 2 * static_cast<int64_t>(band)
                          + std::llabs(shape.diff) + 1;
    std::vector<uint32_t> prev_row(width + 2, kInf);
    std::vector<uint32_t> cur_row(width + 2, kInf);

    {
        const int64_t lo0 = shape.lo(0, n), hi0 = shape.hi(0, n);
        for (int64_t j = lo0; j <= hi0; j++)
            prev_row[j - lo0] = static_cast<uint32_t>(j);
    }
    for (int64_t i = 1; i <= m; i++) {
        const int64_t lo = shape.lo(i, n), hi = shape.hi(i, n);
        const int64_t plo = shape.lo(i - 1, n), phi = shape.hi(i - 1, n);
        std::fill(cur_row.begin(), cur_row.end(), kInf);
        for (int64_t j = lo; j <= hi; j++) {
            uint32_t best = kInf;
            if (j > 0 && j - 1 >= plo && j - 1 <= phi) {
                best = std::min(best, prev_row[j - 1 - plo]
                    + (basesMatch(query[i - 1], target[j - 1]) ? 0u : 1u));
            }
            if (j >= plo && j <= phi)
                best = std::min(best, prev_row[j - plo] + 1);
            if (j > lo)
                best = std::min(best, cur_row[j - 1 - lo] + 1);
            cur_row[j - lo] = best;
        }
        std::swap(prev_row, cur_row);
    }
    const int64_t lo_m = shape.lo(m, n), hi_m = shape.hi(m, n);
    if (n < lo_m || n > hi_m || prev_row[n - lo_m] >= kInf)
        return std::nullopt;
    return prev_row[n - lo_m];
}

} // namespace sage
