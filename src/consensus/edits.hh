/**
 * @file
 * Edit scripts: the mismatch information genomic compressors store
 * (paper §2.2, Fig. 3) — matching position, mismatch positions, mismatch
 * bases and types, and read length.
 *
 * Semantics are defined by reconstructSegment(): an edit script is exact
 * by construction (it is an alignment traceback), so a compressor that
 * stores it losslessly can always rebuild the original read.
 */

#ifndef SAGE_CONSENSUS_EDITS_HH
#define SAGE_CONSENSUS_EDITS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sage {

/** Kind of one mismatch event. */
enum class EditType : uint8_t {
    Sub = 0,  ///< Single-base substitution.
    Ins = 1,  ///< Insertion block (bases present in read only).
    Del = 2,  ///< Deletion block (consensus bases absent from read).
};

/**
 * One mismatch event in read coordinates.
 *
 * readPos is the read offset where the event applies; for a deletion it
 * is the offset of the first read base *after* the deleted consensus run.
 * Events are kept sorted by (readPos, order of application); a Del sorts
 * before an Ins/Sub at the same readPos.
 */
struct EditOp
{
    uint32_t readPos = 0;
    EditType type = EditType::Sub;
    uint32_t length = 1;     ///< Block length (1 for substitutions).
    std::string bases;       ///< Sub: 1 base; Ins: `length` bases; Del: "".
};

/** A contiguous chunk of a read aligned to one consensus location. */
struct AlignedSegment
{
    uint64_t consensusPos = 0;  ///< Consensus offset of the first base.
    uint32_t readStart = 0;     ///< First read offset covered.
    uint32_t readLength = 0;    ///< Number of read bases covered.
    std::vector<EditOp> ops;    ///< Events within the segment,
                                ///< readPos relative to readStart.
};

/**
 * Mapping of one full read: one segment normally, up to N segments for
 * chimeric reads (paper §5.1.2, Property 4). Unmapped reads have
 * mapped == false and are handled by the compressors' escape paths.
 */
struct ReadMapping
{
    bool mapped = false;
    bool reverse = false;        ///< Read aligned as reverse complement.
    std::vector<AlignedSegment> segments;

    /** Total number of mismatch events across segments. */
    size_t
    totalEdits() const
    {
        size_t n = 0;
        for (const auto &seg : segments)
            n += seg.ops.size();
        return n;
    }

    /** Matching position of the read (first segment's consensus pos). */
    uint64_t
    primaryPosition() const
    {
        return segments.empty() ? 0 : segments.front().consensusPos;
    }
};

/**
 * Rebuild the read bases covered by @p seg from @p consensus.
 * This function *defines* edit-script semantics; every decoder
 * (software, hardware model) must agree with it.
 */
std::string reconstructSegment(std::string_view consensus,
                               const AlignedSegment &seg);

/** Rebuild a full (oriented) read from all segments of a mapping. */
std::string reconstructRead(std::string_view consensus,
                            const ReadMapping &mapping);

/** Sum of inserted/substituted bases stored explicitly by the script. */
size_t storedBaseCount(const std::vector<EditOp> &ops);

} // namespace sage

#endif // SAGE_CONSENSUS_EDITS_HH
