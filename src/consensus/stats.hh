/**
 * @file
 * Dataset-property analyses over mappings: the distributions the paper
 * reports in Fig. 7 (mismatch-position bit counts, mismatch counts per
 * read, indel-block statistics) and Fig. 10 (matching-position delta bit
 * counts after read reordering).
 */

#ifndef SAGE_CONSENSUS_STATS_HH
#define SAGE_CONSENSUS_STATS_HH

#include <vector>

#include "consensus/mapper.hh"
#include "util/histogram.hh"

namespace sage {

/** Bits needed to represent @p v (v=0 needs 1 bit). */
inline unsigned
bitsNeeded(uint64_t v)
{
    unsigned bits = 1;
    while (v >>= 1)
        bits++;
    return bits;
}

/** Property distributions extracted from a mapped read set. */
struct PropertyStats
{
    /** Fig. 7(a): bits for delta-encoded mismatch positions. */
    Histogram mismatchPosDeltaBits;
    /** Fig. 7(b): mismatch (event) counts per read. */
    Histogram mismatchCountPerRead;
    /** Fig. 7(c): indel block lengths. */
    Histogram indelBlockLength;
    /** Fig. 7(d) input: bases contained in blocks of each length. */
    Histogram indelBasesByLength;
    /** Fig. 10: bits for delta-encoded sorted matching positions. */
    Histogram matchingPosDeltaBits;
    /** Share of mismatch events that are substitutions (Property 5). */
    double substitutionFraction = 0.0;
};

/** Compute all property distributions for a mapped read set. */
PropertyStats analyzeProperties(const std::vector<ReadMapping> &mappings);

} // namespace sage

#endif // SAGE_CONSENSUS_STATS_HH
