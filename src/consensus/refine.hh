/**
 * @file
 * Consensus refinement: polish a draft consensus by majority vote over
 * mapped reads.
 *
 * The paper (§2.2) notes the consensus can be "a user-provided
 * reference or a de-duplicated string derived from the reads,
 * representing the most likely character at each location". Our
 * compressors default to reference mode; this module supplies the
 * derived mode: after a first mapping pass, positions where the reads
 * consistently disagree with the draft (true variants of the sequenced
 * individual) are rewritten, which removes those mismatches from every
 * overlapping read's encoding on the second pass.
 */

#ifndef SAGE_CONSENSUS_REFINE_HH
#define SAGE_CONSENSUS_REFINE_HH

#include <string>
#include <string_view>
#include <vector>

#include "consensus/mapper.hh"
#include "genomics/read.hh"

namespace sage {

/** Refinement parameters. */
struct RefineConfig
{
    /** Minimum read depth at a position to consider rewriting it. */
    unsigned minDepth = 3;
    /** Minimum fraction of votes the winning base needs. */
    double majority = 0.7;
};

/** Outcome counters. */
struct RefineStats
{
    uint64_t positionsVoted = 0;   ///< Positions with any coverage.
    uint64_t positionsChanged = 0; ///< Draft bases rewritten.
};

/**
 * Majority-vote polish of @p draft using the reads' alignments
 * (substitution-level; indel polishing would require realignment and
 * is unnecessary for the compression-ratio use case).
 *
 * @param mappings one entry per read (from ConsensusMapper::mapAll
 *                 against @p draft); unmapped entries are skipped.
 */
std::string refineConsensus(std::string_view draft, const ReadSet &rs,
                            const std::vector<ReadMapping> &mappings,
                            const RefineConfig &config = {},
                            RefineStats *stats = nullptr);

} // namespace sage

#endif // SAGE_CONSENSUS_REFINE_HH
