#include "consensus/index.hh"

namespace sage {

MinimizerIndex::MinimizerIndex(std::string_view consensus,
                               IndexConfig config)
    : consensus_(consensus), config_(config)
{
    const auto minimizers =
        extractMinimizers(consensus, config_.k, config_.w);
    table_.reserve(minimizers.size());
    for (const auto &hit : minimizers)
        table_[hit.kmer].push_back(hit.pos);

    // Cap repetitive seeds: long position lists blow up candidate sets
    // without adding placement information. Truncating (rather than
    // dropping) keeps reads from repeat regions mappable to *some*
    // repeat copy — any copy yields a valid consensus encoding.
    for (auto &[kmer, positions] : table_) {
        if (positions.size() > config_.maxOccurrence)
            positions.resize(config_.maxOccurrence);
    }
}

const std::vector<uint32_t> &
MinimizerIndex::lookup(uint64_t kmer) const
{
    auto it = table_.find(kmer);
    return it == table_.end() ? empty_ : it->second;
}

size_t
MinimizerIndex::memoryBytes() const
{
    size_t bytes = table_.size()
        * (sizeof(uint64_t) + sizeof(std::vector<uint32_t>) + 16);
    for (const auto &[kmer, positions] : table_)
        bytes += positions.size() * sizeof(uint32_t);
    return bytes;
}

} // namespace sage
