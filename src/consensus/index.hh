/**
 * @file
 * Minimizer index over a consensus sequence.
 *
 * Compressors map reads against the consensus to find mismatch
 * information (paper §5.1); this index supplies the seed hits.
 */

#ifndef SAGE_CONSENSUS_INDEX_HH
#define SAGE_CONSENSUS_INDEX_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "genomics/kmer.hh"

namespace sage {

/** Index build parameters. */
struct IndexConfig
{
    unsigned k = 15;         ///< K-mer length.
    unsigned w = 5;          ///< Minimizer window (k-mers per window).
    unsigned maxOccurrence = 64;  ///< Drop seeds more frequent than this.
};

/** Hash index from minimizer k-mer to consensus positions. */
class MinimizerIndex
{
  public:
    /** Build an index over @p consensus. The string must outlive us. */
    MinimizerIndex(std::string_view consensus, IndexConfig config = {});

    /** All indexed positions of @p kmer (empty if absent/masked). */
    const std::vector<uint32_t> &lookup(uint64_t kmer) const;

    const IndexConfig &config() const { return config_; }
    std::string_view consensus() const { return consensus_; }

    /** Number of distinct indexed minimizers. */
    size_t distinctSeeds() const { return table_.size(); }

    /** Approximate index memory footprint in bytes (for Table 3). */
    size_t memoryBytes() const;

  private:
    std::string_view consensus_;
    IndexConfig config_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> table_;
    std::vector<uint32_t> empty_;
};

} // namespace sage

#endif // SAGE_CONSENSUS_INDEX_HH
