/**
 * @file
 * Banded global alignment with traceback.
 *
 * Both SAGe and the SpringLike baseline find mismatch information by
 * mapping reads against the consensus (paper §5.1); the actual
 * base-by-base edit script comes from this aligner.
 */

#ifndef SAGE_CONSENSUS_ALIGN_HH
#define SAGE_CONSENSUS_ALIGN_HH

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "consensus/edits.hh"

namespace sage {

/** Result of a banded alignment. */
struct AlignResult
{
    uint32_t editDistance = 0;   ///< Unit-cost edit distance.
    std::vector<EditOp> ops;     ///< Query-coordinate edit script.
};

/**
 * Globally align @p query (read chunk) against @p target (consensus
 * window) with a diagonal band of half-width @p band.
 *
 * Returns nullopt when no alignment exists inside the band. On success,
 * applying the returned ops to @p target reproduces @p query exactly
 * (see reconstructSegment). N in the query never matches (always scored
 * as an edit), so reconstruction emits it as a substitution base.
 *
 * Cost model is unit edit distance; runs in O(|query| * band) time and
 * memory (traceback matrix of 2-bit moves kept as bytes for simplicity).
 */
std::optional<AlignResult> bandedAlign(std::string_view target,
                                       std::string_view query,
                                       uint32_t band);

/**
 * Convenience: edit distance only (no traceback), same band semantics.
 */
std::optional<uint32_t> bandedDistance(std::string_view target,
                                       std::string_view query,
                                       uint32_t band);

} // namespace sage

#endif // SAGE_CONSENSUS_ALIGN_HH
