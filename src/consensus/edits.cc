#include "consensus/edits.hh"

#include "util/logging.hh"

namespace sage {

std::string
reconstructSegment(std::string_view consensus, const AlignedSegment &seg)
{
    std::string out;
    out.reserve(seg.readLength);
    size_t read_i = 0;                 // Offset within the segment.
    uint64_t cons_j = seg.consensusPos;

    auto copy_until = [&](size_t target) {
        while (read_i < target) {
            sage_assert(cons_j < consensus.size(),
                        "reconstruct ran off consensus end");
            out.push_back(consensus[cons_j++]);
            read_i++;
        }
    };

    for (const auto &op : seg.ops) {
        sage_assert(op.readPos >= read_i,
                    "edit ops must be sorted by read position");
        copy_until(op.readPos);
        switch (op.type) {
          case EditType::Sub:
            sage_assert(op.bases.size() == 1, "substitution needs 1 base");
            out.push_back(op.bases[0]);
            read_i++;
            cons_j++;
            break;
          case EditType::Ins:
            sage_assert(op.bases.size() == op.length,
                        "insertion bases/length mismatch");
            out.append(op.bases);
            read_i += op.length;
            break;
          case EditType::Del:
            cons_j += op.length;
            break;
        }
    }
    copy_until(seg.readLength);
    return out;
}

std::string
reconstructRead(std::string_view consensus, const ReadMapping &mapping)
{
    sage_assert(mapping.mapped, "cannot reconstruct an unmapped read");
    std::string out;
    for (const auto &seg : mapping.segments) {
        sage_assert(seg.readStart == out.size(),
                    "segments must tile the read contiguously");
        out += reconstructSegment(consensus, seg);
    }
    return out;
}

size_t
storedBaseCount(const std::vector<EditOp> &ops)
{
    size_t n = 0;
    for (const auto &op : ops)
        n += op.bases.size();
    return n;
}

} // namespace sage
