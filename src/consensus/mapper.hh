/**
 * @file
 * Consensus mapper: finds each read's matching position(s) in the
 * consensus sequence and extracts its mismatch information.
 *
 * This implements the compression-side mapping step shared by SAGe and
 * the SpringLike baseline (paper §5.1: "SAGe identifies the mismatches
 * during compression by mapping reads to the consensus sequence"). It is
 * a standard seed-chain-align pipeline:
 *
 *   minimizer seeds -> diagonal-consistent chains -> segment selection
 *   (up to N segments for chimeric reads, paper §5.1.2) -> piecewise
 *   banded alignment between anchors -> edit script.
 *
 * Note this mapping is internal to compression and independent from the
 * read mapping performed later during genome analysis (paper footnote 6).
 */

#ifndef SAGE_CONSENSUS_MAPPER_HH
#define SAGE_CONSENSUS_MAPPER_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "consensus/align.hh"
#include "consensus/edits.hh"
#include "consensus/index.hh"
#include "genomics/read.hh"

namespace sage {

class ThreadPool;

/** Mapper tuning knobs. */
struct MapperConfig
{
    IndexConfig index;

    /** Top-N matching positions per read (paper uses N = 3). */
    unsigned maxSegments = 3;

    /** Give up (escape) when edits exceed this fraction of read length. */
    double maxEditFraction = 0.4;

    /** Base band half-width for piecewise alignment. */
    uint32_t basePad = 24;

    /** Band escalation limit. */
    uint32_t maxBand = 512;

    /** Diagonal slack allowed while chaining anchors over a gap. */
    uint32_t
    chainSlack(uint32_t gap) const
    {
        return 16 + gap / 16;
    }

    /** Minimum anchors for a chain to be considered at all. */
    unsigned minChainAnchors = 2;
};

/** Aggregate statistics over a batch of mappings. */
struct MappingStats
{
    uint64_t totalReads = 0;
    uint64_t mappedReads = 0;
    uint64_t reverseReads = 0;
    uint64_t chimericReads = 0;   ///< Mapped with >1 segment.
    uint64_t totalEdits = 0;
    uint64_t totalAlignedBases = 0;
};

/** Maps reads against a fixed consensus sequence. */
class ConsensusMapper
{
  public:
    /** @p consensus must outlive the mapper. */
    ConsensusMapper(std::string_view consensus, MapperConfig config = {});

    /** Map one oriented base string (both strands are tried). */
    ReadMapping mapSequence(std::string_view bases) const;

    /** Map every read of a set (optionally across a thread pool). */
    std::vector<ReadMapping> mapAll(const ReadSet &rs,
                                    ThreadPool *pool = nullptr) const;

    /** Summarize a batch of mappings. */
    static MappingStats summarize(const std::vector<ReadMapping> &maps,
                                  const ReadSet &rs);

    const MinimizerIndex &index() const { return index_; }
    std::string_view consensus() const { return consensus_; }
    const MapperConfig &config() const { return config_; }

  private:
    struct Chain;

    /** Build diagonal-consistent anchor chains for one orientation. */
    std::vector<Chain> buildChains(std::string_view bases) const;

    /** Convert selected chains into aligned segments. */
    bool alignChain(std::string_view bases, const Chain &chain,
                    uint32_t read_start, uint32_t read_end,
                    AlignedSegment &out) const;

    std::string_view consensus_;
    MapperConfig config_;
    MinimizerIndex index_;
};

} // namespace sage

#endif // SAGE_CONSENSUS_MAPPER_HH
