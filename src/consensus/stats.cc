#include "consensus/stats.hh"

#include <algorithm>

namespace sage {

PropertyStats
analyzeProperties(const std::vector<ReadMapping> &mappings)
{
    PropertyStats stats;
    uint64_t subs = 0, events = 0;

    std::vector<uint64_t> matching_positions;
    for (const auto &mapping : mappings) {
        if (!mapping.mapped)
            continue;
        matching_positions.push_back(mapping.primaryPosition());

        size_t read_events = 0;
        for (const auto &seg : mapping.segments) {
            uint32_t prev_pos = 0;
            for (const auto &op : seg.ops) {
                read_events++;
                events++;
                const uint32_t delta = op.readPos - prev_pos;
                prev_pos = op.readPos;
                stats.mismatchPosDeltaBits.add(bitsNeeded(delta));
                if (op.type == EditType::Sub) {
                    subs++;
                } else {
                    stats.indelBlockLength.add(op.length);
                    stats.indelBasesByLength.add(op.length, op.length);
                }
            }
        }
        stats.mismatchCountPerRead.add(read_events);
    }

    // Matching positions are reorderable (Property 6): sort, then measure
    // the bits needed for consecutive deltas.
    std::sort(matching_positions.begin(), matching_positions.end());
    uint64_t prev = 0;
    for (uint64_t pos : matching_positions) {
        stats.matchingPosDeltaBits.add(bitsNeeded(pos - prev));
        prev = pos;
    }

    stats.substitutionFraction =
        events == 0 ? 0.0 : static_cast<double>(subs)
                            / static_cast<double>(events);
    return stats;
}

} // namespace sage
