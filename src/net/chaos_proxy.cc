#include "net/chaos_proxy.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.hh"

namespace sage {
namespace net {

namespace {

constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

/** Event-loop tick while connections exist: stalled buffers are
 *  re-checked at this granularity. */
constexpr int kTickMs = 10;

constexpr size_t kRecvChunkBytes = 64 * 1024;

std::string
errnoText()
{
    return std::strerror(errno);
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Close @p fd so the peer sees ECONNRESET, not a clean FIN. */
void
resetClose(int fd)
{
    if (fd < 0)
        return;
    struct linger hard = {};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    ::close(fd);
}

} // namespace

ChaosProxy::ChaosProxy(std::string upstream_host,
                       uint16_t upstream_port, ChaosConfig config)
    : upstreamHost_(std::move(upstream_host)),
      upstreamPort_(upstream_port), config_(config)
{}

ChaosProxy::~ChaosProxy()
{
    stop();
}

uint64_t
ChaosProxy::nowMs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

double
ChaosProxy::nextUniform()
{
    const uint64_t bits = splitmix64(
        config_.seed ^ (0xd1342543de82ef95ull * ++rngCounter_));
    return static_cast<double>(bits >> 11) *
           (1.0 / 9007199254740992.0);  // 2^-53
}

Status
ChaosProxy::start()
{
    sage_assert(!running_.load(), "start() on a running proxy");

    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0)
        return Status::ioError("socket: ", errnoText());

    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;  // Always ephemeral.
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status status = Status::ioError("bind: ", errnoText());
        stop();
        return status;
    }
    if (::listen(listenFd_, 64) != 0) {
        Status status = Status::ioError("listen: ", errnoText());
        stop();
        return status;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        Status status = Status::ioError("getsockname: ", errnoText());
        stop();
        return status;
    }
    port_ = ntohs(addr.sin_port);

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epollFd_ < 0) {
        Status status =
            Status::ioError("epoll_create1: ", errnoText());
        stop();
        return status;
    }
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wakeFd_ < 0) {
        Status status = Status::ioError("eventfd: ", errnoText());
        stop();
        return status;
    }

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) != 0) {
        Status status = Status::ioError("epoll_ctl: ", errnoText());
        stop();
        return status;
    }
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) != 0) {
        Status status = Status::ioError("epoll_ctl: ", errnoText());
        stop();
        return status;
    }

    epoch_ = std::chrono::steady_clock::now();
    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { eventLoop(); });
    return Status();
}

void
ChaosProxy::stop()
{
    if (running_.load(std::memory_order_acquire)) {
        stopping_.store(true, std::memory_order_release);
        const uint64_t one = 1;
        [[maybe_unused]] ssize_t ignored =
            ::write(wakeFd_, &one, sizeof(one));
        thread_.join();
        running_.store(false, std::memory_order_release);
    } else if (thread_.joinable()) {
        thread_.join();
    }
    for (auto &entry : conns_) {
        if (entry.second->clientFd >= 0)
            ::close(entry.second->clientFd);
        if (entry.second->upstreamFd >= 0)
            ::close(entry.second->upstreamFd);
    }
    conns_.clear();
    fdOwner_.clear();
    if (wakeFd_ >= 0) {
        ::close(wakeFd_);
        wakeFd_ = -1;
    }
    if (epollFd_ >= 0) {
        ::close(epollFd_);
        epollFd_ = -1;
    }
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

ChaosProxyStats
ChaosProxy::stats() const
{
    ChaosProxyStats out;
    out.connections = connections_.load(std::memory_order_relaxed);
    out.buffers = buffers_.load(std::memory_order_relaxed);
    out.bytes = bytes_.load(std::memory_order_relaxed);
    out.resets = resets_.load(std::memory_order_relaxed);
    out.corrupted = corrupted_.load(std::memory_order_relaxed);
    out.stalls = stalls_.load(std::memory_order_relaxed);
    out.splits = splits_.load(std::memory_order_relaxed);
    return out;
}

void
ChaosProxy::acceptAll()
{
    while (true) {
        const int client = ::accept4(listenFd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (client < 0)
            break;  // EAGAIN or a transient accept failure.

        // Connect upstream. The socket is non-blocking, so the
        // connect completes in the background; epoll reports the
        // outcome as EPOLLOUT (success) or EPOLLERR/EPOLLHUP.
        const int upstream =
            ::socket(AF_INET,
                     SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (upstream < 0) {
            ::close(client);
            continue;
        }
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(upstreamPort_);
        if (::inet_pton(AF_INET, upstreamHost_.c_str(),
                        &addr.sin_addr) != 1) {
            ::close(client);
            ::close(upstream);
            continue;
        }
        if (::connect(upstream, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0 &&
            errno != EINPROGRESS && errno != EINTR) {
            ::close(client);
            ::close(upstream);
            continue;
        }

        const int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
        ::setsockopt(upstream, IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));

        auto conn = std::make_unique<Conn>();
        conn->id = nextConnId_++;
        conn->clientFd = client;
        conn->upstreamFd = upstream;
        conn->clientToUpstream.srcFd = client;
        conn->clientToUpstream.dstFd = upstream;
        conn->upstreamToClient.srcFd = upstream;
        conn->upstreamToClient.dstFd = client;

        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET;
        ev.data.u64 = conn->id;
        bool registered =
            ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, client, &ev) == 0 &&
            ::epoll_ctl(epollFd_, EPOLL_CTL_ADD, upstream, &ev) == 0;
        if (!registered) {
            ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, client, nullptr);
            ::close(client);
            ::close(upstream);
            continue;
        }
        fdOwner_[client] = conn->id;
        fdOwner_[upstream] = conn->id;
        connections_.fetch_add(1, std::memory_order_relaxed);
        conns_.emplace(conn->id, std::move(conn));
    }
}

bool
ChaosProxy::pump(Conn &conn, Pipe &pipe)
{
    if (pipe.srcClosed)
        return true;
    while (true) {
        uint8_t chunk[kRecvChunkBytes];
        const ssize_t got =
            ::recv(pipe.srcFd, chunk, sizeof(chunk), 0);
        if (got < 0) {
            if (errno == EINTR)
                continue;  // Must drain to EAGAIN (edge-triggered).
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                break;
            return false;  // Reset or similar: kill the connection.
        }
        if (got == 0) {
            pipe.srcClosed = true;
            break;
        }

        buffers_.fetch_add(1, std::memory_order_relaxed);
        bytes_.fetch_add(static_cast<uint64_t>(got),
                         std::memory_order_relaxed);

        Buffer buffer;
        buffer.bytes.assign(chunk, chunk + got);

        // One chaos decision per buffer, fixed evaluation order so a
        // seed replays identically regardless of which rates are on.
        const double roll = nextUniform();
        double threshold = config_.resetRate;
        if (roll < threshold) {
            resets_.fetch_add(1, std::memory_order_relaxed);
            destroyConn(conn, /*hard_reset=*/true);
            return false;
        }
        threshold += config_.corruptRate;
        if (roll < threshold) {
            corrupted_.fetch_add(1, std::memory_order_relaxed);
            const size_t victim = static_cast<size_t>(
                nextUniform() * static_cast<double>(
                                    buffer.bytes.size()));
            buffer.bytes[std::min(victim,
                                  buffer.bytes.size() - 1)] ^= 0x20;
            pipe.queue.push_back(std::move(buffer));
            continue;
        }
        threshold += config_.stallRate;
        if (roll < threshold) {
            stalls_.fetch_add(1, std::memory_order_relaxed);
            buffer.releaseMs = nowMs() + config_.stallMs;
            pipe.queue.push_back(std::move(buffer));
            continue;
        }
        threshold += config_.splitRate;
        if (roll < threshold && buffer.bytes.size() >= 2) {
            splits_.fetch_add(1, std::memory_order_relaxed);
            const size_t cut = 1 + static_cast<size_t>(
                nextUniform() * static_cast<double>(
                                    buffer.bytes.size() - 1));
            Buffer tail;
            tail.bytes.assign(buffer.bytes.begin() + cut,
                              buffer.bytes.end());
            // Held one tick so the first piece hits the wire alone,
            // forcing a genuine partial read at the peer.
            tail.releaseMs = nowMs() + kTickMs;
            buffer.bytes.resize(cut);
            pipe.queue.push_back(std::move(buffer));
            pipe.queue.push_back(std::move(tail));
            continue;
        }
        pipe.queue.push_back(std::move(buffer));
    }
    return true;
}

bool
ChaosProxy::flush(Conn &conn, Pipe &pipe)
{
    (void)conn;
    const uint64_t now = nowMs();
    while (!pipe.queue.empty()) {
        Buffer &front = pipe.queue.front();
        if (front.releaseMs > now)
            break;  // Stalled; the tick will come back to it.
        while (front.off < front.bytes.size()) {
            const ssize_t sent = ::send(
                pipe.dstFd, front.bytes.data() + front.off,
                front.bytes.size() - front.off, MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR)
                    continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK)
                    return true;  // EPOLLOUT resumes us.
                return false;
            }
            front.off += static_cast<size_t>(sent);
        }
        pipe.queue.pop_front();
    }
    if (pipe.srcClosed && pipe.queue.empty() && !pipe.shutdownSent) {
        ::shutdown(pipe.dstFd, SHUT_WR);
        pipe.shutdownSent = true;
    }
    return true;
}

void
ChaosProxy::destroyConn(Conn &conn, bool hard_reset)
{
    if (conn.dead)
        return;
    conn.dead = true;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn.clientFd, nullptr);
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, conn.upstreamFd, nullptr);
    fdOwner_.erase(conn.clientFd);
    fdOwner_.erase(conn.upstreamFd);
    if (hard_reset) {
        resetClose(conn.clientFd);
        resetClose(conn.upstreamFd);
    } else {
        ::close(conn.clientFd);
        ::close(conn.upstreamFd);
    }
    conn.clientFd = -1;
    conn.upstreamFd = -1;
}

void
ChaosProxy::eventLoop()
{
    std::vector<epoll_event> events(64);
    while (!stopping_.load(std::memory_order_acquire)) {
        // Tick while buffers may be waiting on a stall release;
        // block indefinitely when fully idle.
        bool pending = false;
        for (const auto &entry : conns_) {
            if (!entry.second->clientToUpstream.queue.empty() ||
                !entry.second->upstreamToClient.queue.empty()) {
                pending = true;
                break;
            }
        }
        const int timeout = pending ? kTickMs : -1;
        const int ready = ::epoll_wait(
            epollFd_, events.data(),
            static_cast<int>(events.size()), timeout);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }

        for (int i = 0; i < ready; i++) {
            const uint64_t tag = events[i].data.u64;
            if (tag == kListenerTag) {
                acceptAll();
                continue;
            }
            if (tag == kWakeTag) {
                uint64_t drained = 0;
                [[maybe_unused]] ssize_t ignored = ::read(
                    wakeFd_, &drained, sizeof(drained));
                continue;
            }
            auto it = conns_.find(tag);
            if (it == conns_.end())
                continue;
            Conn &conn = *it->second;
            if (conn.dead)
                continue;
            if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
                (events[i].events & EPOLLIN) == 0) {
                destroyConn(conn, /*hard_reset=*/false);
                continue;
            }
            const bool alive =
                pump(conn, conn.clientToUpstream) &&
                pump(conn, conn.upstreamToClient) &&
                flush(conn, conn.clientToUpstream) &&
                flush(conn, conn.upstreamToClient);
            if (!alive) {
                destroyConn(conn, /*hard_reset=*/false);
                continue;
            }
            if (conn.clientToUpstream.shutdownSent &&
                conn.upstreamToClient.shutdownSent)
                destroyConn(conn, /*hard_reset=*/false);
        }

        // Release stalled buffers that came due.
        for (auto &entry : conns_) {
            Conn &conn = *entry.second;
            if (conn.dead)
                continue;
            const bool alive =
                flush(conn, conn.clientToUpstream) &&
                flush(conn, conn.upstreamToClient);
            if (!alive) {
                destroyConn(conn, /*hard_reset=*/false);
                continue;
            }
            if (conn.clientToUpstream.shutdownSent &&
                conn.upstreamToClient.shutdownSent)
                destroyConn(conn, /*hard_reset=*/false);
        }

        // Reap without invalidating the iteration above.
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (it->second->dead)
                it = conns_.erase(it);
            else
                ++it;
        }
    }
}

} // namespace net
} // namespace sage
