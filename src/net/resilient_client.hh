/**
 * @file
 * Self-healing wrapper over the blocking net::Client.
 *
 * A plain Client dies with its TCP connection: any transport failure
 * (reset, timeout, a frame that fails its CRC) leaves it broken() and
 * every later call failing. ResilientClient owns the connect loop
 * instead: it classifies each outcome as retryable or terminal
 * (net/protocol.hh wireStatusRetryable — retry Overloaded and
 * transport failures, never server-reported Corrupt/BadRequest),
 * reconnects on transport damage, re-OPENs the archives the caller
 * is using so their ids stay valid across the new connection, and
 * spaces attempts with exponential backoff plus decorrelated jitter.
 *
 * The retry budget is derived from the request deadline: a read
 * carrying deadline_ms never burns retries (or sleeps) past that
 * point, so the caller's latency bound holds across any number of
 * reconnects. Calls without a deadline fall back to
 * RetryPolicy::callTimeoutSeconds and the attempt cap.
 *
 * Jitter is deterministic per client (RetryPolicy::seed feeds a
 * splitmix64 sequence, the FaultInjectionSource convention), so a
 * chaos run that fails replays identically. Not thread-safe — one
 * ResilientClient per thread, like the Client it wraps.
 */

#ifndef SAGE_NET_RESILIENT_CLIENT_HH
#define SAGE_NET_RESILIENT_CLIENT_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/client.hh"
#include "net/protocol.hh"

namespace sage {
namespace net {

struct RetryPolicy
{
    /** Attempt ceiling per call (first try included). */
    unsigned maxAttempts = 8;

    /** First backoff; later sleeps draw uniformly from
     *  [base, 3 * previous] (decorrelated jitter), capped below. */
    double baseBackoffSeconds = 0.002;
    double maxBackoffSeconds = 0.250;

    /** Retry budget for calls that carry no deadline_ms of their
     *  own; 0 leaves only the attempt cap. */
    double callTimeoutSeconds = 0.0;

    /** Seed of the deterministic jitter sequence. */
    uint64_t seed = 1;
};

struct ResilientClientOptions
{
    ClientOptions client;
    RetryPolicy retry;
};

/** What resilience cost: exposed so harnesses (serve-stress) can
 *  report reconnects/retries/backoff per walker. */
struct ResilientClientStats
{
    uint64_t connects = 0;    ///< Successful connects, first included.
    uint64_t reconnects = 0;  ///< Connects after the first.
    uint64_t retries = 0;          ///< Re-issued calls, any cause.
    uint64_t transportRetries = 0; ///< ... after reset/timeout/CRC.
    uint64_t overloadedRetries = 0;  ///< ... after in-band sheds.
    double backoffSeconds = 0.0;   ///< Total time slept.
};

class ResilientClient
{
  public:
    ResilientClient(std::string host, uint16_t port,
                    ResilientClientOptions options = {});

    /** OPEN @p name, remembering it so the id survives reconnects. */
    StatusOr<OpenReply> open(const std::string &name);

    /** READ_RANGE with reconnect/backoff. The outer Status only
     *  fails terminally (or with the last transport error once the
     *  budget is spent); retryable in-band statuses are retried and
     *  the last one is returned if the budget runs out. */
    StatusOr<ReadReply>
    readRange(uint32_t archive, uint64_t first, uint64_t count,
              RequestPriority priority = RequestPriority::Normal,
              uint32_t deadline_ms = 0);

    StatusOr<ReadReply>
    readChunk(uint32_t archive, uint64_t chunk,
              RequestPriority priority = RequestPriority::Normal,
              uint32_t deadline_ms = 0);

    StatusOr<WireServerStats> statServer();

    Status closeArchive(uint32_t archive);

    const ResilientClientStats &stats() const { return stats_; }

    bool
    connected() const
    {
        return client_ != nullptr && !client_->broken();
    }

  private:
    /** One retry loop around @p attempt. @p archive (0 = none) is
     *  re-OPENed after every reconnect; @p deadline_ms bounds the
     *  whole loop, sleeps included. Each attempt receives the budget
     *  still remaining as its own wire deadline. */
    StatusOr<ReadReply>
    retryRead(uint32_t archive, uint32_t deadline_ms,
              const std::function<StatusOr<ReadReply>(
                  Client &, uint32_t remaining_ms)> &attempt);

    /** Connect if there is no healthy connection; re-OPEN
     *  @p archive's name on a fresh connection. */
    Status ensureConnected(uint32_t archive);

    /** Decorrelated-jitter sleep bounded by @p remaining_seconds;
     *  false when the budget is already gone. */
    bool backoff(double remaining_seconds);

    double uniform01();

    std::string host_;
    uint16_t port_;
    ResilientClientOptions options_;
    std::unique_ptr<Client> client_;
    /** Archive id -> name, for transparent re-OPEN on reconnect. */
    std::unordered_map<uint32_t, std::string> openedNames_;
    ResilientClientStats stats_;
    double prevSleepSeconds_ = 0.0;
    uint64_t rngCounter_ = 0;
};

} // namespace net
} // namespace sage

#endif // SAGE_NET_RESILIENT_CLIENT_HH
