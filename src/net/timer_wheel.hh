/**
 * @file
 * Hashed timer wheel for the epoll event loop (server.cc).
 *
 * Deadlines here are coarse connection hygiene — idle timeouts,
 * header-read (slow-loris) timeouts, the drain deadline — so the
 * wheel trades precision for O(1) schedule/expire: time is bucketed
 * into fixed ticks, each slot holds the ids due that tick, and an
 * entry whose due tick lies beyond one wheel revolution is simply
 * re-inserted when its slot comes around (classic lazy cascading).
 *
 * The wheel stores opaque u64 ids and never cancels: the owner is
 * expected to re-validate on expiry ("is this connection still here,
 * and is its deadline actually breached?") and reschedule if not.
 * Duplicate entries for one id are therefore harmless — expiry checks
 * are idempotent. Single-threaded by design; only the event loop
 * touches it.
 */

#ifndef SAGE_NET_TIMER_WHEEL_HH
#define SAGE_NET_TIMER_WHEEL_HH

#include <cstdint>
#include <vector>

namespace sage {
namespace net {

class TimerWheel
{
  public:
    explicit TimerWheel(uint32_t tick_ms = 100, size_t slots = 512)
        : tickMs_(tick_ms ? tick_ms : 1), slots_(slots ? slots : 1)
    {}

    uint32_t tickMs() const { return tickMs_; }

    bool
    empty() const
    {
        return scheduled_ == 0;
    }

    /** Fire @p id roughly @p delay_ms from the current position
     *  (never earlier than the next tick). */
    void
    schedule(uint64_t id, uint64_t delay_ms)
    {
        const uint64_t ticks = delay_ms / tickMs_ + 1;
        const uint64_t due = currentTick_ + ticks;
        slots_[due % slots_.size()].push_back(Entry{id, due});
        scheduled_++;
    }

    /** Advance the wheel to @p now_ms (milliseconds on the caller's
     *  monotonic clock; must not go backwards) and append every due
     *  id to @p due. */
    void
    advanceTo(uint64_t now_ms, std::vector<uint64_t> &due)
    {
        const uint64_t target = now_ms / tickMs_;
        while (currentTick_ < target) {
            currentTick_++;
            std::vector<Entry> &slot =
                slots_[currentTick_ % slots_.size()];
            size_t keep = 0;
            for (size_t i = 0; i < slot.size(); i++) {
                if (slot[i].dueTick <= currentTick_) {
                    due.push_back(slot[i].id);
                    scheduled_--;
                } else {
                    // A later revolution's entry: leave it in place.
                    slot[keep++] = slot[i];
                }
            }
            slot.resize(keep);
        }
    }

  private:
    struct Entry
    {
        uint64_t id;
        uint64_t dueTick;
    };

    uint32_t tickMs_;
    std::vector<std::vector<Entry>> slots_;
    uint64_t currentTick_ = 0;
    size_t scheduled_ = 0;
};

} // namespace net
} // namespace sage

#endif // SAGE_NET_TIMER_WHEEL_HH
