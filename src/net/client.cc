#include "net/client.hh"

#include <cerrno>
#include <cmath>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace sage {
namespace net {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

void
setIoTimeout(int fd, double seconds)
{
    if (seconds <= 0.0)
        return;
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - std::floor(seconds)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** connect(2) that survives EINTR: once interrupted, the connect
 *  keeps going asynchronously, so poll for writability and read the
 *  final outcome from SO_ERROR instead of calling connect() again
 *  (which would return EALREADY). Returns 0 or -1 with errno set. */
int
connectRetryIntr(int fd, const sockaddr *addr, socklen_t len)
{
    if (::connect(fd, addr, len) == 0)
        return 0;
    if (errno != EINTR)
        return -1;
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    for (;;) {
        const int rc = ::poll(&pfd, 1, -1);
        if (rc > 0)
            break;
        if (rc < 0 && errno == EINTR)
            continue;
        return -1;
    }
    int soerr = 0;
    socklen_t soerr_len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) < 0)
        return -1;
    if (soerr != 0) {
        errno = soerr;
        return -1;
    }
    return 0;
}

} // namespace

StatusOr<std::unique_ptr<Client>>
Client::connect(const std::string &host, uint16_t port,
                ClientOptions options)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *found = nullptr;
    const int rc = ::getaddrinfo(host.c_str(),
                                 std::to_string(port).c_str(), &hints,
                                 &found);
    if (rc != 0)
        return Status::ioError("resolve ", host, ": ",
                               ::gai_strerror(rc));

    int fd = -1;
    std::string last_error = "no addresses";
    for (addrinfo *ai = found; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                      ai->ai_protocol);
        if (fd < 0) {
            last_error = errnoText();
            continue;
        }
        if (connectRetryIntr(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        last_error = errnoText();
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(found);
    if (fd < 0)
        return Status::ioError("connect ", host, ":", port, ": ",
                               last_error);

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    setIoTimeout(fd, options.ioTimeoutSeconds);
    return std::unique_ptr<Client>(new Client(fd, options));
}

Client::~Client()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Status
Client::transportError(Status status)
{
    broken_ = true;
    return status;
}

Status
Client::sendAll(const std::vector<uint8_t> &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                   MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return transportError(Status::ioError(
                "send: timed out after ", options_.ioTimeoutSeconds,
                "s"));
        return transportError(Status::ioError("send: ", errnoText()));
    }
    return Status();
}

StatusOr<std::vector<uint8_t>>
Client::recvFrame()
{
    uint8_t prefix[kLenBytes];
    size_t have = 0;
    while (have < kLenBytes) {
        const ssize_t n =
            ::recv(fd_, prefix + have, kLenBytes - have, 0);
        if (n > 0) {
            have += static_cast<size_t>(n);
            continue;
        }
        if (n == 0)
            return transportError(
                Status::ioError("connection closed by server"));
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return transportError(Status::ioError(
                "recv: timed out after ", options_.ioTimeoutSeconds,
                "s waiting for a reply"));
        return transportError(Status::ioError("recv: ", errnoText()));
    }
    const uint32_t len = static_cast<uint32_t>(prefix[0]) |
                         static_cast<uint32_t>(prefix[1]) << 8 |
                         static_cast<uint32_t>(prefix[2]) << 16 |
                         static_cast<uint32_t>(prefix[3]) << 24;
    // A bad length means framing is lost (most likely wire damage):
    // a transport failure, not trusted data saying "corrupt".
    if (len < kReplyHeaderBytes || len > options_.maxReplyFrameBytes)
        return transportError(
            Status::ioError("bad reply frame length ", len));
    std::vector<uint8_t> frame(len);
    have = 0;
    while (have < len) {
        const ssize_t n =
            ::recv(fd_, frame.data() + have, len - have, 0);
        if (n > 0) {
            have += static_cast<size_t>(n);
            continue;
        }
        if (n == 0)
            return transportError(Status::ioError(
                "connection closed mid-frame (", have, " of ", len,
                " bytes)"));
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return transportError(Status::ioError(
                "recv: timed out after ", options_.ioTimeoutSeconds,
                "s mid-frame (", have, " of ", len, " bytes)"));
        return transportError(Status::ioError("recv: ", errnoText()));
    }
    return frame;
}

StatusOr<std::vector<uint8_t>>
Client::transact(const std::vector<uint8_t> &request,
                 uint64_t request_id, ReplyHeader &header)
{
    if (broken_)
        return Status::ioError(
            "connection broken by an earlier transport failure");
    Status sent = sendAll(request);
    if (!sent.ok())
        return sent;
    auto frame = recvFrame();
    if (!frame.ok())
        return frame.status();
    size_t body_size = 0;
    switch (verifyFrame(frame->data(), frame->size(), &body_size)) {
    case FrameVerdict::Ok:
        frame->resize(body_size);
        break;
    case FrameVerdict::VersionMismatch:
        // The server speaks another protocol revision — terminal, a
        // reconnect cannot help.
        broken_ = true;
        return Status::corrupt(
            "server speaks protocol version ", unsigned((*frame)[2]),
            ", this client speaks ", unsigned(kProtocolVersion));
    case FrameVerdict::TooShort:
    case FrameVerdict::CrcMismatch:
        return transportError(Status::ioError(
            "reply frame failed integrity check (CRC mismatch): "
            "bits flipped on the wire"));
    }
    auto parsed = parseReplyHeader(frame->data(), frame->size());
    if (!parsed.ok())
        return transportError(parsed.status());
    header = parsed.value();
    // One outstanding request per connection: replies cannot reorder.
    if (header.requestId != request_id)
        return transportError(Status::ioError(
            "reply id ", header.requestId,
            " does not match request ", request_id,
            " (stream desynced)"));
    return frame;
}

StatusOr<OpenReply>
Client::open(const std::string &name)
{
    const uint64_t id = nextRequestId_++;
    std::vector<uint8_t> request;
    appendOpenRequest(request, id, name, RequestPriority::Normal, 0);
    ReplyHeader header;
    auto frame = transact(request, id, header);
    if (!frame.ok())
        return frame.status();
    const uint8_t *payload = frame->data() + kReplyHeaderBytes;
    const size_t payload_size = frame->size() - kReplyHeaderBytes;
    if (header.status != WireStatus::Ok) {
        auto message = parseErrorMessage(payload, payload_size);
        return statusFromWire(header.status,
                              message.ok() ? message.value()
                                           : "unparseable error");
    }
    auto reply = parseOpenReplyPayload(payload, payload_size);
    if (!reply.ok())
        return reply.status();
    return reply.value();
}

StatusOr<ReadReply>
Client::readRange(uint32_t archive, uint64_t first, uint64_t count,
                  RequestPriority priority, uint32_t deadline_ms)
{
    const uint64_t id = nextRequestId_++;
    std::vector<uint8_t> request;
    appendReadRangeRequest(request, id, archive, first, count,
                           priority, deadline_ms);
    ReplyHeader header;
    auto frame = transact(request, id, header);
    if (!frame.ok())
        return frame.status();
    const uint8_t *payload = frame->data() + kReplyHeaderBytes;
    const size_t payload_size = frame->size() - kReplyHeaderBytes;
    ReadReply reply;
    reply.status = header.status;
    if (header.status != WireStatus::Ok) {
        auto message = parseErrorMessage(payload, payload_size);
        if (message.ok())
            reply.message = std::move(message.value());
        return reply;
    }
    auto reads = parseReadReplyPayload(payload, payload_size);
    if (!reads.ok())
        return reads.status();
    reply.reads = std::move(reads.value());
    return reply;
}

StatusOr<ReadReply>
Client::readChunk(uint32_t archive, uint64_t chunk,
                  RequestPriority priority, uint32_t deadline_ms)
{
    const uint64_t id = nextRequestId_++;
    std::vector<uint8_t> request;
    appendReadChunkRequest(request, id, archive, chunk, priority,
                           deadline_ms);
    ReplyHeader header;
    auto frame = transact(request, id, header);
    if (!frame.ok())
        return frame.status();
    const uint8_t *payload = frame->data() + kReplyHeaderBytes;
    const size_t payload_size = frame->size() - kReplyHeaderBytes;
    ReadReply reply;
    reply.status = header.status;
    if (header.status != WireStatus::Ok) {
        auto message = parseErrorMessage(payload, payload_size);
        if (message.ok())
            reply.message = std::move(message.value());
        return reply;
    }
    auto reads = parseReadReplyPayload(payload, payload_size);
    if (!reads.ok())
        return reads.status();
    reply.reads = std::move(reads.value());
    return reply;
}

StatusOr<WireServerStats>
Client::statServer()
{
    const uint64_t id = nextRequestId_++;
    std::vector<uint8_t> request;
    appendStatRequest(request, id, kStatServer);
    ReplyHeader header;
    auto frame = transact(request, id, header);
    if (!frame.ok())
        return frame.status();
    const uint8_t *payload = frame->data() + kReplyHeaderBytes;
    const size_t payload_size = frame->size() - kReplyHeaderBytes;
    if (header.status != WireStatus::Ok) {
        auto message = parseErrorMessage(payload, payload_size);
        return statusFromWire(header.status,
                              message.ok() ? message.value()
                                           : "unparseable error");
    }
    return parseStatReplyPayload(payload, payload_size);
}

Status
Client::closeArchive(uint32_t archive)
{
    const uint64_t id = nextRequestId_++;
    std::vector<uint8_t> request;
    appendCloseRequest(request, id, archive);
    ReplyHeader header;
    auto frame = transact(request, id, header);
    if (!frame.ok())
        return frame.status();
    if (header.status != WireStatus::Ok) {
        const uint8_t *payload = frame->data() + kReplyHeaderBytes;
        auto message = parseErrorMessage(
            payload, frame->size() - kReplyHeaderBytes);
        return statusFromWire(header.status,
                              message.ok() ? message.value()
                                           : "unparseable error");
    }
    return Status();
}

} // namespace net
} // namespace sage
