#include "net/server.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.hh"

namespace sage {
namespace net {

namespace {

/** epoll user-data tags of the two non-connection descriptors. */
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

/** Timer-wheel id of the drain deadline (no Conn ever has id 0). */
constexpr uint64_t kDrainTimerTag = 0;

/** recv() granularity. */
constexpr size_t kRecvChunkBytes = 64 * 1024;

/** Compact the rx buffer once this much dead prefix accumulates. */
constexpr size_t kRxCompactBytes = 256 * 1024;

std::string
errnoText()
{
    return std::strerror(errno);
}

uint32_t
loadLe32(const uint8_t *bytes)
{
    return static_cast<uint32_t>(bytes[0]) |
           static_cast<uint32_t>(bytes[1]) << 8 |
           static_cast<uint32_t>(bytes[2]) << 16 |
           static_cast<uint32_t>(bytes[3]) << 24;
}

uint64_t
loadLe64(const uint8_t *bytes)
{
    return static_cast<uint64_t>(loadLe32(bytes)) |
           static_cast<uint64_t>(loadLe32(bytes + 4)) << 32;
}

uint64_t
secondsToMs(double seconds)
{
    return seconds <= 0.0 ? 0
                          : static_cast<uint64_t>(seconds * 1000.0);
}

} // namespace

Server::Server(MultiArchiveService &service, ServerOptions options)
    : service_(service), options_(std::move(options))
{}

Server::~Server()
{
    stop();
}

Status
Server::start()
{
    sage_assert(!running_.load(), "start() on a running server");

    listenFd_ = ::socket(AF_INET,
                         SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listenFd_ < 0)
        return Status::ioError("socket: ", errnoText());

    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.bindAddress.c_str(),
                    &addr.sin_addr) != 1) {
        stop();
        return Status::ioError("bad bind address ",
                               options_.bindAddress);
    }
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status status = Status::ioError(
            "bind ", options_.bindAddress, ":", options_.port, ": ",
            errnoText());
        stop();
        return status;
    }
    if (::listen(listenFd_, options_.backlog) != 0) {
        Status status = Status::ioError("listen: ", errnoText());
        stop();
        return status;
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                      &addr_len) != 0) {
        Status status = Status::ioError("getsockname: ", errnoText());
        stop();
        return status;
    }
    port_ = ntohs(addr.sin_port);

    epollFd_ = ::epoll_create1(EPOLL_CLOEXEC);
    wakeFd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (epollFd_ < 0 || wakeFd_ < 0) {
        Status status =
            Status::ioError("epoll/eventfd: ", errnoText());
        stop();
        return status;
    }

    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = kListenerTag;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, listenFd_, &ev) != 0) {
        Status status = Status::ioError("epoll_ctl: ", errnoText());
        stop();
        return status;
    }
    ev.data.u64 = kWakeTag;
    if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) != 0) {
        Status status = Status::ioError("epoll_ctl: ", errnoText());
        stop();
        return status;
    }

    loopEpoch_ = std::chrono::steady_clock::now();
    wheel_ = TimerWheel();
    dueTimers_.clear();
    draining_.store(false, std::memory_order_release);
    drainStarted_ = false;
    drainDeadlineMs_ = 0;
    drainCancel_ = CancelSource();
    drainedCleanly_.store(false, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(loopExitMutex_);
        loopExited_ = false;
    }

    stopping_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { eventLoop(); });
    return Status();
}

uint64_t
Server::loopNowMs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - loopEpoch_)
            .count());
}

void
Server::beginDrain()
{
    if (!running_.load(std::memory_order_acquire))
        return;
    draining_.store(true, std::memory_order_release);
    wakeLoop();
}

bool
Server::drainWait()
{
    if (!running_.load(std::memory_order_acquire))
        return true;
    // The loop enforces drainDeadlineSeconds itself; the grace here
    // only covers scheduling hiccups around the forced exit.
    const auto give_up =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                options_.drainDeadlineSeconds + 2.0));
    {
        std::unique_lock<std::mutex> lock(loopExitMutex_);
        loopExitCv_.wait_until(lock, give_up,
                               [&] { return loopExited_; });
    }
    const bool clean = drainedCleanly_.load(std::memory_order_acquire);
    stop();
    return clean;
}

void
Server::stop()
{
    if (running_.load(std::memory_order_acquire)) {
        stopping_.store(true, std::memory_order_release);
        wakeLoop();
        if (thread_.joinable())
            thread_.join();
        // Admitted requests may still be serializing replies on
        // worker threads; their pushCompletion touches the completion
        // queue and wakeFd_, so both must survive until the count
        // drains.
        std::unique_lock<std::mutex> lock(callbackMutex_);
        callbackCv_.wait(lock, [&] {
            return pendingCallbacks_.load(
                       std::memory_order_acquire) == 0;
        });
        running_.store(false, std::memory_order_release);
    }
    for (auto &conn : conns_)
        ::close(conn.second->fd);
    conns_.clear();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (epollFd_ >= 0)
        ::close(epollFd_);
    if (wakeFd_ >= 0)
        ::close(wakeFd_);
    listenFd_ = epollFd_ = wakeFd_ = -1;
}

ServerNetStats
Server::netStats() const
{
    ServerNetStats out;
    out.accepted = accepted_.load(std::memory_order_relaxed);
    out.closed = closed_.load(std::memory_order_relaxed);
    out.activeConnections = out.accepted - out.closed;
    out.framesIn = framesIn_.load(std::memory_order_relaxed);
    out.repliesOut = repliesOut_.load(std::memory_order_relaxed);
    out.protocolErrors =
        protocolErrors_.load(std::memory_order_relaxed);
    out.bytesIn = bytesIn_.load(std::memory_order_relaxed);
    out.bytesOut = bytesOut_.load(std::memory_order_relaxed);
    out.txPauses = txPauses_.load(std::memory_order_relaxed);
    out.timedOutConnections =
        timedOutConnections_.load(std::memory_order_relaxed);
    out.shedConnections =
        shedConnections_.load(std::memory_order_relaxed);
    out.crcMismatches = crcMismatches_.load(std::memory_order_relaxed);
    out.versionMismatches =
        versionMismatches_.load(std::memory_order_relaxed);
    out.drainRejects = drainRejects_.load(std::memory_order_relaxed);
    return out;
}

void
Server::wakeLoop()
{
    const uint64_t one = 1;
    // A full eventfd counter (EAGAIN) already guarantees a pending
    // wake; any other failure means teardown is racing us.
    (void)!::write(wakeFd_, &one, sizeof(one));
}

void
Server::drainWakeFd()
{
    uint64_t value = 0;
    while (::read(wakeFd_, &value, sizeof(value)) > 0) {
    }
}

void
Server::eventLoop()
{
    std::vector<epoll_event> events(64);
    while (!stopping_.load(std::memory_order_acquire)) {
        if (draining_.load(std::memory_order_acquire) &&
            !drainStarted_)
            drainStart();
        if (drainStarted_ && drainComplete()) {
            drainedCleanly_.store(true, std::memory_order_release);
            break;
        }
        // Sleep forever only while there is nothing to time out; any
        // connection (or an armed drain deadline) bounds the wait to
        // one wheel tick.
        const int timeout = (conns_.empty() && !drainStarted_)
                                ? -1
                                : static_cast<int>(wheel_.tickMs());
        const int ready = ::epoll_wait(epollFd_, events.data(),
                                       static_cast<int>(events.size()),
                                       timeout);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < ready; i++) {
            if (stopping_.load(std::memory_order_acquire))
                break;
            const uint64_t tag = events[i].data.u64;
            if (tag == kListenerTag) {
                acceptAll();
                continue;
            }
            if (tag == kWakeTag) {
                drainWakeFd();
                flushCompletions();
                continue;
            }
            auto it = conns_.find(tag);
            if (it == conns_.end())
                continue;
            Conn &conn = *it->second;
            if (events[i].events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP))
                closeConn(conn);
            if (!conn.dead && (events[i].events & EPOLLOUT))
                flushTx(conn);
            if (!conn.dead && (events[i].events & EPOLLIN))
                onReadable(conn);
            if (conn.dead)
                destroyConn(tag);
        }
        runTimers();
    }
    {
        std::lock_guard<std::mutex> lock(loopExitMutex_);
        loopExited_ = true;
    }
    loopExitCv_.notify_all();
}

void
Server::runTimers()
{
    const uint64_t now = loopNowMs();
    dueTimers_.clear();
    wheel_.advanceTo(now, dueTimers_);
    const uint64_t idle_ms = secondsToMs(options_.idleTimeoutSeconds);
    const uint64_t header_ms =
        secondsToMs(options_.headerReadTimeoutSeconds);
    for (const uint64_t id : dueTimers_) {
        if (id == kDrainTimerTag) {
            if (drainStarted_ && now >= drainDeadlineMs_) {
                // Deadline breached: abandon still-queued service
                // work so the worker pool frees up immediately, and
                // force the loop out. drainedCleanly_ stays false.
                drainCancel_.cancel();
                stopping_.store(true, std::memory_order_release);
            }
            continue;
        }
        auto it = conns_.find(id);
        if (it == conns_.end())
            continue;
        Conn &conn = *it->second;
        bool timed_out = false;
        if (header_ms != 0 && conn.partialFrame && !conn.paused &&
            now - conn.frameStartMs >= header_ms)
            timed_out = true;  // Slow-loris drip.
        else if (idle_ms != 0 && !conn.partialFrame &&
                 conn.tx.empty() && conn.inFlight == 0 &&
                 now - conn.lastRxMs >= idle_ms)
            timed_out = true;  // Nothing received, nothing owed.
        if (timed_out) {
            timedOutConnections_.fetch_add(1,
                                           std::memory_order_relaxed);
            destroyConn(id);
        } else {
            scheduleConnCheck(conn);
        }
    }
}

void
Server::scheduleConnCheck(Conn &conn)
{
    const uint64_t now = loopNowMs();
    const uint64_t idle_ms = secondsToMs(options_.idleTimeoutSeconds);
    const uint64_t header_ms =
        secondsToMs(options_.headerReadTimeoutSeconds);
    uint64_t delay = UINT64_MAX;
    if (header_ms != 0 && conn.partialFrame) {
        const uint64_t due = conn.frameStartMs + header_ms;
        delay = std::min(delay, due > now ? due - now : 0);
    }
    if (idle_ms != 0) {
        // A busy connection (queued tx, in-flight reads) cannot be
        // idle-closed; check again a full period later.
        const bool busy = !conn.tx.empty() || conn.inFlight != 0;
        const uint64_t due =
            (busy ? now : conn.lastRxMs) + idle_ms;
        delay = std::min(delay, due > now ? due - now : 0);
    }
    if (delay != UINT64_MAX)
        wheel_.schedule(conn.id, delay);
}

void
Server::destroyConn(uint64_t conn_id)
{
    auto it = conns_.find(conn_id);
    if (it == conns_.end())
        return;
    ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
    ::close(it->second->fd);
    conns_.erase(it);
    closed_.fetch_add(1, std::memory_order_relaxed);
}

void
Server::drainStart()
{
    drainStarted_ = true;
    // Stop accepting: release the port immediately so a replacement
    // process can bind while we flush.
    if (listenFd_ >= 0) {
        ::epoll_ctl(epollFd_, EPOLL_CTL_DEL, listenFd_, nullptr);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    const uint64_t deadline_ms =
        secondsToMs(options_.drainDeadlineSeconds);
    drainDeadlineMs_ = loopNowMs() + deadline_ms;
    wheel_.schedule(kDrainTimerTag, deadline_ms);
    // Connections owed nothing retire straight away.
    std::vector<uint64_t> idle;
    for (const auto &entry : conns_) {
        const Conn &conn = *entry.second;
        if (conn.tx.empty() && conn.inFlight == 0)
            idle.push_back(entry.first);
    }
    for (const uint64_t id : idle)
        destroyConn(id);
}

void
Server::maybeRetireDraining(Conn &conn)
{
    if (drainStarted_ && !conn.dead && conn.tx.empty() &&
        conn.inFlight == 0)
        conn.dead = true;
}

bool
Server::drainComplete()
{
    if (!conns_.empty())
        return false;
    if (pendingCallbacks_.load(std::memory_order_acquire) != 0)
        return false;
    std::lock_guard<std::mutex> lock(completionMutex_);
    return completions_.empty();
}

void
Server::acceptAll()
{
    while (true) {
        const int fd = ::accept4(listenFd_, nullptr, nullptr,
                                 SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // EAGAIN: drained. Anything else (EMFILE, aborted
            // handshake) is also best handled by returning to the
            // loop.
            return;
        }
        if (conns_.size() >= options_.maxConnections) {
            // Shed explicitly: a fresh socket's send buffer always
            // has room for one tiny error frame, so the peer learns
            // why instead of watching an accept-stall time out.
            std::vector<uint8_t> reply;
            appendErrorReply(reply, MsgType::Open, 0,
                             WireStatus::Overloaded,
                             "connection limit reached; retry later");
            // Count before the close: an observer who saw our EOF
            // must already find the shed in netStats().
            shedConnections_.fetch_add(1, std::memory_order_relaxed);
            (void)!::send(fd, reply.data(), reply.size(),
                          MSG_NOSIGNAL);
            ::close(fd);
            continue;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_unique<Conn>();
        conn->id = nextConnId_++;
        conn->fd = fd;
        conn->lastRxMs = loopNowMs();
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
        ev.data.u64 = conn->id;
        if (::epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
            ::close(fd);
            continue;
        }
        accepted_.fetch_add(1, std::memory_order_relaxed);
        Conn &ref = *conn;
        conns_.emplace(ref.id, std::move(conn));
        scheduleConnCheck(ref);
    }
}

void
Server::closeConn(Conn &conn)
{
    conn.dead = true;
}

void
Server::onReadable(Conn &conn)
{
    while (!conn.dead) {
        // A paused connection keeps at most one max-size frame
        // buffered; further inbound bytes wait in the socket (and,
        // transitively, in the peer's send queue) until the transmit
        // backlog drains.
        if (conn.paused &&
            conn.rx.size() - conn.rxOff >=
                options_.maxRequestFrameBytes + kLenBytes) {
            conn.rxStalled = true;
            return;
        }
        const size_t old = conn.rx.size();
        conn.rx.resize(old + kRecvChunkBytes);
        const ssize_t got = ::recv(conn.fd, conn.rx.data() + old,
                                   kRecvChunkBytes, 0);
        if (got > 0) {
            conn.rx.resize(old + static_cast<size_t>(got));
            conn.lastRxMs = loopNowMs();
            bytesIn_.fetch_add(static_cast<uint64_t>(got),
                               std::memory_order_relaxed);
            processRx(conn);
            continue;
        }
        conn.rx.resize(old);
        if (got == 0) {
            closeConn(conn);
            return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return;
        if (errno == EINTR)
            continue;
        closeConn(conn);
        return;
    }
}

void
Server::processRx(Conn &conn)
{
    bool incomplete = false;
    while (!conn.dead && !conn.paused && !conn.closeAfterFlush) {
        const size_t avail = conn.rx.size() - conn.rxOff;
        if (avail < kLenBytes) {
            incomplete = avail != 0;
            break;
        }
        const uint32_t len = loadLe32(conn.rx.data() + conn.rxOff);
        if (len < kRequestHeaderBytes ||
            len > options_.maxRequestFrameBytes) {
            protocolErrors_.fetch_add(1, std::memory_order_relaxed);
            std::vector<uint8_t> reply;
            appendErrorReply(reply, MsgType::Open, 0,
                             WireStatus::ProtocolError,
                             "bad frame length");
            // Set before queueReply: its flush is what notices a
            // drained closeAfterFlush connection and retires it.
            conn.closeAfterFlush = true;
            queueReply(conn, std::move(reply));
            break;
        }
        if (avail < kLenBytes + len) {
            incomplete = true;
            break;
        }
        handleFrame(conn, conn.rx.data() + conn.rxOff + kLenBytes,
                    len);
        conn.rxOff += kLenBytes + len;
    }
    // Slow-loris bookkeeping: time the life of an incomplete frame.
    // Paused connections are excluded — their bytes sit unparsed by
    // our own backpressure choice, not the peer's dripping.
    if (!conn.dead && !conn.paused && !conn.closeAfterFlush) {
        if (!incomplete) {
            conn.partialFrame = false;
        } else if (!conn.partialFrame) {
            conn.partialFrame = true;
            conn.frameStartMs = loopNowMs();
            const uint64_t header_ms =
                secondsToMs(options_.headerReadTimeoutSeconds);
            if (header_ms != 0)
                wheel_.schedule(conn.id, header_ms);
        }
    }
    if (conn.rxOff == conn.rx.size()) {
        conn.rx.clear();
        conn.rxOff = 0;
    } else if (conn.rxOff >= kRxCompactBytes) {
        conn.rx.erase(conn.rx.begin(),
                      conn.rx.begin() +
                          static_cast<ptrdiff_t>(conn.rxOff));
        conn.rxOff = 0;
    }
}

void
Server::handleFrame(Conn &conn, const uint8_t *frame, size_t size)
{
    framesIn_.fetch_add(1, std::memory_order_relaxed);
    size_t body_size = size;
    switch (verifyFrame(frame, size, &body_size)) {
    case FrameVerdict::Ok:
        break;
    case FrameVerdict::VersionMismatch: {
        versionMismatches_.fetch_add(1, std::memory_order_relaxed);
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        // The v1 header layout matches ours through the request id
        // (processRx guarantees >= kRequestHeaderBytes), so echo the
        // type and id, and shape the reply so a v1 parser reads it.
        uint8_t type = frame[0];
        if (type < static_cast<uint8_t>(MsgType::Open) ||
            type > static_cast<uint8_t>(MsgType::Close))
            type = static_cast<uint8_t>(MsgType::Open);
        std::vector<uint8_t> reply;
        appendLegacyErrorReply(
            reply, static_cast<MsgType>(type), loadLe64(frame + 4),
            WireStatus::VersionMismatch,
            std::string("server speaks protocol version ") +
                std::to_string(unsigned(kProtocolVersion)) +
                ", client sent version " +
                std::to_string(unsigned(frame[2])));
        conn.closeAfterFlush = true;
        queueReply(conn, std::move(reply));
        return;
    }
    case FrameVerdict::TooShort:
    case FrameVerdict::CrcMismatch: {
        crcMismatches_.fetch_add(1, std::memory_order_relaxed);
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        std::vector<uint8_t> reply;
        appendErrorReply(reply, MsgType::Open, 0,
                         WireStatus::ProtocolError,
                         "frame failed its CRC-32 integrity check");
        conn.closeAfterFlush = true;
        queueReply(conn, std::move(reply));
        return;
    }
    }
    auto parsed = parseRequestFrame(frame, body_size);
    if (!parsed.ok()) {
        protocolErrors_.fetch_add(1, std::memory_order_relaxed);
        std::vector<uint8_t> reply;
        appendErrorReply(reply, MsgType::Open, 0,
                         WireStatus::ProtocolError,
                         parsed.status().toString());
        conn.closeAfterFlush = true;
        queueReply(conn, std::move(reply));
        return;
    }
    const RequestFrame &request = parsed.value();
    if (drainStarted_) {
        // The listener is gone; connections live only to collect
        // in-flight replies. New work is told to go elsewhere.
        drainRejects_.fetch_add(1, std::memory_order_relaxed);
        std::vector<uint8_t> reply;
        appendErrorReply(reply, request.type, request.requestId,
                         WireStatus::ShuttingDown,
                         "server is draining");
        queueReply(conn, std::move(reply));
        return;
    }
    std::vector<uint8_t> reply;
    switch (request.type) {
    case MsgType::Open: {
        auto meta = service_.open(request.name);
        if (meta.ok()) {
            OpenReply ok;
            ok.archive = meta->id;
            ok.readCount = meta->readCount;
            ok.chunkCount = meta->chunkCount;
            appendOpenReply(reply, request.requestId, MsgType::Open,
                            ok);
        } else {
            // Bad bytes keep their code across the wire; everything
            // else (missing file, hostile name) is simply an archive
            // this server does not have.
            WireStatus status =
                wireStatusFromStatus(meta.status());
            if (status != WireStatus::Corrupt &&
                status != WireStatus::Truncated)
                status = WireStatus::UnknownArchive;
            appendErrorReply(reply, MsgType::Open, request.requestId,
                             status, meta.status().toString());
        }
        break;
    }
    case MsgType::Stat: {
        if (request.archive == kStatServer) {
            const MultiArchiveStats stats = service_.stats();
            WireServerStats wire;
            wire.openArchives = stats.openArchives;
            wire.knownArchives = stats.knownArchives;
            wire.opens = stats.opens;
            wire.reopens = stats.reopens;
            wire.evictions = stats.evictions;
            wire.admitted = stats.admitted;
            wire.overloaded = stats.overloaded;
            wire.readsServed = stats.readsServed;
            wire.bytesServed = stats.bytesServed;
            wire.cacheBytesReserved = stats.cacheBytesReserved;
            wire.cacheBudgetBytes = stats.cacheBudgetBytes;
            wire.queueDepth = stats.queueDepth;
            appendStatReply(reply, request.requestId, wire);
        } else {
            auto meta = service_.describe(request.archive);
            if (meta.ok()) {
                OpenReply ok;
                ok.archive = meta->id;
                ok.readCount = meta->readCount;
                ok.chunkCount = meta->chunkCount;
                appendOpenReply(reply, request.requestId,
                                MsgType::Stat, ok);
            } else {
                appendErrorReply(reply, MsgType::Stat,
                                 request.requestId,
                                 WireStatus::UnknownArchive,
                                 meta.status().toString());
            }
        }
        break;
    }
    case MsgType::Close: {
        Status status = service_.closeArchive(request.archive);
        if (status.ok())
            appendCloseReply(reply, request.requestId);
        else
            appendErrorReply(reply, MsgType::Close, request.requestId,
                             WireStatus::UnknownArchive,
                             status.toString());
        break;
    }
    case MsgType::ReadRange:
    case MsgType::ReadChunk:
        handleRead(conn, request);
        return;
    }
    queueReply(conn, std::move(reply));
}

void
Server::handleRead(Conn &conn, const RequestFrame &request)
{
    if (request.type == MsgType::ReadRange &&
        request.count > options_.maxReadsPerRequest) {
        std::vector<uint8_t> reply;
        appendErrorReply(reply, request.type, request.requestId,
                         WireStatus::BadRequest,
                         "count exceeds the per-request limit");
        queueReply(conn, std::move(reply));
        return;
    }

    RequestOptions qos;
    qos.priority = request.priority;
    if (request.deadlineMs != 0)
        qos.deadline =
            RequestOptions::deadlineIn(request.deadlineMs / 1000.0);
    // Every admitted request can be abandoned wholesale when a drain
    // deadline fires — queued work must not hold shutdown hostage.
    qos.cancel = drainCancel_.token();

    pendingCallbacks_.fetch_add(1, std::memory_order_acq_rel);
    auto complete = [this, conn_id = conn.id,
                     request_id = request.requestId,
                     type = request.type](ReadResult result) {
        std::vector<uint8_t> frame;
        if (result.status == RequestStatus::Ok) {
            appendReadReply(frame, type, request_id, result.reads);
        } else {
            const std::string detail =
                result.error.ok() ? requestStatusName(result.status)
                                  : result.error.toString();
            appendErrorReply(
                frame, type, request_id,
                wireStatusFromRequest(result.status, result.error),
                detail);
        }
        pushCompletion(conn_id, std::move(frame));
    };

    Status reject;
    const Admission admission =
        request.type == MsgType::ReadRange
            ? service_.readRange(request.archive, request.first,
                                 request.count, qos,
                                 std::move(complete), &reject)
            : service_.readChunk(request.archive, request.chunk, qos,
                                 std::move(complete), &reject);
    if (admission == Admission::Admitted) {
        conn.inFlight++;
        return;
    }

    // The callback will never run; balance its barrier count.
    pendingCallbacks_.fetch_sub(1, std::memory_order_acq_rel);
    WireStatus status = WireStatus::BadRequest;
    switch (admission) {
    case Admission::Overloaded:
        status = WireStatus::Overloaded;
        break;
    case Admission::UnknownArchive:
        status = WireStatus::UnknownArchive;
        break;
    case Admission::BadRange:
        status = WireStatus::OutOfRange;
        break;
    case Admission::Admitted:
        break;
    }
    std::vector<uint8_t> reply;
    appendErrorReply(reply, request.type, request.requestId, status,
                     reject.toString());
    queueReply(conn, std::move(reply));
}

void
Server::pushCompletion(uint64_t conn_id, std::vector<uint8_t> &&frame)
{
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        completions_.push_back(Completion{conn_id, std::move(frame)});
    }
    wakeLoop();
    // Last touch of server state: once this count reaches zero the
    // destructor may proceed to close descriptors.
    std::lock_guard<std::mutex> lock(callbackMutex_);
    if (pendingCallbacks_.fetch_sub(1, std::memory_order_acq_rel) ==
        1)
        callbackCv_.notify_all();
}

void
Server::flushCompletions()
{
    std::vector<Completion> batch;
    {
        std::lock_guard<std::mutex> lock(completionMutex_);
        batch.swap(completions_);
    }
    for (Completion &completion : batch) {
        auto it = conns_.find(completion.connId);
        if (it == conns_.end())
            continue;
        Conn &conn = *it->second;
        if (conn.inFlight > 0)
            conn.inFlight--;
        if (conn.dead)
            continue;
        queueReply(conn, std::move(completion.frame));
        if (conn.dead)
            destroyConn(completion.connId);
    }
}

void
Server::queueReply(Conn &conn, std::vector<uint8_t> &&frame)
{
    repliesOut_.fetch_add(1, std::memory_order_relaxed);
    conn.txBytes += frame.size();
    conn.tx.push_back(std::move(frame));
    // Edge-triggered EPOLLOUT only fires on a not-writable →
    // writable transition, so always attempt the write here and rely
    // on the event only after a genuine EAGAIN.
    flushTx(conn);
    if (!conn.dead && !conn.paused &&
        conn.txBytes > options_.txHighWaterBytes) {
        conn.paused = true;
        txPauses_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
Server::flushTx(Conn &conn)
{
    while (!conn.tx.empty()) {
        const std::vector<uint8_t> &front = conn.tx.front();
        const ssize_t sent =
            ::send(conn.fd, front.data() + conn.txOff,
                   front.size() - conn.txOff, MSG_NOSIGNAL);
        if (sent > 0) {
            bytesOut_.fetch_add(static_cast<uint64_t>(sent),
                                std::memory_order_relaxed);
            conn.txOff += static_cast<size_t>(sent);
            conn.txBytes -= static_cast<uint64_t>(sent);
            if (conn.txOff == front.size()) {
                conn.tx.pop_front();
                conn.txOff = 0;
            }
            continue;
        }
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (sent < 0 && errno == EINTR)
            continue;
        closeConn(conn);
        return;
    }
    if (conn.paused &&
        conn.txBytes <= options_.txHighWaterBytes / 2) {
        conn.paused = false;
        // Frames that arrived while paused are still buffered; parse
        // them now, then resume recv() if backpressure stalled it
        // (edge-triggered readiness will not re-announce old bytes).
        processRx(conn);
        if (!conn.dead && conn.rxStalled) {
            conn.rxStalled = false;
            onReadable(conn);
        }
    }
    if (!conn.dead && conn.closeAfterFlush && conn.tx.empty())
        conn.dead = true;
    maybeRetireDraining(conn);
}

} // namespace net
} // namespace sage
