/**
 * @file
 * Thin blocking client for the SAGe network protocol.
 *
 * One TCP connection, one outstanding request at a time: every call
 * writes a frame, blocks for the reply, and returns it decoded.
 * Transport failures (connect/send/recv/timeout, malformed reply
 * bytes, a frame-CRC mismatch) surface as the outer Status of a
 * StatusOr; application failures the server reported (Overloaded,
 * UnknownArchive, an expired deadline, a corrupt chunk) arrive
 * in-band as ReadReply::status so callers can distinguish "retry
 * later" from "this connection is broken". Any transport failure
 * marks the connection broken() — the byte stream may be desynced,
 * so every later call fails fast and the caller should reconnect
 * (ResilientClient in resilient_client.hh does exactly that).
 * Not thread-safe — one Client per thread, any number of Clients
 * per server.
 */

#ifndef SAGE_NET_CLIENT_HH
#define SAGE_NET_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.hh"

namespace sage {
namespace net {

struct ClientOptions
{
    /** Blocking send/recv timeout; 0 disables (wait forever). */
    double ioTimeoutSeconds = 30.0;

    /** Reply frames larger than this are a protocol error. Sized for
     *  maxReadsPerRequest worth of payload. */
    uint32_t maxReplyFrameBytes = 256u << 20;
};

/** A decoded READ_RANGE/READ_CHUNK reply. */
struct ReadReply
{
    WireStatus status = WireStatus::Ok;
    std::string message;      ///< Error detail when status != Ok.
    std::vector<Read> reads;  ///< Filled when status == Ok.

    bool ok() const { return status == WireStatus::Ok; }
};

class Client
{
  public:
    /** Resolve + connect (IoError with detail on failure). */
    static StatusOr<std::unique_ptr<Client>>
    connect(const std::string &host, uint16_t port,
            ClientOptions options = {});

    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** OPEN @p name; the returned id addresses later reads. */
    StatusOr<OpenReply> open(const std::string &name);

    /** READ_RANGE [first, first+count). Outer Status = transport
     *  failure only; server-side outcomes land in ReadReply::status. */
    StatusOr<ReadReply>
    readRange(uint32_t archive, uint64_t first, uint64_t count,
              RequestPriority priority = RequestPriority::Normal,
              uint32_t deadline_ms = 0);

    /** READ_CHUNK (whole chunk in stored order). */
    StatusOr<ReadReply>
    readChunk(uint32_t archive, uint64_t chunk,
              RequestPriority priority = RequestPriority::Normal,
              uint32_t deadline_ms = 0);

    /** Server-wide STAT. */
    StatusOr<WireServerStats> statServer();

    /** CLOSE an archive id (drops the server's cached open). */
    Status closeArchive(uint32_t archive);

    /** True once any transport failure desynced the byte stream; the
     *  connection is useless and the caller should reconnect. */
    bool broken() const { return broken_; }

  private:
    Client(int fd, ClientOptions options)
        : fd_(fd), options_(options)
    {}

    /** Record + return a transport failure (marks broken()). */
    Status transportError(Status status);

    Status sendAll(const std::vector<uint8_t> &bytes);
    /** One whole reply frame, length prefix stripped. */
    StatusOr<std::vector<uint8_t>> recvFrame();
    /** send + recv + header decode, with request-id echo check. */
    StatusOr<std::vector<uint8_t>>
    transact(const std::vector<uint8_t> &request,
             uint64_t request_id, ReplyHeader &header);

    int fd_ = -1;
    ClientOptions options_;
    uint64_t nextRequestId_ = 1;
    bool broken_ = false;
};

} // namespace net
} // namespace sage

#endif // SAGE_NET_CLIENT_HH
