#include "net/protocol.hh"

#include <cstring>

#include "util/crc32.hh"

namespace sage {
namespace net {

namespace {

// ---- little-endian primitives ---------------------------------------

void
putU8(std::vector<uint8_t> &out, uint8_t v)
{
    out.push_back(v);
}

void
putU16(std::vector<uint8_t> &out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int shift = 0; shift < 32; shift += 8)
        out.push_back(static_cast<uint8_t>(v >> shift));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int shift = 0; shift < 64; shift += 8)
        out.push_back(static_cast<uint8_t>(v >> shift));
}

void
putBytes(std::vector<uint8_t> &out, const void *data, size_t size)
{
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    out.insert(out.end(), bytes, bytes + size);
}

/** Bounds-checked little-endian cursor over an untrusted frame. */
class Cursor
{
  public:
    Cursor(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    size_t remaining() const { return size_ - offset_; }

    bool
    u8(uint8_t &v)
    {
        if (remaining() < 1)
            return false;
        v = data_[offset_++];
        return true;
    }

    bool
    u16(uint16_t &v)
    {
        if (remaining() < 2)
            return false;
        v = static_cast<uint16_t>(
            data_[offset_] |
            static_cast<uint16_t>(data_[offset_ + 1]) << 8);
        offset_ += 2;
        return true;
    }

    bool
    u32(uint32_t &v)
    {
        if (remaining() < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(data_[offset_ + i]) << (8 * i);
        offset_ += 4;
        return true;
    }

    bool
    u64(uint64_t &v)
    {
        if (remaining() < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(data_[offset_ + i]) << (8 * i);
        offset_ += 8;
        return true;
    }

    bool
    str(std::string &v, size_t size)
    {
        if (remaining() < size)
            return false;
        v.assign(reinterpret_cast<const char *>(data_ + offset_),
                 size);
        offset_ += size;
        return true;
    }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t offset_ = 0;
};

/** Reserve the length prefix; backpatch once the frame is complete. */
size_t
beginFrame(std::vector<uint8_t> &out)
{
    const size_t at = out.size();
    putU32(out, 0);
    return at;
}

void
patchFrameLength(std::vector<uint8_t> &out, size_t at)
{
    const uint32_t len =
        static_cast<uint32_t>(out.size() - at - kLenBytes);
    out[at + 0] = static_cast<uint8_t>(len);
    out[at + 1] = static_cast<uint8_t>(len >> 8);
    out[at + 2] = static_cast<uint8_t>(len >> 16);
    out[at + 3] = static_cast<uint8_t>(len >> 24);
}

/** Append the frame CRC over the body built since beginFrame(), then
 *  backpatch the length prefix (which counts the CRC too). */
void
endFrame(std::vector<uint8_t> &out, size_t at)
{
    const size_t body = at + kLenBytes;
    putU32(out, Crc32::of(out.data() + body, out.size() - body));
    patchFrameLength(out, at);
}

/** v1-shaped frames (version-mismatch rejections) carry no CRC. */
void
endFrameLegacy(std::vector<uint8_t> &out, size_t at)
{
    patchFrameLength(out, at);
}

void
putRequestHeader(std::vector<uint8_t> &out, MsgType type,
                 RequestPriority priority, uint64_t request_id,
                 uint32_t deadline_ms)
{
    putU8(out, static_cast<uint8_t>(type));
    putU8(out, static_cast<uint8_t>(priority));
    putU8(out, kProtocolVersion);
    putU8(out, 0);
    putU64(out, request_id);
    putU32(out, deadline_ms);
}

void
putReplyHeader(std::vector<uint8_t> &out, MsgType request_type,
               WireStatus status, uint64_t request_id,
               uint8_t version = kProtocolVersion)
{
    putU8(out, static_cast<uint8_t>(request_type) | kReplyFlag);
    putU8(out, static_cast<uint8_t>(status));
    putU8(out, version);
    putU8(out, 0);
    putU64(out, request_id);
}

Status
malformed(const char *what)
{
    return Status::truncated("malformed frame: ", what);
}

} // namespace

const char *
wireStatusName(WireStatus status)
{
    switch (status) {
    case WireStatus::Ok: return "Ok";
    case WireStatus::IoError: return "IoError";
    case WireStatus::Truncated: return "Truncated";
    case WireStatus::Corrupt: return "Corrupt";
    case WireStatus::OutOfRange: return "OutOfRange";
    case WireStatus::Exhausted: return "Exhausted";
    case WireStatus::Expired: return "Expired";
    case WireStatus::Cancelled: return "Cancelled";
    case WireStatus::Overloaded: return "Overloaded";
    case WireStatus::BadRequest: return "BadRequest";
    case WireStatus::UnknownArchive: return "UnknownArchive";
    case WireStatus::ProtocolError: return "ProtocolError";
    case WireStatus::ShuttingDown: return "ShuttingDown";
    case WireStatus::VersionMismatch: return "VersionMismatch";
    }
    return "Unknown";
}

bool
wireStatusRetryable(WireStatus status)
{
    switch (status) {
    case WireStatus::IoError:
    case WireStatus::Exhausted:
    case WireStatus::Overloaded:
    case WireStatus::ShuttingDown:
        return true;
    default:
        return false;
    }
}

WireStatus
wireStatusFromStatus(const Status &status)
{
    switch (status.code()) {
    case StatusCode::Ok: return WireStatus::Ok;
    case StatusCode::IoError: return WireStatus::IoError;
    case StatusCode::Truncated: return WireStatus::Truncated;
    case StatusCode::Corrupt: return WireStatus::Corrupt;
    case StatusCode::OutOfRange: return WireStatus::OutOfRange;
    case StatusCode::Exhausted: return WireStatus::Exhausted;
    }
    return WireStatus::IoError;
}

WireStatus
wireStatusFromRequest(RequestStatus status, const Status &error)
{
    switch (status) {
    case RequestStatus::Ok: return WireStatus::Ok;
    case RequestStatus::Expired: return WireStatus::Expired;
    case RequestStatus::Cancelled: return WireStatus::Cancelled;
    case RequestStatus::Error: return wireStatusFromStatus(error);
    }
    return WireStatus::IoError;
}

Status
statusFromWire(WireStatus status, const std::string &message)
{
    switch (status) {
    case WireStatus::Ok:
        return Status();
    case WireStatus::IoError:
        return Status::ioError(message);
    case WireStatus::Truncated:
        return Status::truncated(message);
    case WireStatus::Corrupt:
        return Status::corrupt(message);
    case WireStatus::OutOfRange:
    case WireStatus::UnknownArchive:
    case WireStatus::BadRequest:
        return Status::outOfRange(wireStatusName(status), ": ",
                                  message);
    case WireStatus::VersionMismatch:
        return Status::corrupt(wireStatusName(status), ": ", message);
    default:
        return Status::exhausted(wireStatusName(status), ": ",
                                 message);
    }
}

// ---- request encoders -----------------------------------------------

void
appendOpenRequest(std::vector<uint8_t> &out, uint64_t request_id,
                  const std::string &name, RequestPriority priority,
                  uint32_t deadline_ms)
{
    const size_t at = beginFrame(out);
    putRequestHeader(out, MsgType::Open, priority, request_id,
                     deadline_ms);
    const size_t len = std::min(name.size(), kMaxNameBytes);
    putU16(out, static_cast<uint16_t>(len));
    putBytes(out, name.data(), len);
    endFrame(out, at);
}

void
appendReadRangeRequest(std::vector<uint8_t> &out, uint64_t request_id,
                       uint32_t archive, uint64_t first,
                       uint64_t count, RequestPriority priority,
                       uint32_t deadline_ms)
{
    const size_t at = beginFrame(out);
    putRequestHeader(out, MsgType::ReadRange, priority, request_id,
                     deadline_ms);
    putU32(out, archive);
    putU64(out, first);
    putU64(out, count);
    endFrame(out, at);
}

void
appendReadChunkRequest(std::vector<uint8_t> &out, uint64_t request_id,
                       uint32_t archive, uint64_t chunk,
                       RequestPriority priority, uint32_t deadline_ms)
{
    const size_t at = beginFrame(out);
    putRequestHeader(out, MsgType::ReadChunk, priority, request_id,
                     deadline_ms);
    putU32(out, archive);
    putU64(out, chunk);
    endFrame(out, at);
}

void
appendStatRequest(std::vector<uint8_t> &out, uint64_t request_id,
                  uint32_t archive)
{
    const size_t at = beginFrame(out);
    putRequestHeader(out, MsgType::Stat, RequestPriority::Normal,
                     request_id, 0);
    putU32(out, archive);
    endFrame(out, at);
}

void
appendCloseRequest(std::vector<uint8_t> &out, uint64_t request_id,
                   uint32_t archive)
{
    const size_t at = beginFrame(out);
    putRequestHeader(out, MsgType::Close, RequestPriority::Normal,
                     request_id, 0);
    putU32(out, archive);
    endFrame(out, at);
}

// ---- reply encoders -------------------------------------------------

void
appendErrorReply(std::vector<uint8_t> &out, MsgType request_type,
                 uint64_t request_id, WireStatus status,
                 const std::string &message)
{
    const size_t at = beginFrame(out);
    putReplyHeader(out, request_type, status, request_id);
    const size_t len = std::min(message.size(), kMaxErrorMessageBytes);
    putU16(out, static_cast<uint16_t>(len));
    putBytes(out, message.data(), len);
    endFrame(out, at);
}

void
appendLegacyErrorReply(std::vector<uint8_t> &out, MsgType request_type,
                       uint64_t request_id, WireStatus status,
                       const std::string &message)
{
    const size_t at = beginFrame(out);
    putReplyHeader(out, request_type, status, request_id,
                   /*version=*/0);
    const size_t len = std::min(message.size(), kMaxErrorMessageBytes);
    putU16(out, static_cast<uint16_t>(len));
    putBytes(out, message.data(), len);
    endFrameLegacy(out, at);
}

void
appendOpenReply(std::vector<uint8_t> &out, uint64_t request_id,
                MsgType request_type, const OpenReply &reply)
{
    const size_t at = beginFrame(out);
    putReplyHeader(out, request_type, WireStatus::Ok, request_id);
    putU32(out, reply.archive);
    putU64(out, reply.readCount);
    putU64(out, reply.chunkCount);
    endFrame(out, at);
}

void
appendReadReply(std::vector<uint8_t> &out, MsgType request_type,
                uint64_t request_id, const std::vector<Read> &reads)
{
    const size_t at = beginFrame(out);
    putReplyHeader(out, request_type, WireStatus::Ok, request_id);
    putU32(out, static_cast<uint32_t>(reads.size()));
    for (const Read &read : reads) {
        putU16(out, static_cast<uint16_t>(read.header.size()));
        putU32(out, static_cast<uint32_t>(read.bases.size()));
        putU32(out, static_cast<uint32_t>(read.quals.size()));
        putBytes(out, read.header.data(), read.header.size());
        putBytes(out, read.bases.data(), read.bases.size());
        putBytes(out, read.quals.data(), read.quals.size());
    }
    endFrame(out, at);
}

void
appendStatReply(std::vector<uint8_t> &out, uint64_t request_id,
                const WireServerStats &stats)
{
    const size_t at = beginFrame(out);
    putReplyHeader(out, MsgType::Stat, WireStatus::Ok, request_id);
    putU32(out, stats.openArchives);
    putU32(out, stats.knownArchives);
    putU64(out, stats.opens);
    putU64(out, stats.reopens);
    putU64(out, stats.evictions);
    putU64(out, stats.admitted);
    putU64(out, stats.overloaded);
    putU64(out, stats.readsServed);
    putU64(out, stats.bytesServed);
    putU64(out, stats.cacheBytesReserved);
    putU64(out, stats.cacheBudgetBytes);
    putU64(out, stats.queueDepth);
    endFrame(out, at);
}

void
appendCloseReply(std::vector<uint8_t> &out, uint64_t request_id)
{
    const size_t at = beginFrame(out);
    putReplyHeader(out, MsgType::Close, WireStatus::Ok, request_id);
    endFrame(out, at);
}

// ---- parsers --------------------------------------------------------

const char *
frameVerdictName(FrameVerdict verdict)
{
    switch (verdict) {
    case FrameVerdict::Ok: return "Ok";
    case FrameVerdict::TooShort: return "TooShort";
    case FrameVerdict::VersionMismatch: return "VersionMismatch";
    case FrameVerdict::CrcMismatch: return "CrcMismatch";
    }
    return "Unknown";
}

FrameVerdict
verifyFrame(const uint8_t *frame, size_t size, size_t *body_size)
{
    // The version byte sits at offset 2 in both header layouts.
    if (size < 3)
        return FrameVerdict::TooShort;
    if (frame[2] != kProtocolVersion)
        return FrameVerdict::VersionMismatch;
    if (size < kReplyHeaderBytes + kFrameCrcBytes)
        return FrameVerdict::TooShort;
    const size_t body = size - kFrameCrcBytes;
    uint32_t stored = 0;
    for (int i = 0; i < 4; i++)
        stored |= static_cast<uint32_t>(frame[body + i]) << (8 * i);
    if (Crc32::of(frame, body) != stored)
        return FrameVerdict::CrcMismatch;
    if (body_size != nullptr)
        *body_size = body;
    return FrameVerdict::Ok;
}

StatusOr<RequestFrame>
parseRequestFrame(const uint8_t *frame, size_t size)
{
    Cursor cur(frame, size);
    RequestFrame out;
    uint8_t type = 0, priority = 0;
    uint16_t reserved = 0;
    if (!cur.u8(type) || !cur.u8(priority) || !cur.u16(reserved) ||
        !cur.u64(out.requestId) || !cur.u32(out.deadlineMs))
        return malformed("request header short");
    if (type < static_cast<uint8_t>(MsgType::Open) ||
        type > static_cast<uint8_t>(MsgType::Close))
        return Status::corrupt("malformed frame: unknown request type ",
                               unsigned(type));
    if (priority >= kRequestPriorityCount) {
        return Status::corrupt("malformed frame: bad priority ",
                               unsigned(priority));
    }
    out.type = static_cast<MsgType>(type);
    out.priority = static_cast<RequestPriority>(priority);

    switch (out.type) {
    case MsgType::Open: {
        uint16_t name_len = 0;
        if (!cur.u16(name_len))
            return malformed("OPEN payload short");
        if (name_len > kMaxNameBytes)
            return Status::corrupt("malformed frame: name too long");
        if (!cur.str(out.name, name_len))
            return malformed("OPEN name short");
        break;
    }
    case MsgType::ReadRange:
        if (!cur.u32(out.archive) || !cur.u64(out.first) ||
            !cur.u64(out.count))
            return malformed("READ_RANGE payload short");
        break;
    case MsgType::ReadChunk:
        if (!cur.u32(out.archive) || !cur.u64(out.chunk))
            return malformed("READ_CHUNK payload short");
        break;
    case MsgType::Stat:
    case MsgType::Close:
        if (!cur.u32(out.archive))
            return malformed("payload short");
        break;
    }
    if (cur.remaining() != 0)
        return Status::corrupt("malformed frame: ", cur.remaining(),
                               " trailing bytes");
    return out;
}

StatusOr<ReplyHeader>
parseReplyHeader(const uint8_t *frame, size_t size)
{
    Cursor cur(frame, size);
    ReplyHeader out;
    uint8_t type = 0, status = 0;
    uint16_t reserved = 0;
    if (!cur.u8(type) || !cur.u8(status) || !cur.u16(reserved) ||
        !cur.u64(out.requestId))
        return malformed("reply header short");
    if (!(type & kReplyFlag))
        return Status::corrupt(
            "malformed frame: reply flag missing on type ",
            unsigned(type));
    type = static_cast<uint8_t>(type & ~kReplyFlag);
    if (type < static_cast<uint8_t>(MsgType::Open) ||
        type > static_cast<uint8_t>(MsgType::Close))
        return Status::corrupt("malformed frame: unknown reply type ",
                               unsigned(type));
    out.type = static_cast<MsgType>(type);
    out.status = static_cast<WireStatus>(status);
    return out;
}

StatusOr<OpenReply>
parseOpenReplyPayload(const uint8_t *payload, size_t size)
{
    Cursor cur(payload, size);
    OpenReply out;
    if (!cur.u32(out.archive) || !cur.u64(out.readCount) ||
        !cur.u64(out.chunkCount))
        return malformed("OPEN reply short");
    return out;
}

StatusOr<std::vector<Read>>
parseReadReplyPayload(const uint8_t *payload, size_t size)
{
    Cursor cur(payload, size);
    uint32_t count = 0;
    if (!cur.u32(count))
        return malformed("READ reply short");
    // A count can promise at most the remaining bytes (each read costs
    // at least its 10-byte descriptor); reject before reserving.
    if (count > cur.remaining() / 10 + 1)
        return Status::corrupt(
            "malformed frame: read count ", count,
            " exceeds payload capacity");
    std::vector<Read> reads;
    reads.reserve(count);
    for (uint32_t i = 0; i < count; i++) {
        uint16_t header_len = 0;
        uint32_t bases_len = 0, quals_len = 0;
        if (!cur.u16(header_len) || !cur.u32(bases_len) ||
            !cur.u32(quals_len))
            return malformed("read descriptor short");
        Read read;
        if (!cur.str(read.header, header_len) ||
            !cur.str(read.bases, bases_len) ||
            !cur.str(read.quals, quals_len))
            return malformed("read body short");
        reads.push_back(std::move(read));
    }
    if (cur.remaining() != 0)
        return Status::corrupt("malformed frame: ", cur.remaining(),
                               " trailing bytes");
    return reads;
}

StatusOr<WireServerStats>
parseStatReplyPayload(const uint8_t *payload, size_t size)
{
    Cursor cur(payload, size);
    WireServerStats out;
    if (!cur.u32(out.openArchives) || !cur.u32(out.knownArchives) ||
        !cur.u64(out.opens) || !cur.u64(out.reopens) ||
        !cur.u64(out.evictions) || !cur.u64(out.admitted) ||
        !cur.u64(out.overloaded) || !cur.u64(out.readsServed) ||
        !cur.u64(out.bytesServed) ||
        !cur.u64(out.cacheBytesReserved) ||
        !cur.u64(out.cacheBudgetBytes) || !cur.u64(out.queueDepth))
        return malformed("STAT reply short");
    return out;
}

StatusOr<std::string>
parseErrorMessage(const uint8_t *payload, size_t size)
{
    Cursor cur(payload, size);
    uint16_t len = 0;
    if (!cur.u16(len))
        return malformed("error reply short");
    std::string message;
    if (!cur.str(message, len))
        return malformed("error message short");
    return message;
}

} // namespace net
} // namespace sage
