/**
 * @file
 * Wire protocol of the SAGe network front end.
 *
 * Framing is length-prefixed and little-endian throughout: every
 * message is a u32 byte count followed by that many bytes of header
 * plus payload, so a connection state machine only ever needs "do I
 * have 4 bytes; do I have length bytes" to make progress. Requests
 * carry a request id (echoed verbatim in the reply), a priority class
 * (service/qos.hh's RequestPriority) and an optional deadline in
 * milliseconds; replies carry the id and a WireStatus — the
 * util/status.hh StatusCode taxonomy extended with request-level
 * (Expired/Cancelled) and admission-level (Overloaded, BadRequest,
 * UnknownArchive, ProtocolError) outcomes.
 *
 * Protocol version 2 (this build) makes every frame self-checking:
 * byte 2 of the fixed header carries kProtocolVersion and the body
 * ends with a u32 CRC-32 (util/crc32.hh, the container's polynomial)
 * over everything between the length prefix and the CRC itself. Both
 * ends call verifyFrame() before parsing; a flipped bit on the wire
 * surfaces as a CrcMismatch verdict (ProtocolError + connection
 * close), never as decoded garbage. Version-1 peers wrote 0 in that
 * byte, so an old client is detected on its first frame and answered
 * with a WireStatus::VersionMismatch error encoded in the v1 shape
 * (no CRC) that its parser still understands cleanly.
 *
 * Request frame (after the u32 length):
 *
 *   u8  type        MsgType
 *   u8  priority    RequestPriority (0 Interactive, 1 Normal, 2 Background)
 *   u8  version     kProtocolVersion (v1 peers wrote 0 here)
 *   u8  reserved    must be 0
 *   u64 requestId   opaque, echoed in the reply
 *   u32 deadlineMs  0 = no deadline, else relative to arrival
 *   ... payload     per type, see the append*Request encoders
 *   u32 frameCrc    CRC-32 of header + payload
 *
 * Reply frame (after the u32 length):
 *
 *   u8  type        request's MsgType with kReplyFlag set
 *   u8  status      WireStatus
 *   u8  version     kProtocolVersion
 *   u8  reserved    0
 *   u64 requestId   echoed
 *   ... payload     OPEN: archive id + counts; READ_*: packed reads;
 *                   STAT: WireServerStats; errors: u16-length message
 *   u32 frameCrc    CRC-32 of header + payload
 *
 * Read payloads pack each read as u16 headerLen, u32 basesLen,
 * u32 qualsLen followed by the three byte strings — enough for the
 * blocking client to rebuild genomics/read.hh Read objects without
 * touching FASTQ text.
 */

#ifndef SAGE_NET_PROTOCOL_HH
#define SAGE_NET_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/read.hh"
#include "service/qos.hh"
#include "util/status.hh"

namespace sage {
namespace net {

/** Bytes of the length prefix itself. */
constexpr size_t kLenBytes = 4;

/** Wire protocol version carried in byte 2 of every frame header.
 *  Version 1 wrote 0 there (the old reserved field) and had no frame
 *  CRC, which is exactly how a v1 peer is detected. */
constexpr uint8_t kProtocolVersion = 2;

/** Fixed request/reply header bytes after the length prefix. */
constexpr size_t kRequestHeaderBytes = 16;
constexpr size_t kReplyHeaderBytes = 12;

/** Trailing CRC-32 appended to every v2 frame body. */
constexpr size_t kFrameCrcBytes = 4;

/** Encoder-side bounds; the server additionally enforces
 *  ServerOptions::maxRequestFrameBytes on whole frames. */
constexpr size_t kMaxNameBytes = 4096;
constexpr size_t kMaxErrorMessageBytes = 4096;

/** STAT target meaning "the whole server", not one archive. */
constexpr uint32_t kStatServer = 0xFFFFFFFFu;

enum class MsgType : uint8_t {
    Open = 1,
    ReadRange = 2,
    ReadChunk = 3,
    Stat = 4,
    Close = 5,
};

/** Set on the type byte of every reply. */
constexpr uint8_t kReplyFlag = 0x80;

/**
 * Reply status byte. Values below 32 mirror StatusCode one-to-one so
 * a decode failure crosses the wire losslessly; 32+ are request
 * outcomes with no StatusCode analogue.
 */
enum class WireStatus : uint8_t {
    Ok = 0,
    // StatusCode mirror (data/IO failures from the decode path).
    IoError = 1,
    Truncated = 2,
    Corrupt = 3,
    OutOfRange = 4,
    Exhausted = 5,
    // QoS outcomes (service/qos.hh RequestStatus).
    Expired = 32,
    Cancelled = 33,
    // Admission / protocol outcomes.
    Overloaded = 64,      ///< Shed by admission control; retry later.
    BadRequest = 65,      ///< Frame parsed but the arguments are bad.
    UnknownArchive = 66,  ///< No such archive name/id on this server.
    ProtocolError = 67,   ///< Malformed frame; connection closes.
    ShuttingDown = 68,    ///< Server is draining; retry elsewhere.
    VersionMismatch = 69, ///< Peer speaks another protocol version.
};

const char *wireStatusName(WireStatus status);

/** Retryable-vs-terminal classification for resilient callers.
 *
 *  Retryable (another attempt can succeed): Overloaded (admission
 *  shed), ShuttingDown (this server is draining; a fresh connection —
 *  in production, another replica — can serve it), IoError and
 *  Exhausted (transient decode-side resource failures the server
 *  itself retries). Everything else is terminal: the data really is
 *  Corrupt/Truncated, the request really is malformed
 *  (BadRequest/OutOfRange/UnknownArchive/ProtocolError/
 *  VersionMismatch), or the caller's own deadline/cancel fired
 *  (Expired/Cancelled). */
bool wireStatusRetryable(WireStatus status);

/** StatusCode → WireStatus (decode failures cross losslessly). */
WireStatus wireStatusFromStatus(const Status &status);

/** RequestStatus (+ its Error detail) → WireStatus. */
WireStatus wireStatusFromRequest(RequestStatus status,
                                 const Status &error);

/** WireStatus → local Status, for clients surfacing a reply as a
 *  StatusOr failure (Ok maps to Ok; QoS/admission statuses map to
 *  Exhausted with the wire-status name in the message). */
Status statusFromWire(WireStatus status, const std::string &message);

/** A parsed request frame (fields beyond the ones the type uses are
 *  left at their defaults). */
struct RequestFrame
{
    MsgType type = MsgType::Open;
    RequestPriority priority = RequestPriority::Normal;
    uint64_t requestId = 0;
    uint32_t deadlineMs = 0;

    std::string name;      ///< OPEN
    uint32_t archive = 0;  ///< READ_*/STAT/CLOSE
    uint64_t first = 0;    ///< READ_RANGE
    uint64_t count = 0;    ///< READ_RANGE
    uint64_t chunk = 0;    ///< READ_CHUNK
};

/** A parsed reply header (payload follows at kReplyHeaderBytes). */
struct ReplyHeader
{
    MsgType type = MsgType::Open;  ///< Request type, flag stripped.
    WireStatus status = WireStatus::Ok;
    uint64_t requestId = 0;
};

/** OPEN's success payload (also reused by per-archive STAT). */
struct OpenReply
{
    uint32_t archive = 0;
    uint64_t readCount = 0;
    uint64_t chunkCount = 0;
};

/** Server-wide STAT payload (a wire-stable subset of the richer
 *  in-process MultiArchiveStats). */
struct WireServerStats
{
    uint32_t openArchives = 0;
    uint32_t knownArchives = 0;
    uint64_t opens = 0;
    uint64_t reopens = 0;
    uint64_t evictions = 0;
    uint64_t admitted = 0;
    uint64_t overloaded = 0;
    uint64_t readsServed = 0;
    uint64_t bytesServed = 0;
    uint64_t cacheBytesReserved = 0;
    uint64_t cacheBudgetBytes = 0;
    uint64_t queueDepth = 0;
};

// ---- encoding: each append* emits one complete frame ----------------

void appendOpenRequest(std::vector<uint8_t> &out, uint64_t request_id,
                       const std::string &name,
                       RequestPriority priority, uint32_t deadline_ms);

void appendReadRangeRequest(std::vector<uint8_t> &out,
                            uint64_t request_id, uint32_t archive,
                            uint64_t first, uint64_t count,
                            RequestPriority priority,
                            uint32_t deadline_ms);

void appendReadChunkRequest(std::vector<uint8_t> &out,
                            uint64_t request_id, uint32_t archive,
                            uint64_t chunk, RequestPriority priority,
                            uint32_t deadline_ms);

void appendStatRequest(std::vector<uint8_t> &out, uint64_t request_id,
                       uint32_t archive);

void appendCloseRequest(std::vector<uint8_t> &out, uint64_t request_id,
                        uint32_t archive);

void appendErrorReply(std::vector<uint8_t> &out, MsgType request_type,
                      uint64_t request_id, WireStatus status,
                      const std::string &message);

/** Error reply in the version-1 frame shape (version byte 0, no
 *  trailing CRC), so a v1 peer that just got VersionMismatch can
 *  still parse the rejection it is being sent. */
void appendLegacyErrorReply(std::vector<uint8_t> &out,
                            MsgType request_type, uint64_t request_id,
                            WireStatus status,
                            const std::string &message);

void appendOpenReply(std::vector<uint8_t> &out, uint64_t request_id,
                     MsgType request_type, const OpenReply &reply);

void appendReadReply(std::vector<uint8_t> &out, MsgType request_type,
                     uint64_t request_id,
                     const std::vector<Read> &reads);

void appendStatReply(std::vector<uint8_t> &out, uint64_t request_id,
                     const WireServerStats &stats);

void appendCloseReply(std::vector<uint8_t> &out, uint64_t request_id);

// ---- parsing: @p frame/@p payload exclude the u32 length prefix ----

/** Outcome of verifyFrame(): integrity of a whole received frame. */
enum class FrameVerdict : uint8_t {
    Ok = 0,           ///< Version and CRC check out; parse the body.
    TooShort = 1,     ///< Too small to even carry version + CRC.
    VersionMismatch = 2,  ///< Peer wrote a different version byte.
    CrcMismatch = 3,  ///< Bits flipped between the endpoints.
};

const char *frameVerdictName(FrameVerdict verdict);

/** Check a received frame's version byte and trailing CRC-32 before
 *  parsing. On Ok, @p body_size is set to @p size minus the CRC — the
 *  byte count to hand to parseRequestFrame()/parseReplyHeader().
 *  Version is checked before the CRC so a v1 peer (version byte 0,
 *  no CRC at all) is reported as VersionMismatch, not corruption. */
FrameVerdict verifyFrame(const uint8_t *frame, size_t size,
                         size_t *body_size);

/** Corrupt/Truncated on malformed frames (never throws/aborts on
 *  attacker-controlled bytes). */
StatusOr<RequestFrame> parseRequestFrame(const uint8_t *frame,
                                         size_t size);

StatusOr<ReplyHeader> parseReplyHeader(const uint8_t *frame,
                                       size_t size);

StatusOr<OpenReply> parseOpenReplyPayload(const uint8_t *payload,
                                          size_t size);

StatusOr<std::vector<Read>>
parseReadReplyPayload(const uint8_t *payload, size_t size);

StatusOr<WireServerStats>
parseStatReplyPayload(const uint8_t *payload, size_t size);

/** Error replies carry u16 msgLen + message. */
StatusOr<std::string> parseErrorMessage(const uint8_t *payload,
                                        size_t size);

} // namespace net
} // namespace sage

#endif // SAGE_NET_PROTOCOL_HH
