#include "net/resilient_client.hh"

#include <algorithm>
#include <chrono>
#include <thread>

namespace sage {
namespace net {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Transport-level Status codes a reconnect can cure. Corrupt is
 *  deliberately absent: the client only reports it for a protocol
 *  version mismatch (terminal) — wire damage already surfaces as
 *  IoError there. */
bool
transportRetryable(const Status &status)
{
    return status.code() == StatusCode::IoError ||
           status.code() == StatusCode::Truncated;
}

} // namespace

ResilientClient::ResilientClient(std::string host, uint16_t port,
                                 ResilientClientOptions options)
    : host_(std::move(host)), port_(port), options_(options)
{}

double
ResilientClient::uniform01()
{
    const uint64_t bits =
        splitmix64(options_.retry.seed ^
                   (0xd1342543de82ef95ull * ++rngCounter_));
    return static_cast<double>(bits >> 11) *
           (1.0 / 9007199254740992.0);  // 2^-53
}

bool
ResilientClient::backoff(double remaining_seconds)
{
    if (remaining_seconds <= 0.0)
        return false;
    const RetryPolicy &policy = options_.retry;
    // Decorrelated jitter: sleep ~ U[base, 3 * previous], capped.
    const double lo = policy.baseBackoffSeconds;
    const double hi =
        std::max(lo, 3.0 * (prevSleepSeconds_ > 0.0
                                ? prevSleepSeconds_
                                : policy.baseBackoffSeconds));
    double sleep = lo + (hi - lo) * uniform01();
    sleep = std::min(sleep, policy.maxBackoffSeconds);
    sleep = std::min(sleep, remaining_seconds);
    prevSleepSeconds_ = sleep;
    if (sleep > 0.0) {
        stats_.backoffSeconds += sleep;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep));
    }
    return true;
}

Status
ResilientClient::ensureConnected(uint32_t archive)
{
    if (client_ != nullptr && client_->broken())
        client_.reset();
    const bool fresh = client_ == nullptr;
    if (fresh) {
        auto connected =
            Client::connect(host_, port_, options_.client);
        if (!connected.ok())
            return connected.status();
        client_ = std::move(connected.value());
        if (stats_.connects > 0)
            stats_.reconnects++;
        stats_.connects++;
    }
    if (!fresh || archive == 0)
        return Status();
    // A fresh connection: re-OPEN the archive this call addresses so
    // its id stays valid. Ids are stable per name on one server, so
    // a changed id means we reconnected to something else entirely.
    auto named = openedNames_.find(archive);
    if (named == openedNames_.end())
        return Status();
    auto reopened = client_->open(named->second);
    if (!reopened.ok())
        return reopened.status();
    if (reopened->archive != archive)
        return Status::corrupt(
            "archive \"", named->second, "\" changed id across a "
            "reconnect (", archive, " -> ", reopened->archive,
            "); refusing to read from a different server");
    return Status();
}

StatusOr<ReadReply>
ResilientClient::retryRead(
    uint32_t archive, uint32_t deadline_ms,
    const std::function<StatusOr<ReadReply>(Client &, uint32_t)>
        &attempt)
{
    const RetryPolicy &policy = options_.retry;
    const double budget_seconds =
        deadline_ms != 0 ? deadline_ms / 1000.0
                         : policy.callTimeoutSeconds;
    const Clock::time_point start = Clock::now();
    const bool bounded = budget_seconds > 0.0;

    Status last_error;
    StatusOr<ReadReply> last_reply = Status::exhausted("never ran");
    bool have_reply = false;
    for (unsigned tries = 0;
         tries < std::max(policy.maxAttempts, 1u); tries++) {
        double remaining = 0.0;
        uint32_t remaining_ms = deadline_ms;
        if (bounded) {
            const double elapsed =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            remaining = budget_seconds - elapsed;
            if (remaining <= 0.0)
                break;
            if (deadline_ms != 0)
                remaining_ms = static_cast<uint32_t>(std::max(
                    1.0, remaining * 1000.0));
        }
        if (tries > 0) {
            stats_.retries++;
            if (!backoff(bounded ? remaining : 1e9))
                break;
        }

        Status conn = ensureConnected(archive);
        if (!conn.ok()) {
            last_error = conn;
            have_reply = false;
            stats_.transportRetries++;
            continue;
        }
        StatusOr<ReadReply> reply = attempt(*client_, remaining_ms);
        if (!reply.ok()) {
            if (!transportRetryable(reply.status()))
                return reply.status();  // Terminal (e.g. version).
            last_error = reply.status();
            have_reply = false;
            stats_.transportRetries++;
            client_.reset();  // Stream is desynced; reconnect.
            continue;
        }
        if (reply->status == WireStatus::ProtocolError) {
            // The server rejected our frame's integrity (and closes
            // the connection right after): the request was damaged
            // in transit, so the stream is untrustworthy. Reads are
            // idempotent — reconnect and retry. A genuine protocol
            // bug just re-fails and surfaces once attempts run out.
            last_reply = std::move(reply);
            have_reply = true;
            stats_.transportRetries++;
            client_.reset();
            continue;
        }
        if (!wireStatusRetryable(reply->status))
            return reply;  // Ok, or a terminal in-band outcome.
        last_reply = std::move(reply);
        have_reply = true;
        stats_.overloadedRetries++;
        if (last_reply.value().status == WireStatus::ShuttingDown) {
            // This server is draining; a retry only helps on a new
            // connection (in production: a different replica).
            client_.reset();
        }
    }
    // Budget or attempts exhausted: surface the last honest outcome.
    if (have_reply)
        return last_reply;
    if (!last_error.ok())
        return Status::ioError(
            "retries exhausted; last transport error: ",
            last_error.toString());
    return Status::exhausted("retry budget exhausted before any "
                             "attempt completed");
}

StatusOr<OpenReply>
ResilientClient::open(const std::string &name)
{
    const RetryPolicy &policy = options_.retry;
    const double budget_seconds = policy.callTimeoutSeconds;
    const Clock::time_point start = Clock::now();
    const bool bounded = budget_seconds > 0.0;

    Status last_error = Status::exhausted("never ran");
    for (unsigned tries = 0;
         tries < std::max(policy.maxAttempts, 1u); tries++) {
        double remaining = 1e9;
        if (bounded) {
            const double elapsed =
                std::chrono::duration<double>(Clock::now() - start)
                    .count();
            remaining = budget_seconds - elapsed;
            if (remaining <= 0.0)
                break;
        }
        if (tries > 0) {
            stats_.retries++;
            if (!backoff(remaining))
                break;
        }
        Status conn = ensureConnected(0);
        if (!conn.ok()) {
            last_error = conn;
            stats_.transportRetries++;
            continue;
        }
        auto reply = client_->open(name);
        if (reply.ok()) {
            openedNames_[reply->archive] = name;
            return reply;
        }
        last_error = reply.status();
        if (transportRetryable(last_error)) {
            stats_.transportRetries++;
            client_.reset();
            continue;
        }
        // In-band outcomes cross as Exhausted ("Overloaded: ...",
        // "ShuttingDown: ...") — retryable on a live connection.
        if (last_error.code() == StatusCode::Exhausted) {
            stats_.overloadedRetries++;
            continue;
        }
        return last_error;  // Terminal: unknown archive, corrupt...
    }
    return last_error;
}

StatusOr<ReadReply>
ResilientClient::readRange(uint32_t archive, uint64_t first,
                           uint64_t count, RequestPriority priority,
                           uint32_t deadline_ms)
{
    return retryRead(
        archive, deadline_ms,
        [&](Client &client, uint32_t remaining_ms) {
            return client.readRange(archive, first, count, priority,
                                    remaining_ms);
        });
}

StatusOr<ReadReply>
ResilientClient::readChunk(uint32_t archive, uint64_t chunk,
                           RequestPriority priority,
                           uint32_t deadline_ms)
{
    return retryRead(
        archive, deadline_ms,
        [&](Client &client, uint32_t remaining_ms) {
            return client.readChunk(archive, chunk, priority,
                                    remaining_ms);
        });
}

StatusOr<WireServerStats>
ResilientClient::statServer()
{
    const RetryPolicy &policy = options_.retry;
    Status last_error = Status::exhausted("never ran");
    for (unsigned tries = 0;
         tries < std::max(policy.maxAttempts, 1u); tries++) {
        if (tries > 0) {
            stats_.retries++;
            if (!backoff(policy.callTimeoutSeconds > 0.0
                             ? policy.callTimeoutSeconds
                             : 1e9))
                break;
        }
        Status conn = ensureConnected(0);
        if (!conn.ok()) {
            last_error = conn;
            stats_.transportRetries++;
            continue;
        }
        auto reply = client_->statServer();
        if (reply.ok())
            return reply;
        last_error = reply.status();
        if (!transportRetryable(last_error))
            return last_error;
        stats_.transportRetries++;
        client_.reset();
    }
    return last_error;
}

Status
ResilientClient::closeArchive(uint32_t archive)
{
    openedNames_.erase(archive);
    if (client_ == nullptr || client_->broken())
        return Status();  // Nothing open on the server side to drop.
    return client_->closeArchive(archive);
}

} // namespace net
} // namespace sage
