/**
 * @file
 * Deterministic fault-injecting TCP proxy for resilience tests.
 *
 * ChaosProxy sits between a client and a Server, forwarding bytes in
 * both directions while injecting the transport failures the
 * resilience layer must survive: hard connection resets (SO_LINGER-0
 * closes, so peers see ECONNRESET rather than a clean EOF), byte
 * corruption (one flipped bit per afflicted buffer — exactly what the
 * frame CRC exists to catch), stalls (a buffer held for stallMs,
 * exercising client I/O timeouts and the server's header-read
 * timeout), and splits (a buffer forwarded in two separately flushed
 * pieces, forcing partial-frame reads at the peer).
 *
 * Every decision comes from a splitmix64 sequence seeded by
 * ChaosConfig::seed — the FaultInjectionSource convention — so a
 * failing chaos run replays byte-identically. Rates are per forwarded
 * buffer, evaluated in the fixed order reset, corrupt, stall, split
 * (at most one fires per buffer). One event thread owns every socket;
 * stats() is readable from any thread.
 */

#ifndef SAGE_NET_CHAOS_PROXY_HH
#define SAGE_NET_CHAOS_PROXY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.hh"

namespace sage {
namespace net {

struct ChaosConfig
{
    /** Seed of the deterministic decision sequence. */
    uint64_t seed = 1;

    /** Probability per forwarded buffer, evaluated in this order;
     *  the first that fires wins. All default to "no chaos". */
    double resetRate = 0.0;    ///< Force-close both sides (RST).
    double corruptRate = 0.0;  ///< Flip one bit of the buffer.
    double stallRate = 0.0;    ///< Hold the buffer for stallMs.
    double splitRate = 0.0;    ///< Forward in two separate flushes.

    /** How long a stalled buffer is held. */
    uint32_t stallMs = 200;
};

struct ChaosProxyStats
{
    uint64_t connections = 0;  ///< Client connections accepted.
    uint64_t buffers = 0;      ///< Buffers forwarded (both ways).
    uint64_t bytes = 0;        ///< Payload bytes forwarded.
    uint64_t resets = 0;
    uint64_t corrupted = 0;
    uint64_t stalls = 0;
    uint64_t splits = 0;
};

class ChaosProxy
{
  public:
    /** Proxy 127.0.0.1:port() -> @p upstream_host:@p upstream_port. */
    ChaosProxy(std::string upstream_host, uint16_t upstream_port,
               ChaosConfig config = {});

    /** stop()s if still running. */
    ~ChaosProxy();

    ChaosProxy(const ChaosProxy &) = delete;
    ChaosProxy &operator=(const ChaosProxy &) = delete;

    /** Bind an ephemeral listener + spawn the event thread. */
    Status start();

    /** Idempotent; joins the event thread and closes every socket. */
    void stop();

    /** Bound listen port (valid after start()). */
    uint16_t port() const { return port_; }

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    ChaosProxyStats stats() const;

  private:
    /** A buffer queued toward one side, possibly held until
     *  releaseMs on the proxy's monotonic clock. */
    struct Buffer
    {
        std::vector<uint8_t> bytes;
        size_t off = 0;
        uint64_t releaseMs = 0;  ///< 0 = ready immediately.
    };

    /** One direction of a proxied connection. */
    struct Pipe
    {
        int srcFd = -1;
        int dstFd = -1;
        std::deque<Buffer> queue;
        bool srcClosed = false;  ///< EOF seen; propagate when empty.
        bool shutdownSent = false;
    };

    struct Conn
    {
        uint64_t id = 0;
        int clientFd = -1;
        int upstreamFd = -1;
        Pipe clientToUpstream;
        Pipe upstreamToClient;
        bool dead = false;
    };

    void eventLoop();
    void acceptAll();
    /** Read from pipe.src, run the chaos decision, queue toward
     *  pipe.dst. Returns false when the connection must die. */
    bool pump(Conn &conn, Pipe &pipe);
    /** Flush ready buffers of @p pipe; propagate EOF when drained. */
    bool flush(Conn &conn, Pipe &pipe);
    void destroyConn(Conn &conn, bool hard_reset);
    uint64_t nowMs() const;
    double nextUniform();

    std::string upstreamHost_;
    uint16_t upstreamPort_;
    ChaosConfig config_;
    uint16_t port_ = 0;

    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::chrono::steady_clock::time_point epoch_;

    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
    /** fd -> owning connection id (both sides map here). */
    std::unordered_map<int, uint64_t> fdOwner_;
    uint64_t nextConnId_ = 2;
    uint64_t rngCounter_ = 0;

    std::atomic<uint64_t> connections_{0};
    std::atomic<uint64_t> buffers_{0};
    std::atomic<uint64_t> bytes_{0};
    std::atomic<uint64_t> resets_{0};
    std::atomic<uint64_t> corrupted_{0};
    std::atomic<uint64_t> stalls_{0};
    std::atomic<uint64_t> splits_{0};
};

} // namespace net
} // namespace sage

#endif // SAGE_NET_CHAOS_PROXY_HH
