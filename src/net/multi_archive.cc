#include "net/multi_archive.hh"

#include <algorithm>
#include <future>
#include <utility>

#include "io/fault_injection.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace sage {

MultiArchiveService::MultiArchiveService(std::string root,
                                         MultiArchiveOptions options)
    : options_(options), root_(std::move(root))
{
    options_.maxOpenArchives = std::max(1u, options_.maxOpenArchives);
    partitionBytes_ =
        options_.globalCacheBudgetBytes / options_.maxOpenArchives;
    if (options_.pool) {
        pool_ = options_.pool;
    } else {
        ownedPool_ =
            std::make_unique<ThreadPool>(options_.ownedPoolThreads);
        pool_ = ownedPool_.get();
    }
    while (!root_.empty() && root_.back() == '/')
        root_.pop_back();
}

MultiArchiveService::~MultiArchiveService()
{
    std::vector<std::shared_ptr<OpenArchive>> evicted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (auto &entry : entries_) {
            if (entry->open)
                retireLocked(*entry, evicted);
        }
    }
    // Destroy outside the lock. An archive with queued requests is
    // kept alive by their completion closures (shared ownership), so
    // this never blocks; idle archives tear down immediately.
    evicted.clear();
    // Wait for every admitted request's callback to finish before the
    // members (pool included) go away.
    std::unique_lock<std::mutex> lock(drainMutex_);
    drainCv_.wait(lock, [&] {
        return inflight_.load(std::memory_order_acquire) == 0;
    });
}

Status
MultiArchiveService::validateName(const std::string &name)
{
    if (name.empty() || name.size() > 4096)
        return Status::outOfRange("bad archive name length ",
                                  name.size());
    if (name.front() == '/')
        return Status::outOfRange("archive name must be relative: ",
                                  name);
    if (name.find('\0') != std::string::npos)
        return Status::outOfRange("archive name contains NUL");
    // Reject any dot-dot path component (plain "..", "../x", "x/..",
    // "a/../b").
    for (size_t at = 0; at < name.size();) {
        size_t end = name.find('/', at);
        if (end == std::string::npos)
            end = name.size();
        if (end - at == 2 && name[at] == '.' && name[at + 1] == '.')
            return Status::outOfRange(
                "archive name escapes the root: ", name);
        at = end + 1;
    }
    return Status();
}

MultiArchiveService::Entry *
MultiArchiveService::entryForLocked(uint32_t archive)
{
    if (archive >= entries_.size())
        return nullptr;
    return entries_[archive].get();
}

const MultiArchiveService::Entry *
MultiArchiveService::entryForLocked(uint32_t archive) const
{
    if (archive >= entries_.size())
        return nullptr;
    return entries_[archive].get();
}

void
MultiArchiveService::retireLocked(
    Entry &entry, std::vector<std::shared_ptr<OpenArchive>> &evicted)
{
    sage_assert(entry.open != nullptr, "retiring a closed archive");
    // Fold the archive's lifetime totals into the retired
    // accumulators so stats() stays monotonic across evictions.
    const ServiceStats stats = entry.open->service->stats();
    retiredRequests_ += stats.requests;
    retiredReads_ += stats.readsServed;
    retiredBytes_ += stats.bytesServed;
    retiredExpired_ += stats.expired;
    retiredCancelled_ += stats.cancelled;
    retiredErrored_ += stats.errored;
    evicted.push_back(std::move(entry.open));
    entry.open = nullptr;
    sage_assert(openCount_ > 0, "open-archive count underflow");
    openCount_--;
}

StatusOr<std::shared_ptr<MultiArchiveService::OpenArchive>>
MultiArchiveService::ensureOpenLocked(
    Entry &entry, std::vector<std::shared_ptr<OpenArchive>> &evicted)
{
    entry.lastUse = ++useTick_;
    if (entry.open)
        return entry.open;

    // Make room first so the new partition fits under the budget.
    while (openCount_ >= options_.maxOpenArchives) {
        Entry *coldest = nullptr;
        for (auto &candidate : entries_) {
            if (!candidate->open)
                continue;
            if (!coldest || candidate->lastUse < coldest->lastUse)
                coldest = candidate.get();
        }
        sage_assert(coldest != nullptr,
                    "open count positive but no open entry");
        retireLocked(*coldest, evicted);
        evictions_++;
    }

    auto file = FileSource::tryOpen(entry.path);
    if (!file.ok())
        return file.status();

    auto open = std::make_shared<OpenArchive>();
    open->file = std::move(file.value());
    const ByteSource *source = open->file.get();
    if (options_.faultRate > 0.0) {
        FaultConfig config;
        config.seed = options_.faultSeed + entry.id;
        config.ioErrorRate = options_.faultRate;
        open->fault = std::make_unique<FaultInjectionSource>(
            *open->file, config);
        // Disarmed while the container directory is parsed — setup
        // I/O must not trip the schedule (same idiom as serve-stress).
        open->fault->setArmed(false);
        source = open->fault.get();
    }

    auto decoder = SageDecoder::tryOpen(*source);
    if (!decoder.ok())
        return decoder.status();

    ServiceOptions service_options;
    service_options.cacheBudgetBytes = partitionBytes_;
    service_options.cacheShards = options_.cacheShards;
    service_options.pool = pool_;
    // No sessions exist server-side, and readahead warms capture a
    // raw service pointer — keep the per-archive service free of
    // self-referencing background work so lazy close stays safe.
    service_options.sessionReadahead = false;
    service_options.decodeRetries = options_.decodeRetries;
    open->service = std::make_unique<SageArchiveService>(
        std::move(decoder.value()), nullptr, service_options);
    if (open->fault)
        open->fault->setArmed(true);

    entry.readCount = open->service->readCount();
    entry.chunkCount = open->service->chunkCount();
    (entry.everOpened ? reopens_ : opens_)++;
    entry.everOpened = true;
    entry.open = std::move(open);
    openCount_++;
    return entry.open;
}

StatusOr<ArchiveMeta>
MultiArchiveService::open(const std::string &name)
{
    Status valid = validateName(name);
    if (!valid.ok())
        return valid;

    std::vector<std::shared_ptr<OpenArchive>> evicted;
    StatusOr<ArchiveMeta> result = Status::outOfRange("unreachable");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        uint32_t id;
        bool fresh = false;
        auto known = byName_.find(name);
        if (known != byName_.end()) {
            id = known->second;
        } else {
            id = static_cast<uint32_t>(entries_.size());
            auto entry = std::make_unique<Entry>();
            entry->name = name;
            entry->path = root_ + "/" + name;
            entry->id = id;
            entries_.push_back(std::move(entry));
            byName_.emplace(name, id);
            fresh = true;
        }
        Entry &entry = *entries_[id];
        auto opened = ensureOpenLocked(entry, evicted);
        if (!opened.ok()) {
            result = opened.status();
            // A name that never opened must not leak a registry
            // entry per hostile OPEN; fresh entries are always the
            // last index, so the id space stays dense.
            if (fresh) {
                byName_.erase(name);
                entries_.pop_back();
            }
        } else {
            ArchiveMeta meta;
            meta.id = entry.id;
            meta.readCount = entry.readCount;
            meta.chunkCount = entry.chunkCount;
            result = meta;
        }
    }
    // Evicted archives tear down here, outside the registry lock.
    return result;
}

StatusOr<ArchiveMeta>
MultiArchiveService::describe(uint32_t archive) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Entry *entry = entryForLocked(archive);
    if (!entry || !entry->everOpened)
        return Status::outOfRange("unknown archive id ", archive);
    ArchiveMeta meta;
    meta.id = entry->id;
    meta.readCount = entry->readCount;
    meta.chunkCount = entry->chunkCount;
    return meta;
}

Status
MultiArchiveService::closeArchive(uint32_t archive)
{
    std::vector<std::shared_ptr<OpenArchive>> evicted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry *entry = entryForLocked(archive);
        if (!entry || !entry->everOpened)
            return Status::outOfRange("unknown archive id ", archive);
        if (entry->open) {
            retireLocked(*entry, evicted);
            closes_++;
        }
    }
    return Status();
}

uint64_t
MultiArchiveService::queueDepthLocked() const
{
    uint64_t depth = 0;
    for (const auto &entry : entries_) {
        if (entry->open)
            depth += entry->open->service->queueDepth();
    }
    return depth;
}

uint64_t
MultiArchiveService::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queueDepthLocked();
}

void
MultiArchiveService::finishRequest()
{
    std::lock_guard<std::mutex> lock(drainMutex_);
    if (inflight_.fetch_sub(1, std::memory_order_acq_rel) == 1)
        drainCv_.notify_all();
}

Admission
MultiArchiveService::admitRange(uint32_t archive, uint64_t first,
                                uint64_t count,
                                const RequestOptions &options,
                                std::function<void(ReadResult)> done,
                                Status *reject, bool chunk_addressed,
                                uint64_t chunk)
{
    Status local;
    Status &why = reject ? *reject : local;

    std::shared_ptr<OpenArchive> open;
    std::vector<std::shared_ptr<OpenArchive>> evicted;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry *entry = entryForLocked(archive);
        if (!entry) {
            why = Status::outOfRange("unknown archive id ", archive);
            return Admission::UnknownArchive;
        }
        if (options_.admissionHighWater != 0 &&
            queueDepthLocked() >= options_.admissionHighWater) {
            overloaded_++;
            why = Status::exhausted(
                "queue depth at the admission high-water mark (",
                options_.admissionHighWater, ")");
            return Admission::Overloaded;
        }
        auto opened = ensureOpenLocked(*entry, evicted);
        if (!opened.ok()) {
            why = opened.status();
            return Admission::UnknownArchive;
        }
        open = opened.value();
        if (chunk_addressed) {
            if (chunk >= entry->chunkCount) {
                why = Status::outOfRange("chunk ", chunk,
                                         " out of range (archive has ",
                                         entry->chunkCount, ")");
                return Admission::BadRange;
            }
            first = open->service->chunkFirstRead(chunk);
            count = open->service->chunkReadCount(chunk);
        } else if (first > entry->readCount ||
                   count > entry->readCount - first) {
            why = Status::outOfRange(
                "span [", first, ", ", first + count,
                ") out of range (archive has ", entry->readCount,
                " reads)");
            return Admission::BadRange;
        }
        admitted_++;
    }
    evicted.clear();

    inflight_.fetch_add(1, std::memory_order_acq_rel);
    // The closure's shared_ptr keeps the archive (service, cache,
    // file) alive across eviction until this request completes.
    open->service->readRangeCallback(
        first, count,
        [this, open, done = std::move(done)](ReadResult result) {
            done(std::move(result));
            finishRequest();
        },
        options);
    return Admission::Admitted;
}

Admission
MultiArchiveService::readRange(uint32_t archive, uint64_t first,
                               uint64_t count,
                               const RequestOptions &options,
                               std::function<void(ReadResult)> done,
                               Status *reject)
{
    return admitRange(archive, first, count, options, std::move(done),
                      reject, /*chunk_addressed=*/false, 0);
}

Admission
MultiArchiveService::readChunk(uint32_t archive, uint64_t chunk,
                               const RequestOptions &options,
                               std::function<void(ReadResult)> done,
                               Status *reject)
{
    return admitRange(archive, 0, 0, options, std::move(done), reject,
                      /*chunk_addressed=*/true, chunk);
}

MultiArchiveService::SyncOutcome
MultiArchiveService::readRangeSync(uint32_t archive, uint64_t first,
                                   uint64_t count,
                                   const RequestOptions &options)
{
    SyncOutcome outcome;
    std::promise<ReadResult> promise;
    auto future = promise.get_future();
    outcome.admission = readRange(
        archive, first, count, options,
        [&promise](ReadResult result) {
            promise.set_value(std::move(result));
        },
        &outcome.reject);
    if (outcome.admission == Admission::Admitted)
        outcome.result = future.get();
    return outcome;
}

MultiArchiveService::SyncOutcome
MultiArchiveService::readChunkSync(uint32_t archive, uint64_t chunk,
                                   const RequestOptions &options)
{
    SyncOutcome outcome;
    std::promise<ReadResult> promise;
    auto future = promise.get_future();
    outcome.admission = readChunk(
        archive, chunk, options,
        [&promise](ReadResult result) {
            promise.set_value(std::move(result));
        },
        &outcome.reject);
    if (outcome.admission == Admission::Admitted)
        outcome.result = future.get();
    return outcome;
}

MultiArchiveStats
MultiArchiveService::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MultiArchiveStats out;
    out.opens = opens_;
    out.reopens = reopens_;
    out.evictions = evictions_;
    out.closes = closes_;
    out.admitted = admitted_;
    out.overloaded = overloaded_;
    out.openArchives = openCount_;
    out.knownArchives = static_cast<uint32_t>(entries_.size());
    out.partitionBytes = partitionBytes_;
    out.cacheBudgetBytes =
        partitionBytes_ * uint64_t(options_.maxOpenArchives);
    out.requests = retiredRequests_;
    out.readsServed = retiredReads_;
    out.bytesServed = retiredBytes_;
    out.expired = retiredExpired_;
    out.cancelled = retiredCancelled_;
    out.errored = retiredErrored_;
    for (const auto &entry : entries_) {
        if (!entry->open)
            continue;
        const ServiceStats stats = entry->open->service->stats();
        out.cacheBytesReserved += stats.cache.residentBytes;
        out.queueDepth += stats.queueDepth;
        out.requests += stats.requests;
        out.readsServed += stats.readsServed;
        out.bytesServed += stats.bytesServed;
        out.expired += stats.expired;
        out.cancelled += stats.cancelled;
        out.errored += stats.errored;
    }
    return out;
}

} // namespace sage
