/**
 * @file
 * Non-blocking epoll front end over a MultiArchiveService.
 *
 * One event thread owns a listener plus per-connection state
 * machines, all registered edge-triggered: readable connections are
 * drained to EAGAIN into a per-connection receive buffer, complete
 * frames are parsed (net/protocol.hh) and dispatched, and replies are
 * written straight away with the remainder queued and flushed on
 * EPOLLOUT. Cheap requests (OPEN/STAT/CLOSE) are answered inline on
 * the event thread; READ_RANGE/READ_CHUNK go through the service's
 * admission control and complete on worker threads, which serialize
 * the reply and hand it back to the loop through a completion queue
 * plus eventfd wake — the event thread alone touches sockets.
 *
 * Backpressure is byte-counted per connection: once the queued
 * transmit backlog crosses txHighWaterBytes the connection's request
 * parsing pauses (a slow reader cannot balloon the process) and its
 * receive buffer is capped; both resume when the backlog drains below
 * half the mark. Admission-control sheds arrive as Overloaded error
 * replies, not dropped connections, so a flooding client sees every
 * outcome explicitly.
 *
 * Connection hygiene runs off a timer wheel (timer_wheel.hh) ticked
 * by a bounded epoll_wait: a connection idle past idleTimeoutSeconds
 * (nothing received, nothing owed to it) is closed, and a partial
 * frame older than headerReadTimeoutSeconds — the slow-loris drip —
 * closes the connection too. Accepts past maxConnections are shed
 * with a best-effort Overloaded reply and an immediate close, never a
 * silent accept-stall. Every received frame is integrity-checked
 * (version byte + CRC-32, net/protocol.hh) before parsing: wire
 * damage is a ProtocolError + close, and a version-1 peer gets a
 * VersionMismatch error in the v1 shape it can still parse.
 *
 * Graceful drain: beginDrain() (any thread; SIGTERM-safe via an
 * atomic flag) stops accepting, answers new requests with
 * WireStatus::ShuttingDown, and flushes every in-flight reply; the
 * loop exits when the last connection retires or when
 * drainDeadlineSeconds passes, whichever is first. At the deadline
 * the server cancels still-queued service work through a CancelToken
 * attached to every admitted request, so a deep backlog cannot hold
 * shutdown hostage. drainWait() blocks for that outcome and then
 * stop()s.
 *
 * Lifetime: stop() (or the destructor) wakes and joins the event
 * thread, then waits for in-flight worker completions before closing
 * descriptors. The Server must be destroyed before its
 * MultiArchiveService.
 */

#ifndef SAGE_NET_SERVER_HH
#define SAGE_NET_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/multi_archive.hh"
#include "net/protocol.hh"
#include "net/timer_wheel.hh"
#include "service/qos.hh"

namespace sage {
namespace net {

struct ServerOptions
{
    std::string bindAddress = "127.0.0.1";
    uint16_t port = 0;  ///< 0 = ephemeral; see Server::port().
    int backlog = 128;
    unsigned maxConnections = 1024;

    /** Frames larger than this are a protocol error (requests are
     *  tiny; this bounds a hostile length prefix). */
    uint32_t maxRequestFrameBytes = 64 * 1024;

    /** READ_RANGE count ceiling (one reply frame must hold it). */
    uint64_t maxReadsPerRequest = 1u << 20;

    /** Per-connection queued-transmit cap before request parsing
     *  pauses; resumes below half of it. */
    uint64_t txHighWaterBytes = 8ull << 20;

    /** Close a connection that has received nothing and is owed
     *  nothing (no queued reply, no in-flight request, no partial
     *  frame) for this long. 0 disables. */
    double idleTimeoutSeconds = 300.0;

    /** Close a connection whose current frame has been arriving for
     *  this long without completing (slow-loris drip). 0 disables. */
    double headerReadTimeoutSeconds = 10.0;

    /** beginDrain(): how long in-flight work may take to flush before
     *  the server cancels the remainder and exits anyway. */
    double drainDeadlineSeconds = 5.0;
};

/** Socket-level counters (service-level ones live in
 *  MultiArchiveStats). */
struct ServerNetStats
{
    uint64_t accepted = 0;
    uint64_t closed = 0;
    uint64_t activeConnections = 0;
    uint64_t framesIn = 0;
    uint64_t repliesOut = 0;
    uint64_t protocolErrors = 0;
    uint64_t bytesIn = 0;
    uint64_t bytesOut = 0;
    uint64_t txPauses = 0;  ///< Backpressure engagements.
    uint64_t timedOutConnections = 0;  ///< Idle/header-timeout closes.
    uint64_t shedConnections = 0;  ///< Closed at the connection cap.
    uint64_t crcMismatches = 0;    ///< Frames failing the CRC check.
    uint64_t versionMismatches = 0;  ///< Frames from non-v2 peers.
    uint64_t drainRejects = 0;     ///< ShuttingDown replies sent.
};

class Server
{
  public:
    /** @p service must outlive the server. */
    explicit Server(MultiArchiveService &service,
                    ServerOptions options = {});

    /** stop()s if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + spawn the event thread. IoError (with errno
     *  text) on failure; safe to destroy afterwards either way. */
    Status start();

    /** Idempotent; joins the event thread and drains completions. */
    void stop();

    /** Start a graceful drain: stop accepting, answer new requests
     *  with ShuttingDown, flush in-flight replies, exit the loop
     *  within options.drainDeadlineSeconds. Callable from any thread
     *  and from a signal-handler-adjacent context (it only touches
     *  atomics and the wake eventfd). Idempotent. */
    void beginDrain();

    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    /** Block until the drain finishes (or the deadline forces it),
     *  then stop(). Returns true when every connection retired with
     *  all replies flushed before the deadline. */
    bool drainWait();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /** Bound port (the ephemeral one when options.port was 0). */
    uint16_t port() const { return port_; }

    ServerNetStats netStats() const;

  private:
    struct Conn
    {
        uint64_t id = 0;
        int fd = -1;
        std::vector<uint8_t> rx;  ///< Raw inbound bytes.
        size_t rxOff = 0;         ///< Parse cursor into rx.
        std::deque<std::vector<uint8_t>> tx;
        size_t txOff = 0;         ///< Sent bytes of tx.front().
        uint64_t txBytes = 0;     ///< Queued, unsent reply bytes.
        uint32_t inFlight = 0;    ///< Admitted reads awaiting replies.
        bool paused = false;      ///< Backpressure: stop parsing.
        bool rxStalled = false;   ///< Stopped recv()ing while paused.
        bool closeAfterFlush = false;
        bool dead = false;
        uint64_t lastRxMs = 0;    ///< Loop clock of last inbound byte.
        bool partialFrame = false;  ///< An incomplete frame pends.
        uint64_t frameStartMs = 0;  ///< When that frame began.
    };

    /** A worker-serialized reply bound for a connection. */
    struct Completion
    {
        uint64_t connId = 0;
        std::vector<uint8_t> frame;
    };

    void eventLoop();
    void acceptAll();
    void wakeLoop();
    void drainWakeFd();
    void flushCompletions();
    void onReadable(Conn &conn);
    void processRx(Conn &conn);
    /** One parsed frame (bytes exclude the length prefix). */
    void handleFrame(Conn &conn, const uint8_t *frame, size_t size);
    void handleRead(Conn &conn, const RequestFrame &request);
    /** Queue @p frame and flush as far as the socket allows. */
    void queueReply(Conn &conn, std::vector<uint8_t> &&frame);
    void flushTx(Conn &conn);
    void closeConn(Conn &conn);
    /** Post a worker-built reply to the loop (any thread). */
    void pushCompletion(uint64_t conn_id,
                        std::vector<uint8_t> &&frame);

    /** Milliseconds on the loop's monotonic clock. */
    uint64_t loopNowMs() const;
    /** When the next hygiene check for @p conn is due; schedules it. */
    void scheduleConnCheck(Conn &conn);
    /** Run due timer-wheel entries: connection hygiene + the drain
     *  deadline. */
    void runTimers();
    /** Epoll-deregister, close and erase a dead connection. */
    void destroyConn(uint64_t conn_id);
    /** First drain pass: close the listener, retire idle conns. */
    void drainStart();
    /** During drain: retire @p conn once nothing is owed to it. */
    void maybeRetireDraining(Conn &conn);
    /** True when every connection retired and no work is pending. */
    bool drainComplete();

    MultiArchiveService &service_;
    ServerOptions options_;
    uint16_t port_ = 0;

    int listenFd_ = -1;
    int epollFd_ = -1;
    int wakeFd_ = -1;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    // Drain machinery. draining_ is the cross-thread request flag;
    // everything else is loop-thread state except the exit latch.
    std::atomic<bool> draining_{false};
    bool drainStarted_ = false;    ///< Loop thread acknowledged it.
    uint64_t drainDeadlineMs_ = 0;
    CancelSource drainCancel_;     ///< Fired at the drain deadline.
    std::atomic<bool> drainedCleanly_{false};
    std::mutex loopExitMutex_;
    std::condition_variable loopExitCv_;
    bool loopExited_ = false;

    // Loop-thread-only hygiene clock + timer wheel.
    std::chrono::steady_clock::time_point loopEpoch_;
    TimerWheel wheel_;
    std::vector<uint64_t> dueTimers_;  ///< Scratch for runTimers().

    std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
    uint64_t nextConnId_ = 2;  ///< 0/1 tag the listener/wake fds.

    std::mutex completionMutex_;
    std::vector<Completion> completions_;

    /** Worker callbacks still running (dtor barrier). */
    std::atomic<uint64_t> pendingCallbacks_{0};
    std::mutex callbackMutex_;
    std::condition_variable callbackCv_;

    // Counters are atomics: the loop thread writes, netStats() reads
    // from anywhere.
    std::atomic<uint64_t> accepted_{0};
    std::atomic<uint64_t> closed_{0};
    std::atomic<uint64_t> framesIn_{0};
    std::atomic<uint64_t> repliesOut_{0};
    std::atomic<uint64_t> protocolErrors_{0};
    std::atomic<uint64_t> bytesIn_{0};
    std::atomic<uint64_t> bytesOut_{0};
    std::atomic<uint64_t> txPauses_{0};
    std::atomic<uint64_t> timedOutConnections_{0};
    std::atomic<uint64_t> shedConnections_{0};
    std::atomic<uint64_t> crcMismatches_{0};
    std::atomic<uint64_t> versionMismatches_{0};
    std::atomic<uint64_t> drainRejects_{0};
};

} // namespace net
} // namespace sage

#endif // SAGE_NET_SERVER_HH
