/**
 * @file
 * MultiArchiveService: N SAGe archives behind one byte budget.
 *
 * The single-archive SageArchiveService (service/service.hh) solves
 * many-clients-one-archive; a repository server faces
 * many-clients-many-archives, where the open-archive set itself must
 * be managed. This layer owns a directory of `.sage` archives and
 * fronts them with:
 *
 *   - an open-archive LRU: at most maxOpenArchives archives are open
 *     (decoder + cache partition) at once; opening one more lazily
 *     closes the coldest. "Lazily" is structural — the registry drops
 *     its reference, but requests already admitted against the
 *     evicted archive hold shared ownership and drain normally; the
 *     decoder and its cache partition are destroyed when the last
 *     in-flight request completes. A later request against an evicted
 *     archive transparently reopens it (counted in stats().reopens)
 *     with the same archive id.
 *   - cache partitioning: the global decoded-chunk budget is split
 *     evenly across the open-archive slots, so an eviction returns
 *     its partition's bytes to the budget and a reopen reclaims them;
 *   - recoverable opens: a bad name, missing file, or corrupt archive
 *     produces a Status (and, upstream, an error reply), never a
 *     crash — this is the layer remote clients' OPEN frames land on;
 *   - admission control: when the summed scheduler queue depth across
 *     open archives reaches admissionHighWater, new read requests are
 *     shed as Admission::Overloaded before they are enqueued (the
 *     caller turns that into an Overloaded reply; the client retries
 *     with backoff). The depth probe is a relaxed atomic read per
 *     archive (SageArchiveService::queueDepth()), not a stats()
 *     snapshot, so admission costs no lock on the hot path.
 *
 * Thread safety: every public method is safe to call concurrently.
 * The registry lock covers name→id lookup, LRU bookkeeping and
 * open/evict; request execution happens outside it on the shared
 * worker pool.
 */

#ifndef SAGE_NET_MULTI_ARCHIVE_HH
#define SAGE_NET_MULTI_ARCHIVE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/service.hh"

namespace sage {

class FaultInjectionSource;

/** Multi-archive construction knobs. */
struct MultiArchiveOptions
{
    /** Decoded-chunk budget shared by every open archive; each of the
     *  maxOpenArchives slots gets an equal partition. */
    uint64_t globalCacheBudgetBytes = 256ull << 20;

    /** Open-archive LRU capacity (decoders + cache partitions held
     *  live at once). Minimum 1. */
    unsigned maxOpenArchives = 8;

    /** Cache shards per archive partition. */
    unsigned cacheShards = 8;

    /** Shed new read requests once the summed queue depth across open
     *  archives reaches this; 0 disables admission control. */
    uint64_t admissionHighWater = 0;

    /** Shared worker pool (must outlive the service); when null the
     *  service owns one of ownedPoolThreads workers. */
    ThreadPool *pool = nullptr;
    unsigned ownedPoolThreads = 0;

    /** Forwarded to each per-archive ServiceOptions. */
    unsigned decodeRetries = 2;

    /** Server-side fault injection on archive reads (sage_cli serve
     *  --fault-rate/--fault-seed): every opened archive's FileSource
     *  is wrapped in a FaultInjectionSource injecting I/O errors at
     *  this per-read probability. 0 disables. */
    double faultRate = 0.0;
    uint64_t faultSeed = 1;
};

/** What the registry decided about a read request. */
enum class Admission : uint8_t {
    Admitted,        ///< Enqueued; the callback will run exactly once.
    Overloaded,      ///< Shed by the high-water mark; retry later.
    UnknownArchive,  ///< No such archive id, or its (re)open failed.
    BadRange,        ///< Span/chunk outside the archive.
};

/** OPEN's view of an archive. */
struct ArchiveMeta
{
    uint32_t id = 0;
    uint64_t readCount = 0;
    uint64_t chunkCount = 0;
};

/** Registry-level counters plus sums over live archives. */
struct MultiArchiveStats
{
    uint64_t opens = 0;      ///< First-time archive opens.
    uint64_t reopens = 0;    ///< Transparent reopens after eviction.
    uint64_t evictions = 0;  ///< LRU closes (capacity pressure).
    uint64_t closes = 0;     ///< Explicit client closes.
    uint64_t admitted = 0;
    uint64_t overloaded = 0;

    uint32_t openArchives = 0;
    uint32_t knownArchives = 0;  ///< Names ever opened (id space).

    /** Sum of open partitions' resident cache bytes, their combined
     *  budget, and the per-slot partition size. */
    uint64_t cacheBytesReserved = 0;
    uint64_t cacheBudgetBytes = 0;
    uint64_t partitionBytes = 0;

    /** Summed scheduler queue depth across open archives. */
    uint64_t queueDepth = 0;

    /** Request/byte tallies summed over open archives plus the
     *  accumulated totals of every closed one. */
    uint64_t requests = 0;
    uint64_t readsServed = 0;
    uint64_t bytesServed = 0;
    uint64_t expired = 0;
    uint64_t cancelled = 0;
    uint64_t errored = 0;
};

/** A directory of archives served under one budget (see file docs). */
class MultiArchiveService
{
  public:
    /** Serve `<root>/<name>` for every OPEN name. Never fatal: the
     *  directory itself is probed lazily, per open. */
    explicit MultiArchiveService(std::string root,
                                 MultiArchiveOptions options = {});

    /** Drains in-flight requests (and their completion callbacks)
     *  before tearing down. */
    ~MultiArchiveService();

    MultiArchiveService(const MultiArchiveService &) = delete;
    MultiArchiveService &operator=(const MultiArchiveService &) =
        delete;

    /** Open (or re-touch) archive @p name. Ids are stable across
     *  eviction and reopen. */
    StatusOr<ArchiveMeta> open(const std::string &name);

    /** Metadata of an already-opened id. */
    StatusOr<ArchiveMeta> describe(uint32_t archive) const;

    /** Drop the registry's reference (in-flight requests drain; the
     *  id stays valid and a later request reopens). */
    Status closeArchive(uint32_t archive);

    /**
     * Admit-or-shed a range read. On Admitted, @p done runs exactly
     * once on a worker thread with the outcome; on any other verdict
     * @p done is never called and @p reject (when non-null) holds the
     * reason. @p done must not block on synchronous requests to this
     * service (it holds a pool worker).
     */
    Admission readRange(uint32_t archive, uint64_t first,
                        uint64_t count, const RequestOptions &options,
                        std::function<void(ReadResult)> done,
                        Status *reject = nullptr);

    /** Chunk flavor (translated to the chunk's read span). */
    Admission readChunk(uint32_t archive, uint64_t chunk,
                        const RequestOptions &options,
                        std::function<void(ReadResult)> done,
                        Status *reject = nullptr);

    /** Blocking conveniences for tests and in-process callers. */
    struct SyncOutcome
    {
        Admission admission = Admission::Admitted;
        Status reject;       ///< Why not Admitted.
        ReadResult result;   ///< Valid when Admitted.
    };
    SyncOutcome readRangeSync(uint32_t archive, uint64_t first,
                              uint64_t count,
                              const RequestOptions &options = {});
    SyncOutcome readChunkSync(uint32_t archive, uint64_t chunk,
                              const RequestOptions &options = {});

    /** Summed scheduler queue depth across open archives (relaxed
     *  reads under the registry lock). */
    uint64_t queueDepth() const;

    MultiArchiveStats stats() const;

    ThreadPool &pool() { return *pool_; }
    const std::string &root() const { return root_; }
    uint64_t partitionBytes() const { return partitionBytes_; }

  private:
    /** One open archive: the service plus the byte stack under it.
     *  shared_ptr-held so eviction is lazy (see file docs). Members
     *  destroy bottom-up: service (drains its queue) before the fault
     *  wrapper before the file. */
    struct OpenArchive
    {
        std::unique_ptr<FileSource> file;
        std::unique_ptr<FaultInjectionSource> fault;
        std::unique_ptr<SageArchiveService> service;
    };

    /** Registry entry; lives forever once a name is seen (ids are
     *  dense indices into entries_). */
    struct Entry
    {
        std::string name;
        std::string path;
        uint32_t id = 0;
        bool everOpened = false;
        uint64_t readCount = 0;
        uint64_t chunkCount = 0;
        uint64_t lastUse = 0;  ///< LRU tick of the last touch.
        std::shared_ptr<OpenArchive> open;  ///< Null when closed.
    };

    /** Reject path traversal and other hostile names. */
    static Status validateName(const std::string &name);

    Entry *entryForLocked(uint32_t archive);
    const Entry *entryForLocked(uint32_t archive) const;

    /** Ensure @p entry is open, evicting past the LRU cap first.
     *  Evicted archives are *moved* into @p evicted so the caller
     *  releases them outside the registry lock (their teardown can
     *  drain a request queue). */
    StatusOr<std::shared_ptr<OpenArchive>>
    ensureOpenLocked(Entry &entry,
                     std::vector<std::shared_ptr<OpenArchive>> &evicted);

    /** Fold @p entry's service counters into the retired totals and
     *  drop the registry reference (into @p evicted). */
    void retireLocked(Entry &entry,
                      std::vector<std::shared_ptr<OpenArchive>> &evicted);

    uint64_t queueDepthLocked() const;

    /** Admitted-request completion bookkeeping (dtor drain). */
    void finishRequest();

    /** Shared admit/enqueue tail of readRange/readChunk. */
    Admission admitRange(uint32_t archive, uint64_t first,
                         uint64_t count, const RequestOptions &options,
                         std::function<void(ReadResult)> done,
                         Status *reject, bool chunk_addressed,
                         uint64_t chunk);

    MultiArchiveOptions options_;
    std::string root_;
    uint64_t partitionBytes_ = 0;
    std::unique_ptr<ThreadPool> ownedPool_;
    ThreadPool *pool_ = nullptr;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Entry>> entries_;
    std::unordered_map<std::string, uint32_t> byName_;
    uint64_t useTick_ = 0;
    unsigned openCount_ = 0;

    // Registry counters (under mutex_).
    uint64_t opens_ = 0;
    uint64_t reopens_ = 0;
    uint64_t evictions_ = 0;
    uint64_t closes_ = 0;
    uint64_t admitted_ = 0;
    uint64_t overloaded_ = 0;

    // Accumulated totals of closed archives (under mutex_).
    uint64_t retiredRequests_ = 0;
    uint64_t retiredReads_ = 0;
    uint64_t retiredBytes_ = 0;
    uint64_t retiredExpired_ = 0;
    uint64_t retiredCancelled_ = 0;
    uint64_t retiredErrored_ = 0;

    // In-flight admitted requests; the destructor waits for zero so a
    // completion callback never touches a dead service.
    std::atomic<uint64_t> inflight_{0};
    mutable std::mutex drainMutex_;
    std::condition_variable drainCv_;
};

} // namespace sage

#endif // SAGE_NET_MULTI_ARCHIVE_HH
