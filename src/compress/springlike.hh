/**
 * @file
 * SpringLike: the repository's stand-in for Spring / NanoSpring, the
 * state-of-the-art software genomic compressors the paper baselines
 * against (§7: "(N)Spr").
 *
 * Architecture matches the class of tools the paper describes (§2.2):
 * consensus-based mismatch encoding with read reordering, followed by a
 * *backend general-purpose compression stage* (our gpzip) over the typed
 * streams. That backend stage is what gives these tools their ratio and
 * what makes their decompression heavyweight — table-driven entropy
 * decoding with large working sets — which is the property SAGe's
 * co-design removes.
 */

#ifndef SAGE_COMPRESS_SPRINGLIKE_HH
#define SAGE_COMPRESS_SPRINGLIKE_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "compress/gpzip.hh"
#include "compress/quality.hh"
#include "consensus/mapper.hh"
#include "genomics/read.hh"

namespace sage {

class ThreadPool;

namespace springlike {

/** Compressor configuration. */
struct Config
{
    MapperConfig mapper;
    gpzip::Config backend;
    QualityConfig quality;
    /** Store the original read order (costs ~2-4 B/read). */
    bool preserveOrder = false;
    /** Compress quality scores (NanoSpring-style tools drop them). */
    bool keepQuality = true;
};

/** Compression output plus the accounting the benches need. */
struct CompressResult
{
    std::vector<uint8_t> archive;
    /** Per-stream compressed sizes (bytes). */
    std::map<std::string, uint64_t> streamSizes;
    /** Wall-clock split: mapping ("finding mismatches") vs encoding. */
    double mapSeconds = 0.0;
    double encodeSeconds = 0.0;
    /** Compressed size of the DNA-only portion (consensus + mismatch). */
    uint64_t dnaBytes = 0;
    /** Compressed size of the quality portion. */
    uint64_t qualityBytes = 0;
};

/** Compress @p rs against @p consensus (stored inside the archive). */
CompressResult compress(const ReadSet &rs, std::string_view consensus,
                        const Config &config = {},
                        ThreadPool *pool = nullptr);

/** Decompression output plus working-set accounting (Table 3). */
struct DecompressResult
{
    ReadSet readSet;
    /** Peak bytes of decode-side structures (consensus + streams). */
    uint64_t workingSetBytes = 0;
    /**
     * Wall-clock share spent in the backend general-purpose decode
     * stage (entropy decoding). This is the share an idealized
     * BWT/backend accelerator removes in the paper's "(N)SprAC"
     * configuration (§7).
     */
    double backendSeconds = 0.0;
    /** Wall-clock share spent reconstructing reads from mismatches. */
    double reconstructSeconds = 0.0;
};

/** Decompress an archive produced by compress(). */
DecompressResult decompress(const std::vector<uint8_t> &archive,
                            ThreadPool *pool = nullptr);

} // namespace springlike
} // namespace sage

#endif // SAGE_COMPRESS_SPRINGLIKE_HH
