#include "compress/packbit.hh"

#include "util/bitio.hh"
#include "util/crc32.hh"
#include "util/logging.hh"
#include "util/varint.hh"

#include "genomics/alphabet.hh"

namespace sage {
namespace packbit {

namespace {

constexpr uint32_t kMagic = 0x31424b50; // "PKB1"
constexpr unsigned kMinRun = 3;
constexpr unsigned kMaxRun = kMinRun + 15;

/** Encode one read's bases into the bit stream. */
void
encodeBases(BitWriter &bw, const std::string &bases)
{
    size_t i = 0;
    while (i < bases.size()) {
        const char c = bases[i];
        const uint8_t code = baseToCode(c);
        if (code >= 4) {
            bw.writeBits(0b011, 3); // N marker (read LSB-first: 1,1,0).
            i++;
            continue;
        }
        // Count the run of equal bases.
        size_t run = 1;
        while (i + run < bases.size() && bases[i + run] == c &&
               run < kMaxRun) {
            run++;
        }
        if (run >= kMinRun) {
            bw.writeBit(true);
            bw.writeBit(false);
            bw.writeBits(code, 2);
            bw.writeBits(run - kMinRun, 4);
            i += run;
        } else {
            bw.writeBit(false);
            bw.writeBits(code, 2);
            i++;
        }
    }
}

/** Decode @p length bases from the bit stream. */
std::string
decodeBases(BitReader &br, uint64_t length)
{
    std::string out;
    out.reserve(length);
    while (out.size() < length) {
        if (!br.readBit()) {
            out.push_back(codeToBase(
                static_cast<uint8_t>(br.readBits(2))));
        } else if (!br.readBit()) {
            const char c = codeToBase(
                static_cast<uint8_t>(br.readBits(2)));
            const uint64_t run = kMinRun + br.readBits(4);
            out.append(run, c);
        } else {
            sage_assert(!br.readBit(), "bad packbit token");
            out.push_back('N');
        }
    }
    sage_assert(out.size() == length, "packbit length overrun");
    return out;
}

} // namespace

std::vector<uint8_t>
compress(const ReadSet &rs)
{
    std::vector<uint8_t> out;
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<uint8_t>(kMagic >> (8 * i)));
    putVarint(out, rs.reads.size());

    // Lengths, then the packed DNA stream, then raw quality/headers.
    for (const auto &read : rs.reads)
        putVarint(out, read.bases.size());

    BitWriter bw;
    for (const auto &read : rs.reads)
        encodeBases(bw, read.bases);
    const auto dna = bw.take();
    putVarint(out, dna.size());
    out.insert(out.end(), dna.begin(), dna.end());

    std::vector<uint8_t> tail;
    for (const auto &read : rs.reads) {
        putVarint(tail, read.quals.size());
        tail.insert(tail.end(), read.quals.begin(), read.quals.end());
        putVarint(tail, read.header.size());
        tail.insert(tail.end(), read.header.begin(), read.header.end());
    }
    putVarint(out, tail.size());
    out.insert(out.end(), tail.begin(), tail.end());

    const uint32_t crc = Crc32::of(out);
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<uint8_t>(crc >> (8 * i)));
    return out;
}

ReadSet
decompress(const std::vector<uint8_t> &archive)
{
    sage_assert(archive.size() >= 8, "packbit archive too small");
    const size_t body = archive.size() - 4;
    uint32_t crc = 0;
    for (int i = 0; i < 4; i++)
        crc |= static_cast<uint32_t>(archive[body + i]) << (8 * i);
    if (Crc32::of(archive.data(), body) != crc)
        sage_fatal("packbit CRC mismatch (corrupt archive)");

    size_t pos = 0;
    uint32_t magic = 0;
    for (int i = 0; i < 4; i++)
        magic |= static_cast<uint32_t>(archive[pos++]) << (8 * i);
    if (magic != kMagic)
        sage_fatal("not a packbit archive");

    ReadSet rs;
    const uint64_t num_reads = getVarint(archive, pos);
    std::vector<uint64_t> lengths(num_reads);
    for (auto &len : lengths)
        len = getVarint(archive, pos);

    const uint64_t dna_size = getVarint(archive, pos);
    BitReader br(archive.data() + pos, dna_size);
    pos += dna_size;

    rs.reads.resize(num_reads);
    for (uint64_t r = 0; r < num_reads; r++)
        rs.reads[r].bases = decodeBases(br, lengths[r]);

    const uint64_t tail_size = getVarint(archive, pos);
    const size_t tail_end = pos + tail_size;
    for (uint64_t r = 0; r < num_reads && pos < tail_end; r++) {
        const uint64_t qlen = getVarint(archive, pos);
        rs.reads[r].quals.assign(archive.begin() + pos,
                                 archive.begin() + pos + qlen);
        pos += qlen;
        const uint64_t hlen = getVarint(archive, pos);
        rs.reads[r].header.assign(archive.begin() + pos,
                                  archive.begin() + pos + hlen);
        pos += hlen;
    }
    return rs;
}

uint64_t
dnaBytes(const std::vector<uint8_t> &archive)
{
    size_t pos = 4;
    const uint64_t num_reads = getVarint(archive, pos);
    for (uint64_t r = 0; r < num_reads; r++)
        getVarint(archive, pos);
    return getVarint(archive, pos);
}

} // namespace packbit
} // namespace sage
