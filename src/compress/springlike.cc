#include "compress/springlike.hh"

#include <algorithm>

#include "compress/prep.hh"
#include "compress/streams.hh"
#include "genomics/alphabet.hh"
#include "util/bitio.hh"
#include "util/logging.hh"
#include "util/timing.hh"
#include "util/varint.hh"

namespace sage {
namespace springlike {

namespace {

/** Serialize a QualityArchive into raw bytes (already entropy-coded). */
std::vector<uint8_t>
packQuality(const QualityArchive &qa)
{
    std::vector<uint8_t> out;
    putVarint(out, qa.alphabet.size());
    out.insert(out.end(), qa.alphabet.begin(), qa.alphabet.end());
    putVarint(out, qa.readLengths.size());
    for (uint32_t len : qa.readLengths)
        putVarint(out, len);
    putVarint(out, qa.blocks.size());
    for (size_t b = 0; b < qa.blocks.size(); b++) {
        putVarint(out, qa.blockChars[b]);
        putVarint(out, qa.blocks[b].size());
        out.insert(out.end(), qa.blocks[b].begin(), qa.blocks[b].end());
    }
    return out;
}

QualityArchive
unpackQuality(const std::vector<uint8_t> &bytes)
{
    QualityArchive qa;
    size_t pos = 0;
    const uint64_t alpha_len = getVarint(bytes, pos);
    qa.alphabet.assign(bytes.begin() + pos, bytes.begin() + pos + alpha_len);
    pos += alpha_len;
    const uint64_t reads = getVarint(bytes, pos);
    qa.readLengths.reserve(reads);
    for (uint64_t i = 0; i < reads; i++)
        qa.readLengths.push_back(
            static_cast<uint32_t>(getVarint(bytes, pos)));
    const uint64_t blocks = getVarint(bytes, pos);
    for (uint64_t b = 0; b < blocks; b++) {
        qa.blockChars.push_back(getVarint(bytes, pos));
        const uint64_t size = getVarint(bytes, pos);
        sage_assert(pos + size <= bytes.size(), "quality pack truncated");
        qa.blocks.emplace_back(bytes.begin() + pos,
                               bytes.begin() + pos + size);
        pos += size;
    }
    return qa;
}

/** Per-read record flags. */
constexpr uint8_t kFlagEscaped = 1;
constexpr uint8_t kFlagReverse = 2;

} // namespace

CompressResult
compress(const ReadSet &rs, std::string_view consensus,
         const Config &config, ThreadPool *pool)
{
    CompressResult result;

    Stopwatch map_clock;
    const PreppedReads prep =
        prepareReads(rs, consensus, config.mapper, pool);
    result.mapSeconds = map_clock.seconds();

    Stopwatch encode_clock;

    // Raw (pre-backend) typed streams.
    std::vector<uint8_t> flags, readlen, matchpos, segs, mcount, mpos,
        mtype_bits, mlen, escape, headers, order;
    BitWriter mtype_writer, mbases_writer;

    uint64_t prev_primary = 0;
    for (uint32_t src : prep.order) {
        const Read &read = rs.reads[src];
        const ReadClass &cls = prep.classes[src];

        uint8_t flag = 0;
        if (cls.escape != EscapeReason::None)
            flag |= kFlagEscaped;
        if (cls.escape == EscapeReason::None && cls.mapping.reverse)
            flag |= kFlagReverse;
        flags.push_back(flag);
        putVarint(readlen, read.bases.size());

        if (cls.escape != EscapeReason::None) {
            // Escape payload: 3-bit packed raw bases (handles N).
            const auto packed =
                packSequence(read.bases, OutputFormat::ThreeBit);
            putVarint(escape, packed.size());
            escape.insert(escape.end(), packed.begin(), packed.end());
            continue;
        }

        // (Edits were extracted on the oriented read during prep; the
        // encode pass replays cls.mapping and never needs the oriented
        // bases themselves.)
        const uint64_t primary = cls.mapping.primaryPosition();
        putVarint(matchpos, primary - prev_primary); // Sorted: monotone.
        prev_primary = primary;

        putVarint(segs, cls.mapping.segments.size() - 1);
        uint64_t ops_total = 0;
        for (size_t s = 0; s < cls.mapping.segments.size(); s++) {
            const AlignedSegment &seg = cls.mapping.segments[s];
            if (s > 0) {
                putVarint(segs, zigzagEncode(
                    static_cast<int64_t>(seg.consensusPos)
                    - static_cast<int64_t>(primary)));
                putVarint(segs, seg.readLength);
            }
            ops_total += seg.ops.size();
        }
        putVarint(mcount, ops_total);

        for (const AlignedSegment &seg : cls.mapping.segments) {
            uint32_t prev_pos = 0;
            for (const EditOp &op : seg.ops) {
                putVarint(mpos, op.readPos - prev_pos);
                prev_pos = op.readPos;
                mtype_writer.writeBits(
                    static_cast<uint64_t>(op.type), 2);
                if (op.type != EditType::Sub)
                    putVarint(mlen, op.length);
                for (char c : op.bases) {
                    const uint8_t code = baseToCode(c);
                    sage_assert(code < 4, "N base escaped classification");
                    mbases_writer.writeBits(code, 2);
                }
            }
            // Segment boundary marker keeps per-segment op runs
            // self-delimiting: emit an op-count per segment instead.
        }
        // Per-segment op counts (after total) for reconstruction.
        for (const AlignedSegment &seg : cls.mapping.segments)
            putVarint(mcount, seg.ops.size());
    }

    for (uint32_t src : prep.order) {
        const std::string &h = rs.reads[src].header;
        headers.insert(headers.end(), h.begin(), h.end());
        headers.push_back('\n');
    }
    if (config.preserveOrder) {
        for (uint32_t src : prep.order)
            putVarint(order, src);
    }

    // Consensus: 2-bit packed (N-free by construction of our refs).
    std::vector<uint8_t> cons_packed;
    putVarint(cons_packed, consensus.size());
    {
        // Consensus may legally contain N; use 3-bit when needed.
        const bool acgt = isAcgtOnly(consensus);
        cons_packed.push_back(acgt ? 2 : 3);
        auto packed = packSequence(
            consensus, acgt ? OutputFormat::TwoBit
                            : OutputFormat::ThreeBit);
        cons_packed.insert(cons_packed.end(), packed.begin(),
                           packed.end());
    }

    // Backend general-purpose compression over every stream — the
    // expensive stage SAGe eliminates.
    StreamBundle bundle;
    auto pack = [&](const char *name, const std::vector<uint8_t> &raw) {
        bundle.stream(name) = gpzip::compress(raw.data(), raw.size(),
                                              config.backend, pool);
    };
    pack("consensus", cons_packed);
    pack("flags", flags);
    pack("readlen", readlen);
    pack("matchpos", matchpos);
    pack("segs", segs);
    pack("mcount", mcount);
    pack("mpos", mpos);
    {
        auto bits = mtype_writer.take();
        pack("mtype", bits);
        auto bases = mbases_writer.take();
        pack("mbases", bases);
    }
    pack("mlen", mlen);
    pack("escape", escape);
    pack("headers", headers);
    if (config.preserveOrder)
        pack("order", order);

    if (config.keepQuality && rs.hasQualityScores()) {
        std::vector<std::string> quals;
        quals.reserve(prep.order.size());
        for (uint32_t src : prep.order) {
            // Reverse-complemented reads keep their quality ordering
            // aligned with the *stored* orientation for simplicity;
            // orientation is undone on decode for bases only, so store
            // quality in original orientation.
            quals.push_back(rs.reads[src].quals);
        }
        bundle.stream("quality") = packQuality(
            compressQuality(quals, config.quality));
    }

    result.archive = bundle.serialize();
    result.streamSizes = bundle.sizes();
    result.encodeSeconds = encode_clock.seconds();
    for (const auto &[name, size] : result.streamSizes) {
        // Headers/order are metadata, not DNA — Table 2 reports DNA and
        // quality ratios separately.
        if (name == "quality")
            result.qualityBytes += size;
        else if (name != "headers" && name != "order")
            result.dnaBytes += size;
    }
    return result;
}

DecompressResult
decompress(const std::vector<uint8_t> &archive, ThreadPool *pool)
{
    DecompressResult result;
    StreamBundle bundle = StreamBundle::deserialize(archive);

    auto unpack = [&](const char *name) {
        Stopwatch backend_clock;
        auto out = gpzip::decompress(bundle.stream(name), pool);
        result.backendSeconds += backend_clock.seconds();
        return out;
    };
    Stopwatch total_clock;

    const auto cons_packed = unpack("consensus");
    std::string consensus;
    {
        size_t pos = 0;
        const uint64_t length = getVarint(cons_packed, pos);
        const uint8_t width = cons_packed[pos++];
        std::vector<uint8_t> body(cons_packed.begin() + pos,
                                  cons_packed.end());
        consensus = unpackSequence(
            body, length,
            width == 2 ? OutputFormat::TwoBit : OutputFormat::ThreeBit);
    }

    const auto flags = unpack("flags");
    const auto readlen = unpack("readlen");
    const auto matchpos = unpack("matchpos");
    const auto segs = unpack("segs");
    const auto mcount = unpack("mcount");
    const auto mpos = unpack("mpos");
    const auto mtype = unpack("mtype");
    const auto mbases = unpack("mbases");
    const auto mlen = unpack("mlen");
    const auto escape = unpack("escape");
    const auto headers = unpack("headers");

    std::vector<std::string> quals;
    if (bundle.has("quality"))
        quals = decompressQuality(unpackQuality(bundle.stream("quality")));

    result.workingSetBytes = consensus.size() + bundle.totalBytes()
        + flags.size() + readlen.size() + matchpos.size() + segs.size()
        + mcount.size() + mpos.size() + mtype.size() + mbases.size()
        + mlen.size() + escape.size() + headers.size();

    // Stream cursors.
    size_t p_readlen = 0, p_matchpos = 0, p_segs = 0, p_mcount = 0,
           p_mpos = 0, p_mlen = 0, p_escape = 0;
    BitReader type_reader(mtype);
    BitReader base_reader(mbases);
    size_t header_pos = 0;
    auto next_header = [&]() {
        size_t end = header_pos;
        while (end < headers.size() && headers[end] != '\n')
            end++;
        std::string h(headers.begin() + header_pos, headers.begin() + end);
        header_pos = end + 1;
        return h;
    };

    ReadSet rs;
    uint64_t prev_primary = 0;
    const size_t num_reads = flags.size();
    rs.reads.reserve(num_reads);

    for (size_t r = 0; r < num_reads; r++) {
        Read read;
        read.header = next_header();
        const uint8_t flag = flags[r];
        const uint64_t length = getVarint(readlen, p_readlen);

        if (flag & kFlagEscaped) {
            const uint64_t packed_size = getVarint(escape, p_escape);
            std::vector<uint8_t> packed(
                escape.begin() + p_escape,
                escape.begin() + p_escape + packed_size);
            p_escape += packed_size;
            read.bases = unpackSequence(packed, length,
                                        OutputFormat::ThreeBit);
        } else {
            const uint64_t primary =
                prev_primary + getVarint(matchpos, p_matchpos);
            prev_primary = primary;

            ReadMapping mapping;
            mapping.mapped = true;
            mapping.reverse = (flag & kFlagReverse) != 0;

            const uint64_t extra_segs = getVarint(segs, p_segs);
            std::vector<std::pair<uint64_t, uint32_t>> seg_info;
            seg_info.emplace_back(primary, 0); // Length fixed below.
            uint64_t other_len = 0;
            for (uint64_t s = 0; s < extra_segs; s++) {
                const int64_t delta =
                    zigzagDecode(getVarint(segs, p_segs));
                const uint32_t seg_len =
                    static_cast<uint32_t>(getVarint(segs, p_segs));
                seg_info.emplace_back(
                    static_cast<uint64_t>(
                        static_cast<int64_t>(primary) + delta),
                    seg_len);
                other_len += seg_len;
            }
            seg_info[0].second = static_cast<uint32_t>(length - other_len);

            const uint64_t ops_total = getVarint(mcount, p_mcount);
            std::vector<uint64_t> per_seg(seg_info.size());
            uint64_t check = 0;
            for (auto &n : per_seg) {
                n = getVarint(mcount, p_mcount);
                check += n;
            }
            sage_assert(check == ops_total, "op count mismatch");

            uint32_t read_cursor = 0;
            for (size_t s = 0; s < seg_info.size(); s++) {
                AlignedSegment seg;
                seg.consensusPos = seg_info[s].first;
                seg.readStart = read_cursor;
                seg.readLength = seg_info[s].second;
                read_cursor += seg.readLength;
                uint32_t prev_pos = 0;
                for (uint64_t o = 0; o < per_seg[s]; o++) {
                    EditOp op;
                    op.readPos = prev_pos
                        + static_cast<uint32_t>(getVarint(mpos, p_mpos));
                    prev_pos = op.readPos;
                    op.type = static_cast<EditType>(type_reader.readBits(2));
                    op.length = op.type == EditType::Sub
                        ? 1
                        : static_cast<uint32_t>(getVarint(mlen, p_mlen));
                    if (op.type != EditType::Del) {
                        const size_t count =
                            op.type == EditType::Sub ? 1 : op.length;
                        for (size_t b = 0; b < count; b++) {
                            op.bases.push_back(codeToBase(
                                static_cast<uint8_t>(
                                    base_reader.readBits(2))));
                        }
                    }
                    seg.ops.push_back(std::move(op));
                }
                mapping.segments.push_back(std::move(seg));
            }

            std::string oriented = reconstructRead(consensus, mapping);
            if (mapping.reverse)
                reverseComplementInPlace(oriented);
            read.bases = std::move(oriented);
        }

        if (!quals.empty())
            read.quals = quals[r];
        rs.reads.push_back(std::move(read));
    }

    // Optional original-order restoration.
    if (bundle.has("order")) {
        const auto order_raw = unpack("order");
        size_t p_order = 0;
        std::vector<Read> restored(rs.reads.size());
        for (auto &read : rs.reads) {
            const uint64_t src = getVarint(order_raw, p_order);
            sage_assert(src < restored.size(), "bad order index");
            restored[src] = std::move(read);
        }
        rs.reads = std::move(restored);
    }

    result.readSet = std::move(rs);
    result.reconstructSeconds =
        std::max(0.0, total_clock.seconds() - result.backendSeconds);
    return result;
}

} // namespace springlike
} // namespace sage
