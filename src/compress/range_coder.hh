/**
 * @file
 * Adaptive range (arithmetic) coder.
 *
 * Backend entropy stage for the quality-score codec and the SpringLike
 * baseline's high-ratio streams. This is deliberately the *kind* of coder
 * the paper contrasts SAGe against: decoding requires sequential,
 * model-state-dependent computation with table updates — efficient on a
 * host CPU, but ill-suited to the lightweight streaming hardware SAGe
 * targets (paper §3.2).
 */

#ifndef SAGE_COMPRESS_RANGE_CODER_HH
#define SAGE_COMPRESS_RANGE_CODER_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace sage {

/**
 * 32-bit range encoder with carry counting (LZMA-style low/cache
 * management, so carries propagate correctly into already-buffered
 * bytes).
 */
class RangeEncoder
{
  public:
    /** Encode a symbol given cumulative frequency [cumLow, cumHigh) of
     *  total @p total. */
    void
    encode(uint32_t cum_low, uint32_t cum_high, uint32_t total)
    {
        sage_assert(cum_low < cum_high && cum_high <= total,
                    "bad range coder interval");
        const uint32_t r = range_ / total;
        low_ += static_cast<uint64_t>(r) * cum_low;
        range_ = r * (cum_high - cum_low);
        while (range_ < (1u << 24)) {
            shiftLow();
            range_ <<= 8;
        }
    }

    /** Flush the encoder and return the byte stream. */
    std::vector<uint8_t>
    finish()
    {
        for (int i = 0; i < 5; i++)
            shiftLow();
        return std::move(bytes_);
    }

  private:
    void
    shiftLow()
    {
        if (static_cast<uint32_t>(low_) < 0xff000000u ||
            (low_ >> 32) != 0) {
            // Safe to flush: carry (if any) is applied to the cached
            // byte and any run of 0xff bytes behind it.
            uint8_t carry = static_cast<uint8_t>(low_ >> 32);
            bytes_.push_back(cache_ + carry);
            for (; pendingFf_ > 0; pendingFf_--)
                bytes_.push_back(static_cast<uint8_t>(0xff + carry));
            cache_ = static_cast<uint8_t>(low_ >> 24);
        } else {
            pendingFf_++;
        }
        low_ = (low_ << 8) & 0xffffffffULL;
    }

    std::vector<uint8_t> bytes_;
    uint64_t low_ = 0;
    uint32_t range_ = 0xffffffffu;
    uint8_t cache_ = 0;
    uint64_t pendingFf_ = 0;
    friend class RangeDecoder;
};

/** Matching decoder (subtraction form of the same coder). */
class RangeDecoder
{
  public:
    RangeDecoder(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
        // First byte is the encoder's initial zero cache; fold all five
        // init bytes through the 32-bit code register.
        for (int i = 0; i < 5; i++)
            code_ = (code_ << 8) | nextByte();
    }

    /** Current cumulative-frequency position for @p total. */
    uint32_t
    decodeFreq(uint32_t total)
    {
        r_ = range_ / total;
        const uint32_t f = code_ / r_;
        return f >= total ? total - 1 : f;
    }

    /** Commit to the symbol whose interval is [cumLow, cumHigh). */
    void
    decodeUpdate(uint32_t cum_low, uint32_t cum_high)
    {
        code_ -= r_ * cum_low;
        range_ = r_ * (cum_high - cum_low);
        while (range_ < (1u << 24)) {
            code_ = (code_ << 8) | nextByte();
            range_ <<= 8;
        }
    }

  private:
    uint8_t
    nextByte()
    {
        return pos_ < size_ ? data_[pos_++] : 0;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    uint32_t code_ = 0;
    uint32_t range_ = 0xffffffffu;
    uint32_t r_ = 0;
};

/**
 * Adaptive frequency model over a small alphabet with periodic halving.
 * Linear cumulative search is fine for alphabets <= 64 symbols.
 */
class AdaptiveModel
{
  public:
    explicit AdaptiveModel(unsigned symbols)
        : freq_(symbols, 1), total_(symbols)
    {}

    void
    encode(RangeEncoder &enc, unsigned symbol)
    {
        uint32_t cum = 0;
        for (unsigned s = 0; s < symbol; s++)
            cum += freq_[s];
        enc.encode(cum, cum + freq_[symbol], total_);
        bump(symbol);
    }

    unsigned
    decode(RangeDecoder &dec)
    {
        const uint32_t f = dec.decodeFreq(total_);
        uint32_t cum = 0;
        unsigned symbol = 0;
        while (cum + freq_[symbol] <= f)
            cum += freq_[symbol++];
        dec.decodeUpdate(cum, cum + freq_[symbol]);
        bump(symbol);
        return symbol;
    }

  private:
    void
    bump(unsigned symbol)
    {
        freq_[symbol] += 32;
        total_ += 32;
        if (total_ > (1u << 16)) {
            total_ = 0;
            for (auto &f : freq_) {
                f = (f + 1) >> 1;
                total_ += f;
            }
        }
    }

    std::vector<uint32_t> freq_;
    uint32_t total_;
};

} // namespace sage

#endif // SAGE_COMPRESS_RANGE_CODER_HH
