/**
 * @file
 * gpzip: a from-scratch general-purpose block compressor standing in for
 * pigz (parallel gzip) in the paper's baseline set (§3.1, §7).
 *
 * Design mirrors DEFLATE: LZ77 over a 64 KiB window with hash-chain match
 * finding, then per-block canonical Huffman coding of a merged
 * literal/length alphabet plus a distance alphabet. Blocks are compressed
 * and decompressed independently, which is exactly what makes pigz
 * parallel — and exactly why its compression ratio trails genomic
 * compressors: no cross-block, long-range redundancy is captured.
 */

#ifndef SAGE_COMPRESS_GPZIP_HH
#define SAGE_COMPRESS_GPZIP_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.hh"

namespace sage {

class ThreadPool;

namespace gpzip {

/** Compression knobs. */
struct Config
{
    /** Independent-block size in bytes (pigz default is 128 KiB). */
    size_t blockSize = 1 << 20;
    /** Hash-chain search depth; higher = better ratio, slower. */
    unsigned maxChain = 48;
    /** Enable one-step lazy matching. */
    bool lazy = true;
};

/** Compress @p size bytes; uses @p pool for block parallelism if given. */
std::vector<uint8_t> compress(const uint8_t *data, size_t size,
                              const Config &config = {},
                              ThreadPool *pool = nullptr);

/** String-view convenience overload. */
std::vector<uint8_t> compress(std::string_view text,
                              const Config &config = {},
                              ThreadPool *pool = nullptr);

/** Decompress a gpzip container; verifies the stored CRC-32. Fatal on
 *  a malformed container (legacy contract). */
std::vector<uint8_t> decompress(const std::vector<uint8_t> &archive,
                                ThreadPool *pool = nullptr);

/** Non-fatal decompress: malformed framing, truncated blocks and CRC
 *  mismatches come back as Truncated/Corrupt instead of dying. Serial
 *  only — the recoverable error channel does not cross the thread
 *  pool (a worker throw would terminate the process). */
StatusOr<std::vector<uint8_t>>
tryDecompress(const std::vector<uint8_t> &archive);

/** Original (uncompressed) size recorded in a container. */
uint64_t originalSize(const std::vector<uint8_t> &archive);

} // namespace gpzip
} // namespace sage

#endif // SAGE_COMPRESS_GPZIP_HH
