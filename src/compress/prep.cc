#include "compress/prep.hh"

#include <algorithm>

#include "genomics/alphabet.hh"

namespace sage {

PreppedReads
prepareReads(const ReadSet &rs, std::string_view consensus,
             const MapperConfig &config, ThreadPool *pool)
{
    PreppedReads prep;
    prep.source = &rs;
    prep.classes.resize(rs.reads.size());

    ConsensusMapper mapper(consensus, config);
    std::vector<ReadMapping> mappings = mapper.mapAll(rs, pool);

    for (size_t i = 0; i < rs.reads.size(); i++) {
        ReadClass &cls = prep.classes[i];
        // Reads with N expand the alphabet beyond 2 bits: corner case
        // (paper §5.1.4); they take the escape path regardless of
        // mappability so every mismatch base stays 2-bit encodable.
        if (!isAcgtOnly(rs.reads[i].bases)) {
            cls.escape = EscapeReason::ContainsN;
        } else if (!mappings[i].mapped) {
            cls.escape = EscapeReason::Unmapped;
        } else {
            cls.mapping = std::move(mappings[i]);
        }
    }

    // Encoding order: mapped reads by (primary position, index) so the
    // delta-encoded matching positions are small (Property 6); escapes
    // trail in original order.
    std::vector<uint32_t> mapped, escaped;
    for (uint32_t i = 0; i < prep.classes.size(); i++) {
        if (prep.classes[i].escape == EscapeReason::None)
            mapped.push_back(i);
        else
            escaped.push_back(i);
    }
    std::sort(mapped.begin(), mapped.end(),
              [&](uint32_t a, uint32_t b) {
                  const uint64_t pa =
                      prep.classes[a].mapping.primaryPosition();
                  const uint64_t pb =
                      prep.classes[b].mapping.primaryPosition();
                  return pa != pb ? pa < pb : a < b;
              });
    prep.order = std::move(mapped);
    prep.order.insert(prep.order.end(), escaped.begin(), escaped.end());
    return prep;
}

} // namespace sage
