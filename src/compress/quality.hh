/**
 * @file
 * Block-addressable lossless quality-score codec.
 *
 * Quality scores lack the DNA stream's redundancy, so genomic compressors
 * handle them as a separate stream with context modeling (paper §2.2,
 * §5.1.5). This codec is an order-2 adaptive range coder over the (small)
 * quality alphabet, chunked into independently decodable blocks so that a
 * variant-calling stage can fetch only the blocks around mismatches — the
 * access pattern the paper's host-side quality decompression argument
 * rests on (only ~0.03% of blocks touched on average, max 10.7%).
 */

#ifndef SAGE_COMPRESS_QUALITY_HH
#define SAGE_COMPRESS_QUALITY_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sage {

/** A compressed quality stream with random block access. */
struct QualityArchive
{
    /** Distinct quality characters, index = model symbol. */
    std::string alphabet;
    /** Independent compressed blocks. */
    std::vector<std::vector<uint8_t>> blocks;
    /** Number of quality characters in each block. */
    std::vector<uint64_t> blockChars;
    /** Per-read quality string lengths (restores record boundaries). */
    std::vector<uint32_t> readLengths;

    /** Total compressed size in bytes, including metadata estimate. */
    uint64_t compressedBytes() const;

    /** Total quality characters stored. */
    uint64_t totalChars() const;
};

/** Codec parameters. */
struct QualityConfig
{
    /** Uncompressed characters per independently decodable block.
     *  The paper cites 25 MB blocks; scaled down with our datasets. */
    uint64_t blockChars = 1 << 20;
};

/** Compress per-read quality strings (order preserved). */
QualityArchive compressQuality(const std::vector<std::string> &quals,
                               const QualityConfig &config = {});

/** Decompress every block, restoring the original strings. */
std::vector<std::string> decompressQuality(const QualityArchive &archive);

/** Decompress a single block's character payload (random access). */
std::string decompressQualityBlock(const QualityArchive &archive,
                                   size_t block_index);

} // namespace sage

#endif // SAGE_COMPRESS_QUALITY_HH
