/**
 * @file
 * packbit: a DNABIT-class lightweight genomic compressor.
 *
 * The paper (§3.2, footnote 5) discusses this tool class: genomic
 * (de)compression algorithms that avoid expensive resources — plain
 * fixed-width packing with run-length shortcuts — but achieve ~5.3x
 * lower compression ratios than consensus-based genomic compressors.
 * It completes the design space in Table 3: lightweight like SAGe,
 * but without the co-designed consensus encoding, the ratio collapses
 * toward the 2-bit floor.
 *
 * Format: per read, varint length, then a token stream of
 *   0 + 2-bit base                 (literal A/C/G/T)
 *   1 0 + 2-bit base + 4-bit run   (run of 3-18 equal bases)
 *   1 1 0                          (N base)
 * Quality and headers are stored raw (these tools target DNA only).
 */

#ifndef SAGE_COMPRESS_PACKBIT_HH
#define SAGE_COMPRESS_PACKBIT_HH

#include <cstdint>
#include <vector>

#include "genomics/read.hh"

namespace sage {
namespace packbit {

/** Compress a read set (DNA stream only; quality/headers raw). */
std::vector<uint8_t> compress(const ReadSet &rs);

/** Decompress a packbit archive. */
ReadSet decompress(const std::vector<uint8_t> &archive);

/** Compressed size of the DNA portion alone. */
uint64_t dnaBytes(const std::vector<uint8_t> &archive);

} // namespace packbit
} // namespace sage

#endif // SAGE_COMPRESS_PACKBIT_HH
