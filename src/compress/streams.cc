#include "compress/streams.hh"

#include "io/byte_stream.hh"
#include "util/crc32.hh"
#include "util/logging.hh"
#include "util/varint.hh"

namespace sage {

std::vector<uint8_t> &
StreamBundle::stream(const std::string &name)
{
    return streams_[name];
}

const std::vector<uint8_t> &
StreamBundle::stream(const std::string &name) const
{
    auto it = streams_.find(name);
    if (it == streams_.end())
        sage_fatal("missing stream: ", name);
    return it->second;
}

bool
StreamBundle::has(const std::string &name) const
{
    return streams_.count(name) > 0;
}

uint64_t
StreamBundle::totalBytes() const
{
    uint64_t total = 0;
    for (const auto &[name, data] : streams_)
        total += data.size();
    return total;
}

std::map<std::string, uint64_t>
StreamBundle::sizes() const
{
    std::map<std::string, uint64_t> out;
    for (const auto &[name, data] : streams_)
        out[name] = data.size();
    return out;
}

std::vector<uint8_t>
StreamBundle::serialize() const
{
    std::vector<uint8_t> out;
    putVarint(out, streams_.size());
    for (const auto &[name, data] : streams_) {
        putVarint(out, name.size());
        out.insert(out.end(), name.begin(), name.end());
        putVarint(out, data.size());
        out.insert(out.end(), data.begin(), data.end());
    }
    const uint32_t crc = Crc32::of(out);
    for (int i = 0; i < 4; i++)
        out.push_back(static_cast<uint8_t>(crc >> (8 * i)));
    return out;
}

uint64_t
StreamBundle::writeTo(ByteSink &sink) const
{
    Crc32 crc;
    uint64_t written = 0;
    auto emit = [&](const uint8_t *data, size_t size) {
        crc.update(data, size);
        sink.write(data, size);
        written += size;
    };
    std::vector<uint8_t> head;
    putVarint(head, streams_.size());
    emit(head.data(), head.size());
    for (const auto &[name, data] : streams_) {
        head.clear();
        putVarint(head, name.size());
        head.insert(head.end(), name.begin(), name.end());
        putVarint(head, data.size());
        emit(head.data(), head.size());
        emit(data.data(), data.size());
    }
    const uint32_t checksum = crc.value();
    uint8_t trailer[4];
    for (int i = 0; i < 4; i++)
        trailer[i] = static_cast<uint8_t>(checksum >> (8 * i));
    sink.write(trailer, 4);
    return written + 4;
}

StreamBundle
StreamBundle::deserialize(const std::vector<uint8_t> &bytes)
{
    sage_assert(bytes.size() >= 4, "stream bundle too small");
    const size_t body = bytes.size() - 4;
    uint32_t crc = 0;
    for (int i = 0; i < 4; i++)
        crc |= static_cast<uint32_t>(bytes[body + i]) << (8 * i);
    if (Crc32::of(bytes.data(), body) != crc)
        sage_fatal("stream bundle CRC mismatch (corrupt data)");

    StreamBundle bundle;
    size_t pos = 0;
    const uint64_t count = getVarint(bytes, pos);
    for (uint64_t i = 0; i < count; i++) {
        const uint64_t name_len = getVarint(bytes, pos);
        sage_assert(pos + name_len <= body, "stream bundle truncated");
        std::string name(bytes.begin() + pos,
                         bytes.begin() + pos + name_len);
        pos += name_len;
        const uint64_t data_len = getVarint(bytes, pos);
        sage_assert(pos + data_len <= body, "stream bundle truncated");
        bundle.streams_[name].assign(bytes.begin() + pos,
                                     bytes.begin() + pos + data_len);
        pos += data_len;
    }
    return bundle;
}

} // namespace sage
