/**
 * @file
 * Shared compression-side preparation: map reads against the consensus,
 * classify them (mapped / escaped), and reorder by matching position
 * (paper §5.1.3, Property 6). Both the SpringLike baseline and SAGe
 * consume this; they differ only in how they *encode* the result.
 */

#ifndef SAGE_COMPRESS_PREP_HH
#define SAGE_COMPRESS_PREP_HH

#include <cstdint>
#include <string_view>
#include <vector>

#include "consensus/mapper.hh"
#include "genomics/read.hh"

namespace sage {

class ThreadPool;

/** Why a read bypasses consensus-based encoding. */
enum class EscapeReason : uint8_t {
    None = 0,       ///< Read is consensus-encoded.
    Unmapped = 1,   ///< No acceptable mapping found.
    ContainsN = 2,  ///< Alphabet exceeds ACGT (corner case, §5.1.4).
};

/** Per-read classification result. */
struct ReadClass
{
    EscapeReason escape = EscapeReason::None;
    ReadMapping mapping;  ///< Valid when escape == None.
};

/** Prepared (mapped + reordered) view over a read set. */
struct PreppedReads
{
    const ReadSet *source = nullptr;
    std::vector<ReadClass> classes;   ///< Parallel to source->reads.
    /**
     * Encoding order: mapped reads sorted by primary matching position,
     * then escaped reads in original order. order[i] is the source index
     * of the i-th encoded read.
     */
    std::vector<uint32_t> order;

    size_t
    escapedCount() const
    {
        size_t n = 0;
        for (const auto &c : classes)
            n += c.escape != EscapeReason::None;
        return n;
    }
};

/** Map, classify and reorder a read set against @p consensus. */
PreppedReads prepareReads(const ReadSet &rs, std::string_view consensus,
                          const MapperConfig &config,
                          ThreadPool *pool = nullptr);

} // namespace sage

#endif // SAGE_COMPRESS_PREP_HH
