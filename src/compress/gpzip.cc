#include "compress/gpzip.hh"

#include <algorithm>
#include <cstring>
#include <new>
#include <stdexcept>

#include "util/bitio.hh"
#include "util/crc32.hh"
#include "util/logging.hh"
#include "util/prefix_code.hh"
#include "util/thread_pool.hh"
#include "util/status.hh"
#include "util/varint.hh"

namespace sage {
namespace gpzip {

namespace {

constexpr uint32_t kMagic = 0x315a5047; // "GPZ1" little-endian.
constexpr unsigned kMinMatch = 4;
constexpr unsigned kMaxMatch = 258;
// Max match distance: the distance slot table covers exactly 1..32768.
constexpr size_t kWindowSize = 32768;

// Length slot table (base + extra-bit layout), covering lengths 4..259.
constexpr unsigned kNumLenSlots = 28;
constexpr uint16_t kLenBase[kNumLenSlots] = {
    4, 5, 6, 7, 8, 9, 10, 11,          // extra 0
    12, 14, 16, 18,                     // extra 1
    20, 24, 28, 32,                     // extra 2
    36, 44, 52, 60,                     // extra 3
    68, 84, 100, 116,                   // extra 4
    132, 164, 196, 228,                 // extra 5
};
constexpr uint8_t kLenExtra[kNumLenSlots] = {
    0, 0, 0, 0, 0, 0, 0, 0,
    1, 1, 1, 1,
    2, 2, 2, 2,
    3, 3, 3, 3,
    4, 4, 4, 4,
    5, 5, 5, 5,
};

// Distance slot table, distances 1..65535.
constexpr unsigned kNumDistSlots = 30;
constexpr uint32_t kDistBase[kNumDistSlots] = {
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193,
    12289, 16385, 24577,
};
constexpr uint8_t kDistExtra[kNumDistSlots] = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
};

constexpr unsigned kEobSymbol = 256;
constexpr unsigned kNumLitLen = 256 + 1 + kNumLenSlots; // 285 symbols.

/** Slot index for a match length (largest base not exceeding len). */
unsigned
lengthSlot(unsigned len)
{
    unsigned s = kNumLenSlots - 1;
    while (s > 0 && kLenBase[s] > len)
        s--;
    return s;
}

/** Slot index for a distance. */
unsigned
distanceSlot(uint32_t dist)
{
    unsigned s = kNumDistSlots - 1;
    while (s > 0 && kDistBase[s] > dist)
        s--;
    return s;
}

/** One LZ token: literal (dist == 0) or match. */
struct Token
{
    uint8_t literal = 0;
    uint16_t length = 0;
    uint32_t distance = 0; // 0 => literal token.
};

/** Hash of the next 4 bytes at p. */
inline uint32_t
hash4(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - 17);
}

/** LZ77 parse of one block using hash chains. */
std::vector<Token>
lzParse(const uint8_t *data, size_t size, const Config &config)
{
    std::vector<Token> tokens;
    tokens.reserve(size / 3);

    constexpr size_t kHashSize = size_t(1) << 17;
    std::vector<int32_t> head(kHashSize, -1);
    std::vector<int32_t> prev(std::min(size, size_t(1) << 24), -1);

    auto find_match = [&](size_t pos, unsigned &best_len,
                          uint32_t &best_dist) {
        best_len = 0;
        best_dist = 0;
        if (pos + kMinMatch > size)
            return;
        int32_t cand = head[hash4(data + pos)];
        unsigned chain = config.maxChain;
        const size_t limit = std::min(size - pos, size_t(kMaxMatch));
        while (cand >= 0 && chain-- > 0) {
            const size_t cpos = static_cast<size_t>(cand);
            if (pos - cpos > kWindowSize - 1)
                break;
            // Quick reject on the byte after the current best.
            if (best_len == 0 ||
                (cpos + best_len < size &&
                 data[cpos + best_len] == data[pos + best_len])) {
                size_t len = 0;
                while (len < limit && data[cpos + len] == data[pos + len])
                    len++;
                if (len >= kMinMatch && len > best_len) {
                    best_len = static_cast<unsigned>(len);
                    best_dist = static_cast<uint32_t>(pos - cpos);
                    if (len == limit)
                        break;
                }
            }
            cand = prev[cpos];
        }
    };

    auto insert = [&](size_t pos) {
        if (pos + 4 <= size) {
            const uint32_t h = hash4(data + pos);
            prev[pos] = head[h];
            head[h] = static_cast<int32_t>(pos);
        }
    };

    size_t pos = 0;
    while (pos < size) {
        unsigned len;
        uint32_t dist;
        find_match(pos, len, dist);

        // One-step lazy matching: prefer a longer match at pos+1.
        if (config.lazy && len >= kMinMatch && pos + 1 < size) {
            insert(pos);
            unsigned len2;
            uint32_t dist2;
            find_match(pos + 1, len2, dist2);
            if (len2 > len + 1) {
                tokens.push_back({data[pos], 0, 0});
                pos++;
                len = len2;
                dist = dist2;
            }
        } else if (len >= kMinMatch) {
            insert(pos);
        }

        if (len >= kMinMatch) {
            tokens.push_back({0, static_cast<uint16_t>(len), dist});
            // Insert positions covered by the match (sparsely for speed).
            const size_t end = pos + len;
            for (size_t p = pos + 1; p < end && p + 4 <= size;
                 p += (len > 64 ? 7 : 1)) {
                insert(p);
            }
            pos = end;
        } else {
            insert(pos);
            tokens.push_back({data[pos], 0, 0});
            pos++;
        }
    }
    return tokens;
}

/** Huffman-encode a token stream into a self-contained block. */
std::vector<uint8_t>
encodeBlock(const std::vector<Token> &tokens)
{
    std::vector<uint64_t> lit_freq(kNumLitLen, 0);
    std::vector<uint64_t> dist_freq(kNumDistSlots, 0);
    lit_freq[kEobSymbol] = 1;
    for (const auto &tok : tokens) {
        if (tok.distance == 0) {
            lit_freq[tok.literal]++;
        } else {
            lit_freq[257 + lengthSlot(tok.length)]++;
            dist_freq[distanceSlot(tok.distance)]++;
        }
    }

    const PrefixCode lit_code = PrefixCode::fromFrequencies(lit_freq);
    const PrefixCode dist_code = PrefixCode::fromFrequencies(dist_freq);

    BitWriter bw;
    for (uint8_t len : lit_code.lengths())
        bw.writeBits(len, 4);
    for (uint8_t len : dist_code.lengths())
        bw.writeBits(len, 4);

    for (const auto &tok : tokens) {
        if (tok.distance == 0) {
            lit_code.encode(bw, tok.literal);
        } else {
            const unsigned ls = lengthSlot(tok.length);
            lit_code.encode(bw, 257 + ls);
            bw.writeBits(tok.length - kLenBase[ls], kLenExtra[ls]);
            const unsigned ds = distanceSlot(tok.distance);
            dist_code.encode(bw, ds);
            bw.writeBits(tok.distance - kDistBase[ds], kDistExtra[ds]);
        }
    }
    lit_code.encode(bw, kEobSymbol);
    return bw.take();
}

/** Decode one block into @p out (expected decompressed size known). */
void
decodeBlock(const std::vector<uint8_t> &block, std::vector<uint8_t> &out)
{
    BitReader br(block);
    std::vector<uint8_t> lit_lens(kNumLitLen), dist_lens(kNumDistSlots);
    for (auto &len : lit_lens)
        len = static_cast<uint8_t>(br.readBits(4));
    for (auto &len : dist_lens)
        len = static_cast<uint8_t>(br.readBits(4));
    const PrefixCode lit_code = PrefixCode::fromLengths(lit_lens);
    const PrefixCode dist_code = PrefixCode::fromLengths(dist_lens);

    for (;;) {
        const unsigned sym = lit_code.decode(br);
        if (sym == kEobSymbol)
            return;
        if (sym < 256) {
            out.push_back(static_cast<uint8_t>(sym));
            continue;
        }
        const unsigned ls = sym - 257;
        sage_check_data(ls < kNumLenSlots, Corrupt,
                        "corrupt gpzip length slot");
        const unsigned len = kLenBase[ls]
            + static_cast<unsigned>(br.readBits(kLenExtra[ls]));
        const unsigned ds = dist_code.decode(br);
        sage_check_data(ds < kNumDistSlots, Corrupt,
                        "corrupt gpzip distance slot");
        const uint32_t dist = kDistBase[ds]
            + static_cast<uint32_t>(br.readBits(kDistExtra[ds]));
        sage_check_data(dist <= out.size() && dist > 0, Corrupt,
                        "gpzip distance out of range");
        // Overlapping copies are valid LZ77 (run encoding).
        size_t from = out.size() - dist;
        for (unsigned i = 0; i < len; i++)
            out.push_back(out[from + i]);
    }
}

} // namespace

std::vector<uint8_t>
compress(const uint8_t *data, size_t size, const Config &config,
         ThreadPool *pool)
{
    const size_t block_size = std::max<size_t>(config.blockSize, 1024);
    const size_t num_blocks = size == 0 ? 0
        : (size + block_size - 1) / block_size;

    std::vector<std::vector<uint8_t>> blocks(num_blocks);
    auto do_block = [&](size_t b) {
        const size_t off = b * block_size;
        const size_t len = std::min(block_size, size - off);
        blocks[b] = encodeBlock(lzParse(data + off, len, config));
    };
    if (pool != nullptr && num_blocks > 1)
        pool->parallelFor(num_blocks, do_block);
    else
        for (size_t b = 0; b < num_blocks; b++)
            do_block(b);

    std::vector<uint8_t> archive;
    archive.reserve(size / 3 + 64);
    for (int i = 0; i < 4; i++)
        archive.push_back(static_cast<uint8_t>(kMagic >> (8 * i)));
    putVarint(archive, size);
    putVarint(archive, block_size);
    putVarint(archive, num_blocks);
    for (const auto &block : blocks)
        putVarint(archive, block.size());
    const uint32_t crc = Crc32::of(data, size);
    for (int i = 0; i < 4; i++)
        archive.push_back(static_cast<uint8_t>(crc >> (8 * i)));
    for (const auto &block : blocks)
        archive.insert(archive.end(), block.begin(), block.end());
    return archive;
}

std::vector<uint8_t>
compress(std::string_view text, const Config &config, ThreadPool *pool)
{
    return compress(reinterpret_cast<const uint8_t *>(text.data()),
                    text.size(), config, pool);
}

namespace {

/** Parsed container header. */
struct Header
{
    uint64_t originalSize;
    uint64_t blockSize;
    std::vector<std::pair<size_t, size_t>> blocks; // (offset, size)
    uint32_t crc;
};

Header
parseHeader(const std::vector<uint8_t> &archive)
{
    size_t pos = 0;
    sage_check_data(archive.size() >= 8, Truncated,
                    "gpzip archive too small");
    uint32_t magic = 0;
    for (int i = 0; i < 4; i++)
        magic |= static_cast<uint32_t>(archive[pos++]) << (8 * i);
    if (magic != kMagic)
        sage_check_data(false, Corrupt, "not a gpzip archive (bad magic)");
    Header hdr;
    hdr.originalSize = getVarint(archive, pos);
    hdr.blockSize = getVarint(archive, pos);
    const uint64_t num_blocks = getVarint(archive, pos);
    std::vector<uint64_t> sizes(num_blocks);
    for (auto &s : sizes)
        s = getVarint(archive, pos);
    hdr.crc = 0;
    for (int i = 0; i < 4; i++)
        hdr.crc |= static_cast<uint32_t>(archive[pos++]) << (8 * i);
    size_t off = pos;
    for (uint64_t s : sizes) {
        hdr.blocks.emplace_back(off, s);
        off += s;
    }
    sage_check_data(off <= archive.size(), Truncated,
                    "gpzip archive truncated");
    return hdr;
}

} // namespace

namespace {

/** Shared decode core; reports malformed input via StatusError. */
std::vector<uint8_t>
decompressOrThrow(const std::vector<uint8_t> &archive, ThreadPool *pool)
{
    const Header hdr = parseHeader(archive);
    std::vector<std::vector<uint8_t>> outputs(hdr.blocks.size());
    auto do_block = [&](size_t b) {
        const auto &[off, len] = hdr.blocks[b];
        std::vector<uint8_t> block(archive.begin() + off,
                                   archive.begin() + off + len);
        const size_t expect = b + 1 < hdr.blocks.size()
            ? hdr.blockSize
            : hdr.originalSize - b * hdr.blockSize;
        outputs[b].reserve(expect);
        decodeBlock(block, outputs[b]);
        sage_check_data(outputs[b].size() == expect, Corrupt,
                        "gpzip block decoded to unexpected size");
    };
    if (pool != nullptr && hdr.blocks.size() > 1)
        pool->parallelFor(hdr.blocks.size(), do_block);
    else
        for (size_t b = 0; b < hdr.blocks.size(); b++)
            do_block(b);

    std::vector<uint8_t> out;
    out.reserve(hdr.originalSize);
    for (auto &block : outputs)
        out.insert(out.end(), block.begin(), block.end());
    if (Crc32::of(out) != hdr.crc)
        sage_check_data(false, Corrupt,
                        "gpzip CRC mismatch (corrupt archive)");
    return out;
}

} // namespace

std::vector<uint8_t>
decompress(const std::vector<uint8_t> &archive, ThreadPool *pool)
{
    // Legacy fatal contract: a malformed container kills the process
    // with the decode error. (On the pool-parallel path a worker's
    // StatusError terminates via the pool instead — still fatal.)
    try {
        return decompressOrThrow(archive, pool);
    } catch (const StatusError &err) {
        sage_fatal(err.status().message());
    }
}

StatusOr<std::vector<uint8_t>>
tryDecompress(const std::vector<uint8_t> &archive)
{
    try {
        return StatusOr<std::vector<uint8_t>>(
            decompressOrThrow(archive, nullptr));
    } catch (const StatusError &err) {
        return err.status();
    } catch (const std::bad_alloc &) {
        return Status::corrupt(
            "gpzip decode exceeded the allocation limit");
    } catch (const std::length_error &) {
        return Status::corrupt(
            "gpzip decode exceeded the allocation limit");
    }
}

uint64_t
originalSize(const std::vector<uint8_t> &archive)
{
    try {
        return parseHeader(archive).originalSize;
    } catch (const StatusError &err) {
        sage_fatal(err.status().message());
    }
}

} // namespace gpzip
} // namespace sage
