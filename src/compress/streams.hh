/**
 * @file
 * Named-stream container: a simple serialized bundle of byte streams with
 * CRC integrity, shared by the SpringLike baseline and the SAGe container
 * (both formats are "a handful of typed streams plus a header").
 */

#ifndef SAGE_COMPRESS_STREAMS_HH
#define SAGE_COMPRESS_STREAMS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sage {

class ByteSink;

/** An ordered collection of named byte streams. */
class StreamBundle
{
  public:
    /** Access (creating if absent) the stream named @p name. */
    std::vector<uint8_t> &stream(const std::string &name);

    /** Read-only access; fatal if the stream is missing. */
    const std::vector<uint8_t> &stream(const std::string &name) const;

    /** True if a stream with this name exists. */
    bool has(const std::string &name) const;

    /** Total payload bytes across all streams. */
    uint64_t totalBytes() const;

    /** Per-stream sizes (for breakdown reporting, e.g. Fig. 17). */
    std::map<std::string, uint64_t> sizes() const;

    /** Serialize to one byte vector (with CRC). */
    std::vector<uint8_t> serialize() const;

    /**
     * Stream the serialized form (byte-identical to serialize()) to
     * @p sink without materializing it, computing the CRC on the fly.
     * Returns the bytes written.
     */
    uint64_t writeTo(ByteSink &sink) const;

    /** Parse a serialized bundle; verifies CRC. */
    static StreamBundle deserialize(const std::vector<uint8_t> &bytes);

  private:
    std::map<std::string, std::vector<uint8_t>> streams_;
};

} // namespace sage

#endif // SAGE_COMPRESS_STREAMS_HH
