#include "compress/quality.hh"

#include <algorithm>
#include <array>

#include "compress/range_coder.hh"
#include "util/logging.hh"
#include "util/status.hh"

namespace sage {

namespace {

/**
 * Context for the order-2 model: previous symbol (full resolution) and
 * the symbol before it (quantized to 4 levels). Small enough that models
 * adapt quickly even on short blocks.
 */
unsigned
contextOf(unsigned prev1, unsigned prev2, unsigned alphabet)
{
    const unsigned q2 = std::min(prev2 * 4 / std::max(1u, alphabet), 3u);
    return prev1 * 4 + q2;
}

} // namespace

uint64_t
QualityArchive::compressedBytes() const
{
    uint64_t bytes = alphabet.size() + 16;
    for (const auto &block : blocks)
        bytes += block.size() + 8;
    // Read lengths ride along as ~1-2 byte varints in a real container;
    // count 2 bytes each as a faithful estimate.
    bytes += readLengths.size() * 2;
    return bytes;
}

uint64_t
QualityArchive::totalChars() const
{
    uint64_t total = 0;
    for (uint64_t n : blockChars)
        total += n;
    return total;
}

QualityArchive
compressQuality(const std::vector<std::string> &quals,
                const QualityConfig &config)
{
    QualityArchive archive;

    // Build the alphabet map.
    std::array<int, 256> symbol_of;
    symbol_of.fill(-1);
    for (const auto &q : quals) {
        for (char c : q) {
            const auto u = static_cast<uint8_t>(c);
            if (symbol_of[u] < 0) {
                symbol_of[u] = static_cast<int>(archive.alphabet.size());
                archive.alphabet.push_back(c);
            }
        }
    }
    if (archive.alphabet.empty())
        archive.alphabet.push_back('!');
    const unsigned alphabet = archive.alphabet.size();

    // Flatten characters; record per-read lengths.
    std::string flat;
    for (const auto &q : quals) {
        archive.readLengths.push_back(static_cast<uint32_t>(q.size()));
        flat += q;
    }

    // Encode independent blocks with fresh model state each.
    for (uint64_t off = 0; off < flat.size() || (off == 0 && flat.empty());
         off += config.blockChars) {
        const uint64_t len =
            std::min<uint64_t>(config.blockChars, flat.size() - off);
        RangeEncoder enc;
        std::vector<AdaptiveModel> models(
            static_cast<size_t>(alphabet) * 4, AdaptiveModel(alphabet));
        unsigned prev1 = 0, prev2 = 0;
        for (uint64_t i = 0; i < len; i++) {
            const int sym =
                symbol_of[static_cast<uint8_t>(flat[off + i])];
            sage_assert(sym >= 0, "quality symbol missing from alphabet");
            models[contextOf(prev1, prev2, alphabet)]
                .encode(enc, static_cast<unsigned>(sym));
            prev2 = prev1;
            prev1 = static_cast<unsigned>(sym);
        }
        archive.blocks.push_back(enc.finish());
        archive.blockChars.push_back(len);
        if (flat.empty())
            break;
    }
    return archive;
}

std::string
decompressQualityBlock(const QualityArchive &archive, size_t block_index)
{
    sage_check_data(block_index < archive.blocks.size(), Corrupt,
                "quality block index out of range");
    const unsigned alphabet = archive.alphabet.size();
    const auto &block = archive.blocks[block_index];
    const uint64_t len = archive.blockChars[block_index];

    RangeDecoder dec(block.data(), block.size());
    std::vector<AdaptiveModel> models(
        static_cast<size_t>(alphabet) * 4, AdaptiveModel(alphabet));
    std::string out;
    out.reserve(len);
    unsigned prev1 = 0, prev2 = 0;
    for (uint64_t i = 0; i < len; i++) {
        const unsigned sym =
            models[contextOf(prev1, prev2, alphabet)].decode(dec);
        out.push_back(archive.alphabet[sym]);
        prev2 = prev1;
        prev1 = sym;
    }
    return out;
}

std::vector<std::string>
decompressQuality(const QualityArchive &archive)
{
    std::string flat;
    flat.reserve(archive.totalChars());
    for (size_t b = 0; b < archive.blocks.size(); b++)
        flat += decompressQualityBlock(archive, b);

    std::vector<std::string> out;
    out.reserve(archive.readLengths.size());
    uint64_t off = 0;
    for (uint32_t len : archive.readLengths) {
        out.push_back(flat.substr(off, len));
        off += len;
    }
    sage_check_data(off == flat.size(), Corrupt,
                    "quality archive length mismatch");
    return out;
}

} // namespace sage
