/**
 * @file
 * Library version constants.  Kept in sync with the `project(sage
 * VERSION ...)` declaration in the top-level CMakeLists.txt; version.cc
 * static_asserts the two agree, so drift is a compile error.
 */

#ifndef SAGE_CORE_VERSION_HH
#define SAGE_CORE_VERSION_HH

#define SAGE_VERSION_MAJOR 0
#define SAGE_VERSION_MINOR 1
#define SAGE_VERSION_PATCH 0
#define SAGE_VERSION_STRING "0.1.0"

namespace sage {

/// Runtime version string, e.g. "0.1.0".  Defined in version.cc so the
/// value embedded in libsage (not the caller's headers) is reported.
const char *versionString();

} // namespace sage

#endif // SAGE_CORE_VERSION_HH
