/**
 * @file
 * SAGe container format: configuration, tuned-parameter header, and
 * stream naming. The encoder (encoder.hh) writes this format; the
 * software decompressor (decoder.hh) and the hardware model (hw/) both
 * consume it.
 *
 * Stream inventory (paper §5.1):
 *   consensus      2/3-bit packed consensus sequence
 *   flags          per-read bits: reverse-strand, segment-count unary,
 *                  (pre-O4 only) escape indicator bits
 *   mpa / mpga     matching-position deltas (array / guide array)
 *   rla / rlga     read-length deltas from the modal length
 *   sga / sgga     extra chimeric segment positions and lengths
 *   mca / mcga     per-segment mismatch event counts
 *   mmpa / mmpga   mismatch position deltas, indel lengths (8-bit
 *                  chained), single-base-indel flags
 *   mbta           mismatch bases, type inference markers, ins/del bits,
 *                  inserted bases, corner-case disambiguation bits
 *   escape         3-bit packed payload for corner-case reads
 *   chunks         v2 only: per-chunk read counts + stream offsets
 *   headers        read headers (host-side, gpzip)
 *   quality        quality-score archive (host-side, paper §5.1.5)
 *   order          optional original-order permutation
 *
 * Container version 2 partitions the reads into fixed-size chunks: at
 * each chunk boundary every DNA bit array is padded to a byte boundary
 * and the matching-position delta state resets, so any chunk decodes
 * with zero knowledge of its predecessors — the software analogue of
 * the paper's per-Scan-Unit slices (§5.2) and the unit of parallel
 * decode and future multi-SSD sharding. Version 1 (no chunk table) is
 * still read; it is treated as a single chunk. See docs/format.md.
 */

#ifndef SAGE_CORE_FORMAT_HH
#define SAGE_CORE_FORMAT_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compress/quality.hh"
#include "consensus/mapper.hh"
#include "core/tuned_array.hh"

namespace sage {

/**
 * Compressor configuration, including the ablation switches that map to
 * the paper's optimization levels (Fig. 17):
 *   NO: reorderReads=0, tuneArrays=0, maxSegments=1, inferTypes=0,
 *       cornerTrick=0
 *   O1: + reorderReads            (§5.1.3 matching positions)
 *   O2: + tuneArrays              (§5.1.1 positions & counts)
 *   O3: + maxSegments=3, inferTypes (§5.1.2 bases & types)
 *   O4: + cornerTrick             (§5.1.4 corner cases)
 */
struct SageConfig
{
    /** O1a: reorder reads by matching position and delta-encode. */
    bool reorderReads = true;
    /** O1b: Algorithm-1-tuned matching-position (and segment) arrays
     *  — §5.1.3 is the whole matching-position pipeline. */
    bool tuneMatchArrays = true;
    /** O2: Algorithm-1-tuned mismatch position/count/read-length
     *  arrays plus indel-block encoding (§5.1.1). */
    bool tuneArrays = true;
    /** O3a: top-N matching positions for chimeric reads (paper N=3). */
    unsigned maxSegments = 3;
    /** O3b: infer substitution type via consensus comparison. */
    bool inferTypes = true;
    /** O4: mark corner cases via the mismatch-at-position-0 trick. */
    bool cornerTrick = true;

    /** Compress quality scores (optional per paper §5.1.5). */
    bool keepQuality = true;
    /** Store original read order. */
    bool preserveOrder = false;

    /**
     * Reads per independently decodable chunk (container v2). Every DNA
     * bit array is byte-aligned and the matching-position delta resets
     * at each chunk boundary, enabling parallel decode at the cost of a
     * few padding bytes and one chunk-table row per chunk. 0 writes the
     * legacy v1 single-stream layout (no chunk table).
     */
    uint32_t chunkReads = 65536;

    TunerConfig tuner;
    MapperConfig mapper;
    QualityConfig quality;

    /** Apply a paper optimization level 0..4 (NO..O4). */
    static SageConfig atLevel(unsigned level);
};

/** Container versions the decoder understands. */
constexpr uint32_t kFormatVersionLegacy = 1;   ///< Single-stream layout.
constexpr uint32_t kFormatVersionChunked = 2;  ///< Adds the chunk table.

/**
 * Index of each DNA-path stream in a chunk-table offset row. The order
 * is frozen by the v2 container layout (docs/format.md).
 */
enum ChunkStreamIndex : unsigned {
    kChunkFlags = 0,
    kChunkMpa,
    kChunkMpga,
    kChunkRla,
    kChunkRlga,
    kChunkSga,
    kChunkSgga,
    kChunkMca,
    kChunkMcga,
    kChunkMmpa,
    kChunkMmpga,
    kChunkMbta,
    kChunkEscape,
    kChunkStreamCount
};

/** Container stream name of each ChunkStreamIndex entry — the single
 *  source of truth for every walker of the chunk table (decoder,
 *  device chunk extents). */
constexpr const char *kChunkStreamNames[kChunkStreamCount] = {
    "flags", "mpa", "mpga", "rla", "rlga", "sga", "sgga",
    "mca", "mcga", "mmpa", "mmpga", "mbta", "escape"};

/**
 * The v2 chunk index: for every chunk, its read count and the byte
 * offset at which its slice of each DNA stream starts. All streams are
 * byte-aligned at chunk boundaries, so offsets are exact byte positions
 * and any chunk is decodable with zero predecessor state.
 */
struct ChunkTable
{
    struct Entry
    {
        uint64_t readCount = 0;
        std::array<uint64_t, kChunkStreamCount> offsets{};
    };

    std::vector<Entry> entries;

    std::vector<uint8_t> serialize() const;
    static ChunkTable deserialize(const std::vector<uint8_t> &bytes);
};

/** Tuned per-read-set parameters written at the start of the file
 *  (paper §5.1: "The parameters are then encoded at the beginning of
 *  the compressed file"). */
struct SageParams
{
    uint32_t version = kFormatVersionChunked;
    uint64_t numReads = 0;
    uint64_t consensusLength = 0;
    bool consensusTwoBit = true;
    bool hasQuality = false;
    bool preservedOrder = false;

    // Ablation switches baked into the stream layout.
    bool reorderReads = true;
    bool tuneMatchArrays = true;
    bool tuneArrays = true;
    unsigned maxSegments = 3;
    bool inferTypes = true;
    bool cornerTrick = true;

    /** Modal read length (read lengths stored as zig-zag deltas). */
    uint64_t modalReadLength = 0;
    /** Set when every read has the modal length (fixed-length short
     *  read sets): the read-length arrays are omitted entirely. */
    bool constantReadLength = false;

    // Association tables (only meaningful when tuneArrays is set).
    AssociationTable matchPos;
    AssociationTable readLen;
    AssociationTable mismatchCount;
    AssociationTable mismatchPos;
    AssociationTable segPos;
    AssociationTable segLen;

    std::vector<uint8_t> serialize() const;
    static SageParams deserialize(const std::vector<uint8_t> &bytes);
};

/** Compressed read set plus the accounting benches need. */
struct SageArchive
{
    std::vector<uint8_t> bytes;

    /** Per-stream sizes (bytes) for the Fig. 17 breakdown. */
    std::map<std::string, uint64_t> streamSizes;

    /** Wall-clock split, for Fig. 18. */
    double mapSeconds = 0.0;
    double encodeSeconds = 0.0;
    double tuneSeconds = 0.0;  ///< Algorithm 1 share (§8.6).

    /** DNA-stream bytes (consensus + arrays + escapes). */
    uint64_t dnaBytes = 0;
    /** Quality-stream bytes. */
    uint64_t qualityBytes = 0;
    /** Host-side metadata bytes (headers, order). */
    uint64_t metaBytes = 0;
};

} // namespace sage

#endif // SAGE_CORE_FORMAT_HH
