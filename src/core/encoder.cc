#include "core/encoder.hh"

#include <algorithm>

#include "compress/gpzip.hh"
#include "compress/prep.hh"
#include "compress/streams.hh"
#include "genomics/alphabet.hh"
#include "util/logging.hh"
#include "util/timing.hh"
#include "util/varint.hh"

namespace sage {

namespace {

/** Fixed widths used when Algorithm-1 tuning is disabled (pre-O2). */
constexpr unsigned kFixedMatchPosBits = 32;
constexpr unsigned kFixedReadLenBits = 32;
constexpr unsigned kFixedCountBits = 16;
constexpr unsigned kFixedMismatchPosBits = 16;

/** A degenerate association table: one class of @p width bits. */
AssociationTable
fixedTable(unsigned width)
{
    AssociationTable table;
    table.widthByRank.push_back(static_cast<uint8_t>(width));
    return table;
}

/**
 * Pre-O2 representation: expand indel blocks into single-base mismatch
 * events ("raw mismatch information", Fig. 17 NO/O1 bars).
 */
std::vector<EditOp>
expandBlocks(const std::vector<EditOp> &ops)
{
    std::vector<EditOp> out;
    for (const auto &op : ops) {
        if (op.type == EditType::Sub || op.length == 1) {
            out.push_back(op);
            continue;
        }
        for (uint32_t i = 0; i < op.length; i++) {
            EditOp single;
            single.type = op.type;
            single.length = 1;
            if (op.type == EditType::Ins) {
                single.readPos = op.readPos + i;
                single.bases = std::string(1, op.bases[i]);
            } else {
                single.readPos = op.readPos;
            }
            out.push_back(std::move(single));
        }
    }
    return out;
}

/** Sampled value sets feeding Algorithm 1 (one histogram per array). */
struct TuningSamples
{
    std::vector<uint64_t> matchDeltas;
    std::vector<uint64_t> readLenDeltas;
    std::vector<uint64_t> counts;
    std::vector<uint64_t> posDeltas;
    std::vector<uint64_t> segPosDeltas;
    std::vector<uint64_t> segLens;
};

/** Writer set for the SAGe bit arrays. */
struct Arrays
{
    BitWriter flags;
    BitWriter mpa, mpga;
    BitWriter rla, rlga;
    BitWriter sga, sgga;
    BitWriter mca, mcga;
    BitWriter mmpa, mmpga;
    BitWriter mbta;
};

/** Chained 8-bit indel length encoding (paper §5.1.1 layout). */
void
writeIndelLength(BitWriter &mmpa, uint32_t length)
{
    uint32_t remaining = length;
    while (remaining >= 255) {
        mmpa.writeBits(255, 8);
        remaining -= 255;
    }
    mmpa.writeBits(remaining, 8);
}

} // namespace

SageArchive
sageCompress(const ReadSet &rs, std::string_view consensus,
             const SageConfig &config, ThreadPool *pool)
{
    StreamBundle bundle;
    SageArchive archive =
        sageEncodeToBundle(rs, consensus, config, pool, bundle);
    archive.bytes = bundle.serialize();
    return archive;
}

SageArchive
sageEncodeToBundle(const ReadSet &rs, std::string_view consensus,
                   const SageConfig &config, ThreadPool *pool,
                   StreamBundle &bundle)
{
    SageArchive archive;

    // ---- Find mismatch information (mapping) -------------------------
    Stopwatch map_clock;
    MapperConfig mapper_config = config.mapper;
    mapper_config.maxSegments = std::max(1u, config.maxSegments);
    PreppedReads prep = prepareReads(rs, consensus, mapper_config, pool);
    archive.mapSeconds = map_clock.seconds();

    if (!config.reorderReads) {
        // Pre-O1: keep original order.
        prep.order.resize(rs.reads.size());
        for (uint32_t i = 0; i < prep.order.size(); i++)
            prep.order[i] = i;
    }

    Stopwatch encode_clock;

    // Pre-O2 representation drops indel blocks; pre-O3 drops chimeras
    // (the mapper already produced maxSegments=1 mappings in that case).
    auto ops_of = [&](const AlignedSegment &seg) {
        return config.tuneArrays ? seg.ops : expandBlocks(seg.ops);
    };

    // ---- Pass 1: collect value samples and tune (Algorithm 1) --------
    Stopwatch tune_clock;
    TuningSamples samples;
    Histogram length_hist;
    for (const Read &read : rs.reads)
        length_hist.add(read.bases.size());
    uint64_t modal_len = 0, modal_count = 0;
    for (size_t len = 0; len < length_hist.size(); len++) {
        if (length_hist.count(len) > modal_count) {
            modal_count = length_hist.count(len);
            modal_len = len;
        }
    }

    // Chunk boundaries (container v2) reset the matching-position
    // delta, so the samples must mirror the reset or Algorithm 1 would
    // tune for deltas the encoder never emits.
    const uint64_t chunk_reads = config.chunkReads;

    uint64_t prev_primary = 0;
    uint64_t sample_idx = 0;
    for (uint32_t src : prep.order) {
        if (chunk_reads > 0 && sample_idx % chunk_reads == 0)
            prev_primary = 0;
        sample_idx++;
        const Read &read = rs.reads[src];
        const ReadClass &cls = prep.classes[src];
        samples.readLenDeltas.push_back(zigzagEncode(
            static_cast<int64_t>(read.bases.size())
            - static_cast<int64_t>(modal_len)));

        if (cls.escape != EscapeReason::None) {
            samples.matchDeltas.push_back(0);
            if (config.cornerTrick) {
                samples.counts.push_back(1);
                samples.posDeltas.push_back(0);
            }
            continue;
        }
        const uint64_t primary = cls.mapping.primaryPosition();
        samples.matchDeltas.push_back(
            config.reorderReads ? primary - prev_primary : primary);
        prev_primary = primary;

        for (size_t s = 0; s < cls.mapping.segments.size(); s++) {
            const AlignedSegment &seg = cls.mapping.segments[s];
            if (s > 0) {
                samples.segPosDeltas.push_back(zigzagEncode(
                    static_cast<int64_t>(seg.consensusPos)
                    - static_cast<int64_t>(primary)));
                samples.segLens.push_back(seg.readLength);
            }
            const auto ops = ops_of(seg);
            samples.counts.push_back(ops.size());
            uint32_t prev_pos = 0;
            for (const EditOp &op : ops) {
                samples.posDeltas.push_back(op.readPos - prev_pos);
                prev_pos = op.readPos;
            }
        }
    }

    SageParams params;
    params.version = chunk_reads > 0 ? kFormatVersionChunked
                                     : kFormatVersionLegacy;
    params.numReads = rs.reads.size();
    params.consensusLength = consensus.size();
    params.consensusTwoBit = isAcgtOnly(consensus);
    params.hasQuality = config.keepQuality && rs.hasQualityScores();
    params.preservedOrder = config.preserveOrder;
    params.reorderReads = config.reorderReads;
    params.tuneArrays = config.tuneArrays;
    params.maxSegments = std::max(1u, config.maxSegments);
    params.inferTypes = config.inferTypes;
    params.cornerTrick = config.cornerTrick;
    params.tuneMatchArrays = config.tuneMatchArrays;
    params.modalReadLength = modal_len;
    // Fixed-length short-read sets need no per-read length fields.
    params.constantReadLength = !rs.reads.empty();
    for (const Read &read : rs.reads) {
        if (read.bases.size() != modal_len) {
            params.constantReadLength = false;
            break;
        }
    }

    // O1 (§5.1.3) tunes the matching-position and segment arrays; O2
    // (§5.1.1) tunes the mismatch-side arrays. Pre-optimization levels
    // fall back to fixed widths ("raw mismatch information").
    if (config.tuneMatchArrays) {
        params.matchPos =
            TunedFieldCodec::tuneFor(samples.matchDeltas, config.tuner);
        params.segPos =
            TunedFieldCodec::tuneFor(samples.segPosDeltas, config.tuner);
        params.segLen =
            TunedFieldCodec::tuneFor(samples.segLens, config.tuner);
    } else {
        params.matchPos = fixedTable(kFixedMatchPosBits);
        params.segPos = fixedTable(kFixedMatchPosBits);
        params.segLen = fixedTable(kFixedReadLenBits);
    }
    if (config.tuneArrays) {
        params.readLen =
            TunedFieldCodec::tuneFor(samples.readLenDeltas, config.tuner);
        params.mismatchCount =
            TunedFieldCodec::tuneFor(samples.counts, config.tuner);
        params.mismatchPos =
            TunedFieldCodec::tuneFor(samples.posDeltas, config.tuner);
    } else {
        params.readLen = fixedTable(kFixedReadLenBits);
        params.mismatchCount = fixedTable(kFixedCountBits);
        params.mismatchPos = fixedTable(kFixedMismatchPosBits);
    }
    archive.tuneSeconds = tune_clock.seconds();

    const TunedFieldCodec match_codec(params.matchPos);
    const TunedFieldCodec len_codec(params.readLen);
    const TunedFieldCodec count_codec(params.mismatchCount);
    const TunedFieldCodec pos_codec(params.mismatchPos);
    const TunedFieldCodec segpos_codec(params.segPos);
    const TunedFieldCodec seglen_codec(params.segLen);

    // ---- Pass 2: emit arrays ------------------------------------------
    Arrays arrays;
    std::vector<uint8_t> escape_stream;
    ChunkTable chunk_table;
    prev_primary = 0;

    // Open a chunk: pad every bit array to a byte boundary so the
    // chunk's slice starts at an exact byte offset, record those
    // offsets, and reset the matching-position delta state. The chunk
    // then decodes with zero knowledge of its predecessors.
    auto open_chunk = [&](uint64_t reads_done) {
        ChunkTable::Entry entry;
        entry.readCount = std::min<uint64_t>(
            chunk_reads, prep.order.size() - reads_done);
        BitWriter *const writers[kChunkEscape] = {
            &arrays.flags, &arrays.mpa, &arrays.mpga, &arrays.rla,
            &arrays.rlga, &arrays.sga, &arrays.sgga, &arrays.mca,
            &arrays.mcga, &arrays.mmpa, &arrays.mmpga, &arrays.mbta};
        for (unsigned s = 0; s < kChunkEscape; s++) {
            writers[s]->alignByte();
            entry.offsets[s] = writers[s]->bytes().size();
        }
        entry.offsets[kChunkEscape] = escape_stream.size();
        chunk_table.entries.push_back(entry);
        prev_primary = 0;
    };

    uint64_t emit_idx = 0;
    for (uint32_t src : prep.order) {
        if (chunk_reads > 0 && emit_idx % chunk_reads == 0)
            open_chunk(emit_idx);
        emit_idx++;
        const Read &read = rs.reads[src];
        const ReadClass &cls = prep.classes[src];
        const bool escaped = cls.escape != EscapeReason::None;

        // Flags: reverse bit, segment count (unary), pre-O4 escape bit.
        arrays.flags.writeBit(!escaped && cls.mapping.reverse);
        if (params.maxSegments > 1) {
            arrays.flags.writeUnary(
                escaped ? 0
                        : static_cast<unsigned>(
                              cls.mapping.segments.size() - 1));
        }
        if (!params.cornerTrick)
            arrays.flags.writeBit(escaped);

        // Read length (omitted entirely for fixed-length sets).
        if (!params.constantReadLength) {
            len_codec.encode(arrays.rla, arrays.rlga, zigzagEncode(
                static_cast<int64_t>(read.bases.size())
                - static_cast<int64_t>(modal_len)));
        }

        if (escaped) {
            // Matching-position placeholder keeps the stream aligned.
            match_codec.encode(arrays.mpa, arrays.mpga, 0);
            if (params.cornerTrick) {
                // Corner-case marker: one mismatch at position 0, with
                // the disambiguation bit set (paper §5.1.4).
                count_codec.encode(arrays.mca, arrays.mcga, 1);
                pos_codec.encode(arrays.mmpa, arrays.mmpga, 0);
                arrays.mbta.writeBit(true); // Corner case, not mismatch.
            }
            const auto packed =
                packSequence(read.bases, OutputFormat::ThreeBit);
            escape_stream.insert(escape_stream.end(), packed.begin(),
                                 packed.end());
            continue;
        }

        // (The oriented read is not needed here: every edit op was
        // extracted against the oriented bases during prep, so pass 2
        // only replays cls.mapping — no per-read reverse complement.)
        const uint64_t primary = cls.mapping.primaryPosition();
        match_codec.encode(arrays.mpa, arrays.mpga,
                           config.reorderReads ? primary - prev_primary
                                               : primary);
        prev_primary = primary;

        // Extra segment descriptors.
        for (size_t s = 1; s < cls.mapping.segments.size(); s++) {
            const AlignedSegment &seg = cls.mapping.segments[s];
            segpos_codec.encode(arrays.sga, arrays.sgga, zigzagEncode(
                static_cast<int64_t>(seg.consensusPos)
                - static_cast<int64_t>(primary)));
            seglen_codec.encode(arrays.sga, arrays.sgga, seg.readLength);
        }

        bool first_event_of_read = true;
        for (const AlignedSegment &seg : cls.mapping.segments) {
            const auto ops = ops_of(seg);
            count_codec.encode(arrays.mca, arrays.mcga, ops.size());

            uint32_t prev_pos = 0;
            uint64_t cons_j = seg.consensusPos;
            uint32_t read_i = 0;
            for (const EditOp &op : ops) {
                pos_codec.encode(arrays.mmpa, arrays.mmpga,
                                 op.readPos - prev_pos);
                prev_pos = op.readPos;

                // Advance the consensus walk to the event position so
                // the type-inference marker is well defined.
                cons_j += op.readPos - read_i;
                read_i = op.readPos;

                if (params.cornerTrick && first_event_of_read &&
                    op.readPos == 0) {
                    arrays.mbta.writeBit(false); // Real mismatch at 0.
                }
                first_event_of_read = false;

                const uint64_t marker_j =
                    std::min<uint64_t>(cons_j, consensus.size() - 1);
                if (params.inferTypes) {
                    if (op.type == EditType::Sub) {
                        const uint8_t code = baseToCode(op.bases[0]);
                        sage_assert(code < 4, "N base in mapped read");
                        sage_assert(op.bases[0] != consensus[marker_j],
                                    "substitution equals consensus");
                        arrays.mbta.writeBits(code, 2);
                    } else {
                        // Indel marker: the consensus base itself.
                        arrays.mbta.writeBits(
                            baseToCode(consensus[marker_j]) & 3, 2);
                        arrays.mbta.writeBit(op.type == EditType::Ins);
                    }
                } else {
                    arrays.mbta.writeBits(
                        static_cast<uint64_t>(op.type), 2);
                    if (op.type != EditType::Del) {
                        for (char c : op.bases) {
                            const uint8_t code = baseToCode(c);
                            sage_assert(code < 4, "N base in mapped read");
                            arrays.mbta.writeBits(code, 2);
                        }
                    }
                }

                if (op.type != EditType::Sub) {
                    if (params.tuneArrays) {
                        // Single-base flag in MMPGA; longer lengths as
                        // chained 8-bit fields in MMPA (paper §5.1.1).
                        arrays.mmpga.writeBit(op.length == 1);
                        if (op.length != 1)
                            writeIndelLength(arrays.mmpa, op.length);
                    }
                    if (params.inferTypes &&
                        op.type == EditType::Ins) {
                        for (char c : op.bases)
                            arrays.mbta.writeBits(baseToCode(c) & 3, 2);
                    }
                }

                // Update walk state past the event.
                if (op.type == EditType::Sub) {
                    cons_j++;
                    read_i++;
                } else if (op.type == EditType::Ins) {
                    read_i += op.length;
                } else {
                    cons_j += op.length;
                }
            }
        }
    }

    // ---- Assemble container -------------------------------------------
    bundle.stream("params") = params.serialize();
    {
        std::vector<uint8_t> cons;
        auto packed = packSequence(
            consensus, params.consensusTwoBit ? OutputFormat::TwoBit
                                              : OutputFormat::ThreeBit);
        cons.insert(cons.end(), packed.begin(), packed.end());
        bundle.stream("consensus") = std::move(cons);
    }
    bundle.stream("flags") = arrays.flags.take();
    bundle.stream("mpa") = arrays.mpa.take();
    bundle.stream("mpga") = arrays.mpga.take();
    bundle.stream("rla") = arrays.rla.take();
    bundle.stream("rlga") = arrays.rlga.take();
    bundle.stream("sga") = arrays.sga.take();
    bundle.stream("sgga") = arrays.sgga.take();
    bundle.stream("mca") = arrays.mca.take();
    bundle.stream("mcga") = arrays.mcga.take();
    bundle.stream("mmpa") = arrays.mmpa.take();
    bundle.stream("mmpga") = arrays.mmpga.take();
    bundle.stream("mbta") = arrays.mbta.take();
    bundle.stream("escape") = std::move(escape_stream);
    if (chunk_reads > 0)
        bundle.stream("chunks") = chunk_table.serialize();

    // Host-side streams: headers (gpzip), order, quality (paper §5.1.5).
    {
        std::vector<uint8_t> headers;
        for (uint32_t src : prep.order) {
            const std::string &h = rs.reads[src].header;
            headers.insert(headers.end(), h.begin(), h.end());
            headers.push_back('\n');
        }
        bundle.stream("headers") =
            gpzip::compress(headers.data(), headers.size(), {}, pool);
    }
    if (config.preserveOrder) {
        std::vector<uint8_t> order;
        for (uint32_t src : prep.order)
            putVarint(order, src);
        bundle.stream("order") = std::move(order);
    }
    if (params.hasQuality) {
        std::vector<std::string> quals;
        quals.reserve(prep.order.size());
        for (uint32_t src : prep.order)
            quals.push_back(rs.reads[src].quals);
        const QualityArchive qa = compressQuality(quals, config.quality);
        std::vector<uint8_t> packed;
        putVarint(packed, qa.alphabet.size());
        packed.insert(packed.end(), qa.alphabet.begin(),
                      qa.alphabet.end());
        putVarint(packed, qa.readLengths.size());
        for (uint32_t len : qa.readLengths)
            putVarint(packed, len);
        putVarint(packed, qa.blocks.size());
        for (size_t b = 0; b < qa.blocks.size(); b++) {
            putVarint(packed, qa.blockChars[b]);
            putVarint(packed, qa.blocks[b].size());
            packed.insert(packed.end(), qa.blocks[b].begin(),
                          qa.blocks[b].end());
        }
        bundle.stream("quality") = std::move(packed);
    }

    archive.streamSizes = bundle.sizes();
    archive.encodeSeconds = encode_clock.seconds();
    for (const auto &[name, size] : archive.streamSizes) {
        if (name == "quality")
            archive.qualityBytes += size;
        else if (name == "headers" || name == "order")
            archive.metaBytes += size;
        else
            archive.dnaBytes += size;
    }
    return archive;
}

} // namespace sage
