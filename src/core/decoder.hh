/**
 * @file
 * SAGe streaming decompressor.
 *
 * Mirrors the hardware datapath (paper §5.2): a Scan Unit walk over the
 * position arrays/guide arrays and a Read Construction Unit walk over
 * the consensus and MBTA, emitting one read at a time with only
 * sequential accesses. The same functional core backs:
 *   - SAGeSW (host software decompression, paper §7 config v), and
 *   - the hardware timing model (hw/), which replays the stream sizes
 *     and event counts this decoder reports.
 *
 * Container v2 archives carry a chunk index (format.hh): each chunk is
 * an independently decodable slice of the read set, the software
 * analogue of the paper's per-Scan-Unit slices. decodeAll() and
 * decodeAllPacked() accept an optional ThreadPool and fan chunks out
 * across it, preserving output order; the sequential next() API walks
 * the chunks in order. v1 archives load as a single chunk.
 */

#ifndef SAGE_CORE_DECODER_HH
#define SAGE_CORE_DECODER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/format.hh"
#include "genomics/alphabet.hh"
#include "genomics/read.hh"

namespace sage {

class ThreadPool;

/** Per-archive structural info used by the hardware timing model. */
struct ArchiveInfo
{
    SageParams params;
    std::map<std::string, uint64_t> streamSizes;
    uint64_t totalCompressedBytes = 0;

    /** DNA-path bytes the accelerator must stream (no host streams). */
    uint64_t dnaStreamBytes() const;
};

/** Streaming decoder over a SAGe archive. */
class SageDecoder
{
  public:
    /**
     * Parse headers; cheap. The archive bytes must outlive us.
     *
     * @param dna_only skip the host-side quality/header streams: the
     *        read-mapping pipeline never touches quality scores (paper
     *        §5.1.5 — they are decoded lazily, per block, only around
     *        mismatches during later variant calling), so the prep
     *        stage feeding an accelerator decodes DNA alone.
     */
    explicit SageDecoder(const std::vector<uint8_t> &archive,
                         bool dna_only = false);
    ~SageDecoder();

    /** Structural info (sizes, params). */
    const ArchiveInfo &info() const { return info_; }

    /** Number of independently decodable chunks (1 for v1 archives). */
    size_t chunkCount() const { return chunks_.size(); }

    /** True while reads remain. */
    bool hasNext() const { return emitted_ < info_.params.numReads; }

    /**
     * Decode the next read's bases (and quality if present).
     * Reads come out in stored order (matching-position order).
     */
    Read next();

    /**
     * Decode everything into a ReadSet (restores original order when
     * the archive preserved it). With a pool and a multi-chunk archive,
     * chunks decode in parallel; the result is identical to the
     * sequential path.
     */
    ReadSet decodeAll(ThreadPool *pool = nullptr);

    /**
     * Decode everything into packed analysis format — what SAGe_Read
     * hands to an accelerator (paper §5.4): per-read packed bases.
     * Optionally chunk-parallel, like decodeAll().
     */
    std::vector<std::vector<uint8_t>>
    decodeAllPacked(OutputFormat fmt, ThreadPool *pool = nullptr);

    /** Decoder working-set bytes: registers + consensus window model.
     *  (The HW streams the consensus; software keeps it resident.) */
    uint64_t workingSetBytes() const;

    /** Total mismatch events decoded so far (HW model input). */
    uint64_t eventsDecoded() const { return events_; }

  private:
    struct ChunkCursor;

    /** Per-chunk slice bounds resolved from the chunk table. */
    struct ChunkSlice
    {
        uint64_t readCount = 0;
        uint64_t firstRead = 0;  ///< Prefix sum of readCount.
        std::array<uint64_t, kChunkStreamCount> offsets{};
    };

    /** Decode one read via @p cur; @p read_index is its stored-order
     *  position (indexes headers_/quals_). */
    Read decodeOne(ChunkCursor &cur, uint64_t read_index,
                   uint64_t &events);

    /** True when decodeAll/decodeAllPacked may fan chunks out. */
    bool canDecodeParallel(const ThreadPool *pool) const;

    /** Fan chunks across @p pool, calling sink(index, Read&&) for
     *  every read (indices are disjoint across workers); marks the
     *  decoder exhausted. Requires canDecodeParallel(pool). */
    template <typename Sink>
    void decodeParallel(ThreadPool *pool, const Sink &sink);

    const std::vector<uint8_t> *archiveBytes_;
    ArchiveInfo info_;
    std::string consensus_;

    // Stream storage (owned copies from the bundle).
    std::vector<uint8_t> flags_, mpa_, mpga_, rla_, rlga_, sga_, sgga_,
        mca_, mcga_, mmpa_, mmpga_, mbta_, escape_;
    std::vector<std::string> headers_;
    std::vector<std::string> quals_;
    std::vector<uint32_t> order_;

    // Field codecs are immutable after construction and shared by all
    // chunk cursors (decode() is const and thread-safe).
    std::unique_ptr<const TunedFieldCodec> matchCodec_, lenCodec_,
        countCodec_, posCodec_, segposCodec_, seglenCodec_;

    std::vector<ChunkSlice> chunks_;
    std::unique_ptr<ChunkCursor> cursor_;  ///< Sequential next() state.
    size_t nextChunk_ = 0;                 ///< Next chunk to open.
    uint64_t emitted_ = 0;
    uint64_t events_ = 0;
};

/** One-call convenience: decode a SAGe archive into a ReadSet. */
ReadSet sageDecompress(const std::vector<uint8_t> &archive);

} // namespace sage

#endif // SAGE_CORE_DECODER_HH
