/**
 * @file
 * SAGe streaming decompressor.
 *
 * Mirrors the hardware datapath (paper §5.2): a Scan Unit walk over the
 * position arrays/guide arrays and a Read Construction Unit walk over
 * the consensus and MBTA, emitting one read at a time with only
 * sequential accesses. The same functional core backs:
 *   - SAGeSW (host software decompression, paper §7 config v), and
 *   - the hardware timing model (hw/), which replays the stream sizes
 *     and event counts this decoder reports.
 *
 * The decoder reads the container through a ByteSource
 * (io/byte_stream.hh): headers, chunk table and consensus are parsed
 * up front (a few KB of reads), while the 13 DNA streams are fetched
 * per chunk, exactly when a chunk is opened. Over a FileSource this
 * decodes any chunk subrange without ever loading the full archive;
 * over a MemorySource the per-chunk fetches are zero-copy views. A
 * StripedSource (io/striped.hh) serves chunk fetches from a device
 * array (paper Fig. 15).
 *
 * Container v2 archives carry a chunk index (format.hh): each chunk is
 * an independently decodable slice of the read set, the software
 * analogue of the paper's per-Scan-Unit slices. decodeAll(),
 * decodeAllPacked() and decodeChunks() accept an optional ThreadPool
 * and fan chunks across it, preserving output order; the sequential
 * next() API walks the chunks in order. v1 archives load as a single
 * chunk.
 *
 * Most users should prefer the session API (io/session.hh:
 * SageWriter/SageReader) over constructing a SageDecoder directly.
 */

#ifndef SAGE_CORE_DECODER_HH
#define SAGE_CORE_DECODER_HH

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/format.hh"
#include "genomics/alphabet.hh"
#include "genomics/read.hh"
#include "io/byte_stream.hh"
#include "io/container.hh"

namespace sage {

class ThreadPool;

/** Per-archive structural info used by the hardware timing model. */
struct ArchiveInfo
{
    SageParams params;
    std::map<std::string, uint64_t> streamSizes;
    uint64_t totalCompressedBytes = 0;

    /** DNA-path bytes the accelerator must stream (no host streams). */
    uint64_t dnaStreamBytes() const;
};

/** Streaming decoder over a SAGe archive. */
class SageDecoder
{
  public:
    /**
     * Parse headers through @p source; cheap (the DNA streams are not
     * read until chunks are opened). The source must outlive us.
     *
     * @param dna_only skip the host-side quality/header streams: the
     *        read-mapping pipeline never touches quality scores (paper
     *        §5.1.5 — they are decoded lazily, per block, only around
     *        mismatches during later variant calling), so the prep
     *        stage feeding an accelerator decodes DNA alone.
     * @param verify_checksum stream the whole archive through CRC32
     *        before decoding (reads every byte; defeats the streaming
     *        constructor's laziness, so it is opt-in here).
     */
    explicit SageDecoder(const ByteSource &source, bool dna_only = false,
                         bool verify_checksum = false);

    /**
     * Legacy whole-buffer constructor: wraps @p archive in a
     * MemorySource and always verifies the container CRC (matching the
     * historical sageDecompress contract: any bit flip is fatal before
     * any read is produced). The archive bytes must outlive us.
     */
    explicit SageDecoder(const std::vector<uint8_t> &archive,
                         bool dna_only = false);
    ~SageDecoder();

    /**
     * Non-fatal open over untrusted bytes: every framing field, stream
     * table entry and header stream is bounds-checked, and any
     * malformed or unreadable input comes back as a Status
     * (Truncated/Corrupt/IoError/...) instead of killing the process.
     * The serving path (and anything else that must survive a bad
     * archive) opens through here; the fatal constructors remain the
     * CLI/batch contract.
     */
    static StatusOr<std::unique_ptr<SageDecoder>>
    tryOpen(const ByteSource &source, bool dna_only = false,
            bool verify_checksum = false);

    /** Structural info (sizes, params). */
    const ArchiveInfo &info() const { return info_; }

    /** Number of independently decodable chunks (1 for v1 archives). */
    size_t chunkCount() const { return chunks_.size(); }

    /** Reads stored in chunk @p chunk. */
    uint64_t chunkReadCount(size_t chunk) const;

    /** Stored-order index of chunk @p chunk's first read. */
    uint64_t chunkFirstRead(size_t chunk) const;

    /** Per-chunk compressed DNA bytes (slice sizes summed across the
     *  13 streams) — the I/O cost of fetching each chunk, used by the
     *  pipeline model to overlap chunk I/O with decode. */
    std::vector<uint64_t> chunkCompressedBytes() const;

    /** True while reads remain. */
    bool hasNext() const { return emitted_ < info_.params.numReads; }

    /**
     * Decode the next read's bases (and quality if present).
     * Reads come out in stored order (matching-position order).
     */
    Read next();

    /**
     * Decode chunks [@p first, @p first + @p count) into stored-order
     * reads, fetching only those chunks' byte slices from the source.
     * Independent of the sequential next() cursor and repeatable: it
     * never consumes decoder state, so the same range can be decoded
     * twice. No original-order restoration (the permutation is global);
     * reads match the corresponding decodeAll() slice in stored order.
     * With a pool, chunks in the range decode in parallel.
     */
    ReadSet decodeChunks(size_t first, size_t count,
                         ThreadPool *pool = nullptr);

    /**
     * Decode chunk @p chunk alone into stored-order reads — the
     * service layer's decode-into-cache entry point. Unlike the other
     * decode calls this touches no sequential, prefetch or event
     * state, so any number of threads may call it concurrently on one
     * decoder (each call fetches its own byte slices through the
     * thread-safe ByteSource and copies headers/quality rather than
     * consuming them; the same chunk decodes repeatably). Must not be
     * mixed with a concurrent decodeAll()/decodeAllPacked(), which
     * move the host streams out. Decoded mismatch events are not
     * added to eventsDecoded().
     */
    std::vector<Read> decodeChunkShared(size_t chunk);

    /**
     * Non-fatal flavor of decodeChunkShared(): I/O failures and
     * corrupt chunk data come back as a Status instead of aborting,
     * so one bad chunk degrades one request, not the process. Same
     * thread-safety contract as decodeChunkShared().
     */
    StatusOr<std::vector<Read>> tryDecodeChunkShared(size_t chunk);

    /**
     * Decode everything into a ReadSet (restores original order when
     * the archive preserved it). With a pool and a multi-chunk archive,
     * chunks decode in parallel; the result is identical to the
     * sequential path. One-shot: headers and quality strings move out
     * of the decoder, so later decodeChunks() calls see them empty.
     */
    ReadSet decodeAll(ThreadPool *pool = nullptr);

    /**
     * Decode everything into packed analysis format — what SAGe_Read
     * hands to an accelerator (paper §5.4): per-read packed bases.
     * Optionally chunk-parallel, like decodeAll().
     */
    std::vector<std::vector<uint8_t>>
    decodeAllPacked(OutputFormat fmt, ThreadPool *pool = nullptr);

    /**
     * Enable prefetch-next-chunk mode: while the sequential decode
     * paths (next(), and decodeChunks()/decodeAll() without a decode
     * pool) work through chunk i, a task on @p pool fetches chunk
     * i+1's byte slices through the ByteSource, so real FileSource /
     * StripedSource I/O overlaps decode — the host-software analogue
     * of the paper's NAND-streaming/decode double buffering (§5.2.2).
     * Output is byte-identical to non-prefetched decoding.
     *
     * The pool must outlive this decoder (one thread is enough: the
     * fetch task blocks on pread, not CPU). Pass nullptr to disable.
     * Chunk-parallel decodes ignore the prefetcher — their workers
     * already overlap fetch and decode per chunk.
     */
    void setPrefetchPool(ThreadPool *pool);

    /** Decoder working-set bytes: registers + consensus window model.
     *  (The HW streams the consensus; software keeps it resident.) */
    uint64_t workingSetBytes() const;

    /** Total mismatch events decoded so far (HW model input). */
    uint64_t eventsDecoded() const { return events_; }

  private:
    struct ChunkCursor;

    /** Per-chunk slice bounds resolved from the chunk table. */
    struct ChunkSlice
    {
        uint64_t readCount = 0;
        uint64_t firstRead = 0;  ///< Prefix sum of readCount.
        std::array<uint64_t, kChunkStreamCount> offsets{};
        std::array<uint64_t, kChunkStreamCount> sizes{};
    };

    /** One chunk's byte slices, owned (the prefetcher's payload). */
    struct ChunkBytes
    {
        std::array<std::vector<uint8_t>, kChunkStreamCount> streams;
    };

    /** tryOpen's blank instance; every member has a safe default. */
    SageDecoder() = default;

    void parseContainer(bool dna_only);

    /** Status-returning core of parseContainer: parses and validates
     *  untrusted container framing, stream tables and host streams. */
    Status tryParseContainer(bool dna_only);

    /** Synchronously read every stream slice of @p slice. */
    ChunkBytes fetchChunkBytes(const ChunkSlice &slice) const;

    /** Non-fatal fetch of every stream slice of @p slice. */
    StatusOr<ChunkBytes> tryFetchChunkBytes(const ChunkSlice &slice) const;

    /** Queue a background fetch of chunk @p chunk (requires an idle
     *  prefetch slot; callers take the slot first). */
    void startPrefetch(size_t chunk);

    /** Claim the prefetch slot: wait out any in-flight fetch, then
     *  move its payload into @p out when it was for @p chunk.
     *  Leaves the slot idle. Returns whether @p out was filled. */
    bool takePrefetched(size_t chunk, ChunkBytes &out);

    /** Open chunk @p index for sequential decode: consume a matching
     *  prefetched payload (or fetch in line), then kick off the fetch
     *  of chunk @p index+1 when prefetching is on. */
    std::unique_ptr<ChunkCursor> openChunk(size_t index);

    /** Decode one read via @p cur; @p read_index is its stored-order
     *  position (indexes headers_/quals_). @p consume_host moves the
     *  header/quality strings out (one-shot paths) instead of copying
     *  (repeatable random access). */
    Read decodeOne(ChunkCursor &cur, uint64_t read_index,
                   uint64_t &events, bool consume_host);

    /** True when a chunk range may fan out across @p pool. */
    bool canDecodeParallel(const ThreadPool *pool, size_t count) const;

    /** Fan chunks [first, first+count) across @p pool, calling
     *  sink(index, Read&&) for every read (indices are disjoint across
     *  workers). Requires canDecodeParallel(pool, count). */
    template <typename Sink>
    void decodeParallel(ThreadPool *pool, size_t first, size_t count,
                        bool consume_host, const Sink &sink);

    /** Owned backing for the legacy vector constructor. */
    std::unique_ptr<MemorySource> ownedSource_;
    const ByteSource *source_ = nullptr;
    StreamDirectory dir_;
    /** Absolute extents of the 13 DNA streams, ChunkStreamIndex order. */
    std::array<StreamExtent, kChunkStreamCount> dnaExtents_{};

    ArchiveInfo info_;
    std::string consensus_;

    // Host-side streams (owned; indexed by stored-order read index).
    std::vector<std::string> headers_;
    std::vector<std::string> quals_;
    std::vector<uint32_t> order_;

    // Field codecs are immutable after construction and shared by all
    // chunk cursors (decode() is const and thread-safe).
    std::unique_ptr<const TunedFieldCodec> matchCodec_, lenCodec_,
        countCodec_, posCodec_, segposCodec_, seglenCodec_;

    std::vector<ChunkSlice> chunks_;
    std::unique_ptr<ChunkCursor> cursor_;  ///< Sequential next() state.
    size_t nextChunk_ = 0;                 ///< Next chunk to open.
    uint64_t emitted_ = 0;
    uint64_t events_ = 0;

    // Prefetch-next-chunk state: a one-deep slot (double buffering —
    // the chunk being decoded plus the chunk in flight, exactly the
    // paper's two decompression-window registers).
    enum class PrefetchState { Idle, InFlight, Ready };
    ThreadPool *prefetchPool_ = nullptr;
    std::mutex prefetchMutex_;
    std::condition_variable prefetchCv_;
    PrefetchState prefetchState_ = PrefetchState::Idle;
    size_t prefetchChunk_ = 0;      ///< Chunk the slot refers to.
    ChunkBytes prefetchBytes_;      ///< Payload when Ready.
    /** Last chunk openChunk() served; SIZE_MAX before the first open.
     *  Speculation continues only across sequential opens. */
    size_t lastOpenedChunk_ = SIZE_MAX;
};

/** One-call convenience: decode a SAGe archive into a ReadSet. */
ReadSet sageDecompress(const std::vector<uint8_t> &archive);

} // namespace sage

#endif // SAGE_CORE_DECODER_HH
