/**
 * @file
 * SAGe compressor (paper §5.1): encodes a read set into the tuned
 * array/guide-array container defined in format.hh.
 *
 * Compression runs on the host and is not on the analysis critical path
 * (paper Fig. 5b, §8.6); decompression is the latency-critical side and
 * lives in decoder.hh (software) and hw/ (hardware model).
 */

#ifndef SAGE_CORE_ENCODER_HH
#define SAGE_CORE_ENCODER_HH

#include <string_view>

#include "core/format.hh"
#include "genomics/read.hh"

namespace sage {

class StreamBundle;
class ThreadPool;

/**
 * Compress @p rs against @p consensus.
 *
 * The consensus (an approximation of the organism's genome — here a
 * user-provided reference, paper §2.2) is stored inside the archive so
 * the output is self-contained.
 */
SageArchive sageCompress(const ReadSet &rs, std::string_view consensus,
                         const SageConfig &config = {},
                         ThreadPool *pool = nullptr);

/**
 * Core of sageCompress: encode into the container's stream set without
 * serializing it. The returned SageArchive carries all the accounting
 * (sizes, timings) but an empty `bytes` — callers either serialize the
 * bundle into one buffer (sageCompress) or stream it straight to a
 * ByteSink (io/session.hh: SageWriter), never holding both the streams
 * and a second full copy of the archive.
 */
SageArchive sageEncodeToBundle(const ReadSet &rs,
                               std::string_view consensus,
                               const SageConfig &config,
                               ThreadPool *pool, StreamBundle &bundle);

} // namespace sage

#endif // SAGE_CORE_ENCODER_HH
