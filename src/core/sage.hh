/**
 * @file
 * Umbrella header for the SAGe core library: everything a downstream
 * user needs to compress, store and decompress genomic read sets with
 * the SAGe format.
 *
 * Quickstart:
 * @code
 *   sage::SageArchive ar = sage::sageCompress(read_set, reference);
 *   sage::ReadSet back = sage::sageDecompress(ar.bytes);
 * @endcode
 *
 * For storage/accelerator integration see ssd/sage_device.hh
 * (SAGe_Read / SAGe_Write interface commands) and hw/sage_hw.hh
 * (decompression hardware model).
 */

#ifndef SAGE_CORE_SAGE_HH
#define SAGE_CORE_SAGE_HH

#include "core/decoder.hh"
#include "core/encoder.hh"
#include "core/format.hh"
#include "core/tuned_array.hh"
#include "core/version.hh"

#endif // SAGE_CORE_SAGE_HH
