/**
 * @file
 * Umbrella header for the SAGe core library: everything a downstream
 * user needs to compress, store and decompress genomic read sets with
 * the SAGe format.
 *
 * Quickstart — streaming sessions (io/session.hh):
 * @code
 *   sage::SageWriter writer("reads.sage");
 *   writer.add(read_set);
 *   writer.finish(reference);                    // streams to disk
 *
 *   sage::SageReader reader("reads.sage");       // header-only open
 *   sage::ReadSet all = reader.decodeAll();      // or:
 *   sage::ReadSet part = reader.decodeRange(2, 3);  // chunks 2..4 only
 * @endcode
 *
 * The whole-buffer wrappers remain for callers that hold archives in
 * memory:
 * @code
 *   sage::SageArchive ar = sage::sageCompress(read_set, reference);
 *   sage::ReadSet back = sage::sageDecompress(ar.bytes);
 * @endcode
 *
 * To serve one archive to many concurrent clients, open it through
 * service/service.hh instead (decoded-chunk cache + request
 * scheduling):
 * @code
 *   sage::SageArchiveService service("reads.sage");
 *   sage::ServiceSession client = service.openSession();
 *   while (client.hasNext()) process(client.next());
 * @endcode
 *
 * For storage/accelerator integration see ssd/sage_device.hh
 * (SAGe_Read / SAGe_Write interface commands, per-chunk LPN extents),
 * ssd/device_array.hh (chunk striping across a device array, Fig. 15)
 * and hw/sage_hw.hh (decompression hardware model).
 */

#ifndef SAGE_CORE_SAGE_HH
#define SAGE_CORE_SAGE_HH

#include "core/decoder.hh"
#include "core/encoder.hh"
#include "core/format.hh"
#include "core/tuned_array.hh"
#include "core/version.hh"
#include "io/session.hh"
#include "net/chaos_proxy.hh"
#include "net/client.hh"
#include "net/multi_archive.hh"
#include "net/resilient_client.hh"
#include "net/server.hh"
#include "service/service.hh"

#endif // SAGE_CORE_SAGE_HH
