#include "core/decoder.hh"

#include <memory>

#include "compress/gpzip.hh"
#include "compress/streams.hh"
#include "core/tuned_array.hh"
#include "util/bitio.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"
#include "util/varint.hh"

namespace sage {

uint64_t
ArchiveInfo::dnaStreamBytes() const
{
    uint64_t total = 0;
    for (const auto &[name, size] : streamSizes) {
        if (name != "quality" && name != "headers" && name != "order")
            total += size;
    }
    return total;
}

/**
 * All stream cursors for one chunk. Chunks are byte-aligned and carry
 * no cross-chunk delta state (format.hh), so a cursor built from the
 * chunk-table offsets decodes its slice with no predecessor knowledge —
 * that independence is what the parallel decode path exploits.
 */
struct SageDecoder::ChunkCursor
{
    ChunkCursor(const SageDecoder &d, const ChunkSlice &slice)
        : flags(sub(d.flags_, slice.offsets[kChunkFlags])),
          mpa(sub(d.mpa_, slice.offsets[kChunkMpa])),
          mpga(sub(d.mpga_, slice.offsets[kChunkMpga])),
          rla(sub(d.rla_, slice.offsets[kChunkRla])),
          rlga(sub(d.rlga_, slice.offsets[kChunkRlga])),
          sga(sub(d.sga_, slice.offsets[kChunkSga])),
          sgga(sub(d.sgga_, slice.offsets[kChunkSgga])),
          mca(sub(d.mca_, slice.offsets[kChunkMca])),
          mcga(sub(d.mcga_, slice.offsets[kChunkMcga])),
          mmpa(sub(d.mmpa_, slice.offsets[kChunkMmpa])),
          mmpga(sub(d.mmpga_, slice.offsets[kChunkMmpga])),
          mbta(sub(d.mbta_, slice.offsets[kChunkMbta])),
          escapeByte(slice.offsets[kChunkEscape]),
          remaining(slice.readCount)
    {}

    static BitReader
    sub(const std::vector<uint8_t> &stream, uint64_t offset)
    {
        sage_assert(offset <= stream.size(),
                    "chunk offset past stream end");
        return BitReader(stream.data() + offset, stream.size() - offset);
    }

    BitReader flags, mpa, mpga, rla, rlga, sga, sgga, mca, mcga,
        mmpa, mmpga, mbta;
    /** Escape payloads are whole 3-bit-packed byte blocks, so a plain
     *  byte cursor replaces a bit reader here. */
    size_t escapeByte;
    uint64_t prevPrimary = 0;
    uint64_t remaining;
};

SageDecoder::SageDecoder(const std::vector<uint8_t> &archive,
                         bool dna_only)
    : archiveBytes_(&archive)
{
    StreamBundle bundle = StreamBundle::deserialize(archive);
    info_.params = SageParams::deserialize(bundle.stream("params"));
    info_.streamSizes = bundle.sizes();
    info_.totalCompressedBytes = archive.size();

    const SageParams &params = info_.params;
    consensus_ = unpackSequence(
        bundle.stream("consensus"), params.consensusLength,
        params.consensusTwoBit ? OutputFormat::TwoBit
                               : OutputFormat::ThreeBit);

    flags_ = bundle.stream("flags");
    mpa_ = bundle.stream("mpa");
    mpga_ = bundle.stream("mpga");
    rla_ = bundle.stream("rla");
    rlga_ = bundle.stream("rlga");
    sga_ = bundle.stream("sga");
    sgga_ = bundle.stream("sgga");
    mca_ = bundle.stream("mca");
    mcga_ = bundle.stream("mcga");
    mmpa_ = bundle.stream("mmpa");
    mmpga_ = bundle.stream("mmpga");
    mbta_ = bundle.stream("mbta");
    escape_ = bundle.stream("escape");

    // Host-side streams (skipped entirely in DNA-only mode).
    if (!dna_only) {
        const auto header_bytes = gpzip::decompress(
            bundle.stream("headers"));
        std::string cur;
        for (uint8_t byte : header_bytes) {
            if (byte == '\n') {
                headers_.push_back(cur);
                cur.clear();
            } else {
                cur.push_back(static_cast<char>(byte));
            }
        }
    }
    if (bundle.has("order")) {
        const auto &order_raw = bundle.stream("order");
        size_t pos = 0;
        while (pos < order_raw.size())
            order_.push_back(
                static_cast<uint32_t>(getVarint(order_raw, pos)));
    }
    if (!dna_only && params.hasQuality && bundle.has("quality")) {
        const auto &packed = bundle.stream("quality");
        QualityArchive qa;
        size_t pos = 0;
        const uint64_t alpha_len = getVarint(packed, pos);
        qa.alphabet.assign(packed.begin() + pos,
                           packed.begin() + pos + alpha_len);
        pos += alpha_len;
        const uint64_t reads = getVarint(packed, pos);
        for (uint64_t i = 0; i < reads; i++)
            qa.readLengths.push_back(
                static_cast<uint32_t>(getVarint(packed, pos)));
        const uint64_t blocks = getVarint(packed, pos);
        for (uint64_t b = 0; b < blocks; b++) {
            qa.blockChars.push_back(getVarint(packed, pos));
            const uint64_t size = getVarint(packed, pos);
            qa.blocks.emplace_back(packed.begin() + pos,
                                   packed.begin() + pos + size);
            pos += size;
        }
        quals_ = decompressQuality(qa);
    }

    matchCodec_ = std::make_unique<TunedFieldCodec>(params.matchPos);
    lenCodec_ = std::make_unique<TunedFieldCodec>(params.readLen);
    countCodec_ = std::make_unique<TunedFieldCodec>(params.mismatchCount);
    posCodec_ = std::make_unique<TunedFieldCodec>(params.mismatchPos);
    segposCodec_ = std::make_unique<TunedFieldCodec>(params.segPos);
    seglenCodec_ = std::make_unique<TunedFieldCodec>(params.segLen);

    // Chunk index: v2 archives carry one; a v1 archive is one chunk
    // spanning every stream from offset zero.
    if (params.version >= kFormatVersionChunked) {
        const ChunkTable table =
            ChunkTable::deserialize(bundle.stream("chunks"));
        chunks_.reserve(table.entries.size());
        uint64_t first = 0;
        for (const ChunkTable::Entry &entry : table.entries) {
            ChunkSlice slice;
            slice.readCount = entry.readCount;
            slice.firstRead = first;
            slice.offsets = entry.offsets;
            chunks_.push_back(slice);
            first += entry.readCount;
        }
        sage_assert(first == params.numReads,
                    "chunk table disagrees with read count");
    } else {
        ChunkSlice slice;
        slice.readCount = params.numReads;
        chunks_.push_back(slice);
    }
}

SageDecoder::~SageDecoder() = default;

Read
SageDecoder::decodeOne(ChunkCursor &cur, uint64_t read_index,
                       uint64_t &events)
{
    const SageParams &params = info_.params;

    Read read;
    // Headers and quality strings are emitted exactly once per read, so
    // they move out of the decoder instead of being copied.
    if (read_index < headers_.size())
        read.header = std::move(headers_[read_index]);

    // ---- Flags --------------------------------------------------------
    const bool reverse = cur.flags.readBit();
    unsigned extra_segments = 0;
    if (params.maxSegments > 1)
        extra_segments = cur.flags.readUnary();
    bool escaped = false;
    if (!params.cornerTrick)
        escaped = cur.flags.readBit();

    // ---- Read length ----------------------------------------------------
    uint64_t length = params.modalReadLength;
    if (!params.constantReadLength) {
        const int64_t len_delta =
            zigzagDecode(lenCodec_->decode(cur.rla, cur.rlga));
        length = static_cast<uint64_t>(
            static_cast<int64_t>(params.modalReadLength) + len_delta);
    }

    // Escape payloads are 3-bit packed into whole bytes, so the read
    // copies out of the stream directly instead of 8 bits at a time.
    auto take_escape = [&] {
        const size_t packed_bytes = (length * 3 + 7) / 8;
        sage_assert(cur.escapeByte + packed_bytes <= escape_.size(),
                    "escape stream underrun");
        read.bases = unpackSequence(escape_.data() + cur.escapeByte,
                                    packed_bytes, length,
                                    OutputFormat::ThreeBit);
        cur.escapeByte += packed_bytes;
        if (read_index < quals_.size())
            read.quals = std::move(quals_[read_index]);
    };

    // ---- Matching position ---------------------------------------------
    const uint64_t match_field = matchCodec_->decode(cur.mpa, cur.mpga);
    const uint64_t primary = params.reorderReads
        ? cur.prevPrimary + match_field : match_field;

    if (!params.cornerTrick && escaped) {
        // Pre-O4 escape: payload only.
        take_escape();
        return read;
    }

    // ---- Segment table ---------------------------------------------------
    struct SegInfo { uint64_t consPos; uint64_t readLen; };
    std::vector<SegInfo> segs(1 + extra_segments);
    segs[0].consPos = primary;
    uint64_t other_len = 0;
    for (unsigned s = 1; s <= extra_segments; s++) {
        const int64_t delta =
            zigzagDecode(segposCodec_->decode(cur.sga, cur.sgga));
        segs[s].consPos = static_cast<uint64_t>(
            static_cast<int64_t>(primary) + delta);
        segs[s].readLen = seglenCodec_->decode(cur.sga, cur.sgga);
        other_len += segs[s].readLen;
    }
    segs[0].readLen = length - other_len;

    // ---- Events + reconstruction (the RCU walk) --------------------------
    std::string oriented;
    oriented.reserve(length);
    bool first_event_of_read = true;

    for (const SegInfo &seg : segs) {
        const uint64_t count = countCodec_->decode(cur.mca, cur.mcga);
        uint64_t cons_j = seg.consPos;
        uint64_t read_i = 0;   // Position within this segment.
        uint32_t prev_pos = 0;

        for (uint64_t e = 0; e < count; e++) {
            const uint64_t delta = posCodec_->decode(cur.mmpa,
                                                     cur.mmpga);
            const uint64_t event_pos = e == 0 ? delta : prev_pos + delta;
            prev_pos = static_cast<uint32_t>(event_pos);

            // Corner-case disambiguation (paper §5.1.4): a first event
            // at position 0 carries one MBTA bit.
            if (params.cornerTrick && first_event_of_read &&
                event_pos == 0) {
                first_event_of_read = false;
                if (cur.mbta.readBit()) {
                    // Corner case: whole read comes from the escape
                    // stream, 3-bit packed.
                    take_escape();
                    return read;
                }
            }
            first_event_of_read = false;
            events++;

            // Copy the consensus run up to the event position.
            if (read_i < event_pos) {
                const uint64_t run = event_pos - read_i;
                sage_assert(cons_j + run <= consensus_.size(),
                            "decoder ran off consensus");
                oriented.append(consensus_, static_cast<size_t>(cons_j),
                                static_cast<size_t>(run));
                cons_j += run;
                read_i = event_pos;
            }

            const uint64_t marker_j =
                std::min<uint64_t>(cons_j, consensus_.size() - 1);

            EditType type;
            char sub_base = 0;
            if (params.inferTypes) {
                const uint8_t code =
                    static_cast<uint8_t>(cur.mbta.readBits(2));
                const char base = codeToBase(code);
                if (base != consensus_[marker_j]) {
                    type = EditType::Sub;
                    sub_base = base;
                } else {
                    type = cur.mbta.readBit() ? EditType::Ins
                                              : EditType::Del;
                }
            } else {
                type = static_cast<EditType>(cur.mbta.readBits(2));
                if (type == EditType::Sub) {
                    sub_base = codeToBase(
                        static_cast<uint8_t>(cur.mbta.readBits(2)));
                }
            }

            uint64_t block_len = 1;
            if (type != EditType::Sub && params.tuneArrays) {
                const bool single = cur.mmpga.readBit();
                if (!single) {
                    block_len = 0;
                    uint64_t chunk;
                    do {
                        chunk = cur.mmpa.readBits(8);
                        block_len += chunk;
                    } while (chunk == 255);
                }
            }

            switch (type) {
              case EditType::Sub:
                oriented.push_back(sub_base);
                read_i++;
                cons_j++;
                break;
              case EditType::Ins:
                // Inserted bases follow in MBTA in both layouts: after
                // the indel marker (inferTypes) or after the explicit
                // type code (pre-O3).
                for (uint64_t b = 0; b < block_len; b++) {
                    oriented.push_back(codeToBase(
                        static_cast<uint8_t>(cur.mbta.readBits(2))));
                }
                read_i += block_len;
                break;
              case EditType::Del:
                cons_j += block_len;
                break;
            }
        }
        // Copy the segment's tail in one run.
        if (read_i < seg.readLen) {
            const uint64_t run = seg.readLen - read_i;
            sage_assert(cons_j + run <= consensus_.size(),
                        "decoder ran off consensus at tail");
            oriented.append(consensus_, static_cast<size_t>(cons_j),
                            static_cast<size_t>(run));
        }
    }

    cur.prevPrimary = primary;
    read.bases = reverse ? reverseComplement(oriented)
                         : std::move(oriented);
    if (read_index < quals_.size())
        read.quals = std::move(quals_[read_index]);
    return read;
}

Read
SageDecoder::next()
{
    sage_assert(hasNext(), "decoder exhausted");
    while (!cursor_ || cursor_->remaining == 0) {
        sage_assert(nextChunk_ < chunks_.size(),
                    "chunk table exhausted before read count");
        cursor_ = std::make_unique<ChunkCursor>(*this,
                                                chunks_[nextChunk_++]);
    }
    cursor_->remaining--;
    Read read = decodeOne(*cursor_, emitted_, events_);
    emitted_++;
    return read;
}

bool
SageDecoder::canDecodeParallel(const ThreadPool *pool) const
{
    return pool && pool->threadCount() > 1 && chunks_.size() > 1 &&
        emitted_ == 0;
}

// Chunks are independent slices: decode them concurrently, each worker
// delivering to disjoint stored-order indices (so stored order is
// preserved by construction, and headers/quals move out race-free).
template <typename Sink>
void
SageDecoder::decodeParallel(ThreadPool *pool, const Sink &sink)
{
    std::vector<uint64_t> chunk_events(chunks_.size(), 0);
    pool->parallelFor(chunks_.size(), [&](size_t c) {
        const ChunkSlice &slice = chunks_[c];
        ChunkCursor cur(*this, slice);
        for (uint64_t r = 0; r < slice.readCount; r++) {
            const uint64_t idx = slice.firstRead + r;
            sink(idx, decodeOne(cur, idx, chunk_events[c]));
        }
    });
    for (uint64_t e : chunk_events)
        events_ += e;
    emitted_ = info_.params.numReads;
}

ReadSet
SageDecoder::decodeAll(ThreadPool *pool)
{
    ReadSet rs;
    const uint64_t total = info_.params.numReads;

    if (canDecodeParallel(pool)) {
        rs.reads.resize(total);
        decodeParallel(pool, [&](uint64_t idx, Read &&read) {
            rs.reads[idx] = std::move(read);
        });
    } else {
        rs.reads.reserve(total - emitted_);
        while (hasNext())
            rs.reads.push_back(next());
    }

    if (!order_.empty()) {
        std::vector<Read> restored(rs.reads.size());
        for (size_t i = 0; i < rs.reads.size(); i++) {
            sage_assert(order_[i] < restored.size(), "bad order index");
            restored[order_[i]] = std::move(rs.reads[i]);
        }
        rs.reads = std::move(restored);
    }
    return rs;
}

std::vector<std::vector<uint8_t>>
SageDecoder::decodeAllPacked(OutputFormat fmt, ThreadPool *pool)
{
    auto pack = [fmt](const Read &read) {
        const OutputFormat effective =
            fmt == OutputFormat::TwoBit && !isAcgtOnly(read.bases)
                ? OutputFormat::ThreeBit : fmt;
        return packSequence(read.bases, effective);
    };

    std::vector<std::vector<uint8_t>> out;
    const uint64_t total = info_.params.numReads;

    if (canDecodeParallel(pool)) {
        out.resize(total);
        decodeParallel(pool, [&](uint64_t idx, Read &&read) {
            out[idx] = pack(read);
        });
    } else {
        out.reserve(total - emitted_);
        while (hasNext())
            out.push_back(pack(next()));
    }
    return out;
}

uint64_t
SageDecoder::workingSetBytes() const
{
    // The software decoder keeps the consensus resident plus one
    // chunk's stream cursors; the paper's hardware needs only registers
    // (Table 3 lists 128 B for SAGe): byte-sized array registers, the
    // 150-bp reconstruction register and two 64-bit double-buffer
    // registers.
    return consensus_.size() + sizeof(ChunkCursor);
}

ReadSet
sageDecompress(const std::vector<uint8_t> &archive)
{
    SageDecoder decoder(archive);
    return decoder.decodeAll();
}

} // namespace sage
