#include "core/decoder.hh"

#include <memory>

#include "compress/gpzip.hh"
#include "compress/streams.hh"
#include "core/tuned_array.hh"
#include "util/bitio.hh"
#include "util/logging.hh"
#include "util/varint.hh"

namespace sage {

uint64_t
ArchiveInfo::dnaStreamBytes() const
{
    uint64_t total = 0;
    for (const auto &[name, size] : streamSizes) {
        if (name != "quality" && name != "headers" && name != "order")
            total += size;
    }
    return total;
}

/** All sequential stream cursors, bundled so next() stays readable. */
struct SageDecoder::Cursors
{
    Cursors(const SageDecoder &d, const SageParams &p)
        : flags(d.flags_), mpa(d.mpa_), mpga(d.mpga_), rla(d.rla_),
          rlga(d.rlga_), sga(d.sga_), sgga(d.sgga_), mca(d.mca_),
          mcga(d.mcga_), mmpa(d.mmpa_), mmpga(d.mmpga_), mbta(d.mbta_),
          escape(d.escape_),
          matchCodec(p.matchPos), lenCodec(p.readLen),
          countCodec(p.mismatchCount), posCodec(p.mismatchPos),
          segposCodec(p.segPos), seglenCodec(p.segLen)
    {}

    BitReader flags, mpa, mpga, rla, rlga, sga, sgga, mca, mcga,
        mmpa, mmpga, mbta, escape;
    TunedFieldCodec matchCodec, lenCodec, countCodec, posCodec,
        segposCodec, seglenCodec;
};

SageDecoder::SageDecoder(const std::vector<uint8_t> &archive,
                         bool dna_only)
    : archiveBytes_(&archive)
{
    StreamBundle bundle = StreamBundle::deserialize(archive);
    info_.params = SageParams::deserialize(bundle.stream("params"));
    info_.streamSizes = bundle.sizes();
    info_.totalCompressedBytes = archive.size();

    const SageParams &params = info_.params;
    consensus_ = unpackSequence(
        bundle.stream("consensus"), params.consensusLength,
        params.consensusTwoBit ? OutputFormat::TwoBit
                               : OutputFormat::ThreeBit);

    flags_ = bundle.stream("flags");
    mpa_ = bundle.stream("mpa");
    mpga_ = bundle.stream("mpga");
    rla_ = bundle.stream("rla");
    rlga_ = bundle.stream("rlga");
    sga_ = bundle.stream("sga");
    sgga_ = bundle.stream("sgga");
    mca_ = bundle.stream("mca");
    mcga_ = bundle.stream("mcga");
    mmpa_ = bundle.stream("mmpa");
    mmpga_ = bundle.stream("mmpga");
    mbta_ = bundle.stream("mbta");
    escape_ = bundle.stream("escape");

    // Host-side streams (skipped entirely in DNA-only mode).
    if (!dna_only) {
        const auto header_bytes = gpzip::decompress(
            bundle.stream("headers"));
        std::string cur;
        for (uint8_t byte : header_bytes) {
            if (byte == '\n') {
                headers_.push_back(cur);
                cur.clear();
            } else {
                cur.push_back(static_cast<char>(byte));
            }
        }
    }
    if (bundle.has("order")) {
        const auto &order_raw = bundle.stream("order");
        size_t pos = 0;
        while (pos < order_raw.size())
            order_.push_back(
                static_cast<uint32_t>(getVarint(order_raw, pos)));
    }
    if (!dna_only && params.hasQuality && bundle.has("quality")) {
        const auto &packed = bundle.stream("quality");
        QualityArchive qa;
        size_t pos = 0;
        const uint64_t alpha_len = getVarint(packed, pos);
        qa.alphabet.assign(packed.begin() + pos,
                           packed.begin() + pos + alpha_len);
        pos += alpha_len;
        const uint64_t reads = getVarint(packed, pos);
        for (uint64_t i = 0; i < reads; i++)
            qa.readLengths.push_back(
                static_cast<uint32_t>(getVarint(packed, pos)));
        const uint64_t blocks = getVarint(packed, pos);
        for (uint64_t b = 0; b < blocks; b++) {
            qa.blockChars.push_back(getVarint(packed, pos));
            const uint64_t size = getVarint(packed, pos);
            qa.blocks.emplace_back(packed.begin() + pos,
                                   packed.begin() + pos + size);
            pos += size;
        }
        quals_ = decompressQuality(qa);
    }

    cursors_ = std::make_unique<Cursors>(*this, params);
}

SageDecoder::~SageDecoder() = default;

Read
SageDecoder::next()
{
    sage_assert(hasNext(), "decoder exhausted");
    const SageParams &params = info_.params;
    Cursors &cur = *cursors_;

    Read read;
    if (emitted_ < headers_.size())
        read.header = headers_[emitted_];

    // ---- Flags --------------------------------------------------------
    const bool reverse = cur.flags.readBit();
    unsigned extra_segments = 0;
    if (params.maxSegments > 1)
        extra_segments = cur.flags.readUnary();
    bool escaped = false;
    if (!params.cornerTrick)
        escaped = cur.flags.readBit();

    // ---- Read length ----------------------------------------------------
    uint64_t length = params.modalReadLength;
    if (!params.constantReadLength) {
        const int64_t len_delta =
            zigzagDecode(cur.lenCodec.decode(cur.rla, cur.rlga));
        length = static_cast<uint64_t>(
            static_cast<int64_t>(params.modalReadLength) + len_delta);
    }

    // ---- Matching position ---------------------------------------------
    const uint64_t match_field = cur.matchCodec.decode(cur.mpa, cur.mpga);
    const uint64_t primary = params.reorderReads
        ? prevPrimary_ + match_field : match_field;

    if (!params.cornerTrick && escaped) {
        // Pre-O4 escape: payload only.
        const size_t packed_bytes = (length * 3 + 7) / 8;
        std::vector<uint8_t> packed(packed_bytes);
        for (size_t b = 0; b < packed_bytes; b++)
            packed[b] = static_cast<uint8_t>(cur.escape.readBits(8));
        read.bases = unpackSequence(packed, length,
                                    OutputFormat::ThreeBit);
        if (!quals_.empty())
            read.quals = quals_[emitted_];
        emitted_++;
        return read;
    }

    // ---- Segment table ---------------------------------------------------
    struct SegInfo { uint64_t consPos; uint64_t readLen; };
    std::vector<SegInfo> segs(1 + extra_segments);
    segs[0].consPos = primary;
    uint64_t other_len = 0;
    for (unsigned s = 1; s <= extra_segments; s++) {
        const int64_t delta =
            zigzagDecode(cur.segposCodec.decode(cur.sga, cur.sgga));
        segs[s].consPos = static_cast<uint64_t>(
            static_cast<int64_t>(primary) + delta);
        segs[s].readLen = cur.seglenCodec.decode(cur.sga, cur.sgga);
        other_len += segs[s].readLen;
    }
    segs[0].readLen = length - other_len;

    // ---- Events + reconstruction (the RCU walk) --------------------------
    std::string oriented;
    oriented.reserve(length);
    bool first_event_of_read = true;

    for (const SegInfo &seg : segs) {
        const uint64_t count = cur.countCodec.decode(cur.mca, cur.mcga);
        uint64_t cons_j = seg.consPos;
        uint64_t read_i = 0;   // Position within this segment.
        uint32_t prev_pos = 0;

        for (uint64_t e = 0; e < count; e++) {
            const uint64_t delta = cur.posCodec.decode(cur.mmpa,
                                                       cur.mmpga);
            const uint64_t event_pos = e == 0 ? delta : prev_pos + delta;
            prev_pos = static_cast<uint32_t>(event_pos);

            // Corner-case disambiguation (paper §5.1.4): a first event
            // at position 0 carries one MBTA bit.
            if (params.cornerTrick && first_event_of_read &&
                event_pos == 0) {
                first_event_of_read = false;
                if (cur.mbta.readBit()) {
                    // Corner case: whole read comes from the escape
                    // stream, 3-bit packed.
                    const size_t packed_bytes = (length * 3 + 7) / 8;
                    std::vector<uint8_t> packed(packed_bytes);
                    for (size_t b = 0; b < packed_bytes; b++)
                        packed[b] = static_cast<uint8_t>(
                            cur.escape.readBits(8));
                    read.bases = unpackSequence(
                        packed, length, OutputFormat::ThreeBit);
                    if (!quals_.empty())
                        read.quals = quals_[emitted_];
                    emitted_++;
                    return read;
                }
            }
            first_event_of_read = false;
            events_++;

            // Copy consensus bases up to the event position.
            while (read_i < event_pos) {
                sage_assert(cons_j < consensus_.size(),
                            "decoder ran off consensus");
                oriented.push_back(consensus_[cons_j++]);
                read_i++;
            }

            const uint64_t marker_j =
                std::min<uint64_t>(cons_j, consensus_.size() - 1);

            EditType type;
            char sub_base = 0;
            if (params.inferTypes) {
                const uint8_t code =
                    static_cast<uint8_t>(cur.mbta.readBits(2));
                const char base = codeToBase(code);
                if (base != consensus_[marker_j]) {
                    type = EditType::Sub;
                    sub_base = base;
                } else {
                    type = cur.mbta.readBit() ? EditType::Ins
                                              : EditType::Del;
                }
            } else {
                type = static_cast<EditType>(cur.mbta.readBits(2));
                if (type == EditType::Sub) {
                    sub_base = codeToBase(
                        static_cast<uint8_t>(cur.mbta.readBits(2)));
                }
            }

            uint64_t block_len = 1;
            if (type != EditType::Sub && params.tuneArrays) {
                const bool single = cur.mmpga.readBit();
                if (!single) {
                    block_len = 0;
                    uint64_t chunk;
                    do {
                        chunk = cur.mmpa.readBits(8);
                        block_len += chunk;
                    } while (chunk == 255);
                }
            }

            switch (type) {
              case EditType::Sub:
                oriented.push_back(sub_base);
                read_i++;
                cons_j++;
                break;
              case EditType::Ins:
                // Inserted bases follow in MBTA in both layouts: after
                // the indel marker (inferTypes) or after the explicit
                // type code (pre-O3).
                for (uint64_t b = 0; b < block_len; b++) {
                    oriented.push_back(codeToBase(
                        static_cast<uint8_t>(cur.mbta.readBits(2))));
                }
                read_i += block_len;
                break;
              case EditType::Del:
                cons_j += block_len;
                break;
            }
        }
        // Copy the segment's tail.
        while (read_i < seg.readLen) {
            sage_assert(cons_j < consensus_.size(),
                        "decoder ran off consensus at tail");
            oriented.push_back(consensus_[cons_j++]);
            read_i++;
        }
    }

    prevPrimary_ = primary;
    read.bases = reverse ? reverseComplement(oriented)
                         : std::move(oriented);
    if (!quals_.empty())
        read.quals = quals_[emitted_];
    emitted_++;
    return read;
}

ReadSet
SageDecoder::decodeAll()
{
    ReadSet rs;
    rs.reads.reserve(info_.params.numReads);
    while (hasNext())
        rs.reads.push_back(next());
    if (!order_.empty()) {
        std::vector<Read> restored(rs.reads.size());
        for (size_t i = 0; i < rs.reads.size(); i++) {
            sage_assert(order_[i] < restored.size(), "bad order index");
            restored[order_[i]] = std::move(rs.reads[i]);
        }
        rs.reads = std::move(restored);
    }
    return rs;
}

std::vector<std::vector<uint8_t>>
SageDecoder::decodeAllPacked(OutputFormat fmt)
{
    std::vector<std::vector<uint8_t>> out;
    out.reserve(info_.params.numReads);
    while (hasNext()) {
        const Read read = next();
        const OutputFormat effective =
            fmt == OutputFormat::TwoBit && !isAcgtOnly(read.bases)
                ? OutputFormat::ThreeBit : fmt;
        out.push_back(packSequence(read.bases, effective));
    }
    return out;
}

uint64_t
SageDecoder::workingSetBytes() const
{
    // The software decoder keeps the consensus resident plus per-stream
    // cursors; the paper's hardware needs only registers (Table 3 lists
    // 128 B for SAGe): byte-sized array registers, the 150-bp
    // reconstruction register and two 64-bit double-buffer registers.
    return consensus_.size() + 13 * sizeof(BitReader);
}

ReadSet
sageDecompress(const std::vector<uint8_t> &archive)
{
    SageDecoder decoder(archive);
    return decoder.decodeAll();
}

} // namespace sage
