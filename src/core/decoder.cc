#include "core/decoder.hh"

#include <memory>
#include <new>
#include <numeric>
#include <stdexcept>

#include "compress/gpzip.hh"
#include "core/tuned_array.hh"
#include "util/bitio.hh"
#include "util/logging.hh"
#include "util/status.hh"
#include "util/thread_pool.hh"
#include "util/varint.hh"

namespace sage {

uint64_t
ArchiveInfo::dnaStreamBytes() const
{
    uint64_t total = 0;
    for (const auto &[name, size] : streamSizes) {
        if (name != "quality" && name != "headers" && name != "order")
            total += size;
    }
    return total;
}

/**
 * All stream cursors for one chunk. Chunks are byte-aligned and carry
 * no cross-chunk delta state (format.hh), so a cursor built from the
 * chunk-table offsets decodes its slice with no predecessor knowledge —
 * that independence is what the parallel decode path exploits.
 *
 * Construction fetches exactly this chunk's byte slices through the
 * decoder's ByteSource: zero-copy views when the source can provide
 * them (resident archives), owned copies otherwise (files, stripes).
 */
struct SageDecoder::ChunkCursor
{
    /** One stream's slice: either a view or an owned fetch. */
    struct Span
    {
        std::vector<uint8_t> owned;
        const uint8_t *data = nullptr;
        size_t size = 0;
    };

    ChunkCursor(const SageDecoder &d, const ChunkSlice &slice)
        : remaining(slice.readCount)
    {
        // Zero-copy views where the source provides them; everything
        // else is gathered in one batched read (FileSource coalesces
        // the slices into preadv calls instead of 13 separate preads).
        std::array<ByteSource::Extent, kChunkStreamCount> fetch;
        size_t fetches = 0;
        for (unsigned s = 0; s < kChunkStreamCount; s++) {
            const StreamExtent &extent = d.dnaExtents_[s];
            const uint64_t offset = extent.offset + slice.offsets[s];
            const uint64_t size = slice.sizes[s];
            Span &span = spans[s];
            span.size = static_cast<size_t>(size);
            if (size == 0)
                continue;
            if (const uint8_t *direct =
                    d.source_->view(offset, span.size)) {
                span.data = direct;
            } else {
                span.owned.resize(span.size);
                span.data = span.owned.data();
                fetch[fetches++] = {offset, span.owned.data(),
                                    span.size};
            }
        }
        if (fetches > 0)
            d.source_->readBatch(fetch.data(), fetches);
        initReaders();
    }

    /** Adopt slices already fetched by the prefetcher. */
    ChunkCursor(const ChunkSlice &slice, ChunkBytes &&bytes)
        : remaining(slice.readCount)
    {
        for (unsigned s = 0; s < kChunkStreamCount; s++) {
            Span &span = spans[s];
            span.owned = std::move(bytes.streams[s]);
            span.size = span.owned.size();
            sage_assert(span.size == slice.sizes[s],
                        "prefetched chunk slice size mismatch");
            if (span.size > 0)
                span.data = span.owned.data();
        }
        initReaders();
    }

    void
    initReaders()
    {
        auto reader = [&](unsigned s) {
            return BitReader(spans[s].data, spans[s].size);
        };
        flags = reader(kChunkFlags);
        mpa = reader(kChunkMpa);
        mpga = reader(kChunkMpga);
        rla = reader(kChunkRla);
        rlga = reader(kChunkRlga);
        sga = reader(kChunkSga);
        sgga = reader(kChunkSgga);
        mca = reader(kChunkMca);
        mcga = reader(kChunkMcga);
        mmpa = reader(kChunkMmpa);
        mmpga = reader(kChunkMmpga);
        mbta = reader(kChunkMbta);
    }

    const Span &escape() const { return spans[kChunkEscape]; }

    std::array<Span, kChunkStreamCount> spans;
    BitReader flags{nullptr, 0}, mpa{nullptr, 0}, mpga{nullptr, 0},
        rla{nullptr, 0}, rlga{nullptr, 0}, sga{nullptr, 0},
        sgga{nullptr, 0}, mca{nullptr, 0}, mcga{nullptr, 0},
        mmpa{nullptr, 0}, mmpga{nullptr, 0}, mbta{nullptr, 0};
    /** Escape payloads are whole 3-bit-packed byte blocks, so a plain
     *  byte cursor (relative to this chunk's slice) replaces a bit
     *  reader here. */
    size_t escapeByte = 0;
    uint64_t prevPrimary = 0;
    uint64_t remaining;
};

SageDecoder::SageDecoder(const ByteSource &source, bool dna_only,
                         bool verify_checksum)
    : source_(&source)
{
    if (verify_checksum && !verifyArchiveChecksum(source)) {
        sage_fatal("archive CRC mismatch (corrupt data): ",
                   source.describe());
    }
    parseContainer(dna_only);
}

SageDecoder::SageDecoder(const std::vector<uint8_t> &archive,
                         bool dna_only)
    : ownedSource_(std::make_unique<MemorySource>(archive)),
      source_(ownedSource_.get())
{
    // Resident archives keep the historical whole-container CRC check:
    // any bit flip dies here, before a single read is produced.
    if (!verifyArchiveChecksum(*source_))
        sage_fatal("stream bundle CRC mismatch (corrupt data)");
    parseContainer(dna_only);
}

StatusOr<std::unique_ptr<SageDecoder>>
SageDecoder::tryOpen(const ByteSource &source, bool dna_only,
                     bool verify_checksum)
{
    if (verify_checksum) {
        Status status = verifyArchiveChecksumStatus(source);
        if (!status.ok())
            return status;
    }
    std::unique_ptr<SageDecoder> decoder(new SageDecoder());
    decoder->source_ = &source;
    Status status = decoder->tryParseContainer(dna_only);
    if (!status.ok())
        return status;
    return StatusOr<std::unique_ptr<SageDecoder>>(std::move(decoder));
}

SageDecoder::~SageDecoder()
{
    // An in-flight prefetch task references this decoder; wait it out.
    std::unique_lock<std::mutex> lock(prefetchMutex_);
    prefetchCv_.wait(lock, [&] {
        return prefetchState_ != PrefetchState::InFlight;
    });
}

void
SageDecoder::setPrefetchPool(ThreadPool *pool)
{
    std::unique_lock<std::mutex> lock(prefetchMutex_);
    prefetchCv_.wait(lock, [&] {
        return prefetchState_ != PrefetchState::InFlight;
    });
    prefetchState_ = PrefetchState::Idle;
    prefetchBytes_ = ChunkBytes{};
    prefetchPool_ = pool;
}

StatusOr<SageDecoder::ChunkBytes>
SageDecoder::tryFetchChunkBytes(const ChunkSlice &slice) const
{
    // One batched read covers all 13 stream slices (coalesced into
    // preadv calls by FileSource).
    ChunkBytes bytes;
    std::array<ByteSource::Extent, kChunkStreamCount> fetch;
    size_t fetches = 0;
    for (unsigned s = 0; s < kChunkStreamCount; s++) {
        const uint64_t size = slice.sizes[s];
        if (size == 0)
            continue;
        const uint64_t offset =
            dnaExtents_[s].offset + slice.offsets[s];
        bytes.streams[s].resize(static_cast<size_t>(size));
        fetch[fetches++] = {offset, bytes.streams[s].data(),
                            static_cast<size_t>(size)};
    }
    if (fetches > 0) {
        Status status = source_->tryReadBatch(fetch.data(), fetches);
        if (!status.ok())
            return status;
    }
    return StatusOr<ChunkBytes>(std::move(bytes));
}

SageDecoder::ChunkBytes
SageDecoder::fetchChunkBytes(const ChunkSlice &slice) const
{
    StatusOr<ChunkBytes> bytes = tryFetchChunkBytes(slice);
    if (!bytes.ok())
        sage_fatal(bytes.status().message());
    return std::move(bytes.value());
}

void
SageDecoder::startPrefetch(size_t chunk)
{
    {
        std::lock_guard<std::mutex> lock(prefetchMutex_);
        // The slot can still be busy with a speculation a random
        // access abandoned; never stack fetches behind it.
        if (prefetchState_ != PrefetchState::Idle)
            return;
        prefetchState_ = PrefetchState::InFlight;
        prefetchChunk_ = chunk;
    }
    prefetchPool_->submit([this, chunk] {
        ChunkBytes bytes = fetchChunkBytes(chunks_[chunk]);
        std::lock_guard<std::mutex> lock(prefetchMutex_);
        prefetchBytes_ = std::move(bytes);
        prefetchState_ = PrefetchState::Ready;
        prefetchCv_.notify_all();
    });
}

bool
SageDecoder::takePrefetched(size_t chunk, ChunkBytes &out)
{
    std::unique_lock<std::mutex> lock(prefetchMutex_);
    // Wait only for a fetch of the chunk we want; an in-flight fetch
    // of some other chunk means a random access jumped past the
    // speculation — fetch inline instead of blocking behind it (its
    // stale payload is discarded by a later take).
    prefetchCv_.wait(lock, [&] {
        return prefetchState_ != PrefetchState::InFlight ||
            prefetchChunk_ != chunk;
    });
    if (prefetchState_ == PrefetchState::InFlight)
        return false;
    const bool hit =
        prefetchState_ == PrefetchState::Ready && prefetchChunk_ == chunk;
    if (hit)
        out = std::move(prefetchBytes_);
    prefetchBytes_ = ChunkBytes{};
    prefetchState_ = PrefetchState::Idle;
    return hit;
}

std::unique_ptr<SageDecoder::ChunkCursor>
SageDecoder::openChunk(size_t index)
{
    if (!prefetchPool_)
        return std::make_unique<ChunkCursor>(*this, chunks_[index]);

    // Double buffering: adopt the slices fetched behind chunk index-1
    // (or fetch in line on a miss — first chunk, or a range jump),
    // then put the slot to work on chunk index+1 while the caller
    // decodes this one. Speculate only while the walk looks
    // sequential (first open, successor of the last open, or a
    // prefetch hit): scattered random access would otherwise pay a
    // wasted full-chunk fetch per open.
    ChunkBytes bytes;
    const bool hit = takePrefetched(index, bytes);
    if (!hit)
        bytes = fetchChunkBytes(chunks_[index]);
    const bool sequential = hit ||
        lastOpenedChunk_ == SIZE_MAX ||
        index == lastOpenedChunk_ + 1;
    lastOpenedChunk_ = index;
    if (sequential && index + 1 < chunks_.size())
        startPrefetch(index + 1);
    return std::make_unique<ChunkCursor>(chunks_[index],
                                         std::move(bytes));
}

void
SageDecoder::parseContainer(bool dna_only)
{
    Status status = tryParseContainer(dna_only);
    if (!status.ok())
        sage_fatal(status.message());
}

Status
SageDecoder::tryParseContainer(bool dna_only)
try {
    StatusOr<StreamDirectory> parsed = StreamDirectory::tryParse(*source_);
    if (!parsed.ok())
        return parsed.status();
    dir_ = std::move(parsed.value());

    std::vector<uint8_t> raw;
    Status status = dir_.tryLoad(*source_, "params", raw);
    if (!status.ok())
        return status;
    info_.params = SageParams::deserialize(raw);
    info_.streamSizes = dir_.sizes();
    info_.totalCompressedBytes = source_->size();

    const SageParams &params = info_.params;
    status = dir_.tryLoad(*source_, "consensus", raw);
    if (!status.ok())
        return status;
    // Validate the packed consensus length against its stream size
    // before unpacking: unpackSequence trusts its arguments, and a
    // corrupt params stream must not send it past the buffer (or into
    // a multi-terabyte allocation).
    const uint64_t cons_len = params.consensusLength;
    sage_check_data(cons_len <= (uint64_t{1} << 42), Corrupt,
                    "consensus length ", cons_len, " out of range");
    const uint64_t cons_need = params.consensusTwoBit
        ? (cons_len + 3) / 4 : (cons_len * 3 + 7) / 8;
    sage_check_data(raw.size() >= cons_need, Truncated,
                    "consensus stream holds ", raw.size(), " bytes; ",
                    cons_len, " bases need ", cons_need);
    consensus_ = unpackSequence(
        raw, cons_len,
        params.consensusTwoBit ? OutputFormat::TwoBit
                               : OutputFormat::ThreeBit);

    for (unsigned s = 0; s < kChunkStreamCount; s++) {
        if (!dir_.has(kChunkStreamNames[s]))
            return Status::corrupt("missing stream: ",
                                   kChunkStreamNames[s]);
        dnaExtents_[s] = dir_.extent(kChunkStreamNames[s]);
    }

    // Host-side streams (skipped entirely in DNA-only mode).
    if (!dna_only) {
        status = dir_.tryLoad(*source_, "headers", raw);
        if (!status.ok())
            return status;
        StatusOr<std::vector<uint8_t>> headers = gpzip::tryDecompress(raw);
        if (!headers.ok())
            return headers.status();
        const std::vector<uint8_t> &header_bytes = headers.value();
        std::string cur;
        for (uint8_t byte : header_bytes) {
            if (byte == '\n') {
                headers_.push_back(cur);
                cur.clear();
            } else {
                cur.push_back(static_cast<char>(byte));
            }
        }
    }
    if (dir_.has("order")) {
        status = dir_.tryLoad(*source_, "order", raw);
        if (!status.ok())
            return status;
        size_t pos = 0;
        while (pos < raw.size())
            order_.push_back(static_cast<uint32_t>(getVarint(raw, pos)));
    }
    if (!dna_only && params.hasQuality && dir_.has("quality")) {
        status = dir_.tryLoad(*source_, "quality", raw);
        if (!status.ok())
            return status;
        const std::vector<uint8_t> &packed = raw;
        QualityArchive qa;
        size_t pos = 0;
        const uint64_t alpha_len = getVarint(packed, pos);
        sage_check_data(alpha_len <= packed.size() - pos, Truncated,
                        "quality alphabet runs past the stream end");
        qa.alphabet.assign(packed.begin() + pos,
                           packed.begin() + pos + alpha_len);
        pos += alpha_len;
        const uint64_t reads = getVarint(packed, pos);
        for (uint64_t i = 0; i < reads; i++)
            qa.readLengths.push_back(
                static_cast<uint32_t>(getVarint(packed, pos)));
        const uint64_t blocks = getVarint(packed, pos);
        for (uint64_t b = 0; b < blocks; b++) {
            qa.blockChars.push_back(getVarint(packed, pos));
            const uint64_t size = getVarint(packed, pos);
            sage_check_data(size <= packed.size() - pos, Truncated,
                            "quality block runs past the stream end");
            qa.blocks.emplace_back(packed.begin() + pos,
                                   packed.begin() + pos + size);
            pos += size;
        }
        quals_ = decompressQuality(qa);
    }

    matchCodec_ = std::make_unique<TunedFieldCodec>(params.matchPos);
    lenCodec_ = std::make_unique<TunedFieldCodec>(params.readLen);
    countCodec_ = std::make_unique<TunedFieldCodec>(params.mismatchCount);
    posCodec_ = std::make_unique<TunedFieldCodec>(params.mismatchPos);
    segposCodec_ = std::make_unique<TunedFieldCodec>(params.segPos);
    seglenCodec_ = std::make_unique<TunedFieldCodec>(params.segLen);

    // Chunk index: v2 archives carry one; a v1 archive is one chunk
    // spanning every stream from offset zero. Slice sizes run to the
    // next chunk's offset (or the stream end for the last chunk), so a
    // cursor fetches exactly its chunk's bytes.
    if (params.version >= kFormatVersionChunked) {
        status = dir_.tryLoad(*source_, "chunks", raw);
        if (!status.ok())
            return status;
        const ChunkTable table = ChunkTable::deserialize(raw);
        chunks_.reserve(table.entries.size());
        uint64_t first = 0;
        for (const ChunkTable::Entry &entry : table.entries) {
            ChunkSlice slice;
            slice.readCount = entry.readCount;
            slice.firstRead = first;
            slice.offsets = entry.offsets;
            chunks_.push_back(slice);
            first += entry.readCount;
        }
        sage_check_data(first == params.numReads, Corrupt,
                        "chunk table disagrees with read count");
    } else {
        ChunkSlice slice;
        slice.readCount = params.numReads;
        chunks_.push_back(slice);
    }
    for (size_t c = 0; c < chunks_.size(); c++) {
        for (unsigned s = 0; s < kChunkStreamCount; s++) {
            const uint64_t begin = chunks_[c].offsets[s];
            const uint64_t end = c + 1 < chunks_.size()
                ? chunks_[c + 1].offsets[s] : dnaExtents_[s].size;
            sage_check_data(begin <= end && end <= dnaExtents_[s].size,
                            Corrupt,
                            "chunk table offsets out of order in stream ",
                            kChunkStreamNames[s]);
            chunks_[c].sizes[s] = end - begin;
        }
    }
    return Status();
} catch (const StatusError &err) {
    return err.status();
} catch (const std::bad_alloc &) {
    return Status::corrupt("archive rejected: parsing exceeded the "
                           "allocation limit");
} catch (const std::length_error &) {
    return Status::corrupt("archive rejected: parsing exceeded the "
                           "allocation limit");
}

uint64_t
SageDecoder::chunkReadCount(size_t chunk) const
{
    sage_assert(chunk < chunks_.size(), "chunk index out of range");
    return chunks_[chunk].readCount;
}

uint64_t
SageDecoder::chunkFirstRead(size_t chunk) const
{
    sage_assert(chunk < chunks_.size(), "chunk index out of range");
    return chunks_[chunk].firstRead;
}

std::vector<uint64_t>
SageDecoder::chunkCompressedBytes() const
{
    std::vector<uint64_t> out;
    out.reserve(chunks_.size());
    for (const ChunkSlice &slice : chunks_) {
        out.push_back(std::accumulate(slice.sizes.begin(),
                                      slice.sizes.end(), uint64_t{0}));
    }
    return out;
}

Read
SageDecoder::decodeOne(ChunkCursor &cur, uint64_t read_index,
                       uint64_t &events, bool consume_host)
{
    const SageParams &params = info_.params;

    Read read;
    // On the one-shot paths headers and quality strings are emitted
    // exactly once per read, so they move out of the decoder; random
    // chunk access copies so a chunk can be decoded repeatedly.
    if (read_index < headers_.size()) {
        read.header = consume_host ? std::move(headers_[read_index])
                                   : headers_[read_index];
    }
    auto take_quals = [&] {
        if (read_index < quals_.size()) {
            read.quals = consume_host ? std::move(quals_[read_index])
                                      : quals_[read_index];
        }
    };

    // ---- Flags --------------------------------------------------------
    const bool reverse = cur.flags.readBit();
    unsigned extra_segments = 0;
    if (params.maxSegments > 1) {
        extra_segments = cur.flags.readUnary();
        sage_check_data(extra_segments < params.maxSegments, Corrupt,
                        "segment count ", extra_segments + 1,
                        " exceeds maxSegments ",
                        unsigned(params.maxSegments));
    }
    bool escaped = false;
    if (!params.cornerTrick)
        escaped = cur.flags.readBit();

    // ---- Read length ----------------------------------------------------
    uint64_t length = params.modalReadLength;
    if (!params.constantReadLength) {
        const int64_t len_delta =
            zigzagDecode(lenCodec_->decode(cur.rla, cur.rlga));
        length = static_cast<uint64_t>(
            static_cast<int64_t>(params.modalReadLength) + len_delta);
    }
    // A corrupt length delta must not drive multi-gigabyte appends or
    // wrap the packed-size arithmetic below.
    sage_check_data(length <= (uint64_t{1} << 31), Corrupt,
                    "read length ", length, " out of range");

    // Escape payloads are 3-bit packed into whole bytes, so the read
    // copies out of the chunk's escape slice directly instead of 8 bits
    // at a time.
    auto take_escape = [&] {
        const size_t packed_bytes = (length * 3 + 7) / 8;
        const ChunkCursor::Span &escape = cur.escape();
        sage_check_data(packed_bytes <= escape.size &&
                        cur.escapeByte <= escape.size - packed_bytes,
                        Truncated, "escape stream underrun");
        read.bases = unpackSequence(escape.data + cur.escapeByte,
                                    packed_bytes, length,
                                    OutputFormat::ThreeBit);
        cur.escapeByte += packed_bytes;
        take_quals();
    };

    // ---- Matching position ---------------------------------------------
    const uint64_t match_field = matchCodec_->decode(cur.mpa, cur.mpga);
    const uint64_t primary = params.reorderReads
        ? cur.prevPrimary + match_field : match_field;

    if (!params.cornerTrick && escaped) {
        // Pre-O4 escape: payload only.
        take_escape();
        return read;
    }

    // ---- Segment table ---------------------------------------------------
    struct SegInfo { uint64_t consPos; uint64_t readLen; };
    std::vector<SegInfo> segs(1 + extra_segments);
    segs[0].consPos = primary;
    uint64_t other_len = 0;
    for (unsigned s = 1; s <= extra_segments; s++) {
        const int64_t delta =
            zigzagDecode(segposCodec_->decode(cur.sga, cur.sgga));
        segs[s].consPos = static_cast<uint64_t>(
            static_cast<int64_t>(primary) + delta);
        segs[s].readLen = seglenCodec_->decode(cur.sga, cur.sgga);
        other_len += segs[s].readLen;
    }
    sage_check_data(other_len <= length, Corrupt,
                    "segment lengths exceed the read length");
    segs[0].readLen = length - other_len;

    // ---- Events + reconstruction (the RCU walk) --------------------------
    std::string oriented;
    oriented.reserve(static_cast<size_t>(
        std::min<uint64_t>(length, uint64_t{1} << 20)));
    bool first_event_of_read = true;

    for (const SegInfo &seg : segs) {
        const uint64_t count = countCodec_->decode(cur.mca, cur.mcga);
        uint64_t cons_j = seg.consPos;
        uint64_t read_i = 0;   // Position within this segment.
        uint32_t prev_pos = 0;

        for (uint64_t e = 0; e < count; e++) {
            const uint64_t delta = posCodec_->decode(cur.mmpa,
                                                     cur.mmpga);
            const uint64_t event_pos = e == 0 ? delta : prev_pos + delta;
            prev_pos = static_cast<uint32_t>(event_pos);

            // Corner-case disambiguation (paper §5.1.4): a first event
            // at position 0 carries one MBTA bit.
            if (params.cornerTrick && first_event_of_read &&
                event_pos == 0) {
                first_event_of_read = false;
                if (cur.mbta.readBit()) {
                    // Corner case: whole read comes from the escape
                    // stream, 3-bit packed.
                    take_escape();
                    return read;
                }
            }
            first_event_of_read = false;
            events++;

            // Copy the consensus run up to the event position.
            if (read_i < event_pos) {
                const uint64_t run = event_pos - read_i;
                sage_check_data(run <= consensus_.size() &&
                                cons_j <= consensus_.size() - run,
                                Corrupt, "decoder ran off consensus");
                oriented.append(consensus_, static_cast<size_t>(cons_j),
                                static_cast<size_t>(run));
                cons_j += run;
                read_i = event_pos;
            }

            sage_check_data(!consensus_.empty(), Corrupt,
                            "mismatch event against an empty consensus");
            const uint64_t marker_j =
                std::min<uint64_t>(cons_j, consensus_.size() - 1);

            EditType type;
            char sub_base = 0;
            if (params.inferTypes) {
                const uint8_t code =
                    static_cast<uint8_t>(cur.mbta.readBits(2));
                const char base = codeToBase(code);
                if (base != consensus_[marker_j]) {
                    type = EditType::Sub;
                    sub_base = base;
                } else {
                    type = cur.mbta.readBit() ? EditType::Ins
                                              : EditType::Del;
                }
            } else {
                type = static_cast<EditType>(cur.mbta.readBits(2));
                if (type == EditType::Sub) {
                    sub_base = codeToBase(
                        static_cast<uint8_t>(cur.mbta.readBits(2)));
                }
            }

            uint64_t block_len = 1;
            if (type != EditType::Sub && params.tuneArrays) {
                const bool single = cur.mmpga.readBit();
                if (!single) {
                    block_len = 0;
                    uint64_t chunk;
                    do {
                        chunk = cur.mmpa.readBits(8);
                        block_len += chunk;
                    } while (chunk == 255);
                }
            }

            switch (type) {
              case EditType::Sub:
                oriented.push_back(sub_base);
                read_i++;
                cons_j++;
                break;
              case EditType::Ins:
                // Inserted bases follow in MBTA in both layouts: after
                // the indel marker (inferTypes) or after the explicit
                // type code (pre-O3).
                for (uint64_t b = 0; b < block_len; b++) {
                    oriented.push_back(codeToBase(
                        static_cast<uint8_t>(cur.mbta.readBits(2))));
                }
                read_i += block_len;
                break;
              case EditType::Del:
                cons_j += block_len;
                break;
            }
        }
        // Copy the segment's tail in one run.
        if (read_i < seg.readLen) {
            const uint64_t run = seg.readLen - read_i;
            sage_check_data(run <= consensus_.size() &&
                            cons_j <= consensus_.size() - run,
                            Corrupt, "decoder ran off consensus at tail");
            oriented.append(consensus_, static_cast<size_t>(cons_j),
                            static_cast<size_t>(run));
        }
    }

    cur.prevPrimary = primary;
    // Reverse strands flip through the SIMD kernel without an extra
    // per-read allocation (thread-local scratch in alphabet.cc).
    if (reverse)
        reverseComplementInPlace(oriented);
    read.bases = std::move(oriented);
    take_quals();
    return read;
}

Read
SageDecoder::next()
{
    sage_assert(hasNext(), "decoder exhausted");
    while (!cursor_ || cursor_->remaining == 0) {
        sage_assert(nextChunk_ < chunks_.size(),
                    "chunk table exhausted before read count");
        cursor_ = openChunk(nextChunk_++);
    }
    cursor_->remaining--;
    Read read = decodeOne(*cursor_, emitted_, events_,
                          /*consume_host=*/true);
    emitted_++;
    return read;
}

bool
SageDecoder::canDecodeParallel(const ThreadPool *pool,
                               size_t count) const
{
    return pool && pool->threadCount() > 1 && count > 1;
}

// Chunks are independent slices: decode them concurrently, each worker
// fetching its own chunk's byte slices and delivering to disjoint
// stored-order indices (so stored order is preserved by construction,
// and headers/quals move out race-free on the consume paths).
template <typename Sink>
void
SageDecoder::decodeParallel(ThreadPool *pool, size_t first, size_t count,
                            bool consume_host, const Sink &sink)
{
    std::vector<uint64_t> chunk_events(count, 0);
    pool->parallelFor(count, [&](size_t i) {
        const ChunkSlice &slice = chunks_[first + i];
        ChunkCursor cur(*this, slice);
        for (uint64_t r = 0; r < slice.readCount; r++) {
            const uint64_t idx = slice.firstRead + r;
            sink(idx, decodeOne(cur, idx, chunk_events[i],
                                consume_host));
        }
    });
    for (uint64_t e : chunk_events)
        events_ += e;
}

ReadSet
SageDecoder::decodeChunks(size_t first, size_t count, ThreadPool *pool)
{
    sage_assert(first <= chunks_.size() &&
                count <= chunks_.size() - first,
                "chunk range out of bounds");
    ReadSet rs;
    if (count == 0)
        return rs;

    const uint64_t base = chunks_[first].firstRead;
    const ChunkSlice &last = chunks_[first + count - 1];
    rs.reads.resize(
        static_cast<size_t>(last.firstRead + last.readCount - base));

    if (canDecodeParallel(pool, count)) {
        decodeParallel(pool, first, count, /*consume_host=*/false,
                       [&](uint64_t idx, Read &&read) {
                           rs.reads[idx - base] = std::move(read);
                       });
    } else {
        for (size_t c = first; c < first + count; c++) {
            const ChunkSlice &slice = chunks_[c];
            const std::unique_ptr<ChunkCursor> cur = openChunk(c);
            for (uint64_t r = 0; r < slice.readCount; r++) {
                const uint64_t idx = slice.firstRead + r;
                rs.reads[static_cast<size_t>(idx - base)] =
                    decodeOne(*cur, idx, events_,
                              /*consume_host=*/false);
            }
        }
    }
    return rs;
}

std::vector<Read>
SageDecoder::decodeChunkShared(size_t chunk)
{
    StatusOr<std::vector<Read>> reads = tryDecodeChunkShared(chunk);
    if (!reads.ok())
        sage_fatal(reads.status().message());
    return std::move(reads.value());
}

StatusOr<std::vector<Read>>
SageDecoder::tryDecodeChunkShared(size_t chunk)
{
    if (chunk >= chunks_.size()) {
        return Status::outOfRange("chunk index ", chunk,
                                  " out of range (archive has ",
                                  chunks_.size(), " chunks)");
    }
    const ChunkSlice &slice = chunks_[chunk];
    // The fetch goes through the non-fatal source path so a failing
    // disk reports IoError here instead of killing the process; decode
    // errors on corrupt bytes surface as StatusError from the bit
    // readers and bounds checks in decodeOne.
    StatusOr<ChunkBytes> bytes = tryFetchChunkBytes(slice);
    if (!bytes.ok())
        return bytes.status();
    try {
        // A private cursor and a local event counter: nothing here
        // writes decoder state, which is what makes concurrent calls
        // safe.
        ChunkCursor cur(slice, std::move(bytes.value()));
        std::vector<Read> reads;
        reads.reserve(static_cast<size_t>(slice.readCount));
        uint64_t events = 0;
        for (uint64_t r = 0; r < slice.readCount; r++) {
            reads.push_back(decodeOne(cur, slice.firstRead + r, events,
                                      /*consume_host=*/false));
        }
        return StatusOr<std::vector<Read>>(std::move(reads));
    } catch (const StatusError &err) {
        return err.status();
    } catch (const std::bad_alloc &) {
        return Status::corrupt("chunk ", chunk,
                               " decode exceeded the allocation limit");
    } catch (const std::length_error &) {
        return Status::corrupt("chunk ", chunk,
                               " decode exceeded the allocation limit");
    }
}

ReadSet
SageDecoder::decodeAll(ThreadPool *pool)
{
    ReadSet rs;
    const uint64_t total = info_.params.numReads;

    if (emitted_ == 0 && canDecodeParallel(pool, chunks_.size())) {
        rs.reads.resize(total);
        decodeParallel(pool, 0, chunks_.size(), /*consume_host=*/true,
                       [&](uint64_t idx, Read &&read) {
                           rs.reads[idx] = std::move(read);
                       });
        emitted_ = total;
    } else {
        rs.reads.reserve(total - emitted_);
        while (hasNext())
            rs.reads.push_back(next());
    }

    if (!order_.empty()) {
        std::vector<Read> restored(rs.reads.size());
        for (size_t i = 0; i < rs.reads.size(); i++) {
            sage_assert(order_[i] < restored.size(), "bad order index");
            restored[order_[i]] = std::move(rs.reads[i]);
        }
        rs.reads = std::move(restored);
    }
    return rs;
}

std::vector<std::vector<uint8_t>>
SageDecoder::decodeAllPacked(OutputFormat fmt, ThreadPool *pool)
{
    auto pack = [fmt](const Read &read) {
        const OutputFormat effective =
            fmt == OutputFormat::TwoBit && !isAcgtOnly(read.bases)
                ? OutputFormat::ThreeBit : fmt;
        return packSequence(read.bases, effective);
    };

    std::vector<std::vector<uint8_t>> out;
    const uint64_t total = info_.params.numReads;

    if (emitted_ == 0 && canDecodeParallel(pool, chunks_.size())) {
        out.resize(total);
        decodeParallel(pool, 0, chunks_.size(), /*consume_host=*/true,
                       [&](uint64_t idx, Read &&read) {
                           out[idx] = pack(read);
                       });
        emitted_ = total;
    } else {
        out.reserve(total - emitted_);
        while (hasNext())
            out.push_back(pack(next()));
    }
    return out;
}

uint64_t
SageDecoder::workingSetBytes() const
{
    // The software decoder keeps the consensus resident plus one
    // chunk's stream cursors; the paper's hardware needs only registers
    // (Table 3 lists 128 B for SAGe): byte-sized array registers, the
    // 150-bp reconstruction register and two 64-bit double-buffer
    // registers.
    return consensus_.size() + sizeof(ChunkCursor);
}

ReadSet
sageDecompress(const std::vector<uint8_t> &archive)
{
    SageDecoder decoder(archive);
    return decoder.decodeAll();
}

} // namespace sage
