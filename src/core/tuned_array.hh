/**
 * @file
 * SAGe's core data structure: arrays + guide arrays with per-read-set
 * tuned bit widths (paper §5.1, Fig. 6, Fig. 8, Algorithm 1).
 *
 * A TunedArray stores a sequence of unsigned values in two bit streams:
 *  - the *array* holds each value in one of up to 8 tuned bit widths;
 *  - the *guide array* holds, per value, a variable-length prefix code
 *    (0, 10, 110, ...) naming the width class, with shorter codes
 *    assigned to more frequent classes (paper §5.1.1).
 *
 * The class boundaries come from Algorithm 1: an exhaustive search over
 * bit-count boundaries minimizing total encoded size (array + guide),
 * with an epsilon-convergence cutoff on the number of classes d.
 *
 * Decoding needs only comparators and shifters over streaming data —
 * no tables, no random accesses — which is what makes the hardware
 * Scan Unit (paper §5.2) lightweight.
 */

#ifndef SAGE_CORE_TUNED_ARRAY_HH
#define SAGE_CORE_TUNED_ARRAY_HH

#include <cstdint>
#include <vector>

#include "util/bitio.hh"
#include "util/histogram.hh"

namespace sage {

/**
 * The Association Table (paper Fig. 8): maps guide-code rank to value
 * bit width. Rank r is encoded as r one-bits and a zero (0, 10, 110...).
 */
struct AssociationTable
{
    /** Bit width per guide rank; rank 0 = most frequent class. */
    std::vector<uint8_t> widthByRank;

    /** Serialize into a header byte stream. */
    void serialize(std::vector<uint8_t> &out) const;

    /** Parse back from a header byte stream. */
    static AssociationTable deserialize(const std::vector<uint8_t> &data,
                                        size_t &pos);

    bool
    operator==(const AssociationTable &other) const
    {
        return widthByRank == other.widthByRank;
    }
};

/** Algorithm 1 configuration. */
struct TunerConfig
{
    /** Convergence threshold epsilon on relative size improvement. */
    double epsilon = 0.01;
    /** Maximum number of distinct bit counts (paper: d <= 8). */
    unsigned maxClasses = 8;
    /** Enumeration budget guard; falls back to quantile split beyond. */
    uint64_t maxCombinations = 4'000'000;
};

/**
 * Algorithm 1 (paper §5.1.1): choose bit-count boundaries W minimizing
 * the encoded size of values whose bit-count histogram is @p hist.
 *
 * Returns the association table with classes ordered by descending
 * frequency (rank 0 most common). The histogram is indexed by
 * bits-needed (index 0 unused; values need at least 1 bit).
 */
AssociationTable tuneBitCounts(const Histogram &hist,
                               const TunerConfig &config = {});

/** Bits needed to store @p v (0 -> 1). */
inline unsigned
valueBits(uint64_t v)
{
    unsigned bits = 1;
    while (v >>= 1)
        bits++;
    return bits;
}

/**
 * Field-level tuned codec: encodes/decodes single values against caller-
 * supplied array/guide bit streams. SAGe interleaves heterogeneous
 * fields (position deltas, indel flags, indel lengths) in the same
 * MMPA/MMPGA streams, so the codec must not own the streams.
 */
class TunedFieldCodec
{
  public:
    explicit TunedFieldCodec(AssociationTable table);

    /** Encode one value (guide code + value bits). */
    void encode(BitWriter &array, BitWriter &guide, uint64_t value) const;

    /** Decode one value. */
    uint64_t decode(BitReader &array, BitReader &guide) const;

    /** Bits one value would cost (guide + array). */
    unsigned costBits(uint64_t value) const;

    const AssociationTable &table() const { return table_; }

    /** Build a table from sample values via Algorithm 1. */
    static AssociationTable tuneFor(const std::vector<uint64_t> &values,
                                    const TunerConfig &config = {});

  private:
    AssociationTable table_;
    /** Cheapest fitting rank for each bits-needed value. */
    std::vector<uint8_t> rankForBits_;
};

/** Encoder over self-owned streams (convenience wrapper). */
class TunedArrayEncoder
{
  public:
    explicit TunedArrayEncoder(AssociationTable table)
        : codec_(std::move(table))
    {}

    /** Append one value; it must fit the largest tuned width. */
    void append(uint64_t value) { codec_.encode(array_, guide_, value); }

    /** Bits written so far (array / guide). */
    uint64_t arrayBits() const { return array_.bitCount(); }
    uint64_t guideBits() const { return guide_.bitCount(); }

    /** Finish and move out the two byte streams. */
    std::vector<uint8_t> takeArray() { return array_.take(); }
    std::vector<uint8_t> takeGuide() { return guide_.take(); }

    const AssociationTable &table() const { return codec_.table(); }

  private:
    TunedFieldCodec codec_;
    BitWriter array_;
    BitWriter guide_;
};

/** Decoder over caller-provided streams (convenience wrapper). */
class TunedArrayDecoder
{
  public:
    TunedArrayDecoder(AssociationTable table, BitReader array,
                      BitReader guide)
        : codec_(std::move(table)), array_(array), guide_(guide)
    {}

    /** Decode the next value. */
    uint64_t next() { return codec_.decode(array_, guide_); }

  private:
    TunedFieldCodec codec_;
    BitReader array_;
    BitReader guide_;
};

} // namespace sage

#endif // SAGE_CORE_TUNED_ARRAY_HH
