#include "core/format.hh"

#include "util/logging.hh"
#include "util/status.hh"
#include "util/varint.hh"

namespace sage {

SageConfig
SageConfig::atLevel(unsigned level)
{
    SageConfig config;
    config.reorderReads = level >= 1;
    config.tuneMatchArrays = level >= 1;
    config.tuneArrays = level >= 2;
    config.maxSegments = level >= 3 ? 3 : 1;
    config.inferTypes = level >= 3;
    config.cornerTrick = level >= 4;
    return config;
}

std::vector<uint8_t>
SageParams::serialize() const
{
    std::vector<uint8_t> out;
    putVarint(out, version);
    putVarint(out, numReads);
    putVarint(out, consensusLength);

    uint8_t flags = 0;
    flags |= consensusTwoBit ? 1 : 0;
    flags |= hasQuality ? 2 : 0;
    flags |= preservedOrder ? 4 : 0;
    flags |= reorderReads ? 8 : 0;
    flags |= tuneArrays ? 16 : 0;
    flags |= inferTypes ? 32 : 0;
    flags |= cornerTrick ? 64 : 0;
    flags |= constantReadLength ? 128 : 0;
    out.push_back(flags);
    uint8_t flags2 = 0;
    flags2 |= tuneMatchArrays ? 1 : 0;
    out.push_back(flags2);
    out.push_back(static_cast<uint8_t>(maxSegments));
    putVarint(out, modalReadLength);

    matchPos.serialize(out);
    readLen.serialize(out);
    mismatchCount.serialize(out);
    mismatchPos.serialize(out);
    segPos.serialize(out);
    segLen.serialize(out);
    return out;
}

SageParams
SageParams::deserialize(const std::vector<uint8_t> &bytes)
{
    // Throws StatusError on malformed bytes (untrusted archive input);
    // fatal callers catch at their public boundary.
    SageParams params;
    size_t pos = 0;
    params.version = static_cast<uint32_t>(getVarint(bytes, pos));
    sage_check_data(params.version == kFormatVersionLegacy ||
                        params.version == kFormatVersionChunked,
                    Corrupt, "unsupported SAGe container version ",
                    params.version);
    params.numReads = getVarint(bytes, pos);
    params.consensusLength = getVarint(bytes, pos);

    sage_check_data(pos + 2 <= bytes.size(), Truncated,
                    "params truncated");
    const uint8_t flags = bytes[pos++];
    params.consensusTwoBit = flags & 1;
    params.hasQuality = flags & 2;
    params.preservedOrder = flags & 4;
    params.reorderReads = flags & 8;
    params.tuneArrays = flags & 16;
    params.inferTypes = flags & 32;
    params.cornerTrick = flags & 64;
    params.constantReadLength = flags & 128;
    // flags2 and maxSegments: two more fixed bytes.
    sage_check_data(pos + 2 <= bytes.size(), Truncated,
                    "params truncated");
    const uint8_t flags2 = bytes[pos++];
    params.tuneMatchArrays = flags2 & 1;
    params.maxSegments = bytes[pos++];
    params.modalReadLength = getVarint(bytes, pos);

    params.matchPos = AssociationTable::deserialize(bytes, pos);
    params.readLen = AssociationTable::deserialize(bytes, pos);
    params.mismatchCount = AssociationTable::deserialize(bytes, pos);
    params.mismatchPos = AssociationTable::deserialize(bytes, pos);
    params.segPos = AssociationTable::deserialize(bytes, pos);
    params.segLen = AssociationTable::deserialize(bytes, pos);
    return params;
}

std::vector<uint8_t>
ChunkTable::serialize() const
{
    std::vector<uint8_t> out;
    putVarint(out, entries.size());
    for (const Entry &entry : entries) {
        putVarint(out, entry.readCount);
        for (uint64_t offset : entry.offsets)
            putVarint(out, offset);
    }
    return out;
}

ChunkTable
ChunkTable::deserialize(const std::vector<uint8_t> &bytes)
{
    // Throws StatusError on malformed bytes (untrusted archive input).
    ChunkTable table;
    size_t pos = 0;
    const uint64_t count = getVarint(bytes, pos);
    // Each entry is at least 1 + kChunkStreamCount varint bytes, so a
    // corrupt count cannot fit in the stream — reject it before the
    // resize rather than attempting a huge allocation.
    sage_check_data(count <= bytes.size() / (1 + kChunkStreamCount),
                    Corrupt, "chunk table count ", count,
                    " exceeds stream size");
    table.entries.resize(count);
    for (Entry &entry : table.entries) {
        entry.readCount = getVarint(bytes, pos);
        for (uint64_t &offset : entry.offsets)
            offset = getVarint(bytes, pos);
    }
    sage_check_data(pos == bytes.size(), Corrupt,
                    "chunk table has trailing bytes");
    return table;
}

} // namespace sage
