#include "core/tuned_array.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"
#include "util/varint.hh"

namespace sage {

void
AssociationTable::serialize(std::vector<uint8_t> &out) const
{
    putVarint(out, widthByRank.size());
    for (uint8_t width : widthByRank)
        out.push_back(width);
}

AssociationTable
AssociationTable::deserialize(const std::vector<uint8_t> &data,
                              size_t &pos)
{
    AssociationTable table;
    const uint64_t n = getVarint(data, pos);
    sage_check_data(n >= 1 && n <= 16, Corrupt,
                    "bad association table size ", n);
    for (uint64_t i = 0; i < n; i++) {
        sage_check_data(pos < data.size(), Truncated,
                        "association table truncated");
        const uint8_t width = data[pos++];
        // Widths beyond 57 would trip BitReader's hard field limit.
        sage_check_data(width <= 57, Corrupt,
                        "association table width ", unsigned(width),
                        " out of range");
        table.widthByRank.push_back(width);
    }
    return table;
}

namespace {

/**
 * Cost of one boundary assignment: every value whose bits-needed falls
 * in (boundary[k-1], boundary[k]] is stored with boundary[k] bits plus
 * its class's guide code. Guide codes are unary by frequency rank.
 */
uint64_t
assignmentCost(const std::vector<unsigned> &bounds,
               const std::vector<uint64_t> &prefix_counts)
{
    const size_t d = bounds.size();
    // Count per class.
    std::vector<uint64_t> class_count(d);
    unsigned lo = 0;
    for (size_t k = 0; k < d; k++) {
        class_count[k] = prefix_counts[bounds[k]]
            - prefix_counts[lo];
        lo = bounds[k];
    }
    // Guide cost: sort class indices by count descending; rank r costs
    // r+1 bits per element (prefix codes 0, 10, 110, ...).
    std::vector<size_t> by_freq(d);
    std::iota(by_freq.begin(), by_freq.end(), 0);
    std::sort(by_freq.begin(), by_freq.end(),
              [&](size_t a, size_t b)
              { return class_count[a] > class_count[b]; });
    uint64_t cost = 0;
    for (size_t r = 0; r < d; r++) {
        const size_t k = by_freq[r];
        cost += class_count[k]
            * (static_cast<uint64_t>(bounds[k]) + r + 1);
    }
    return cost;
}

/** Enumerate all (d-1)-subsets of boundaries below max_bits. */
void
enumerateBounds(unsigned max_bits, unsigned d,
                const std::vector<uint64_t> &prefix_counts,
                uint64_t &best_cost, std::vector<unsigned> &best_bounds)
{
    std::vector<unsigned> bounds(d);
    bounds[d - 1] = max_bits; // Last class must cover the largest value.

    // Iterative combination enumeration of d-1 interior boundaries from
    // {1, ..., max_bits-1}.
    if (d == 1) {
        const uint64_t cost = assignmentCost(bounds, prefix_counts);
        if (cost < best_cost) {
            best_cost = cost;
            best_bounds = bounds;
        }
        return;
    }
    std::vector<unsigned> idx(d - 1);
    std::iota(idx.begin(), idx.end(), 1u);
    for (;;) {
        for (unsigned i = 0; i < d - 1; i++)
            bounds[i] = idx[i];
        const uint64_t cost = assignmentCost(bounds, prefix_counts);
        if (cost < best_cost) {
            best_cost = cost;
            best_bounds = bounds;
        }
        // Advance combination.
        int i = static_cast<int>(d) - 2;
        while (i >= 0 &&
               idx[i] == max_bits - (d - 1) + static_cast<unsigned>(i)) {
            i--;
        }
        if (i < 0)
            break;
        idx[i]++;
        for (unsigned j = i + 1; j < d - 1; j++)
            idx[j] = idx[j - 1] + 1;
    }
}

/** n choose k with saturation. */
uint64_t
choose(uint64_t n, uint64_t k)
{
    if (k > n)
        return 0;
    uint64_t r = 1;
    for (uint64_t i = 0; i < k; i++) {
        r = r * (n - i) / (i + 1);
        if (r > (uint64_t(1) << 62))
            return uint64_t(1) << 62;
    }
    return r;
}

} // namespace

AssociationTable
tuneBitCounts(const Histogram &hist, const TunerConfig &config)
{
    // Determine the largest bits-needed with nonzero count.
    unsigned max_bits = 1;
    for (unsigned b = 1; b < hist.size(); b++) {
        if (hist.count(b) > 0)
            max_bits = b;
    }
    sage_assert(max_bits <= 57, "values too wide for tuned arrays");

    // Prefix counts over bits-needed 1..max_bits.
    std::vector<uint64_t> prefix_counts(max_bits + 1, 0);
    for (unsigned b = 1; b <= max_bits; b++)
        prefix_counts[b] = prefix_counts[b - 1] + hist.count(b);

    uint64_t best_cost = UINT64_MAX;
    std::vector<unsigned> best_bounds{max_bits};
    uint64_t last_cost = UINT64_MAX;

    const unsigned d_limit =
        std::min<unsigned>(config.maxClasses, max_bits);
    for (unsigned d = 1; d <= d_limit; d++) {
        if (choose(max_bits - 1, d - 1) > config.maxCombinations) {
            // Guard: enumeration too large; keep the best found so far.
            break;
        }
        enumerateBounds(max_bits, d, prefix_counts, best_cost,
                        best_bounds);
        // Algorithm 1 line 10: stop once the gain falls below epsilon.
        if (last_cost != UINT64_MAX &&
            static_cast<double>(last_cost - best_cost)
                < config.epsilon * static_cast<double>(best_cost)) {
            break;
        }
        last_cost = best_cost;
    }

    // Build the table ranked by class frequency (common class first).
    const size_t d = best_bounds.size();
    std::vector<uint64_t> class_count(d);
    unsigned lo = 0;
    for (size_t k = 0; k < d; k++) {
        class_count[k] = prefix_counts[best_bounds[k]]
            - prefix_counts[lo];
        lo = best_bounds[k];
    }
    std::vector<size_t> by_freq(d);
    std::iota(by_freq.begin(), by_freq.end(), 0);
    std::sort(by_freq.begin(), by_freq.end(),
              [&](size_t a, size_t b)
              { return class_count[a] > class_count[b]; });

    AssociationTable table;
    for (size_t r = 0; r < d; r++)
        table.widthByRank.push_back(
            static_cast<uint8_t>(best_bounds[by_freq[r]]));
    return table;
}

TunedFieldCodec::TunedFieldCodec(AssociationTable table)
    : table_(std::move(table))
{
    sage_assert(!table_.widthByRank.empty(), "empty association table");
    // For each possible bits-needed, pick the cheapest rank that fits
    // (width + guide cost).
    unsigned max_width = 0;
    for (uint8_t width : table_.widthByRank)
        max_width = std::max<unsigned>(max_width, width);
    rankForBits_.assign(max_width + 1, 0xff);
    for (unsigned bits = 1; bits <= max_width; bits++) {
        unsigned best_rank = 0xff;
        uint64_t best_cost = UINT64_MAX;
        for (size_t r = 0; r < table_.widthByRank.size(); r++) {
            if (table_.widthByRank[r] >= bits) {
                const uint64_t cost = table_.widthByRank[r] + r + 1;
                if (cost < best_cost) {
                    best_cost = cost;
                    best_rank = static_cast<unsigned>(r);
                }
            }
        }
        sage_assert(best_rank != 0xff, "no class fits width ", bits);
        rankForBits_[bits] = static_cast<uint8_t>(best_rank);
    }
}

void
TunedFieldCodec::encode(BitWriter &array, BitWriter &guide,
                        uint64_t value) const
{
    const unsigned bits = valueBits(value);
    sage_assert(bits < rankForBits_.size() && rankForBits_[bits] != 0xff,
                "value ", value, " exceeds tuned widths");
    const unsigned rank = rankForBits_[bits];
    guide.writeUnary(rank);
    array.writeBits(value, table_.widthByRank[rank]);
}

uint64_t
TunedFieldCodec::decode(BitReader &array, BitReader &guide) const
{
    const unsigned rank = guide.readUnary();
    sage_check_data(rank < table_.widthByRank.size(), Corrupt,
                    "guide rank ", rank, " out of range (corrupt stream)");
    return array.readBits(table_.widthByRank[rank]);
}

unsigned
TunedFieldCodec::costBits(uint64_t value) const
{
    const unsigned bits = valueBits(value);
    sage_assert(bits < rankForBits_.size() && rankForBits_[bits] != 0xff,
                "value exceeds tuned widths");
    const unsigned rank = rankForBits_[bits];
    return table_.widthByRank[rank] + rank + 1;
}

AssociationTable
TunedFieldCodec::tuneFor(const std::vector<uint64_t> &values,
                         const TunerConfig &config)
{
    Histogram hist;
    for (uint64_t v : values)
        hist.add(valueBits(v));
    if (hist.total() == 0)
        hist.add(1); // Degenerate: one 1-bit class.
    return tuneBitCounts(hist, config);
}

} // namespace sage
