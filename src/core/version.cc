#include "core/version.hh"

#ifdef SAGE_CMAKE_PROJECT_VERSION
namespace {

constexpr bool
strEq(const char *a, const char *b)
{
    return *a == *b && (*a == '\0' || strEq(a + 1, b + 1));
}

static_assert(strEq(SAGE_VERSION_STRING, SAGE_CMAKE_PROJECT_VERSION),
              "core/version.hh is out of sync with project(sage VERSION ...) "
              "in the top-level CMakeLists.txt");

} // namespace
#endif

namespace sage {

const char *versionString() { return SAGE_VERSION_STRING; }

} // namespace sage
