#include "hw/sage_hw.hh"

#include <algorithm>

namespace sage {

// Paper Table 1 constants (22 nm, 1 GHz, per channel instance).
SageHwUnitSpec
SageHwModel::scanUnit()
{
    return {0.000045, 0.014};
}

SageHwUnitSpec
SageHwModel::readConstructionUnit()
{
    return {0.000017, 0.023};
}

SageHwUnitSpec
SageHwModel::controlUnit()
{
    return {0.000029, 0.025};
}

SageHwUnitSpec
SageHwModel::doubleRegisters()
{
    return {0.00020, 0.035};
}

double
SageHwModel::totalAreaMm2() const
{
    // Table 1's 0.002 mm^2 total includes the double registers in the
    // area column (power lists them separately as "+0.28 for mode 3"),
    // so area always counts them.
    const double per_channel = scanUnit().areaMm2
        + readConstructionUnit().areaMm2 + controlUnit().areaMm2
        + doubleRegisters().areaMm2;
    return per_channel * config_.channels;
}

double
SageHwModel::totalPowerMw() const
{
    double per_channel = scanUnit().powerMw
        + readConstructionUnit().powerMw + controlUnit().powerMw;
    if (config_.inStorageRegisters)
        per_channel += doubleRegisters().powerMw;
    return per_channel * config_.channels;
}

double
SageHwModel::computeSeconds(uint64_t dna_stream_bytes,
                            uint64_t total_bases) const
{
    // SU scan work: every compressed bit crosses the scan logic.
    const double scan_cycles =
        static_cast<double>(dna_stream_bytes) * 8.0
        / config_.bitsPerCycle;
    // RCU reconstruction work: one base per cycle.
    const double rcu_cycles =
        static_cast<double>(total_bases) / config_.basesPerCycle;
    // SU and RCU run concurrently per channel (paper §5.2.2); channels
    // operate independently on their stripes.
    const double cycles = std::max(scan_cycles, rcu_cycles)
        / static_cast<double>(config_.channels);
    return cycles / config_.clockHz;
}

double
SageHwModel::decompressSeconds(const SsdModel &ssd,
                               uint64_t dna_stream_bytes,
                               uint64_t total_bases) const
{
    const double nand = ssd.internalReadSeconds(dna_stream_bytes);
    const double compute =
        computeSeconds(dna_stream_bytes, total_bases);
    // Streaming pipeline: the slower of NAND delivery and compute.
    return std::max(nand, compute);
}

double
SageHwModel::energyJoules(double busy_seconds) const
{
    return totalPowerMw() * 1e-3 * busy_seconds;
}

double
SageHwModel::fractionOfControllerCores() const
{
    // Three Cortex-R4-class cores in a controller at 22 nm occupy on
    // the order of 0.30 mm^2; the paper reports SAGe's logic at 0.7%
    // of the three cores.
    constexpr double kThreeCoresMm2 = 0.30;
    return totalAreaMm2() / kThreeCoresMm2;
}

} // namespace sage
