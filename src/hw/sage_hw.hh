/**
 * @file
 * SAGe decompression hardware model (paper §5.2, Table 1).
 *
 * Per SSD channel, SAGe instantiates a Scan Unit (SU) that walks the
 * position arrays / guide arrays, a Read Construction Unit (RCU) that
 * plugs mismatches into the consensus stream, a Control Unit (CU), and
 * — for the in-storage integration (Fig. 12 mode 3) — a pair of 64-bit
 * double-buffer registers per channel.
 *
 * Functionally the hardware computes exactly what core/decoder.hh
 * computes (the bit layout is shared); this model supplies the *timing,
 * area, power and energy* the end-to-end pipeline needs. Area/power
 * constants are the paper's Design Compiler results at 22 nm, 1 GHz
 * (Table 1); we reuse them and scale by instance count (DESIGN.md §2).
 */

#ifndef SAGE_HW_SAGE_HW_HH
#define SAGE_HW_SAGE_HW_HH

#include <cstdint>

#include "core/decoder.hh"
#include "ssd/nand.hh"

namespace sage {

/** Per-unit area/power constants (paper Table 1, 22 nm, 1 GHz). */
struct SageHwUnitSpec
{
    double areaMm2 = 0.0;
    double powerMw = 0.0;
};

/** Hardware configuration. */
struct SageHwConfig
{
    unsigned channels = 8;          ///< One SU/RCU/CU per channel.
    double clockHz = 1e9;           ///< Paper synthesizes at 1 GHz.
    bool inStorageRegisters = false; ///< Mode 3 double registers.

    /** Bases reconstructed per RCU cycle: the RCU copies consensus
     *  through a 64-bit datapath (2-bit bases -> 32 bases/cycle) and
     *  only slows to patch mismatches, which are rare. */
    double basesPerCycle = 32.0;
    /** Array+guide bits scanned per SU cycle: the SU consumes one
     *  guide code plus one value field per cycle (~16 bits). */
    double bitsPerCycle = 16.0;
};

/** Area, power, energy and throughput model of SAGe's logic. */
class SageHwModel
{
  public:
    explicit SageHwModel(SageHwConfig config = {}) : config_(config) {}

    // Table 1 per-instance constants.
    static SageHwUnitSpec scanUnit();
    static SageHwUnitSpec readConstructionUnit();
    static SageHwUnitSpec controlUnit();
    static SageHwUnitSpec doubleRegisters();

    /** Total logic area (mm^2) across channels. */
    double totalAreaMm2() const;

    /** Total logic power (mW) across channels. */
    double totalPowerMw() const;

    /**
     * Decompression-compute seconds for an archive: the SU must scan
     * every array bit and the RCU must emit every base. In practice the
     * result is far below the NAND streaming time, which is the paper's
     * point ("bottlenecked by the NAND flash read throughput", §8.2).
     */
    double computeSeconds(uint64_t dna_stream_bytes,
                          uint64_t total_bases) const;

    /**
     * End-to-end hardware decompression seconds: NAND streaming
     * pipelined with compute; the slower side dominates.
     */
    double decompressSeconds(const SsdModel &ssd,
                             uint64_t dna_stream_bytes,
                             uint64_t total_bases) const;

    /** Energy (joules) for @p busy_seconds of decompression. */
    double energyJoules(double busy_seconds) const;

    /**
     * Fraction of an ARM Cortex-R-class SSD-controller core complex
     * this logic occupies (paper: 0.7% of the three cores). Reference
     * area for three Cortex-R4 cores at 22 nm is ~0.30 mm^2.
     */
    double fractionOfControllerCores() const;

    const SageHwConfig &config() const { return config_; }

  private:
    SageHwConfig config_;
};

} // namespace sage

#endif // SAGE_HW_SAGE_HW_HH
