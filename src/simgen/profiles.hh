/**
 * @file
 * Parameter blocks for synthetic genome and sequencer models.
 *
 * The paper evaluates on five real read sets (RS1-RS5, Table 2). We do not
 * have those downloads here, so we synthesize analogues whose *statistical
 * properties* match the ones SAGe's design exploits (paper §5.1):
 *
 *  - Property 1: mismatch positions cluster (variant hotspots + regional
 *    sequencing-quality degradation), so delta-encoded mismatch positions
 *    need few bits.
 *  - Property 2: most short reads have zero or few mismatches.
 *  - Property 3: most indel blocks have length 1, but long blocks carry
 *    most indel bases.
 *  - Property 4: long reads can be chimeric (segments from distant loci).
 *  - Property 5: substitutions dominate short-read errors.
 *  - Property 6: redundant sampling (depth) makes sorted matching
 *    positions delta-encode into very few bits.
 *
 * Every distribution here is driven by sage::Rng, so a DatasetSpec plus a
 * seed is a complete, reproducible description of an experiment input.
 */

#ifndef SAGE_SIMGEN_PROFILES_HH
#define SAGE_SIMGEN_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sage {

/** Shape of the underlying (donor) genome relative to the reference. */
struct GenomeProfile
{
    uint64_t referenceLength = 1 << 20;

    /** Per-base probability that a position is inside a variant cluster. */
    double clusterStartRate = 2e-5;
    /** Mean cluster span in bases (geometric). */
    double clusterMeanSpan = 400.0;
    /** SNP probability per base inside a cluster. */
    double clusterSnpRate = 0.02;
    /** SNP probability per base outside clusters (background). */
    double backgroundSnpRate = 5e-4;
    /** Small indel probability per base (mostly inside clusters). */
    double indelRate = 5e-5;
    /** Mean indel length (geometric, strongly skewed to 1). */
    double indelMeanLen = 1.5;
    /** Fraction of the genome covered by long tandem-ish repeats. */
    double repeatFraction = 0.03;
    /** Typical repeat unit length. */
    unsigned repeatUnit = 600;
};

/** Error/length model of the sequencer that produced a read set. */
struct SequencerProfile
{
    bool longRead = false;

    /** Short reads: exact length. Long reads: log-normal median. */
    unsigned readLength = 150;
    /** Long reads only: sigma of log-normal length distribution. */
    double readLengthSigma = 0.55;
    /** Long reads only: hard length bounds. */
    unsigned minReadLength = 200;
    unsigned maxReadLength = 200000;

    /** Per-base substitution error rate. */
    double subErrorRate = 0.001;
    /** Per-base insertion error rate. */
    double insErrorRate = 0.00005;
    /** Per-base deletion error rate. */
    double delErrorRate = 0.00005;
    /** Mean sequencing-indel length (geometric; Property 3 skew). */
    double seqIndelMeanLen = 1.15;
    /** Probability that an indel instead draws from a long-block tail. */
    double longIndelTailProb = 0.02;
    /** Mean length of long-tail indel blocks. */
    double longIndelTailMean = 24.0;

    /** Probability a read starts an error burst (regional degradation). */
    double burstProb = 0.01;
    /** Error-rate multiplier inside a burst. */
    double burstMultiplier = 12.0;
    /** Mean burst span in bases. */
    double burstMeanSpan = 120.0;

    /** Probability a long read is chimeric (joined segments). */
    double chimeraProb = 0.0;
    /** Mean number of extra segments in a chimeric read. */
    double chimeraExtraSegments = 1.3;

    /** Probability a read contains at least one N. */
    double nReadProb = 0.0005;
    /** Probability a read carries a soft-clip block at an end. */
    double clipProb = 0.002;
    /** Mean clip length. */
    double clipMeanLen = 20.0;

    /** Probability a read is sampled from the reverse strand. */
    double reverseProb = 0.5;

    /** Whether the sequencer reports real quality scores. */
    bool reportsQuality = true;
    /** Baseline Phred quality. */
    unsigned qualityPeak = 37;
    /** Number of distinct quality levels emitted (binned sequencers). */
    unsigned qualityLevels = 8;
};

/** Complete description of one synthetic read-set experiment input. */
struct DatasetSpec
{
    std::string name;
    GenomeProfile genome;
    SequencerProfile sequencer;
    /** Average sequencing depth (reads-per-position redundancy). */
    double depth = 20.0;
    uint64_t seed = 0x5a6e;
};

/**
 * Presets mirroring the paper's Table 2 read sets, scaled down ~1000x so
 * the full benchmark suite runs in minutes.
 *
 * RS1: short reads, plant-like (cacao), moderate ratio.
 * RS2: short reads, human, deep + clean (highest ratio in the paper).
 * RS3: short reads, human, noisy/diverse (lowest short-read ratio).
 * RS4: long reads, nanopore-like, noisiest (lowest ratio overall).
 * RS5: long reads, banana T2T-like, cleaner long reads.
 */
DatasetSpec makeRs1Spec();
DatasetSpec makeRs2Spec();
DatasetSpec makeRs3Spec();
DatasetSpec makeRs4Spec();
DatasetSpec makeRs5Spec();

/** All five presets in order. */
std::vector<DatasetSpec> allReadSetSpecs();

/** A tiny preset for unit tests and the quickstart example. */
DatasetSpec makeTinySpec(bool long_read = false);

} // namespace sage

#endif // SAGE_SIMGEN_PROFILES_HH
