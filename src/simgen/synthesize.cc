#include "simgen/synthesize.hh"

#include <algorithm>
#include <cmath>

#include "genomics/alphabet.hh"
#include "util/logging.hh"

namespace sage {

namespace {

/** Draw a random A/C/G/T character. */
char
randomBase(Rng &rng)
{
    return codeToBase(static_cast<uint8_t>(rng.nextBelow(4)));
}

/** Draw a base different from @p current. */
char
mutatedBase(Rng &rng, char current)
{
    const uint8_t cur = baseToCode(current);
    uint8_t code = static_cast<uint8_t>(rng.nextBelow(3));
    if (code >= cur)
        code++;
    return codeToBase(code & 3);
}

/**
 * Apply the genome-variation model (clustered SNPs + indels, Property 1)
 * to the reference, producing the donor genome the reads come from.
 */
std::string
applyVariants(const std::string &reference, const GenomeProfile &profile,
              Rng &rng)
{
    std::string donor;
    donor.reserve(reference.size());

    uint64_t cluster_left = 0; // Remaining bases of the current hotspot.
    for (size_t i = 0; i < reference.size(); i++) {
        if (cluster_left == 0 && rng.nextBool(profile.clusterStartRate))
            cluster_left = 1 + rng.nextGeometric(
                1.0 / profile.clusterMeanSpan);
        const bool in_cluster = cluster_left > 0;
        if (cluster_left > 0)
            cluster_left--;

        const double snp_rate = in_cluster ? profile.clusterSnpRate
                                           : profile.backgroundSnpRate;
        const double indel_rate = in_cluster ? profile.indelRate * 10
                                             : profile.indelRate;

        if (rng.nextBool(indel_rate)) {
            const uint64_t len = 1 + rng.nextGeometric(
                1.0 / profile.indelMeanLen);
            if (rng.nextBool(0.5)) {
                // Insertion into the donor.
                for (uint64_t j = 0; j < len; j++)
                    donor.push_back(randomBase(rng));
                donor.push_back(reference[i]);
            } else {
                // Deletion from the donor: skip len-1 further ref bases.
                i += static_cast<size_t>(
                    std::min<uint64_t>(len - 1,
                                       reference.size() - 1 - i));
            }
            continue;
        }
        if (rng.nextBool(snp_rate)) {
            donor.push_back(mutatedBase(rng, reference[i]));
        } else {
            donor.push_back(reference[i]);
        }
    }
    return donor;
}

/** Per-read error state: burst tracking (regional degradation). */
struct ErrorState
{
    uint64_t burstLeft = 0;

    double
    scale(const SequencerProfile &profile) const
    {
        return burstLeft > 0 ? profile.burstMultiplier : 1.0;
    }
};

/** Draw the length of a sequencing indel block (Property 3 mixture). */
uint64_t
drawIndelBlockLen(const SequencerProfile &profile, Rng &rng)
{
    if (rng.nextBool(profile.longIndelTailProb)) {
        return 2 + rng.nextGeometric(1.0 / profile.longIndelTailMean);
    }
    return 1 + rng.nextGeometric(1.0 / profile.seqIndelMeanLen);
}

/**
 * Copy @p span bases starting at @p pos (forward strand of @p donor),
 * injecting sequencing errors, and append them to @p out.
 */
void
sequenceSegment(const std::string &donor, uint64_t pos, uint64_t span,
                const SequencerProfile &profile, Rng &rng,
                ErrorState &state, std::string &out)
{
    uint64_t i = pos;
    const uint64_t end = std::min<uint64_t>(pos + span, donor.size());
    while (i < end) {
        if (state.burstLeft == 0 && rng.nextBool(profile.burstProb / 100))
            state.burstLeft = 1 + rng.nextGeometric(
                1.0 / profile.burstMeanSpan);
        const double scale = state.scale(profile);
        if (state.burstLeft > 0)
            state.burstLeft--;

        if (rng.nextBool(profile.insErrorRate * scale)) {
            const uint64_t len = drawIndelBlockLen(profile, rng);
            for (uint64_t j = 0; j < len; j++)
                out.push_back(randomBase(rng));
            continue; // Donor pointer does not advance on insertion.
        }
        if (rng.nextBool(profile.delErrorRate * scale)) {
            const uint64_t len = drawIndelBlockLen(profile, rng);
            i += len;
            continue;
        }
        if (rng.nextBool(profile.subErrorRate * scale)) {
            out.push_back(mutatedBase(rng, donor[i]));
        } else {
            out.push_back(donor[i]);
        }
        i++;
    }
}

/** Draw a read length for the profile. */
uint64_t
drawReadLength(const SequencerProfile &profile, Rng &rng)
{
    if (!profile.longRead)
        return profile.readLength;
    const double mu = std::log(static_cast<double>(profile.readLength));
    const double draw =
        std::exp(rng.nextNormal(mu, profile.readLengthSigma));
    return std::clamp<uint64_t>(static_cast<uint64_t>(draw),
                                profile.minReadLength,
                                profile.maxReadLength);
}

/** Phred score to ASCII (Phred+33). */
char
phredChar(unsigned q)
{
    return static_cast<char>(33 + std::min(q, 60u));
}

/**
 * Generate a quality string: binned high-quality baseline with dips in a
 * burst region and at random positions. Quality alphabets of modern
 * sequencers are small (paper §5.1.5 context), which is what makes
 * separate-stream compression effective.
 */
std::string
makeQuality(size_t len, const SequencerProfile &profile, Rng &rng)
{
    if (!profile.reportsQuality)
        return std::string(len, phredChar(profile.qualityPeak));
    std::string quals(len, phredChar(profile.qualityPeak));
    const unsigned step =
        std::max(1u, profile.qualityPeak / profile.qualityLevels);
    uint64_t dip_left = 0;
    unsigned dip_level = 0;
    for (size_t i = 0; i < len; i++) {
        if (dip_left == 0 && rng.nextBool(0.02)) {
            dip_left = 1 + rng.nextGeometric(1.0 / 12.0);
            dip_level = 1 + static_cast<unsigned>(
                rng.nextBelow(profile.qualityLevels - 1));
        }
        if (dip_left > 0) {
            dip_left--;
            const unsigned q =
                profile.qualityPeak - dip_level * step;
            quals[i] = phredChar(q);
        }
    }
    return quals;
}

} // namespace

std::string
synthesizeReference(const GenomeProfile &profile, Rng &rng)
{
    std::string ref;
    ref.reserve(profile.referenceLength);

    // Mix of unique sequence and sprinkled near-identical repeats.
    std::string repeat_unit;
    for (unsigned i = 0; i < profile.repeatUnit; i++)
        repeat_unit.push_back(randomBase(rng));

    // Paste probability per loop iteration such that repeat copies
    // cover ~repeatFraction of the final genome (each paste emits a
    // whole unit of repeatUnit bases, all other iterations one base).
    const double paste_prob = profile.repeatFraction
        / (profile.repeatUnit * (1.0 - profile.repeatFraction) + 1.0);
    while (ref.size() < profile.referenceLength) {
        if (rng.nextBool(paste_prob) &&
            ref.size() + repeat_unit.size() < profile.referenceLength) {
            // Paste a slightly mutated copy of the repeat unit.
            for (char c : repeat_unit) {
                ref.push_back(rng.nextBool(0.02) ? mutatedBase(rng, c)
                                                 : c);
            }
        } else {
            ref.push_back(randomBase(rng));
        }
    }
    ref.resize(profile.referenceLength);
    return ref;
}

SimulatedDataset
synthesizeDataset(const DatasetSpec &spec)
{
    Rng rng(spec.seed);
    SimulatedDataset ds;
    ds.reference = synthesizeReference(spec.genome, rng);
    ds.donor = applyVariants(ds.reference, spec.genome, rng);

    ds.readSet.name = spec.name;
    ds.readSet.technology = spec.sequencer.longRead
        ? Technology::LongNoisy : Technology::ShortAccurate;

    const SequencerProfile &sp = spec.sequencer;
    const uint64_t target_bases = static_cast<uint64_t>(
        spec.depth * static_cast<double>(ds.donor.size()));

    uint64_t emitted_bases = 0;
    uint64_t read_index = 0;
    while (emitted_bases < target_bases) {
        const uint64_t want_len = drawReadLength(sp, rng);
        if (ds.donor.size() <= want_len + 2)
            sage_fatal("genome too small for requested read length");

        TruePlacement truth;
        truth.reverse = rng.nextBool(sp.reverseProb);

        std::string bases;
        bases.reserve(want_len + 64);
        ErrorState state;

        const bool chimeric =
            sp.longRead && rng.nextBool(sp.chimeraProb);
        truth.chimeric = chimeric;
        unsigned segments = 1;
        if (chimeric) {
            segments = 2 + static_cast<unsigned>(rng.nextGeometric(
                1.0 / sp.chimeraExtraSegments));
        }

        uint64_t remaining = want_len;
        for (unsigned s = 0; s < segments; s++) {
            uint64_t span = s + 1 == segments
                ? remaining
                : std::max<uint64_t>(remaining / (segments - s) / 2,
                                     remaining / (2 * segments));
            span = std::min(span, remaining);
            if (span == 0)
                break;
            const uint64_t pos =
                rng.nextBelow(ds.donor.size() - span);
            if (s == 0)
                truth.genomePos = pos;
            sequenceSegment(ds.donor, pos, span, sp, rng, state, bases);
            remaining -= span;
        }

        // Optional clip block: random bases glued to one end.
        if (rng.nextBool(sp.clipProb)) {
            truth.clipped = true;
            const uint64_t clip_len =
                1 + rng.nextGeometric(1.0 / sp.clipMeanLen);
            std::string clip;
            for (uint64_t j = 0; j < clip_len; j++)
                clip.push_back(randomBase(rng));
            if (rng.nextBool(0.5))
                bases = clip + bases;
            else
                bases += clip;
        }

        // Optional N contamination.
        if (rng.nextBool(sp.nReadProb) && !bases.empty()) {
            truth.hasN = true;
            const uint64_t n_len = 1 + rng.nextGeometric(1.0 / 3.0);
            const uint64_t start = rng.nextBelow(bases.size());
            for (uint64_t j = start;
                 j < std::min<uint64_t>(start + n_len, bases.size()); j++) {
                bases[j] = 'N';
            }
        }

        if (truth.reverse)
            bases = reverseComplement(bases);

        Read read;
        read.header = spec.name + "." + std::to_string(read_index++);
        read.quals = makeQuality(bases.size(), sp, rng);
        emitted_bases += bases.size();
        read.bases = std::move(bases);
        ds.readSet.reads.push_back(std::move(read));
        ds.truth.push_back(truth);
    }
    return ds;
}

} // namespace sage
