#include "simgen/profiles.hh"

namespace sage {

namespace {

/** Shared short-read sequencer defaults (Illumina-like). */
SequencerProfile
shortSequencer()
{
    SequencerProfile sp;
    sp.longRead = false;
    sp.readLength = 150;
    sp.subErrorRate = 0.001;   // ~99.9% accuracy, Property 2/5.
    sp.insErrorRate = 1e-5;
    sp.delErrorRate = 1e-5;
    sp.chimeraProb = 0.0;
    sp.reportsQuality = true;
    sp.qualityLevels = 4;      // Modern binned qualities.
    return sp;
}

/** Shared long-read sequencer defaults (nanopore-like). */
SequencerProfile
longSequencer()
{
    SequencerProfile sp;
    sp.longRead = true;
    sp.readLength = 9000;      // Median; log-normal spread.
    sp.readLengthSigma = 0.6;
    sp.minReadLength = 500;
    sp.maxReadLength = 120000;
    sp.subErrorRate = 0.006;   // ~99% accuracy overall.
    sp.insErrorRate = 0.002;
    sp.delErrorRate = 0.002;
    sp.seqIndelMeanLen = 1.12; // Mostly single-base blocks, Property 3.
    sp.longIndelTailProb = 0.015;
    sp.longIndelTailMean = 30.0;
    sp.burstProb = 0.35;       // Regional degradation, Property 1.
    sp.burstMultiplier = 8.0;
    sp.burstMeanSpan = 150.0;
    sp.chimeraProb = 0.08;     // Property 4.
    sp.reportsQuality = true;
    sp.qualityPeak = 30;
    sp.qualityLevels = 12;
    return sp;
}

} // namespace

DatasetSpec
makeRs1Spec()
{
    // Plant-like short-read set: moderate diversity, moderate depth.
    DatasetSpec spec;
    spec.name = "RS1";
    spec.genome.referenceLength = 1 << 20;
    spec.genome.backgroundSnpRate = 1.2e-3;
    spec.genome.clusterSnpRate = 0.02;
    // Keep repeats rare: real DNA does not gzip below ~2 bits/base, so
    // a repeat-heavy synthetic reference would unfairly favor backend-
    // compressed consensus storage over SAGe's raw 2-bit stream.
    spec.genome.repeatFraction = 0.05;
    spec.sequencer = shortSequencer();
    spec.sequencer.readLength = 100;
    spec.depth = 10.0;
    spec.seed = 101;
    return spec;
}

DatasetSpec
makeRs2Spec()
{
    // Deep, clean human-like short reads: the paper's best-compressing set.
    DatasetSpec spec;
    spec.name = "RS2";
    spec.genome.referenceLength = 3 << 20;
    spec.genome.backgroundSnpRate = 4e-4;
    spec.genome.clusterSnpRate = 0.012;
    spec.sequencer = shortSequencer();
    spec.sequencer.readLength = 150;
    spec.sequencer.subErrorRate = 0.0006;
    spec.depth = 24.0;
    spec.seed = 102;
    return spec;
}

DatasetSpec
makeRs3Spec()
{
    // Noisier, more diverse short reads: worst short-read ratio.
    DatasetSpec spec;
    spec.name = "RS3";
    spec.genome.referenceLength = 1 << 20;
    spec.genome.backgroundSnpRate = 4e-3;
    spec.genome.clusterSnpRate = 0.05;
    spec.genome.clusterStartRate = 6e-5;
    spec.sequencer = shortSequencer();
    spec.sequencer.readLength = 125;
    spec.sequencer.subErrorRate = 0.004;
    spec.sequencer.qualityLevels = 8;
    spec.depth = 8.0;
    spec.seed = 103;
    return spec;
}

DatasetSpec
makeRs4Spec()
{
    // Noisy nanopore-like long reads: worst overall ratio.
    DatasetSpec spec;
    spec.name = "RS4";
    spec.genome.referenceLength = 2 << 20;
    spec.genome.backgroundSnpRate = 8e-4;
    spec.sequencer = longSequencer();
    spec.sequencer.subErrorRate = 0.01;
    spec.sequencer.insErrorRate = 0.004;
    spec.sequencer.delErrorRate = 0.004;
    spec.depth = 12.0;
    spec.seed = 104;
    return spec;
}

DatasetSpec
makeRs5Spec()
{
    // Cleaner long reads (banana T2T-like project data).
    DatasetSpec spec;
    spec.name = "RS5";
    spec.genome.referenceLength = 3 << 20;
    spec.genome.backgroundSnpRate = 5e-4;
    spec.sequencer = longSequencer();
    spec.sequencer.subErrorRate = 0.004;
    spec.sequencer.insErrorRate = 0.0015;
    spec.sequencer.delErrorRate = 0.0015;
    spec.sequencer.chimeraProb = 0.05;
    spec.depth = 16.0;
    spec.seed = 105;
    return spec;
}

std::vector<DatasetSpec>
allReadSetSpecs()
{
    return {makeRs1Spec(), makeRs2Spec(), makeRs3Spec(), makeRs4Spec(),
            makeRs5Spec()};
}

DatasetSpec
makeTinySpec(bool long_read)
{
    DatasetSpec spec;
    spec.name = long_read ? "tiny-long" : "tiny-short";
    spec.genome.referenceLength = 1 << 16;
    spec.sequencer = long_read ? longSequencer() : shortSequencer();
    if (long_read) {
        spec.sequencer.readLength = 2000;
        spec.sequencer.maxReadLength = 12000;
    }
    spec.depth = 4.0;
    spec.seed = 42;
    return spec;
}

} // namespace sage
