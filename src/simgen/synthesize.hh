/**
 * @file
 * Synthetic read-set generation (the repository's stand-in for downloading
 * the paper's RS1-RS5 from SRA/ENA; see DESIGN.md §2).
 */

#ifndef SAGE_SIMGEN_SYNTHESIZE_HH
#define SAGE_SIMGEN_SYNTHESIZE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "genomics/read.hh"
#include "simgen/profiles.hh"
#include "util/rng.hh"

namespace sage {

/** Ground-truth placement of one simulated read (for tests only). */
struct TruePlacement
{
    uint64_t genomePos = 0;   ///< Start in the donor genome.
    bool reverse = false;     ///< Sampled from the reverse strand.
    bool chimeric = false;    ///< Joined from multiple loci.
    bool hasN = false;        ///< Contains at least one N base.
    bool clipped = false;     ///< Carries a random clip block.
};

/** A synthesized dataset: reads plus everything the tests may check. */
struct SimulatedDataset
{
    ReadSet readSet;
    std::string reference;  ///< Public reference (consensus candidate).
    std::string donor;      ///< Actual genome the reads were drawn from.
    std::vector<TruePlacement> truth;  ///< Parallel to readSet.reads.
};

/** Generate a dataset from a spec. Deterministic in spec.seed. */
SimulatedDataset synthesizeDataset(const DatasetSpec &spec);

/** Generate only a reference-like random genome (repeats included). */
std::string synthesizeReference(const GenomeProfile &profile, Rng &rng);

} // namespace sage

#endif // SAGE_SIMGEN_SYNTHESIZE_HH
