#include "util/cpu.hh"

#include <cstdlib>
#include <thread>

namespace sage {

namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SAGE_X86_DISPATCH 1
#else
#define SAGE_X86_DISPATCH 0
#endif

SimdLevel
probeHardware()
{
#if SAGE_X86_DISPATCH
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::AVX2;
    if (__builtin_cpu_supports("ssse3"))
        return SimdLevel::SSSE3;
#endif
    return SimdLevel::Scalar;
}

bool
probeForcedScalar()
{
    const char *force = std::getenv("SAGE_FORCE_SCALAR");
    return force && *force && !(force[0] == '0' && force[1] == '\0');
}

} // namespace

SimdLevel
hardwareSimdLevel()
{
    static const SimdLevel level = probeHardware();
    return level;
}

bool
simdForcedScalar()
{
    static const bool forced = probeForcedScalar();
    return forced;
}

SimdLevel
detectedSimdLevel()
{
    static const SimdLevel level =
        simdForcedScalar() ? SimdLevel::Scalar : hardwareSimdLevel();
    return level;
}

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar: return "scalar";
      case SimdLevel::SSSE3: return "ssse3";
      case SimdLevel::AVX2: return "avx2";
    }
    return "scalar";
}

unsigned
hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

std::string
compilerVersion()
{
#if defined(__clang__)
    return "clang " + std::string(__clang_version__);
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

} // namespace sage
