#include "util/logging.hh"

#include <cstdio>

namespace sage {
namespace detail {

[[noreturn]] void
panicExit(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

[[noreturn]] void
fatalExit(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnPrint(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informPrint(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
    std::fflush(stdout);
}

} // namespace detail
} // namespace sage
