/**
 * @file
 * Plain-text table rendering for the benchmark harnesses, which print the
 * same rows/series the paper's tables and figures report.
 */

#ifndef SAGE_UTIL_TABLE_HH
#define SAGE_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace sage {

/** Row-oriented text table with auto-sized columns. */
class TextTable
{
  public:
    /** Set the header row. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row. */
    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a separator under the header. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helpers for numeric cells. */
    static std::string num(double v, int precision = 2);
    static std::string timesFactor(double v, int precision = 1);
    static std::string percent(double v, int precision = 1);
    static std::string bytesHuman(double bytes);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sage

#endif // SAGE_UTIL_TABLE_HH
