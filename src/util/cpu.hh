/**
 * @file
 * Host CPU capability detection for the runtime-dispatched sequence
 * kernels (genomics/kernels.hh).
 *
 * The SAGe paper's premise is that data preparation must run at
 * hardware speed; on the software side that means the hot base-level
 * transforms pick the widest SIMD path the host offers. Detection is
 * done once, at first use, and can be overridden for testing and
 * debugging by setting SAGE_FORCE_SCALAR=1 in the environment (CI runs
 * the whole test suite both ways).
 */

#ifndef SAGE_UTIL_CPU_HH
#define SAGE_UTIL_CPU_HH

#include <string>

namespace sage {

/** SIMD instruction-set tiers the sequence kernels dispatch over. */
enum class SimdLevel {
    Scalar,  ///< Portable table-driven baseline (always available).
    SSSE3,   ///< 128-bit shuffle kernels (pshufb).
    AVX2,    ///< 256-bit shuffle kernels.
};

/**
 * Highest SIMD tier this host supports, honoring SAGE_FORCE_SCALAR.
 * Resolved once; every call after the first is a load.
 */
SimdLevel detectedSimdLevel();

/** Raw hardware capability, ignoring SAGE_FORCE_SCALAR (diagnostics). */
SimdLevel hardwareSimdLevel();

/** True when SAGE_FORCE_SCALAR=1 (or any non-"0" value) is set. */
bool simdForcedScalar();

/** Lower-case tier name: "scalar", "ssse3", "avx2". */
const char *simdLevelName(SimdLevel level);

/** std::thread::hardware_concurrency with a minimum of 1. */
unsigned hardwareConcurrency();

/** Compiler identity this library was built with, e.g. "gcc 12.2.0". */
std::string compilerVersion();

} // namespace sage

#endif // SAGE_UTIL_CPU_HH
