#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace sage {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    // Compute column widths over header + rows.
    size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());
    std::vector<size_t> widths(cols, 0);
    auto measure = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());
    };
    measure(header_);
    for (const auto &row : rows_)
        measure(row);

    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < cols; c++) {
            const std::string cell = c < row.size() ? row[c] : "";
            oss << cell;
            if (c + 1 < cols)
                oss << std::string(widths[c] - cell.size() + 2, ' ');
        }
        oss << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        size_t total = 0;
        for (size_t c = 0; c < cols; c++)
            total += widths[c] + (c + 1 < cols ? 2 : 0);
        oss << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::timesFactor(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

std::string
TextTable::percent(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
    return buf;
}

std::string
TextTable::bytesHuman(double bytes)
{
    const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    int unit = 0;
    while (bytes >= 1024.0 && unit < 4) {
        bytes /= 1024.0;
        unit++;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[unit]);
    return buf;
}

} // namespace sage
