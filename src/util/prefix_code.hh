/**
 * @file
 * Canonical Huffman prefix codes.
 *
 * Used in two places:
 *  - the gpzip general-purpose baseline compressor (literal/length and
 *    distance alphabets), and
 *  - the SpringLike baseline's backend entropy stage.
 *
 * SAGe itself deliberately does NOT use table-driven Huffman decoding in
 * its guide arrays (that is the point of the paper: guide arrays use tiny
 * unary codes decodable with comparators); see core/guide_code.hh.
 */

#ifndef SAGE_UTIL_PREFIX_CODE_HH
#define SAGE_UTIL_PREFIX_CODE_HH

#include <cstdint>
#include <vector>

#include "util/bitio.hh"

namespace sage {

/**
 * A canonical Huffman code over a dense symbol alphabet [0, n).
 *
 * Codes are emitted MSB-first *within the LSB-first bit stream* by
 * reversing each codeword at build time, so encode/decode only ever uses
 * BitWriter/BitReader primitives.
 */
class PrefixCode
{
  public:
    /**
     * Build a length-limited (max 15 bits) canonical code from symbol
     * frequencies. Symbols with zero frequency get no code.
     */
    static PrefixCode fromFrequencies(const std::vector<uint64_t> &freqs);

    /** Rebuild a code from its canonical code-length table. */
    static PrefixCode fromLengths(const std::vector<uint8_t> &lengths);

    /** Code length (bits) per symbol; 0 means the symbol is unused. */
    const std::vector<uint8_t> &lengths() const { return lengths_; }

    /** Encode one symbol. */
    void
    encode(BitWriter &bw, unsigned symbol) const
    {
        sage_assert(symbol < lengths_.size() && lengths_[symbol] > 0,
                    "encoding symbol with no code: ", symbol);
        bw.writeBits(reversed_[symbol], lengths_[symbol]);
    }

    /** Decode one symbol (table-driven fast path for short codes). */
    unsigned
    decode(BitReader &br) const
    {
        // Fast path: one lookup resolves codes up to kLutBits long.
        const uint32_t window =
            static_cast<uint32_t>(br.peekBits(kLutBits));
        const LutEntry entry = lut_[window];
        if (entry.length != 0) {
            br.skipBits(entry.length);
            return entry.symbol;
        }
        return decodeSlow(br);
    }

    /** Number of symbols in the alphabet. */
    size_t alphabetSize() const { return lengths_.size(); }

    /** Expected code length in bits under the given frequencies. */
    double expectedBits(const std::vector<uint64_t> &freqs) const;

  private:
    /** Width of the single-lookup decode table. */
    static constexpr unsigned kLutBits = 10;

    struct LutEntry
    {
        uint16_t symbol = 0;
        uint8_t length = 0;   ///< 0 marks "code longer than kLutBits".
    };

    void buildTables();

    /** Bit-serial canonical decode for codes longer than kLutBits. */
    unsigned decodeSlow(BitReader &br) const;

    std::vector<uint8_t> lengths_;
    std::vector<uint32_t> reversed_;  ///< Bit-reversed codewords.
    std::vector<uint32_t> firstCode_; ///< First canonical code per length.
    std::vector<uint32_t> countByLen_;
    std::vector<uint32_t> firstIndex_;
    std::vector<uint32_t> symbolsInOrder_;
    std::vector<LutEntry> lut_;
    unsigned maxLen_ = 0;
};

} // namespace sage

#endif // SAGE_UTIL_PREFIX_CODE_HH
