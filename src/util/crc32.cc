#include "util/crc32.hh"

#include <array>

namespace sage {

namespace {

/** Build the classic 256-entry CRC table at static-init time. */
std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; i++) {
        uint32_t c = i;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> kTable = makeTable();

} // namespace

void
Crc32::update(const uint8_t *data, size_t size)
{
    uint32_t c = state_;
    for (size_t i = 0; i < size; i++)
        c = kTable[(c ^ data[i]) & 0xff] ^ (c >> 8);
    state_ = c;
}

} // namespace sage
