/**
 * @file
 * Error-reporting helpers following the gem5 fatal/panic convention.
 *
 * panic()  — an internal invariant was violated; this is a bug in the
 *            library itself. Aborts.
 * fatal()  — the simulation/compression cannot continue because of a user
 *            error (bad configuration, malformed input). Exits with code 1.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output.
 */

#ifndef SAGE_UTIL_LOGGING_HH
#define SAGE_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sage {

namespace detail {

/** Stream-concatenate all arguments into one string. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicExit(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalExit(const char *file, int line,
                            const std::string &msg);
void warnPrint(const std::string &msg);
void informPrint(const std::string &msg);

} // namespace detail

} // namespace sage

/** Abort with a message: internal invariant violated (library bug). */
#define sage_panic(...)                                                     \
    ::sage::detail::panicExit(__FILE__, __LINE__,                           \
                              ::sage::detail::concatMessage(__VA_ARGS__))

/** Exit(1) with a message: unrecoverable user/input error. */
#define sage_fatal(...)                                                     \
    ::sage::detail::fatalExit(__FILE__, __LINE__,                           \
                              ::sage::detail::concatMessage(__VA_ARGS__))

/** Print a warning and continue. */
#define sage_warn(...)                                                      \
    ::sage::detail::warnPrint(::sage::detail::concatMessage(__VA_ARGS__))

/** Print a status message. */
#define sage_inform(...)                                                    \
    ::sage::detail::informPrint(::sage::detail::concatMessage(__VA_ARGS__))

/** Panic when a condition that must always hold is violated. */
#define sage_assert(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            sage_panic("assertion failed: ", #cond, " ",                    \
                       ::sage::detail::concatMessage(__VA_ARGS__));         \
        }                                                                   \
    } while (0)

#endif // SAGE_UTIL_LOGGING_HH
