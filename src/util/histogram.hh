/**
 * @file
 * Small integer histogram used throughout the SAGe tuner and the dataset
 * property analyses (paper Figs. 7 and 10).
 */

#ifndef SAGE_UTIL_HISTOGRAM_HH
#define SAGE_UTIL_HISTOGRAM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sage {

/**
 * Histogram over small non-negative integer keys (e.g. bit counts 0..32).
 *
 * Grows on demand; exposes totals, cumulative sums and quantiles needed by
 * Algorithm 1 and by the Fig. 7 property benches.
 */
class Histogram
{
  public:
    Histogram() = default;
    explicit Histogram(size_t buckets) : counts_(buckets, 0) {}

    /** Add @p n observations of @p key. */
    void
    add(size_t key, uint64_t n = 1)
    {
        if (key >= counts_.size())
            counts_.resize(key + 1, 0);
        counts_[key] += n;
        total_ += n;
    }

    /** Count in bucket @p key (0 if never observed). */
    uint64_t
    count(size_t key) const
    {
        return key < counts_.size() ? counts_[key] : 0;
    }

    /** Number of buckets (max observed key + 1). */
    size_t size() const { return counts_.size(); }

    /** Total observations. */
    uint64_t total() const { return total_; }

    /** Fraction of observations in bucket @p key. */
    double
    fraction(size_t key) const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(count(key)) / total_;
    }

    /** Cumulative count of buckets [0, key]. */
    uint64_t
    cumulative(size_t key) const
    {
        uint64_t sum = 0;
        for (size_t k = 0; k < counts_.size() && k <= key; k++)
            sum += counts_[k];
        return sum;
    }

    /** Smallest key whose cumulative fraction reaches @p q (0<q<=1). */
    size_t
    quantileKey(double q) const
    {
        const uint64_t want =
            static_cast<uint64_t>(q * static_cast<double>(total_));
        uint64_t sum = 0;
        for (size_t k = 0; k < counts_.size(); k++) {
            sum += counts_[k];
            if (sum >= want)
                return k;
        }
        return counts_.empty() ? 0 : counts_.size() - 1;
    }

    /** Mean key value. */
    double
    mean() const
    {
        if (total_ == 0)
            return 0.0;
        double sum = 0.0;
        for (size_t k = 0; k < counts_.size(); k++)
            sum += static_cast<double>(k) * static_cast<double>(counts_[k]);
        return sum / static_cast<double>(total_);
    }

    /** Raw bucket vector (index = key). */
    const std::vector<uint64_t> &buckets() const { return counts_; }

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * One-struct digest of a LatencyHistogram — what a stats snapshot
 * carries per priority class (service/service.hh keeps one histogram
 * per RequestPriority so an interactive client's p99 is never diluted
 * by background warms queued behind the whole backlog).
 */
struct LatencySummary
{
    uint64_t samples = 0;
    double meanSeconds = 0.0;
    double p50Seconds = 0.0;
    double p99Seconds = 0.0;
    double maxSeconds = 0.0;
};

/**
 * Fixed-footprint latency histogram for the archive service layer
 * (service/service.hh): log-spaced buckets — four per power-of-two
 * octave of microseconds — so p50/p99 over millions of requests costs
 * a few KB and one array walk, with ~19% worst-case quantile error.
 *
 * Not internally synchronized; the service records under its stats
 * mutex.
 */
class LatencyHistogram
{
  public:
    /** Record one latency sample. Negative samples clamp to zero. */
    void
    record(double seconds)
    {
        const uint64_t micros = seconds <= 0.0
            ? 0
            : static_cast<uint64_t>(seconds * 1e6);
        counts_[bucketFor(micros)]++;
        total_++;
        sumSeconds_ += seconds > 0.0 ? seconds : 0.0;
        if (seconds > maxSeconds_)
            maxSeconds_ = seconds;
    }

    /** Samples recorded. */
    uint64_t count() const { return total_; }

    /** Sum of all samples (for mean latency). */
    double totalSeconds() const { return sumSeconds_; }

    /** Largest sample seen (exact, not bucketed). */
    double maxSeconds() const { return maxSeconds_; }

    /** Mean latency in seconds. */
    double
    meanSeconds() const
    {
        return total_ == 0 ? 0.0
                           : sumSeconds_ / static_cast<double>(total_);
    }

    /**
     * Latency at quantile @p q in (0, 1] (e.g. 0.5, 0.99): the upper
     * edge of the smallest bucket whose cumulative count reaches q —
     * a conservative (never-underreported) estimate.
     */
    double
    quantileSeconds(double q) const
    {
        if (total_ == 0)
            return 0.0;
        uint64_t want = static_cast<uint64_t>(
            q * static_cast<double>(total_));
        if (want == 0)
            want = 1;
        uint64_t sum = 0;
        for (size_t b = 0; b < kBuckets; b++) {
            sum += counts_[b];
            if (sum >= want) {
                // The overflow bucket has no meaningful upper edge;
                // the exact maximum is the only never-underreported
                // answer there.
                return b == kBuckets - 1 ? maxSeconds_
                                         : bucketUpperMicros(b) / 1e6;
            }
        }
        return maxSeconds_;
    }

    /** Digest for a stats snapshot (samples/mean/p50/p99/max). */
    LatencySummary
    summary() const
    {
        LatencySummary out;
        out.samples = total_;
        out.meanSeconds = meanSeconds();
        out.p50Seconds = quantileSeconds(0.50);
        out.p99Seconds = quantileSeconds(0.99);
        out.maxSeconds = maxSeconds_;
        return out;
    }

    /** Merge another histogram into this one. */
    void
    merge(const LatencyHistogram &other)
    {
        for (size_t b = 0; b < kBuckets; b++)
            counts_[b] += other.counts_[b];
        total_ += other.total_;
        sumSeconds_ += other.sumSeconds_;
        if (other.maxSeconds_ > maxSeconds_)
            maxSeconds_ = other.maxSeconds_;
    }

  private:
    /** 4 sub-buckets per octave over 1 us .. ~64 s, plus overflow. */
    static constexpr size_t kSubBuckets = 4;
    static constexpr size_t kOctaves = 26;
    static constexpr size_t kBuckets = kOctaves * kSubBuckets + 1;

    static size_t
    bucketFor(uint64_t micros)
    {
        if (micros < kSubBuckets)
            return static_cast<size_t>(micros);
        // Octave = position of the highest set bit; the next two bits
        // select the sub-bucket within it.
        unsigned octave = 63 - static_cast<unsigned>(
            __builtin_clzll(micros));
        const size_t sub =
            static_cast<size_t>((micros >> (octave - 2)) & 3);
        const size_t idx =
            (static_cast<size_t>(octave) - 1) * kSubBuckets + sub;
        return idx < kBuckets ? idx : kBuckets - 1;
    }

    /** Inclusive upper edge of bucket @p b, in microseconds. */
    static double
    bucketUpperMicros(size_t b)
    {
        if (b < kSubBuckets)
            return static_cast<double>(b);
        const size_t octave = b / kSubBuckets + 1;
        const size_t sub = b % kSubBuckets;
        // Bucket covers [2^octave * (1 + sub/4), 2^octave * (1 + (sub+1)/4)).
        return static_cast<double>(uint64_t{1} << octave) *
            (1.0 + (static_cast<double>(sub) + 1.0) / 4.0);
    }

    uint64_t counts_[kBuckets] = {};
    uint64_t total_ = 0;
    double sumSeconds_ = 0.0;
    double maxSeconds_ = 0.0;
};

} // namespace sage

#endif // SAGE_UTIL_HISTOGRAM_HH
