/**
 * @file
 * Small integer histogram used throughout the SAGe tuner and the dataset
 * property analyses (paper Figs. 7 and 10).
 */

#ifndef SAGE_UTIL_HISTOGRAM_HH
#define SAGE_UTIL_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace sage {

/**
 * Histogram over small non-negative integer keys (e.g. bit counts 0..32).
 *
 * Grows on demand; exposes totals, cumulative sums and quantiles needed by
 * Algorithm 1 and by the Fig. 7 property benches.
 */
class Histogram
{
  public:
    Histogram() = default;
    explicit Histogram(size_t buckets) : counts_(buckets, 0) {}

    /** Add @p n observations of @p key. */
    void
    add(size_t key, uint64_t n = 1)
    {
        if (key >= counts_.size())
            counts_.resize(key + 1, 0);
        counts_[key] += n;
        total_ += n;
    }

    /** Count in bucket @p key (0 if never observed). */
    uint64_t
    count(size_t key) const
    {
        return key < counts_.size() ? counts_[key] : 0;
    }

    /** Number of buckets (max observed key + 1). */
    size_t size() const { return counts_.size(); }

    /** Total observations. */
    uint64_t total() const { return total_; }

    /** Fraction of observations in bucket @p key. */
    double
    fraction(size_t key) const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(count(key)) / total_;
    }

    /** Cumulative count of buckets [0, key]. */
    uint64_t
    cumulative(size_t key) const
    {
        uint64_t sum = 0;
        for (size_t k = 0; k < counts_.size() && k <= key; k++)
            sum += counts_[k];
        return sum;
    }

    /** Smallest key whose cumulative fraction reaches @p q (0<q<=1). */
    size_t
    quantileKey(double q) const
    {
        const uint64_t want =
            static_cast<uint64_t>(q * static_cast<double>(total_));
        uint64_t sum = 0;
        for (size_t k = 0; k < counts_.size(); k++) {
            sum += counts_[k];
            if (sum >= want)
                return k;
        }
        return counts_.empty() ? 0 : counts_.size() - 1;
    }

    /** Mean key value. */
    double
    mean() const
    {
        if (total_ == 0)
            return 0.0;
        double sum = 0.0;
        for (size_t k = 0; k < counts_.size(); k++)
            sum += static_cast<double>(k) * static_cast<double>(counts_[k]);
        return sum / static_cast<double>(total_);
    }

    /** Raw bucket vector (index = key). */
    const std::vector<uint64_t> &buckets() const { return counts_; }

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace sage

#endif // SAGE_UTIL_HISTOGRAM_HH
