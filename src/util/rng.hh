/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All dataset generators in this repository draw from Xoshiro256StarStar so
 * that every experiment is reproducible from a seed. The class also carries
 * the handful of distributions the sequencer models need (uniform, normal,
 * geometric, bounded Zipf-like picks).
 */

#ifndef SAGE_UTIL_RNG_HH
#define SAGE_UTIL_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sage {

/**
 * xoshiro256** PRNG (Blackman/Vigna family), seeded via SplitMix64.
 *
 * Chosen over std::mt19937 for speed and for a guaranteed-stable stream
 * across standard-library implementations (results must not depend on the
 * host's libstdc++ version).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; identical seeds give identical
     *  streams on every platform. */
    explicit Rng(uint64_t seed = 0x5a6eULL);

    /** Next raw 64-bit draw. */
    uint64_t next();

    /** Uniform integer in [0, bound), bound > 0. Unbiased via rejection. */
    uint64_t nextBelow(uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric draw: number of failures before the first success with
     * success probability p (p in (0, 1]); returns values in [0, inf).
     */
    uint64_t nextGeometric(double p);

    /** Approximately normal draw (Box-Muller). */
    double nextNormal(double mean, double stddev);

    /**
     * Draw an index from an explicit discrete distribution given by
     * non-negative weights. Weights need not be normalized.
     */
    size_t nextWeighted(const std::vector<double> &weights);

    /** Split off an independent child stream (for per-thread use). */
    Rng split();

  private:
    uint64_t s_[4];
};

} // namespace sage

#endif // SAGE_UTIL_RNG_HH
