/**
 * @file
 * Wall-clock timing helper plus the simulated-time units shared by the
 * ssd/dram/pipeline models. Simulated time is kept in double seconds —
 * the pipeline model reasons about stage throughputs, not cycles.
 */

#ifndef SAGE_UTIL_TIMING_HH
#define SAGE_UTIL_TIMING_HH

#include <chrono>
#include <cstdint>

namespace sage {

/** Scoped wall-clock stopwatch for measuring real software runtimes. */
class Stopwatch
{
  public:
    Stopwatch() : start_(clock::now()) {}

    /** Elapsed seconds since construction or last reset. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /** Restart the stopwatch. */
    void reset() { start_ = clock::now(); }

  private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/** Unit helpers for readability at call sites. */
constexpr double operator""_us(long double v)
{
    return static_cast<double>(v) * 1e-6;
}
constexpr double operator""_ms(long double v)
{
    return static_cast<double>(v) * 1e-3;
}
constexpr double operator""_MBps(long double v)
{
    return static_cast<double>(v) * 1e6;
}
constexpr double operator""_GBps(long double v)
{
    return static_cast<double>(v) * 1e9;
}

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * 1024;
constexpr uint64_t kGiB = 1024ULL * 1024 * 1024;

} // namespace sage

#endif // SAGE_UTIL_TIMING_HH
