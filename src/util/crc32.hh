/**
 * @file
 * CRC-32 (IEEE 802.3 polynomial) used for container integrity checks in
 * the gpzip and SAGe file formats.
 */

#ifndef SAGE_UTIL_CRC32_HH
#define SAGE_UTIL_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sage {

/** Incrementally updatable CRC-32 checksum. */
class Crc32
{
  public:
    /** Feed @p size bytes into the checksum. */
    void update(const uint8_t *data, size_t size);

    /** Feed a byte vector. */
    void
    update(const std::vector<uint8_t> &data)
    {
        update(data.data(), data.size());
    }

    /** Final checksum value. */
    uint32_t value() const { return state_ ^ 0xffffffffu; }

    /** One-shot convenience. */
    static uint32_t
    of(const uint8_t *data, size_t size)
    {
        Crc32 crc;
        crc.update(data, size);
        return crc.value();
    }

    static uint32_t
    of(const std::vector<uint8_t> &data)
    {
        return of(data.data(), data.size());
    }

  private:
    uint32_t state_ = 0xffffffffu;
};

} // namespace sage

#endif // SAGE_UTIL_CRC32_HH
