/**
 * @file
 * LSB-first bit-stream writer/reader.
 *
 * SAGe's arrays and guide arrays (paper §5.1) are sequences of fields whose
 * widths are data-dependent (chosen per read set by Algorithm 1). Both the
 * software decompressor and the hardware Scan Unit model consume the exact
 * same bit layout, so the layout lives here, in one place.
 *
 * Bits are packed LSB-first within each byte: the first bit written is bit 0
 * of byte 0. A field written with writeBits(v, n) is recovered by the next
 * readBits(n) at the same position.
 */

#ifndef SAGE_UTIL_BITIO_HH
#define SAGE_UTIL_BITIO_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/logging.hh"
#include "util/status.hh"

namespace sage {

/** Append-only bit stream writer. */
class BitWriter
{
  public:
    BitWriter() = default;

    /** Append the low @p nbits bits of @p value (0 <= nbits <= 57). */
    void
    writeBits(uint64_t value, unsigned nbits)
    {
        sage_assert(nbits <= 57, "writeBits supports at most 57 bits");
        if (nbits == 0)
            return;
        if (nbits < 64)
            value &= (uint64_t(1) << nbits) - 1;
        acc_ |= value << accBits_;
        accBits_ += nbits;
        while (accBits_ >= 8) {
            bytes_.push_back(static_cast<uint8_t>(acc_));
            acc_ >>= 8;
            accBits_ -= 8;
        }
    }

    /** Append a single bit. */
    void writeBit(bool bit) { writeBits(bit ? 1 : 0, 1); }

    /**
     * Append a unary-terminated prefix code: @p count one-bits followed by
     * a zero bit (the paper's guide-array codes 0, 10, 110, 1110, ...).
     */
    void
    writeUnary(unsigned count)
    {
        for (unsigned i = 0; i < count; i++)
            writeBit(true);
        writeBit(false);
    }

    /** Number of bits written so far. */
    uint64_t bitCount() const { return bytes_.size() * 8 + accBits_; }

    /** Pad with zero bits to the next byte boundary. */
    void
    alignByte()
    {
        if (accBits_ > 0)
            writeBits(0, 8 - accBits_);
    }

    /** Flush and return the backing byte vector (byte-aligned). */
    std::vector<uint8_t>
    take()
    {
        alignByte();
        return std::move(bytes_);
    }

    /** Read-only view of complete bytes written so far. */
    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
    uint64_t acc_ = 0;
    unsigned accBits_ = 0;
};

/** Sequential bit stream reader over a byte buffer. */
class BitReader
{
  public:
    BitReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    explicit BitReader(const std::vector<uint8_t> &bytes)
        : BitReader(bytes.data(), bytes.size())
    {}

    /**
     * Read @p nbits bits (LSB-first) as an unsigned value. Underrun
     * (the stream ends mid-field — truncated or corrupt input) throws
     * StatusError; fatal decode paths catch it at their boundary.
     */
    uint64_t
    readBits(unsigned nbits)
    {
        sage_assert(nbits <= 57, "readBits supports at most 57 bits");
        if (accBits_ < nbits) {
            refill(nbits);
            sage_check_data(accBits_ >= nbits, Truncated,
                            "bit stream underrun at bit ", bitPosition());
        }
        uint64_t v = nbits < 64 ? acc_ & ((uint64_t(1) << nbits) - 1) : acc_;
        acc_ >>= nbits;
        accBits_ -= nbits;
        return v;
    }

    /** Read a single bit. */
    bool readBit() { return readBits(1) != 0; }

    /**
     * Peek up to @p nbits without consuming them; bits past the end of
     * the stream read as zero (callers must validate via the decoded
     * symbol, e.g. table-driven prefix decode).
     */
    uint64_t
    peekBits(unsigned nbits)
    {
        sage_assert(nbits <= 57, "peekBits supports at most 57 bits");
        refill(nbits);
        return nbits < 64 ? acc_ & ((uint64_t(1) << nbits) - 1) : acc_;
    }

    /** Discard @p nbits previously peeked bits. */
    void
    skipBits(unsigned nbits)
    {
        sage_assert(accBits_ >= nbits, "skipBits beyond peeked window");
        acc_ >>= nbits;
        accBits_ -= nbits;
    }

    /** Read a unary-terminated code (count of leading one-bits). */
    unsigned
    readUnary()
    {
        unsigned count = 0;
        while (readBit())
            count++;
        return count;
    }

    /** Bits consumed so far. */
    uint64_t bitPosition() const { return byte_ * 8 - accBits_; }

    /** Whether at least @p nbits more bits are available. */
    bool
    hasBits(uint64_t nbits) const
    {
        return bitPosition() + nbits <= size_ * 8;
    }

    /** Skip to the next byte boundary of the stream. */
    void
    alignByte()
    {
        const unsigned drop = accBits_ & 7;
        acc_ >>= drop;
        accBits_ -= drop;
    }

  private:
    /**
     * Top the accumulator up to at least @p nbits buffered bits,
     * loading eight input bytes per iteration away from the stream
     * tail. Stops silently at end of data (callers that must not run
     * past the end check accBits_ afterwards). Only whole bytes enter
     * the accumulator, so bitPosition() stays exact.
     */
    void
    refill(unsigned nbits)
    {
        while (accBits_ < nbits && byte_ < size_) {
            if (byte_ + 8 <= size_) {
                uint64_t word;
                std::memcpy(&word, data_ + byte_, sizeof(word));
#if defined(__BYTE_ORDER__) && defined(__ORDER_BIG_ENDIAN__) &&             \
    __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
                word = __builtin_bswap64(word);
#endif
                // nbits <= 57 bounds accBits_ at 56 here, so at least
                // one whole byte always fits.
                const unsigned take = (64 - accBits_) >> 3;
                if (take < 8)
                    word &= (uint64_t(1) << (take * 8)) - 1;
                acc_ |= word << accBits_;
                byte_ += take;
                accBits_ += take * 8;
            } else {
                acc_ |= static_cast<uint64_t>(data_[byte_++]) << accBits_;
                accBits_ += 8;
            }
        }
    }

    const uint8_t *data_;
    size_t size_;
    size_t byte_ = 0;
    uint64_t acc_ = 0;
    unsigned accBits_ = 0;
};

} // namespace sage

#endif // SAGE_UTIL_BITIO_HH
