#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace sage {

namespace {

/** SplitMix64 step used to expand the seed into full generator state. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitMix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

uint64_t
Rng::nextBelow(uint64_t bound)
{
    sage_assert(bound > 0, "nextBelow bound must be positive");
    // Rejection sampling on the top of the range keeps the draw unbiased.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    sage_assert(lo <= hi, "nextRange requires lo <= hi");
    return lo + static_cast<int64_t>(
        nextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits scaled into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

uint64_t
Rng::nextGeometric(double p)
{
    sage_assert(p > 0.0 && p <= 1.0, "geometric p out of range");
    if (p >= 1.0)
        return 0;
    double u = nextDouble();
    // Inverse-CDF; clamp u away from 0 to avoid log(0).
    if (u < 1e-300)
        u = 1e-300;
    return static_cast<uint64_t>(std::floor(std::log(u)
                                            / std::log1p(-p)));
}

double
Rng::nextNormal(double mean, double stddev)
{
    double u1 = nextDouble();
    double u2 = nextDouble();
    if (u1 < 1e-300)
        u1 = 1e-300;
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    sage_assert(!weights.empty(), "nextWeighted needs weights");
    double total = 0.0;
    for (double w : weights)
        total += w;
    sage_assert(total > 0.0, "nextWeighted needs positive total weight");
    double x = nextDouble() * total;
    for (size_t i = 0; i < weights.size(); i++) {
        x -= weights[i];
        if (x <= 0.0)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa02b4c5d6e7f8091ULL);
}

} // namespace sage
