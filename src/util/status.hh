/**
 * @file
 * Recoverable error model: Status, StatusOr<T>, and StatusError.
 *
 * The fatal/panic convention in util/logging.hh is right for
 * programmer errors and unrecoverable CLI misuse, but a serving
 * process (service/service.hh) must degrade per-request, never
 * per-process: a flaky disk or a corrupt archive may fail one chunk
 * decode while every other client keeps streaming. Status carries
 * that failure up the stack as a value.
 *
 * Conventions (see docs/robustness.md):
 *  - Layers that touch untrusted bytes or real I/O expose `try*`
 *    entry points returning Status/StatusOr; the historical fatal
 *    entry points remain as thin wrappers that call sage_fatal with
 *    the same messages as before.
 *  - Deep decode internals (BitReader, varints, rANS tables) throw
 *    StatusError on malformed data; public try* boundaries catch it
 *    and return the carried Status. StatusError never escapes a
 *    public API.
 */

#ifndef SAGE_UTIL_STATUS_HH
#define SAGE_UTIL_STATUS_HH

#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace sage {

/** Failure categories a recoverable operation can report. */
enum class StatusCode : uint8_t
{
    Ok = 0,
    IoError = 1,     ///< The storage layer failed (errno-style).
    Truncated = 2,   ///< Input ended before a structure was complete.
    Corrupt = 3,     ///< Input bytes violate the format's invariants.
    OutOfRange = 4,  ///< A caller-supplied offset/index is out of bounds.
    Exhausted = 5,   ///< A bounded retry/resource budget ran out.
};

/** Short stable name for a StatusCode ("ok", "io-error", ...). */
inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::IoError: return "io-error";
      case StatusCode::Truncated: return "truncated";
      case StatusCode::Corrupt: return "corrupt";
      case StatusCode::OutOfRange: return "out-of-range";
      case StatusCode::Exhausted: return "exhausted";
    }
    return "unknown";
}

/** A failure category plus a human-readable message; Ok by default. */
class Status
{
  public:
    Status() = default;

    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {}

    template <typename... Args>
    static Status
    ioError(Args &&...args)
    {
        return Status(StatusCode::IoError,
                      detail::concatMessage(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    truncated(Args &&...args)
    {
        return Status(StatusCode::Truncated,
                      detail::concatMessage(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    corrupt(Args &&...args)
    {
        return Status(StatusCode::Corrupt,
                      detail::concatMessage(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    outOfRange(Args &&...args)
    {
        return Status(StatusCode::OutOfRange,
                      detail::concatMessage(std::forward<Args>(args)...));
    }

    template <typename... Args>
    static Status
    exhausted(Args &&...args)
    {
        return Status(StatusCode::Exhausted,
                      detail::concatMessage(std::forward<Args>(args)...));
    }

    bool ok() const { return code_ == StatusCode::Ok; }
    StatusCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<code-name>: <message>". */
    std::string
    toString() const
    {
        if (ok())
            return "ok";
        return std::string(statusCodeName(code_)) + ": " + message_;
    }

  private:
    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * Exception carrying a Status out of deep decode internals (bit
 * readers, varint parsers, rANS table loads) that have no Status
 * return channel of their own. Public try* boundaries catch it and
 * return the Status; fatal wrappers catch it and sage_fatal.
 */
class StatusError : public std::exception
{
  public:
    explicit StatusError(Status status) : status_(std::move(status)) {}

    const Status &status() const { return status_; }
    const char *what() const noexcept override
    {
        return status_.message().c_str();
    }

  private:
    Status status_;
};

/**
 * A Status or a value: `ok()` implies `value()` is present. The
 * error-path analogue of returning T directly.
 */
template <typename T>
class StatusOr
{
  public:
    /* Implicit conversions keep call sites terse:
     *   return Status::corrupt(...);   return std::move(result); */
    StatusOr(Status status) : status_(std::move(status))
    {
        sage_assert(!status_.ok(),
                    "StatusOr constructed from Ok status without a value");
    }

    StatusOr(T value) : value_(std::move(value)) {}

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    T &value()
    {
        sage_assert(ok(), "value() on failed StatusOr: ",
                    status_.toString());
        return *value_;
    }

    const T &value() const
    {
        sage_assert(ok(), "value() on failed StatusOr: ",
                    status_.toString());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace sage

/**
 * Throw StatusError when a data-dependent condition fails. For decode
 * internals validating untrusted bytes — the recoverable sibling of
 * sage_assert (which stays reserved for genuine invariants).
 */
#define sage_check_data(cond, code, ...)                                    \
    do {                                                                    \
        if (!(cond)) {                                                      \
            throw ::sage::StatusError(::sage::Status(                       \
                ::sage::StatusCode::code,                                   \
                ::sage::detail::concatMessage(__VA_ARGS__)));               \
        }                                                                   \
    } while (0)

#endif // SAGE_UTIL_STATUS_HH
