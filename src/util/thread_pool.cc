#include "util/thread_pool.hh"

#include <algorithm>

namespace sage {

ThreadPool::ThreadPool(size_t threads)
{
    size_t n = threads;
    if (n == 0)
        n = std::max<size_t>(1, std::thread::hardware_concurrency());
    workers_.reserve(n);
    for (size_t i = 0; i < n; i++)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    taskReady_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
        inflight_++;
    }
    taskReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inflight_ == 0; });
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    for (size_t i = 0; i < n; i++)
        submit([&fn, i] { fn(i); });
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            taskReady_.wait(lock,
                            [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_--;
        }
        allDone_.notify_all();
    }
}

} // namespace sage
