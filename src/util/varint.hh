/**
 * @file
 * LEB128-style variable-length integers and zig-zag signed mapping.
 * Used in container headers and the SpringLike baseline's streams.
 */

#ifndef SAGE_UTIL_VARINT_HH
#define SAGE_UTIL_VARINT_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/status.hh"

namespace sage {

/** Append @p value as a LEB128 varint to @p out. */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<uint8_t>(value));
}

/**
 * Read a LEB128 varint from @p data at offset @p pos (advanced).
 * Throws StatusError (Truncated/Corrupt) on malformed input — the
 * bytes are usually untrusted archive content. Callers on a fatal
 * path catch at their public boundary (see util/status.hh).
 */
inline uint64_t
getVarint(const std::vector<uint8_t> &data, size_t &pos)
{
    uint64_t value = 0;
    unsigned shift = 0;
    for (;;) {
        sage_check_data(pos < data.size(), Truncated,
                        "varint underrun at byte ", pos);
        const uint8_t byte = data[pos++];
        value |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return value;
        shift += 7;
        sage_check_data(shift < 64, Corrupt, "varint overflow at byte ",
                        pos);
    }
}

/** Map a signed value onto unsigned zig-zag space. */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

/** Invert zigzagEncode. */
inline int64_t
zigzagDecode(uint64_t u)
{
    return static_cast<int64_t>(u >> 1) ^ -static_cast<int64_t>(u & 1);
}

} // namespace sage

#endif // SAGE_UTIL_VARINT_HH
