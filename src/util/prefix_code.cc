#include "util/prefix_code.hh"

#include "util/status.hh"

#include <algorithm>
#include <queue>

#include "util/logging.hh"

namespace sage {

namespace {

constexpr unsigned kMaxCodeLen = 15;

/** Reverse the low @p len bits of @p code. */
uint32_t
reverseBits(uint32_t code, unsigned len)
{
    uint32_t out = 0;
    for (unsigned i = 0; i < len; i++) {
        out = (out << 1) | (code & 1);
        code >>= 1;
    }
    return out;
}

/**
 * Compute Huffman code lengths via a package-style heap build, then clamp
 * to kMaxCodeLen with the classic overflow-redistribution fixup.
 */
std::vector<uint8_t>
computeLengths(const std::vector<uint64_t> &freqs)
{
    const size_t n = freqs.size();
    std::vector<uint8_t> lengths(n, 0);

    struct Node { uint64_t freq; int left; int right; int symbol; };
    std::vector<Node> nodes;
    using HeapEntry = std::pair<uint64_t, int>;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> heap;

    for (size_t s = 0; s < n; s++) {
        if (freqs[s] > 0) {
            nodes.push_back({freqs[s], -1, -1, static_cast<int>(s)});
            heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
        }
    }

    if (nodes.empty())
        return lengths;
    if (nodes.size() == 1) {
        // A single used symbol still needs a 1-bit code.
        lengths[nodes[0].symbol] = 1;
        return lengths;
    }

    while (heap.size() > 1) {
        auto [fa, a] = heap.top(); heap.pop();
        auto [fb, b] = heap.top(); heap.pop();
        nodes.push_back({fa + fb, a, b, -1});
        heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
    }

    // Depth-first traversal assigning depths as code lengths.
    struct StackItem { int node; unsigned depth; };
    std::vector<StackItem> stack{{static_cast<int>(nodes.size()) - 1, 0}};
    unsigned max_depth = 0;
    while (!stack.empty()) {
        auto [idx, depth] = stack.back();
        stack.pop_back();
        const Node &nd = nodes[idx];
        if (nd.symbol >= 0) {
            lengths[nd.symbol] = static_cast<uint8_t>(std::max(1u, depth));
            max_depth = std::max(max_depth, std::max(1u, depth));
        } else {
            stack.push_back({nd.left, depth + 1});
            stack.push_back({nd.right, depth + 1});
        }
    }

    if (max_depth <= kMaxCodeLen)
        return lengths;

    // Length-limit: clamp overlong codes, then restore Kraft equality by
    // lengthening the cheapest short codes.
    int64_t kraft = 0;
    for (size_t s = 0; s < n; s++) {
        if (lengths[s] == 0)
            continue;
        if (lengths[s] > kMaxCodeLen)
            lengths[s] = kMaxCodeLen;
        kraft += int64_t(1) << (kMaxCodeLen - lengths[s]);
    }
    const int64_t budget = int64_t(1) << kMaxCodeLen;
    // While over budget, take a max-length code slot from the symbol with
    // the smallest frequency at a non-max length.
    while (kraft > budget) {
        // Find a symbol at length < kMaxCodeLen with minimal frequency and
        // lengthen it by one (halves its Kraft contribution).
        size_t best = n;
        for (size_t s = 0; s < n; s++) {
            if (lengths[s] > 0 && lengths[s] < kMaxCodeLen &&
                (best == n || freqs[s] < freqs[best])) {
                best = s;
            }
        }
        sage_assert(best < n, "length-limiting failed");
        kraft -= int64_t(1) << (kMaxCodeLen - lengths[best]);
        lengths[best]++;
        kraft += int64_t(1) << (kMaxCodeLen - lengths[best]);
    }
    return lengths;
}

} // namespace

PrefixCode
PrefixCode::fromFrequencies(const std::vector<uint64_t> &freqs)
{
    PrefixCode pc;
    pc.lengths_ = computeLengths(freqs);
    pc.buildTables();
    return pc;
}

PrefixCode
PrefixCode::fromLengths(const std::vector<uint8_t> &lengths)
{
    PrefixCode pc;
    pc.lengths_ = lengths;
    pc.buildTables();
    return pc;
}

void
PrefixCode::buildTables()
{
    const size_t n = lengths_.size();
    maxLen_ = 0;
    for (uint8_t len : lengths_)
        maxLen_ = std::max<unsigned>(maxLen_, len);

    countByLen_.assign(maxLen_ + 1, 0);
    for (uint8_t len : lengths_) {
        if (len > 0)
            countByLen_[len]++;
    }

    // Canonical first code per length.
    firstCode_.assign(maxLen_ + 1, 0);
    firstIndex_.assign(maxLen_ + 1, 0);
    uint32_t code = 0;
    uint32_t index = 0;
    for (unsigned len = 1; len <= maxLen_; len++) {
        code = (code + (len > 1 ? countByLen_[len - 1] : 0)) << 1;
        firstCode_[len] = code;
        firstIndex_[len] = index;
        index += countByLen_[len];
    }

    // Symbols sorted by (length, symbol) — canonical order.
    symbolsInOrder_.clear();
    symbolsInOrder_.reserve(index);
    std::vector<uint32_t> next_index = firstIndex_;
    symbolsInOrder_.resize(index);
    for (size_t s = 0; s < n; s++) {
        if (lengths_[s] > 0)
            symbolsInOrder_[next_index[lengths_[s]]++] = s;
    }

    // Assign codewords, store bit-reversed for LSB-first emission.
    reversed_.assign(n, 0);
    std::vector<uint32_t> next_code = firstCode_;
    for (unsigned len = 1; len <= maxLen_; len++) {
        for (uint32_t i = 0; i < countByLen_[len]; i++) {
            const uint32_t sym = symbolsInOrder_[firstIndex_[len] + i];
            reversed_[sym] = reverseBits(next_code[len]++, len);
        }
    }

    // Single-lookup decode table: for every code of length <= kLutBits,
    // fill all windows whose low bits match the (stream-order) code.
    lut_.assign(size_t(1) << kLutBits, LutEntry{});
    for (size_t sym = 0; sym < n; sym++) {
        const unsigned len = lengths_[sym];
        if (len == 0 || len > kLutBits)
            continue;
        const uint32_t stream_bits = reversed_[sym];
        for (uint32_t pad = 0; pad < (1u << (kLutBits - len)); pad++) {
            LutEntry &entry = lut_[stream_bits | (pad << len)];
            entry.symbol = static_cast<uint16_t>(sym);
            entry.length = static_cast<uint8_t>(len);
        }
    }
}

unsigned
PrefixCode::decodeSlow(BitReader &br) const
{
    // Canonical decode: accumulate bits MSB-first and compare against
    // per-length first-code values.
    uint32_t code = 0;
    for (unsigned len = 1; len <= maxLen_; len++) {
        code = (code << 1) | (br.readBit() ? 1 : 0);
        if (countByLen_[len] > 0) {
            const uint32_t first = firstCode_[len];
            if (code < first + countByLen_[len] && code >= first) {
                return symbolsInOrder_[firstIndex_[len]
                                       + (code - first)];
            }
        }
    }
    sage_check_data(false, Corrupt,
                    "prefix code decode failed (corrupt stream)");
    __builtin_unreachable();
}

double
PrefixCode::expectedBits(const std::vector<uint64_t> &freqs) const
{
    double bits = 0.0;
    uint64_t total = 0;
    for (size_t s = 0; s < freqs.size() && s < lengths_.size(); s++) {
        bits += static_cast<double>(freqs[s]) * lengths_[s];
        total += freqs[s];
    }
    return total == 0 ? 0.0 : bits / static_cast<double>(total);
}

} // namespace sage
