/**
 * @file
 * Fixed-size worker pool used by the parallel-block compressors
 * (gpzip mirrors pigz's block parallelism) and by bench harnesses.
 */

#ifndef SAGE_UTIL_THREAD_POOL_HH
#define SAGE_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sage {

/**
 * A minimal fork-join thread pool.
 *
 * Tasks are arbitrary void() callables; wait() blocks until every task
 * submitted so far has finished. The pool is intentionally simple — the
 * compressors submit large, independent block jobs, so work stealing or
 * futures would be over-engineering.
 */
class ThreadPool
{
  public:
    /** Start @p threads workers (0 means hardware concurrency). */
    explicit ThreadPool(size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. */
    void submit(std::function<void()> task);

    /** Block until all submitted tasks have completed. */
    void wait();

    /** Number of worker threads. */
    size_t threadCount() const { return workers_.size(); }

    /**
     * Run @p fn(i) for i in [0, n) across the pool and wait.
     * Convenience for parallel-for style loops.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable taskReady_;
    std::condition_variable allDone_;
    size_t inflight_ = 0;
    bool stopping_ = false;
};

} // namespace sage

#endif // SAGE_UTIL_THREAD_POOL_HH
