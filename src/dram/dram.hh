/**
 * @file
 * DRAM bandwidth/latency/power model (Ramulator stand-in; DESIGN.md §2).
 *
 * The pipeline simulator treats DRAM as a bandwidth server with
 * idle/active power — the level of detail the end-to-end model needs:
 * the paper's argument rests on *bandwidth laws* (a host with 8 channels
 * vs an SSD-internal single-channel DRAM), not on bank timing.
 */

#ifndef SAGE_DRAM_DRAM_HH
#define SAGE_DRAM_DRAM_HH

#include <cstdint>

namespace sage {

/** One DRAM subsystem (host memory or SSD-internal buffer). */
struct DramConfig
{
    /** Peak sequential bandwidth in bytes/second. */
    double bandwidthBytesPerSec = 25.6e9;
    /** Number of independent channels. */
    unsigned channels = 8;
    /** Efficiency factor for random (pattern-matching) access streams:
     *  fraction of peak bandwidth actually achieved. */
    double randomAccessEfficiency = 0.30;
    /** Idle (background + refresh) power in watts. */
    double idlePowerWatts = 2.0;
    /** Additional active power at full bandwidth in watts. */
    double activePowerWatts = 10.0;
};

/** Bandwidth-server DRAM model. */
class DramModel
{
  public:
    explicit DramModel(DramConfig config = {}) : config_(config) {}

    /** Total peak bandwidth across channels (bytes/s). */
    double
    peakBandwidth() const
    {
        return config_.bandwidthBytesPerSec * config_.channels;
    }

    /** Seconds to move @p bytes sequentially. */
    double
    sequentialSeconds(uint64_t bytes) const
    {
        return static_cast<double>(bytes) / peakBandwidth();
    }

    /** Seconds to move @p bytes with a random access pattern (the
     *  pattern-matching decompression workload the paper describes). */
    double
    randomSeconds(uint64_t bytes) const
    {
        return static_cast<double>(bytes)
            / (peakBandwidth() * config_.randomAccessEfficiency);
    }

    /** Energy (joules) for an interval of @p seconds with the memory
     *  busy for @p busy_seconds of it. */
    double
    energyJoules(double seconds, double busy_seconds) const
    {
        return config_.idlePowerWatts * seconds
            + config_.activePowerWatts * busy_seconds;
    }

    const DramConfig &config() const { return config_; }

    /** Host DDR4 x8-channel configuration (EPYC-class, paper §7). */
    static DramModel hostDdr4();

    /** SSD-internal single-channel DRAM (paper §3.2: small, one
     *  channel, mostly occupied by mapping metadata). */
    static DramModel ssdInternal();

  private:
    DramConfig config_;
};

} // namespace sage

#endif // SAGE_DRAM_DRAM_HH
