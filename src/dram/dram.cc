#include "dram/dram.hh"

namespace sage {

DramModel
DramModel::hostDdr4()
{
    DramConfig config;
    config.bandwidthBytesPerSec = 25.6e9; // DDR4-3200 per channel.
    config.channels = 8;                   // EPYC 7742 host (paper §7).
    config.randomAccessEfficiency = 0.30;
    config.idlePowerWatts = 4.0;
    config.activePowerWatts = 30.0;
    return DramModel(config);
}

DramModel
DramModel::ssdInternal()
{
    DramConfig config;
    config.bandwidthBytesPerSec = 4.8e9;  // Single low-power channel.
    config.channels = 1;                   // Paper §3.2 / §6.
    config.randomAccessEfficiency = 0.25;
    config.idlePowerWatts = 0.3;
    config.activePowerWatts = 1.2;
    return DramModel(config);
}

} // namespace sage
