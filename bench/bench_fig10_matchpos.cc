/**
 * @file
 * Reproduces paper Fig. 10: distribution of bits needed for the
 * delta-encoded matching positions after read reordering (RS2-like
 * short reads, Property 6).
 *
 * Expected shape: strongly concentrated at small bit counts, with a
 * rapidly vanishing tail (the paper lists per-bit percentages falling
 * from tens of percent to ~1e-5 % by 15 bits).
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "consensus/stats.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Fig. 10: bits for delta-encoded matching positions (RS2)",
        "mass concentrated at few bits; reordering enables this "
        "(Property 6)");
    bench::printScaleNote();

    const SimulatedDataset ds = synthesizeDataset(makeRs2Spec());
    ThreadPool pool;
    ConsensusMapper mapper(ds.reference);
    const PropertyStats stats =
        analyzeProperties(mapper.mapAll(ds.readSet, &pool));

    TextTable table;
    table.setHeader({"#bits", "% of matching positions"});
    const auto &hist = stats.matchingPosDeltaBits;
    for (size_t b = 1; b <= 15; b++) {
        table.addRow({std::to_string(b),
                      TextTable::num(hist.fraction(b) * 100.0, 4)});
    }
    table.print();

    uint64_t small = 0;
    for (size_t b = 1; b <= 6; b++)
        small += hist.count(b);
    std::printf("\nfraction needing <= 6 bits: %s\n",
                TextTable::percent(static_cast<double>(small)
                                   / std::max<uint64_t>(hist.total(), 1))
                    .c_str());
    return 0;
}
