/**
 * @file
 * Reproduces paper Fig. 14: data-preparation-only throughput speedup
 * (I/O + decompression pipeline, no analysis stage), normalized to
 * pigz.
 *
 * Expected shape: SAGe 91.3x over pigz, 29.5x over (N)Spr, 22.3x over
 * (N)SprAC — much larger than the end-to-end numbers because mapping
 * no longer hides preparation.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "accel/mappers.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Fig. 14: data-preparation-only speedup (normalized to pigz)",
        "SAGe: 91.3x/29.5x/22.3x over pigz/(N)Spr/(N)SprAC");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();
    SystemConfig system;
    system.mapper = gemAccelerator();

    TextTable table;
    table.setHeader({"RS", "pigz", "(N)Spr", "(N)SprAC", "SAGe"});
    std::vector<double> spr, sprac, sage;
    std::vector<std::string> json_rows;
    for (const auto &art : all) {
        const double t_pigz =
            dataPrepSeconds(art.work, PrepConfig::Pigz, system);
        const double t_spr =
            dataPrepSeconds(art.work, PrepConfig::NSpr, system);
        const double t_sprac =
            dataPrepSeconds(art.work, PrepConfig::NSprAC, system);
        const double t_sage =
            dataPrepSeconds(art.work, PrepConfig::SageHW, system);
        spr.push_back(t_pigz / t_spr);
        sprac.push_back(t_pigz / t_sprac);
        sage.push_back(t_pigz / t_sage);
        {
            char row[256];
            std::snprintf(row, sizeof(row),
                          "    {\"rs\": \"%s\", \"pigzSeconds\": %.6f, "
                          "\"sprSpeedup\": %.3f, \"spracSpeedup\": %.3f, "
                          "\"sageSpeedup\": %.3f}",
                          art.work.name.c_str(), t_pigz,
                          t_pigz / t_spr, t_pigz / t_sprac,
                          t_pigz / t_sage);
            json_rows.push_back(row);
        }
        table.addRow({art.work.name, "1.0",
                      TextTable::timesFactor(t_pigz / t_spr),
                      TextTable::timesFactor(t_pigz / t_sprac),
                      TextTable::timesFactor(t_pigz / t_sage)});
    }
    table.addRow({"GMean", "1.0",
                  TextTable::timesFactor(bench::geomean(spr)),
                  TextTable::timesFactor(bench::geomean(sprac)),
                  TextTable::timesFactor(bench::geomean(sage))});
    table.print();

    std::printf("\nSAGe prep speedup over pigz: %.1fx (paper: 91.3x)\n",
                bench::geomean(sage));
    std::printf("SAGe prep speedup over (N)Spr: %.1fx (paper: 29.5x)\n",
                bench::geomean(sage) / bench::geomean(spr));
    std::printf("SAGe prep speedup over (N)SprAC: %.1fx "
                "(paper: 22.3x)\n",
                bench::geomean(sage) / bench::geomean(sprac));

    const std::string json_path = bench::jsonReportPath("fig14");
    if (!json_path.empty()) {
        FILE *json = std::fopen(json_path.c_str(), "w");
        if (json) {
            std::fprintf(json, "{\n  \"bench\": \"fig14_dataprep\",\n");
            std::fprintf(json, "  \"host\": %s,\n",
                         bench::hostMetaJson().c_str());
            std::fprintf(json, "  \"gmeanSageOverPigz\": %.3f,\n",
                         bench::geomean(sage));
            std::fprintf(json, "  \"gmeanSageOverSpr\": %.3f,\n",
                         bench::geomean(sage) / bench::geomean(spr));
            std::fprintf(json, "  \"gmeanSageOverSprAc\": %.3f,\n",
                         bench::geomean(sage) / bench::geomean(sprac));
            std::fprintf(json, "  \"perReadSet\": [\n");
            for (size_t i = 0; i < json_rows.size(); i++)
                std::fprintf(json, "%s%s\n", json_rows[i].c_str(),
                             i + 1 < json_rows.size() ? "," : "");
            std::fprintf(json, "  ]\n}\n");
            std::fclose(json);
            std::printf("wrote %s\n", json_path.c_str());
        }
    }
    return 0;
}
