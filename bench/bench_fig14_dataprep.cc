/**
 * @file
 * Reproduces paper Fig. 14: data-preparation-only throughput speedup
 * (I/O + decompression pipeline, no analysis stage), normalized to
 * pigz.
 *
 * Expected shape: SAGe 91.3x over pigz, 29.5x over (N)Spr, 22.3x over
 * (N)SprAC — much larger than the end-to-end numbers because mapping
 * no longer hides preparation.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "accel/mappers.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Fig. 14: data-preparation-only speedup (normalized to pigz)",
        "SAGe: 91.3x/29.5x/22.3x over pigz/(N)Spr/(N)SprAC");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();
    SystemConfig system;
    system.mapper = gemAccelerator();

    TextTable table;
    table.setHeader({"RS", "pigz", "(N)Spr", "(N)SprAC", "SAGe"});
    std::vector<double> spr, sprac, sage;
    for (const auto &art : all) {
        const double t_pigz =
            dataPrepSeconds(art.work, PrepConfig::Pigz, system);
        const double t_spr =
            dataPrepSeconds(art.work, PrepConfig::NSpr, system);
        const double t_sprac =
            dataPrepSeconds(art.work, PrepConfig::NSprAC, system);
        const double t_sage =
            dataPrepSeconds(art.work, PrepConfig::SageHW, system);
        spr.push_back(t_pigz / t_spr);
        sprac.push_back(t_pigz / t_sprac);
        sage.push_back(t_pigz / t_sage);
        table.addRow({art.work.name, "1.0",
                      TextTable::timesFactor(t_pigz / t_spr),
                      TextTable::timesFactor(t_pigz / t_sprac),
                      TextTable::timesFactor(t_pigz / t_sage)});
    }
    table.addRow({"GMean", "1.0",
                  TextTable::timesFactor(bench::geomean(spr)),
                  TextTable::timesFactor(bench::geomean(sprac)),
                  TextTable::timesFactor(bench::geomean(sage))});
    table.print();

    std::printf("\nSAGe prep speedup over pigz: %.1fx (paper: 91.3x)\n",
                bench::geomean(sage));
    std::printf("SAGe prep speedup over (N)Spr: %.1fx (paper: 29.5x)\n",
                bench::geomean(sage) / bench::geomean(spr));
    std::printf("SAGe prep speedup over (N)SprAC: %.1fx "
                "(paper: 22.3x)\n",
                bench::geomean(sage) / bench::geomean(sprac));
    return 0;
}
