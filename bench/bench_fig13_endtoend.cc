/**
 * @file
 * Reproduces paper Fig. 13: end-to-end speedup (prep + GEM analysis,
 * plus SAGeSSD+ISF with GenStore) for all prep configurations across
 * the five read sets, on both PCIe and SATA SSDs, normalized to (N)Spr.
 *
 * Expected shape (PCIe averages from the paper): SAGe beats pigz by
 * 12.3x, (N)Spr by 3.9x, (N)SprAC by 3.0x; SAGe matches 0TimeDec;
 * SAGeSSD+ISF beats (N)SprAC by 7.8x and wins everywhere except when
 * ISF filters little on a slow link (SATA + RS1/RS4).
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "accel/mappers.hh"
#include "util/table.hh"

using namespace sage;

namespace {

void
runLink(const std::vector<MeasuredArtifacts> &all, bool pcie)
{
    SystemConfig base;
    base.ssd = pcie ? SsdModel::pciePerformance() : SsdModel::sataCost();
    base.mapper = gemAccelerator();

    const PrepConfig configs[] = {
        PrepConfig::Pigz,     PrepConfig::NSpr,   PrepConfig::NSprAC,
        PrepConfig::ZeroTimeDec, PrepConfig::SageSW, PrepConfig::SageHW,
        PrepConfig::SageSSD,
    };

    std::printf("\n--- %s SSD ---\n", pcie ? "PCIe" : "SATA");
    TextTable table;
    table.setHeader({"RS", "pigz", "(N)Spr", "(N)SprAC", "Ideal",
                     "SAGeSW", "SAGe", "SAGeSSD", "SAGeSSD+ISF"});

    std::vector<std::vector<double>> speedups(8);
    for (const auto &art : all) {
        const double t_spr =
            evaluateEndToEnd(art.work, PrepConfig::NSpr, base).seconds;
        std::vector<std::string> row{art.work.name};
        size_t col = 0;
        for (PrepConfig config : configs) {
            const double t =
                evaluateEndToEnd(art.work, config, base).seconds;
            const double speedup = t_spr / t;
            speedups[col].push_back(speedup);
            row.push_back(TextTable::timesFactor(speedup));
            col++;
        }
        // SAGeSSD + ISF (GenStore pipeline).
        SystemConfig isf = base;
        isf.useIsf = true;
        const double t_isf =
            evaluateEndToEnd(art.work, PrepConfig::SageSSD, isf).seconds;
        speedups[col].push_back(t_spr / t_isf);
        row.push_back(TextTable::timesFactor(t_spr / t_isf));
        table.addRow(row);
    }
    std::vector<std::string> gmean_row{"GMean"};
    for (const auto &column : speedups)
        gmean_row.push_back(
            TextTable::timesFactor(bench::geomean(column)));
    table.addRow(gmean_row);
    table.print();

    const double sage = bench::geomean(speedups[5]);
    std::printf("SAGe avg speedup over pigz (%s): %.1fx "
                "(paper: %.1fx)\n",
                pcie ? "PCIe" : "SATA",
                sage / bench::geomean(speedups[0]),
                pcie ? 12.3 : 8.1);
    std::printf("SAGe avg speedup over (N)Spr: %.1fx (paper: %.1fx)\n",
                sage, pcie ? 3.9 : 2.7);
    std::printf("SAGe avg speedup over (N)SprAC: %.1fx (paper: %.1fx)\n",
                sage / bench::geomean(speedups[2]),
                pcie ? 3.0 : 2.1);
    std::printf("SAGeSSD+ISF avg speedup over (N)SprAC: %.1fx "
                "(paper: %.1fx)\n",
                bench::geomean(speedups[7])
                    / bench::geomean(speedups[2]),
                pcie ? 7.8 : 2.5);
    std::printf("SAGe vs 0TimeDec (should be ~1.0): %.2fx\n",
                sage / bench::geomean(speedups[3]));
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 13: end-to-end speedup, all prep configs, PCIe + SATA",
        "PCIe averages: 12.3x/3.9x/3.0x over pigz/(N)Spr/(N)SprAC; "
        "SAGe == 0TimeDec; SAGeSSD+ISF 7.8x over (N)SprAC");
    bench::printScaleNote();
    const auto all = bench::measureAllPresets();
    runLink(all, true);
    runLink(all, false);
    return 0;
}
