/**
 * @file
 * Network front-end benchmark: loadgen over the epoll server
 * (net/server.hh) speaking the binary protocol across real loopback
 * sockets. An in-process Server fronts a MultiArchiveService over a
 * synthesized multi-archive corpus; a fleet of blocking net::Clients
 * walks the corpus concurrently in fixed-size READ_RANGE batches,
 * measuring client-side request latency — so the numbers include
 * framing, the socket round trip, admission, scheduling, decode (or
 * cache hit) and reply serialization, i.e. what a remote consumer of
 * SAGe's cheap decode actually observes.
 *
 * Two scenarios:
 *   - connection sweep: aggregate payload MB/s and Normal-priority
 *     p50/p99 at several connection counts, fresh server per point;
 *   - overload: a small worker pool plus a low admission high-water
 *     mark under many connections — sheds must surface as Overloaded
 *     replies the clients retry through, with every walk completing.
 *
 * Writes a machine-readable JSON report (default BENCH_net.json,
 * override with argv[1]) with host metadata so CI can archive
 * baselines (scripts/check_bench_regression.py gates it).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/bench_common.hh"
#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/timing.hh"

using namespace sage;

namespace {

constexpr uint64_t kBatchReads = 1024;

struct CorpusArchive
{
    std::string name;
    uint64_t readCount = 0;
    uint64_t payloadBytes = 0;  ///< bases + quality.
};

struct SweepPoint
{
    unsigned connections = 0;
    double seconds = 0.0;
    double aggMbPerSec = 0.0;  ///< Payload bytes over the wire / wall.
    double p50Ms = 0.0;        ///< Client-measured, Normal priority.
    double p99Ms = 0.0;
    uint64_t requests = 0;
    uint64_t overloaded = 0;   ///< Shed replies retried through.
};

struct OverloadPoint
{
    unsigned connections = 0;
    uint64_t admissionHighWater = 0;
    unsigned poolThreads = 0;
    double seconds = 0.0;
    double aggMbPerSec = 0.0;
    uint64_t requests = 0;
    uint64_t overloadedReplies = 0;  ///< From the server's counters.
    bool allWalksCompleted = false;
    double p99Ms = 0.0;
};

double
percentileMs(std::vector<double> &sorted_seconds, double q)
{
    if (sorted_seconds.empty())
        return 0.0;
    const size_t index = std::min(
        sorted_seconds.size() - 1,
        static_cast<size_t>(q *
                            static_cast<double>(sorted_seconds.size())));
    return sorted_seconds[index] * 1e3;
}

/** One client connection's full walk of @p archive_name in
 *  kBatchReads READ_RANGE requests, Overloaded retried with a short
 *  backoff. Appends per-request latencies and returns payload bytes
 *  received, or 0 on a failed walk. */
uint64_t
walkArchive(uint16_t port, const std::string &archive_name,
            std::vector<double> &latencies, uint64_t &overloaded)
{
    StatusOr<std::unique_ptr<net::Client>> client =
        net::Client::connect("127.0.0.1", port);
    if (!client.ok())
        return 0;
    const StatusOr<net::OpenReply> open =
        (*client)->open(archive_name);
    if (!open.ok())
        return 0;
    uint64_t payload = 0;
    for (uint64_t first = 0; first < open->readCount;) {
        const uint64_t batch =
            std::min(kBatchReads, open->readCount - first);
        Stopwatch request_clock;
        const StatusOr<net::ReadReply> reply =
            (*client)->readRange(open->archive, first, batch);
        if (!reply.ok())
            return 0;
        if (reply->status == net::WireStatus::Overloaded) {
            overloaded++;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
            continue;
        }
        if (!reply->ok())
            return 0;
        latencies.push_back(request_clock.seconds());
        for (const Read &read : reply->reads)
            payload += read.bases.size() + read.quals.size();
        first += batch;
    }
    return payload;
}

SweepPoint
measureSweep(const std::string &dir,
             const std::vector<CorpusArchive> &corpus,
             unsigned connections)
{
    MultiArchiveOptions service_options;
    service_options.globalCacheBudgetBytes = 256ull << 20;
    service_options.maxOpenArchives = 4;
    MultiArchiveService service(dir, service_options);
    net::Server server(service);
    const Status started = server.start();
    if (!started.ok()) {
        std::fprintf(stderr, "server start failed: %s\n",
                     started.toString().c_str());
        std::exit(1);
    }

    SweepPoint point;
    point.connections = connections;
    std::vector<std::vector<double>> latencies(connections);
    std::vector<uint64_t> payloads(connections, 0);
    std::vector<uint64_t> sheds(connections, 0);

    Stopwatch clock;
    std::vector<std::thread> fleet;
    for (unsigned c = 0; c < connections; c++) {
        fleet.emplace_back([&, c] {
            payloads[c] = walkArchive(
                server.port(), corpus[c % corpus.size()].name,
                latencies[c], sheds[c]);
        });
    }
    for (std::thread &conn : fleet)
        conn.join();
    point.seconds = clock.seconds();

    uint64_t total_payload = 0;
    std::vector<double> merged;
    for (unsigned c = 0; c < connections; c++) {
        if (payloads[c] == 0) {
            std::fprintf(stderr,
                         "connection %u failed its walk\n", c);
            std::exit(1);
        }
        total_payload += payloads[c];
        merged.insert(merged.end(), latencies[c].begin(),
                      latencies[c].end());
        point.overloaded += sheds[c];
    }
    std::sort(merged.begin(), merged.end());
    point.requests = merged.size();
    point.aggMbPerSec = point.seconds > 0.0
        ? static_cast<double>(total_payload) / 1e6 / point.seconds
        : 0.0;
    point.p50Ms = percentileMs(merged, 0.50);
    point.p99Ms = percentileMs(merged, 0.99);
    server.stop();
    return point;
}

OverloadPoint
measureOverload(const std::string &dir,
                const std::vector<CorpusArchive> &corpus,
                unsigned connections)
{
    OverloadPoint point;
    point.connections = connections;
    point.admissionHighWater = 4;
    point.poolThreads = 2;

    ThreadPool pool(point.poolThreads);
    MultiArchiveOptions service_options;
    service_options.globalCacheBudgetBytes = 256ull << 20;
    service_options.maxOpenArchives = 4;
    service_options.pool = &pool;
    service_options.admissionHighWater = point.admissionHighWater;
    MultiArchiveService service(dir, service_options);
    net::Server server(service);
    if (!server.start().ok())
        std::exit(1);

    std::vector<std::vector<double>> latencies(connections);
    std::vector<uint64_t> payloads(connections, 0);
    std::vector<uint64_t> sheds(connections, 0);
    Stopwatch clock;
    std::vector<std::thread> fleet;
    for (unsigned c = 0; c < connections; c++) {
        fleet.emplace_back([&, c] {
            payloads[c] = walkArchive(
                server.port(), corpus[c % corpus.size()].name,
                latencies[c], sheds[c]);
        });
    }
    for (std::thread &conn : fleet)
        conn.join();
    point.seconds = clock.seconds();

    point.allWalksCompleted = true;
    uint64_t total_payload = 0;
    std::vector<double> merged;
    for (unsigned c = 0; c < connections; c++) {
        if (payloads[c] == 0)
            point.allWalksCompleted = false;
        total_payload += payloads[c];
        merged.insert(merged.end(), latencies[c].begin(),
                      latencies[c].end());
    }
    std::sort(merged.begin(), merged.end());
    point.requests = merged.size();
    point.aggMbPerSec = point.seconds > 0.0
        ? static_cast<double>(total_payload) / 1e6 / point.seconds
        : 0.0;
    point.p99Ms = percentileMs(merged, 0.99);
    point.overloadedReplies = service.stats().overloaded;
    server.stop();
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_net.json";

    bench::printHeader(
        "Network front end: loopback serving throughput",
        "epoll server + binary protocol over a multi-archive corpus "
        "(remote consumers of SAGe's cheap decode)");

    // A 3-archive corpus so the sweep exercises the registry, not
    // just one service; sized for minutes-not-hours bench runs.
    const std::string dir = "sage_bench_net." +
        std::to_string(static_cast<long>(::getpid())) + ".tmp";
    ::mkdir(dir.c_str(), 0755);
    std::vector<CorpusArchive> corpus;
    SageConfig config;
    config.chunkReads = 4096;
    for (unsigned i = 0; i < 3; i++) {
        DatasetSpec spec = makeRs2Spec();
        spec.name = "net-bench-" + std::to_string(i);
        spec.genome.referenceLength = 1 << 18;
        spec.depth = 8.0;
        spec.seed += 1000 * (i + 1);
        std::fprintf(stderr, "[bench] synthesizing %s ...\n",
                     spec.name.c_str());
        const SimulatedDataset ds = synthesizeDataset(spec);
        const SageArchive archive =
            sageCompress(ds.readSet, ds.reference, config);
        CorpusArchive entry;
        entry.name = "rs" + std::to_string(i) + ".sage";
        entry.readCount = ds.readSet.reads.size();
        entry.payloadBytes =
            ds.readSet.dnaBytes() + ds.readSet.qualityBytes();
        {
            FileSink sink(dir + "/" + entry.name);
            sink.writeBytes(archive.bytes);
        }
        std::printf("archive %s: %zu B, %llu reads\n",
                    entry.name.c_str(), archive.bytes.size(),
                    static_cast<unsigned long long>(entry.readCount));
        corpus.push_back(entry);
    }

    // ---- connection sweep --------------------------------------------
    const std::vector<unsigned> connection_counts = {1, 4, 16};
    std::vector<SweepPoint> sweep;
    TextTable table;
    table.setHeader({"conns", "seconds", "aggMB/s", "p50ms", "p99ms",
                     "requests", "shed"});
    for (unsigned connections : connection_counts) {
        const SweepPoint point =
            measureSweep(dir, corpus, connections);
        sweep.push_back(point);
        table.addRow({std::to_string(point.connections),
                      TextTable::num(point.seconds, 3),
                      TextTable::num(point.aggMbPerSec, 1),
                      TextTable::num(point.p50Ms, 2),
                      TextTable::num(point.p99Ms, 2),
                      std::to_string(point.requests),
                      std::to_string(point.overloaded)});
    }
    std::printf("\nconnection sweep (full corpus walks, batch %llu "
                "reads):\n",
                static_cast<unsigned long long>(kBatchReads));
    table.print();
    const unsigned hw_threads = std::thread::hardware_concurrency();
    if (hw_threads < 4) {
        std::printf("note: this host exposes %u hardware thread(s); "
                    "connection scaling is concurrency-limited here.\n",
                    hw_threads);
    }

    // ---- overload scenario -------------------------------------------
    const OverloadPoint overload = measureOverload(dir, corpus, 16);
    std::printf(
        "\noverload scenario (%u connections, %u pool threads, "
        "high-water %llu):\n"
        "  %.3fs, %.1f MB/s agg, %llu requests, %llu Overloaded "
        "replies, walks %s, p99 %.2fms\n",
        overload.connections, overload.poolThreads,
        static_cast<unsigned long long>(overload.admissionHighWater),
        overload.seconds, overload.aggMbPerSec,
        static_cast<unsigned long long>(overload.requests),
        static_cast<unsigned long long>(overload.overloadedReplies),
        overload.allWalksCompleted ? "all completed" : "INCOMPLETE",
        overload.p99Ms);

    for (const CorpusArchive &entry : corpus)
        std::remove((dir + "/" + entry.name).c_str());
    ::rmdir(dir.c_str());

    // ---- JSON report -------------------------------------------------
    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    uint64_t corpus_reads = 0, corpus_payload = 0;
    for (const CorpusArchive &entry : corpus) {
        corpus_reads += entry.readCount;
        corpus_payload += entry.payloadBytes;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"net\",\n");
    std::fprintf(json, "  \"protocolVersion\": %u,\n",
                 unsigned(net::kProtocolVersion));
    std::fprintf(json, "  \"host\": %s,\n",
                 bench::hostMetaJson().c_str());
    std::fprintf(json, "  \"archives\": %zu,\n", corpus.size());
    std::fprintf(json, "  \"corpusReads\": %llu,\n",
                 static_cast<unsigned long long>(corpus_reads));
    std::fprintf(json, "  \"corpusPayloadBytes\": %llu,\n",
                 static_cast<unsigned long long>(corpus_payload));
    std::fprintf(json, "  \"chunkReads\": %u,\n", config.chunkReads);
    std::fprintf(json, "  \"batchReads\": %llu,\n",
                 static_cast<unsigned long long>(kBatchReads));
    std::fprintf(json, "  \"connectionSweep\": [\n");
    for (size_t i = 0; i < sweep.size(); i++) {
        const SweepPoint &p = sweep[i];
        std::fprintf(
            json,
            "    {\"connections\": %u, \"seconds\": %.6f, "
            "\"aggMbPerSec\": %.2f, \"p50Ms\": %.3f, "
            "\"p99Ms\": %.3f, \"requests\": %llu, "
            "\"overloaded\": %llu}%s\n",
            p.connections, p.seconds, p.aggMbPerSec, p.p50Ms, p.p99Ms,
            static_cast<unsigned long long>(p.requests),
            static_cast<unsigned long long>(p.overloaded),
            i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(
        json,
        "  \"overload\": {\"connections\": %u, "
        "\"poolThreads\": %u, \"admissionHighWater\": %llu, "
        "\"seconds\": %.6f, \"aggMbPerSec\": %.2f, "
        "\"requests\": %llu, \"overloadedReplies\": %llu, "
        "\"allWalksCompleted\": %s, \"p99Ms\": %.3f}\n",
        overload.connections, overload.poolThreads,
        static_cast<unsigned long long>(overload.admissionHighWater),
        overload.seconds, overload.aggMbPerSec,
        static_cast<unsigned long long>(overload.requests),
        static_cast<unsigned long long>(overload.overloadedReplies),
        overload.allWalksCompleted ? "true" : "false",
        overload.p99Ms);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
