/**
 * @file
 * Reproduces paper Fig. 18: compression time, split into "finding
 * mismatches" vs "encoding", normalized per read set, plus the §8.6
 * observation that Algorithm 1's tuning cost is negligible.
 *
 * Expected shape: genomic compressors ((N)Spr, SAGe) are much slower
 * than pigz because of mapping; SAGe is slightly faster than (N)Spr
 * (no backend compression); encoding is a small share for both.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Fig. 18: normalized compression time (find vs encode)",
        "SAGe slightly faster than (N)Spr; both dominated by mismatch "
        "finding; pigz much faster but compresses much worse");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();

    TextTable table;
    table.setHeader({"RS", "tool", "find-mm", "encode", "total",
                     "norm"});
    for (const auto &art : all) {
        const double norm = std::max(
            {art.pigzCompressSeconds, art.springCompressSeconds,
             art.sageCompressSeconds});
        auto row = [&](const char *tool, double find, double encode) {
            table.addRow({art.work.name, tool,
                          TextTable::num(find, 2) + " s",
                          TextTable::num(encode, 2) + " s",
                          TextTable::num(find + encode, 2) + " s",
                          TextTable::num((find + encode) / norm, 2)});
        };
        row("pigz", 0.0, art.pigzCompressSeconds);
        row("(N)Spr", art.springMapSeconds,
            art.springCompressSeconds - art.springMapSeconds);
        row("SAGe", art.sageMapSeconds,
            art.sageCompressSeconds - art.sageMapSeconds);
    }
    table.print();

    std::printf("\nAlgorithm 1 tuning share of SAGe compression "
                "(paper §8.6: very small):\n");
    for (const auto &art : all) {
        std::printf("  %s: %.3f s of %.2f s (%.2f%%)\n",
                    art.work.name.c_str(), art.sageTuneSeconds,
                    art.sageCompressSeconds,
                    100.0 * art.sageTuneSeconds
                        / art.sageCompressSeconds);
    }

    const std::string json_path = bench::jsonReportPath("fig18");
    if (!json_path.empty()) {
        FILE *json = std::fopen(json_path.c_str(), "w");
        if (json) {
            std::fprintf(json, "{\n  \"bench\": \"fig18_comptime\",\n");
            std::fprintf(json, "  \"host\": %s,\n",
                         bench::hostMetaJson().c_str());
            std::fprintf(json, "  \"perReadSet\": [\n");
            for (size_t i = 0; i < all.size(); i++) {
                const auto &art = all[i];
                std::fprintf(
                    json,
                    "    {\"rs\": \"%s\", \"pigzSeconds\": %.6f, "
                    "\"springSeconds\": %.6f, "
                    "\"springMapSeconds\": %.6f, "
                    "\"sageSeconds\": %.6f, "
                    "\"sageMapSeconds\": %.6f, "
                    "\"sageTuneSeconds\": %.6f}%s\n",
                    art.work.name.c_str(), art.pigzCompressSeconds,
                    art.springCompressSeconds, art.springMapSeconds,
                    art.sageCompressSeconds, art.sageMapSeconds,
                    art.sageTuneSeconds,
                    i + 1 < all.size() ? "," : "");
            }
            std::fprintf(json, "  ]\n}\n");
            std::fclose(json);
            std::printf("wrote %s\n", json_path.c_str());
        }
    }
    return 0;
}
