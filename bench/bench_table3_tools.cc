/**
 * @file
 * Reproduces paper Table 3: decompression-tool comparison — genomic
 * specificity, average compression ratio, end-to-end capability,
 * hardware requirements, memory footprint, and decompression
 * throughput.
 *
 * Expected shape: SAGe pairs a genomic-class ratio with a near-zero
 * working set and the highest decompression throughput; the general-
 * purpose tool has a low ratio; the Spring-class tool has the ratio
 * but a large footprint and low throughput.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "hw/sage_hw.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Table 3: decompression tool comparison",
        "SAGe: genomic ratio (15.8 avg), 128 B footprint, 75.4 GB/s; "
        "Spring-class: 16.9 ratio, 26 GB footprint, 0.7 GB/s; "
        "general-purpose: ~5x ratio");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();

    // Average DNA ratios and throughputs across read sets.
    std::vector<double> r_pigz, r_spring, r_sage;
    double pigz_bytes_per_sec = 0, spring_bps = 0, sage_sw_bps = 0;
    uint64_t spring_ws = 0, sage_ws = 0;
    double sage_hw_bps = 0;
    for (const auto &art : all) {
        const double dna =
            static_cast<double>(art.dnaBytesUncompressed);
        r_pigz.push_back(dna / art.pigzDnaBytes);
        r_spring.push_back(dna / art.springDnaBytes);
        r_sage.push_back(dna / art.sageDnaBytes);
        pigz_bytes_per_sec +=
            static_cast<double>(art.work.fastqBytes)
            / art.work.pigzDecompSeconds / all.size();
        spring_bps += static_cast<double>(art.work.fastqBytes)
            / art.work.springDecompSeconds / all.size();
        sage_sw_bps += static_cast<double>(art.work.fastqBytes)
            / art.work.sageSwDecompSeconds / all.size();
        spring_ws = std::max(spring_ws, art.springWorkingSetBytes);
        sage_ws = std::max(sage_ws, art.sageWorkingSetBytes);

        // Hardware decompression rate: decompressed bytes per second
        // at NAND-bound streaming.
        SageHwModel hw;
        const SsdModel ssd = SsdModel::pciePerformance();
        const double sec = hw.decompressSeconds(
            ssd, art.work.sageDnaStreamBytes, art.work.totalBases);
        sage_hw_bps += static_cast<double>(art.work.fastqBytes) / sec
            / all.size();
    }

    TextTable table;
    table.setHeader({"tool", "genomic", "avg ratio", "end-to-end",
                     "hardware", "mem footprint", "decomp GB/s"});
    table.addRow({"gpzip (pigz-class)", "no",
                  TextTable::num(bench::geomean(r_pigz), 1), "yes",
                  "CPU (serial decode)", "O(window) 32 KiB",
                  TextTable::num(pigz_bytes_per_sec / 1e9, 2)});
    table.addRow({"SpringLike ((N)Spr-class)", "yes",
                  TextTable::num(bench::geomean(r_spring), 1), "yes",
                  "CPU (parallel)",
                  TextTable::bytesHuman(
                      static_cast<double>(spring_ws)),
                  TextTable::num(spring_bps / 1e9, 2) + " (1 thread)"});
    table.addRow({"SAGe (software)", "yes",
                  TextTable::num(bench::geomean(r_sage), 1), "yes",
                  "CPU (parallel)",
                  TextTable::bytesHuman(static_cast<double>(sage_ws)),
                  TextTable::num(sage_sw_bps / 1e9, 2) + " (1 thread)"});
    table.addRow({"SAGe (hardware model)", "yes",
                  TextTable::num(bench::geomean(r_sage), 1), "yes",
                  "ASIC 0.0023 mm^2 @22nm", "128 B registers",
                  TextTable::num(sage_hw_bps / 1e9, 2)});
    table.print();

    std::printf("\nkey shape: SAGe-HW throughput / Spring-class "
                "throughput = %.0fx; footprint ratio = %.0e\n",
                sage_hw_bps / spring_bps,
                static_cast<double>(spring_ws) / 128.0);
    return 0;
}
