/**
 * @file
 * Reproduces paper Fig. 7: the dataset-property distributions SAGe's
 * encodings exploit —
 *  (a) bits needed for delta-encoded mismatch positions (long reads),
 *  (b) mismatch counts per read (short reads),
 *  (c) CDF of indel block lengths (long reads),
 *  (d) CDF of bases contained in indel blocks by length (long reads).
 *
 * Expected shape: (a) concentrated at few bits; (b) dominated by 0;
 * (c) most blocks length 1; (d) long blocks carry most indel bases.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "consensus/stats.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace sage;

namespace {

PropertyStats
statsFor(const DatasetSpec &spec)
{
    const SimulatedDataset ds = synthesizeDataset(spec);
    ThreadPool pool;
    ConsensusMapper mapper(ds.reference);
    return analyzeProperties(mapper.mapAll(ds.readSet, &pool));
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 7: dataset properties behind SAGe's encodings",
        "(a) few bits per mismatch delta; (b) most reads 0 mismatches; "
        "(c) indel blocks mostly length 1; (d) long blocks carry most "
        "indel bases");
    bench::printScaleNote();

    const PropertyStats long_stats = statsFor(makeRs4Spec());
    const PropertyStats short_stats = statsFor(makeRs2Spec());

    std::printf("(a) delta-encoded mismatch position bits (RS4, long)\n");
    {
        TextTable t;
        t.setHeader({"#bits", "fraction"});
        for (size_t b = 1; b < long_stats.mismatchPosDeltaBits.size() &&
                           b <= 16; b++) {
            t.addRow({std::to_string(b),
                      TextTable::percent(
                          long_stats.mismatchPosDeltaBits.fraction(b))});
        }
        t.print();
    }

    std::printf("\n(b) mismatch counts per read (RS2, short)\n");
    {
        TextTable t;
        t.setHeader({"#mismatches", "fraction"});
        for (size_t c = 0; c <= 8; c++) {
            t.addRow({std::to_string(c),
                      TextTable::percent(
                          short_stats.mismatchCountPerRead.fraction(c))});
        }
        t.print();
        std::printf("substitution share of short-read events: %s "
                    "(Property 5)\n",
                    TextTable::percent(
                        short_stats.substitutionFraction).c_str());
    }

    std::printf("\n(c) indel block length CDF (RS4, long)\n");
    {
        TextTable t;
        t.setHeader({"length <=", "CDF blocks", "CDF bases"});
        const auto &blocks = long_stats.indelBlockLength;
        const auto &bases = long_stats.indelBasesByLength;
        for (size_t len : {1, 2, 3, 4, 8, 16, 32, 64}) {
            t.addRow({std::to_string(len),
                      TextTable::percent(
                          static_cast<double>(blocks.cumulative(len))
                          / std::max<uint64_t>(blocks.total(), 1)),
                      TextTable::percent(
                          static_cast<double>(bases.cumulative(len))
                          / std::max<uint64_t>(bases.total(), 1))});
        }
        t.print();
        std::printf("single-base blocks: %s of blocks but only %s of "
                    "indel bases (Property 3)\n",
                    TextTable::percent(blocks.fraction(1)).c_str(),
                    TextTable::percent(
                        static_cast<double>(bases.count(1))
                        / std::max<uint64_t>(bases.total(), 1)).c_str());
    }
    return 0;
}
