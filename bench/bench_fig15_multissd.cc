/**
 * @file
 * Reproduces paper Fig. 15: end-to-end speedup over (N)Spr with 1x, 2x
 * and 4x SSDs, for SAGe and SAGeSSD+ISF.
 *
 * Expected shape: SAGe keeps its large speedup as SSDs scale; for read
 * sets where ISF work sat on the critical path, SAGeSSD+ISF improves
 * further with more SSDs.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "accel/mappers.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Fig. 15: end-to-end speedup vs #SSDs (normalized to (N)Spr)",
        "SAGe maintains speedup; SAGeSSD+ISF grows for ISF-bound sets");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();

    TextTable table;
    table.setHeader({"RS", "#SSDs", "SAGe", "SAGeSSD+ISF"});
    for (const auto &art : all) {
        for (unsigned n : {1u, 2u, 4u}) {
            SystemConfig system;
            system.mapper = gemAccelerator();
            system.numSsds = n;
            const double t_spr =
                evaluateEndToEnd(art.work, PrepConfig::NSpr, system)
                    .seconds;
            const double t_sage =
                evaluateEndToEnd(art.work, PrepConfig::SageHW, system)
                    .seconds;
            SystemConfig isf = system;
            isf.useIsf = true;
            const double t_isf =
                evaluateEndToEnd(art.work, PrepConfig::SageSSD, isf)
                    .seconds;
            table.addRow({art.work.name, std::to_string(n) + "x",
                          TextTable::timesFactor(t_spr / t_sage),
                          TextTable::timesFactor(t_spr / t_isf)});
        }
    }
    table.print();
    return 0;
}
