/**
 * @file
 * Reproduces paper Fig. 15: end-to-end speedup over (N)Spr with 1x, 2x
 * and 4x SSDs, for SAGe and SAGeSSD+ISF.
 *
 * Expected shape: SAGe keeps its large speedup as SSDs scale; for read
 * sets where ISF work sat on the critical path, SAGeSSD+ISF improves
 * further with more SSDs.
 *
 * Two parts:
 *   1. the modeled end-to-end table over the measured presets (as in
 *      the paper), and
 *   2. a functional striped SAGe_Read: the archive is chunk-striped
 *      across a SageDeviceArray (io/striped.hh layout) and decoded
 *      through a StripedSource-backed sageRead at 1x/2x/4x, verifying
 *      the packed output is byte-identical to the single-device path
 *      and reporting the modeled NAND-streaming scaling.
 */

#include <algorithm>
#include <cstdio>

#include "common/bench_common.hh"
#include "accel/mappers.hh"
#include "ssd/device_array.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace sage;

namespace {

/** Functional multi-device scaling demo; returns false on mismatch. */
bool
runStripedFunctional(std::string *json)
{
    // RS1 at bench scale: the ~1.2 MB archive spans enough device
    // pages for the stripes to spread meaningfully across 4 SSDs.
    const SimulatedDataset ds = synthesizeDataset(makeRs1Spec());
    SageConfig config;
    // Several chunks so the stripes actually interleave per chunk.
    config.chunkReads = std::max<uint32_t>(
        1, static_cast<uint32_t>(ds.readSet.reads.size() / 6));
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    SageDevice single;
    single.sageWrite("rs", archive);
    const SageReadResult reference =
        single.sageRead("rs", OutputFormat::TwoBit);
    const auto extents = single.sageChunkExtents("rs");

    std::printf("functional: %zu reads, %zu chunks, %zu B archive\n",
                ds.readSet.reads.size(), extents.size(),
                archive.bytes.size());

    ThreadPool pool(4);
    TextTable table;
    table.setHeader({"#SSDs", "NAND stream", "identical"});
    bool all_identical = true;
    std::string json_rows;
    for (unsigned n : {1u, 2u, 4u}) {
        SageDeviceArray array(n);
        array.sageWrite("rs", archive);
        SageReadResult result =
            array.sageRead("rs", OutputFormat::TwoBit, &pool);
        const bool identical =
            result.packedReads == reference.packedReads;
        all_identical = all_identical && identical;
        table.addRow({std::to_string(n) + "x",
                      TextTable::timesFactor(reference.nandSeconds
                                             / result.nandSeconds),
                      identical ? "yes" : "NO"});
        if (!json_rows.empty())
            json_rows += ",";
        json_rows += "{\"ssds\":" + std::to_string(n) +
            ",\"nandSpeedup\":" +
            std::to_string(reference.nandSeconds / result.nandSeconds) +
            ",\"identical\":" + (identical ? "true" : "false") + "}";
    }
    table.print();
    *json = "\"striped\":[" + json_rows + "]";
    return all_identical;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 15: end-to-end speedup vs #SSDs (normalized to (N)Spr)",
        "SAGe maintains speedup; SAGeSSD+ISF grows for ISF-bound sets");
    bench::printScaleNote();

    std::string striped_json;
    if (!runStripedFunctional(&striped_json)) {
        std::printf("ERROR: striped SAGe_Read output differs from the "
                    "single-device path!\n");
        return 1;
    }
    std::printf("\n");

    const auto all = bench::measureAllPresets();

    TextTable table;
    table.setHeader({"RS", "#SSDs", "SAGe", "SAGeSSD+ISF"});
    std::string model_rows;
    for (const auto &art : all) {
        for (unsigned n : {1u, 2u, 4u}) {
            SystemConfig system;
            system.mapper = gemAccelerator();
            system.numSsds = n;
            const double t_spr =
                evaluateEndToEnd(art.work, PrepConfig::NSpr, system)
                    .seconds;
            const double t_sage =
                evaluateEndToEnd(art.work, PrepConfig::SageHW, system)
                    .seconds;
            SystemConfig isf = system;
            isf.useIsf = true;
            const double t_isf =
                evaluateEndToEnd(art.work, PrepConfig::SageSSD, isf)
                    .seconds;
            table.addRow({art.work.name, std::to_string(n) + "x",
                          TextTable::timesFactor(t_spr / t_sage),
                          TextTable::timesFactor(t_spr / t_isf)});
            if (!model_rows.empty())
                model_rows += ",";
            model_rows += "{\"rs\":\"" + art.work.name +
                "\",\"ssds\":" + std::to_string(n) +
                ",\"sageSpeedup\":" + std::to_string(t_spr / t_sage) +
                ",\"sageSsdIsfSpeedup\":" +
                std::to_string(t_spr / t_isf) + "}";
        }
    }
    table.print();

    const std::string json_path = bench::jsonReportPath("fig15");
    if (!json_path.empty()) {
        FILE *out = std::fopen(json_path.c_str(), "w");
        if (out) {
            std::fprintf(out, "{\"host\":%s,%s,\"model\":[%s]}\n",
                         bench::hostMetaJson().c_str(),
                         striped_json.c_str(), model_rows.c_str());
            std::fclose(out);
            std::printf("json report: %s\n", json_path.c_str());
        }
    }
    return 0;
}
