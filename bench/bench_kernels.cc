/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels: bit I/O, tuned
 * field decode, gpzip round trips, SAGe software decode, banded
 * alignment and the quality range coder. These quantify the per-kernel
 * costs behind the Fig. 13/14 stage times.
 */

#include <benchmark/benchmark.h>

#include "compress/gpzip.hh"
#include "compress/quality.hh"
#include "consensus/align.hh"
#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/bitio.hh"
#include "util/rng.hh"

namespace sage {
namespace {

void
BM_BitWriterPack(benchmark::State &state)
{
    Rng rng(1);
    std::vector<std::pair<uint64_t, unsigned>> fields;
    for (int i = 0; i < 4096; i++) {
        const unsigned width = 1 + rng.nextBelow(16);
        fields.emplace_back(rng.next() & ((1u << width) - 1), width);
    }
    for (auto _ : state) {
        BitWriter bw;
        for (const auto &[value, width] : fields)
            bw.writeBits(value, width);
        benchmark::DoNotOptimize(bw.bitCount());
    }
    state.SetItemsProcessed(state.iterations() * fields.size());
}
BENCHMARK(BM_BitWriterPack);

void
BM_BitReaderUnpack(benchmark::State &state)
{
    Rng rng(2);
    BitWriter bw;
    std::vector<unsigned> widths;
    for (int i = 0; i < 4096; i++) {
        const unsigned width = 1 + rng.nextBelow(16);
        widths.push_back(width);
        bw.writeBits(rng.next(), width);
    }
    const auto bytes = bw.take();
    for (auto _ : state) {
        BitReader br(bytes);
        uint64_t sum = 0;
        for (unsigned width : widths)
            sum += br.readBits(width);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * widths.size());
}
BENCHMARK(BM_BitReaderUnpack);

void
BM_TunedFieldDecode(benchmark::State &state)
{
    Rng rng(3);
    std::vector<uint64_t> values;
    for (int i = 0; i < 8192; i++)
        values.push_back(rng.nextGeometric(0.3));
    const AssociationTable table = TunedFieldCodec::tuneFor(values);
    TunedArrayEncoder enc(table);
    for (uint64_t v : values)
        enc.append(v);
    const auto array = enc.takeArray();
    const auto guide = enc.takeGuide();
    for (auto _ : state) {
        TunedArrayDecoder dec(table, BitReader(array),
                              BitReader(guide));
        uint64_t sum = 0;
        for (size_t i = 0; i < values.size(); i++)
            sum += dec.next();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_TunedFieldDecode);

void
BM_GpzipDecompress(benchmark::State &state)
{
    Rng rng(4);
    std::string text;
    for (int i = 0; i < 1 << 20; i++)
        text.push_back("ACGT"[rng.nextBelow(4)]);
    const auto archive = gpzip::compress(text);
    for (auto _ : state) {
        auto out = gpzip::decompress(archive);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_GpzipDecompress);

void
BM_SageDecode(benchmark::State &state)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    for (auto _ : state) {
        ReadSet rs = sageDecompress(archive.bytes);
        benchmark::DoNotOptimize(rs.reads.data());
    }
    state.SetBytesProcessed(state.iterations()
                            * ds.readSet.totalBases());
}
BENCHMARK(BM_SageDecode);

void
BM_BandedAlign(benchmark::State &state)
{
    Rng rng(5);
    std::string target;
    for (int i = 0; i < 1000; i++)
        target.push_back("ACGT"[rng.nextBelow(4)]);
    std::string query = target;
    for (int i = 0; i < 10; i++)
        query[rng.nextBelow(query.size())] = "ACGT"[rng.nextBelow(4)];
    for (auto _ : state) {
        auto result = bandedAlign(target, query,
                                  static_cast<uint32_t>(state.range(0)));
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandedAlign)->Arg(16)->Arg(64)->Arg(128);

void
BM_QualityRoundTrip(benchmark::State &state)
{
    Rng rng(6);
    std::vector<std::string> quals;
    for (int r = 0; r < 200; r++) {
        std::string q;
        for (int i = 0; i < 150; i++)
            q.push_back(static_cast<char>('A' + rng.nextBelow(8)));
        quals.push_back(std::move(q));
    }
    for (auto _ : state) {
        const QualityArchive archive = compressQuality(quals);
        auto out = decompressQuality(archive);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * quals.size() * 150);
}
BENCHMARK(BM_QualityRoundTrip);

} // namespace
} // namespace sage

BENCHMARK_MAIN();
