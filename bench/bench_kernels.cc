/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels: bit I/O, tuned
 * field decode, gpzip round trips, SAGe software decode, banded
 * alignment and the quality range coder. These quantify the per-kernel
 * costs behind the Fig. 13/14 stage times.
 *
 * The sequence-kernel section (pack/unpack/revcomp) measures three
 * tiers against each other — the historical per-bit BitReader/
 * BitWriter loops, the table-driven scalar baseline, and the
 * runtime-dispatched SIMD kernels (genomics/kernels.hh) — and writes a
 * machine-readable BENCH_kernels.json (via SAGE_BENCH_JSON_DIR) with
 * MB/s per tier plus host metadata, so CI baselines document how much
 * the dispatched kernels buy on that host.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/bench_common.hh"
#include "compress/gpzip.hh"
#include "compress/quality.hh"
#include "consensus/align.hh"
#include "core/sage.hh"
#include "genomics/kernels.hh"
#include "simgen/synthesize.hh"
#include "util/bitio.hh"
#include "util/cpu.hh"
#include "util/rng.hh"
#include "util/timing.hh"

namespace sage {
namespace {

void
BM_BitWriterPack(benchmark::State &state)
{
    Rng rng(1);
    std::vector<std::pair<uint64_t, unsigned>> fields;
    for (int i = 0; i < 4096; i++) {
        const unsigned width = 1 + rng.nextBelow(16);
        fields.emplace_back(rng.next() & ((1u << width) - 1), width);
    }
    for (auto _ : state) {
        BitWriter bw;
        for (const auto &[value, width] : fields)
            bw.writeBits(value, width);
        benchmark::DoNotOptimize(bw.bitCount());
    }
    state.SetItemsProcessed(state.iterations() * fields.size());
}
BENCHMARK(BM_BitWriterPack);

void
BM_BitReaderUnpack(benchmark::State &state)
{
    Rng rng(2);
    BitWriter bw;
    std::vector<unsigned> widths;
    for (int i = 0; i < 4096; i++) {
        const unsigned width = 1 + rng.nextBelow(16);
        widths.push_back(width);
        bw.writeBits(rng.next(), width);
    }
    const auto bytes = bw.take();
    for (auto _ : state) {
        BitReader br(bytes);
        uint64_t sum = 0;
        for (unsigned width : widths)
            sum += br.readBits(width);
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * widths.size());
}
BENCHMARK(BM_BitReaderUnpack);

void
BM_TunedFieldDecode(benchmark::State &state)
{
    Rng rng(3);
    std::vector<uint64_t> values;
    for (int i = 0; i < 8192; i++)
        values.push_back(rng.nextGeometric(0.3));
    const AssociationTable table = TunedFieldCodec::tuneFor(values);
    TunedArrayEncoder enc(table);
    for (uint64_t v : values)
        enc.append(v);
    const auto array = enc.takeArray();
    const auto guide = enc.takeGuide();
    for (auto _ : state) {
        TunedArrayDecoder dec(table, BitReader(array),
                              BitReader(guide));
        uint64_t sum = 0;
        for (size_t i = 0; i < values.size(); i++)
            sum += dec.next();
        benchmark::DoNotOptimize(sum);
    }
    state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_TunedFieldDecode);

void
BM_GpzipDecompress(benchmark::State &state)
{
    Rng rng(4);
    std::string text;
    for (int i = 0; i < 1 << 20; i++)
        text.push_back("ACGT"[rng.nextBelow(4)]);
    const auto archive = gpzip::compress(text);
    for (auto _ : state) {
        auto out = gpzip::decompress(archive);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_GpzipDecompress);

void
BM_SageDecode(benchmark::State &state)
{
    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    const SageArchive archive = sageCompress(ds.readSet, ds.reference);
    for (auto _ : state) {
        ReadSet rs = sageDecompress(archive.bytes);
        benchmark::DoNotOptimize(rs.reads.data());
    }
    state.SetBytesProcessed(state.iterations()
                            * ds.readSet.totalBases());
}
BENCHMARK(BM_SageDecode);

void
BM_BandedAlign(benchmark::State &state)
{
    Rng rng(5);
    std::string target;
    for (int i = 0; i < 1000; i++)
        target.push_back("ACGT"[rng.nextBelow(4)]);
    std::string query = target;
    for (int i = 0; i < 10; i++)
        query[rng.nextBelow(query.size())] = "ACGT"[rng.nextBelow(4)];
    for (auto _ : state) {
        auto result = bandedAlign(target, query,
                                  static_cast<uint32_t>(state.range(0)));
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BandedAlign)->Arg(16)->Arg(64)->Arg(128);

void
BM_QualityRoundTrip(benchmark::State &state)
{
    Rng rng(6);
    std::vector<std::string> quals;
    for (int r = 0; r < 200; r++) {
        std::string q;
        for (int i = 0; i < 150; i++)
            q.push_back(static_cast<char>('A' + rng.nextBelow(8)));
        quals.push_back(std::move(q));
    }
    for (auto _ : state) {
        const QualityArchive archive = compressQuality(quals);
        auto out = decompressQuality(archive);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * quals.size() * 150);
}
BENCHMARK(BM_QualityRoundTrip);

// ---------------------------------------------------------------------
// Sequence kernels: per-bit vs scalar-LUT vs dispatched SIMD
// ---------------------------------------------------------------------

/** One 4 MB ACGT sequence + its ACGTN sibling, shared by the BMs. */
struct SeqFixture
{
    static constexpr size_t kBases = 4 << 20;

    SeqFixture()
    {
        Rng rng(7);
        acgt.reserve(kBases);
        acgtn.reserve(kBases);
        for (size_t i = 0; i < kBases; i++) {
            acgt.push_back("ACGT"[rng.nextBelow(4)]);
            acgtn.push_back("ACGTN"[rng.nextBelow(5)]);
        }
        packed2.resize((kBases + 3) / 4);
        kernels::pack2bit(acgt.data(), kBases, packed2.data());
        packed3.resize((3 * kBases + 7) / 8);
        kernels::pack3bit(acgtn.data(), kBases, packed3.data());
    }

    static const SeqFixture &
    get()
    {
        static const SeqFixture fixture;
        return fixture;
    }

    std::string acgt, acgtn;
    std::vector<uint8_t> packed2, packed3;
};

void
BM_Unpack2BitPerBit(benchmark::State &state)
{
    const SeqFixture &f = SeqFixture::get();
    std::string out(SeqFixture::kBases, '\0');
    for (auto _ : state) {
        BitReader br(f.packed2.data(), f.packed2.size());
        for (size_t i = 0; i < SeqFixture::kBases; i++)
            out[i] = codeToBase(static_cast<uint8_t>(br.readBits(2)));
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * SeqFixture::kBases);
}
BENCHMARK(BM_Unpack2BitPerBit);

void
BM_Unpack2BitScalar(benchmark::State &state)
{
    const SeqFixture &f = SeqFixture::get();
    std::string out(SeqFixture::kBases, '\0');
    for (auto _ : state) {
        kernels::scalar::unpack2bit(f.packed2.data(), f.packed2.size(),
                                    SeqFixture::kBases, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * SeqFixture::kBases);
}
BENCHMARK(BM_Unpack2BitScalar);

void
BM_Unpack2BitDispatched(benchmark::State &state)
{
    const SeqFixture &f = SeqFixture::get();
    std::string out(SeqFixture::kBases, '\0');
    for (auto _ : state) {
        kernels::unpack2bit(f.packed2.data(), f.packed2.size(),
                            SeqFixture::kBases, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * SeqFixture::kBases);
}
BENCHMARK(BM_Unpack2BitDispatched);

void
BM_Unpack3BitDispatched(benchmark::State &state)
{
    const SeqFixture &f = SeqFixture::get();
    std::string out(SeqFixture::kBases, '\0');
    for (auto _ : state) {
        kernels::unpack3bit(f.packed3.data(), f.packed3.size(),
                            SeqFixture::kBases, out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * SeqFixture::kBases);
}
BENCHMARK(BM_Unpack3BitDispatched);

void
BM_Pack2BitDispatched(benchmark::State &state)
{
    const SeqFixture &f = SeqFixture::get();
    std::vector<uint8_t> out((SeqFixture::kBases + 3) / 4);
    for (auto _ : state) {
        kernels::pack2bit(f.acgt.data(), SeqFixture::kBases,
                          out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * SeqFixture::kBases);
}
BENCHMARK(BM_Pack2BitDispatched);

void
BM_RevCompDispatched(benchmark::State &state)
{
    const SeqFixture &f = SeqFixture::get();
    std::string out(SeqFixture::kBases, '\0');
    for (auto _ : state) {
        kernels::reverseComplement(f.acgtn.data(), SeqFixture::kBases,
                                   out.data());
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(state.iterations() * SeqFixture::kBases);
}
BENCHMARK(BM_RevCompDispatched);

// ---------------------------------------------------------------------
// JSON report: deterministic best-of-N MB/s per kernel tier
// ---------------------------------------------------------------------

double
bestMbPerSec(const std::function<void()> &fn)
{
    constexpr int kReps = 5;
    double best = 0.0;
    for (int r = 0; r < kReps; r++) {
        Stopwatch clock;
        fn();
        const double s = clock.seconds();
        const double mbps =
            s > 0.0 ? SeqFixture::kBases / 1e6 / s : 0.0;
        best = std::max(best, mbps);
    }
    return best;
}

struct KernelRow
{
    const char *kernel;
    double perBit;
    double scalarLut;
    double dispatched;
};

void
writeKernelJson(const std::string &path)
{
    const SeqFixture &f = SeqFixture::get();
    std::string out(SeqFixture::kBases, '\0');
    std::vector<uint8_t> pk2((SeqFixture::kBases + 3) / 4);
    std::vector<uint8_t> pk3((3 * SeqFixture::kBases + 7) / 8);

    std::vector<KernelRow> rows;
    rows.push_back(
        {"unpack2bit",
         bestMbPerSec([&] {
             BitReader br(f.packed2.data(), f.packed2.size());
             for (size_t i = 0; i < SeqFixture::kBases; i++)
                 out[i] =
                     codeToBase(static_cast<uint8_t>(br.readBits(2)));
         }),
         bestMbPerSec([&] {
             kernels::scalar::unpack2bit(f.packed2.data(),
                                         f.packed2.size(),
                                         SeqFixture::kBases,
                                         out.data());
         }),
         bestMbPerSec([&] {
             kernels::unpack2bit(f.packed2.data(), f.packed2.size(),
                                 SeqFixture::kBases, out.data());
         })});
    rows.push_back(
        {"unpack3bit",
         bestMbPerSec([&] {
             BitReader br(f.packed3.data(), f.packed3.size());
             for (size_t i = 0; i < SeqFixture::kBases; i++)
                 out[i] =
                     codeToBase(static_cast<uint8_t>(br.readBits(3)));
         }),
         bestMbPerSec([&] {
             kernels::scalar::unpack3bit(f.packed3.data(),
                                         f.packed3.size(),
                                         SeqFixture::kBases,
                                         out.data());
         }),
         bestMbPerSec([&] {
             kernels::unpack3bit(f.packed3.data(), f.packed3.size(),
                                 SeqFixture::kBases, out.data());
         })});
    rows.push_back(
        {"pack2bit",
         bestMbPerSec([&] {
             BitWriter bw;
             for (char c : f.acgt)
                 bw.writeBits(baseToCode(c), 2);
             benchmark::DoNotOptimize(bw.bytes().data());
         }),
         bestMbPerSec([&] {
             kernels::scalar::pack2bit(f.acgt.data(),
                                       SeqFixture::kBases, pk2.data());
         }),
         bestMbPerSec([&] {
             kernels::pack2bit(f.acgt.data(), SeqFixture::kBases,
                               pk2.data());
         })});
    rows.push_back(
        {"pack3bit",
         bestMbPerSec([&] {
             BitWriter bw;
             for (char c : f.acgtn)
                 bw.writeBits(baseToCode(c), 3);
             benchmark::DoNotOptimize(bw.bytes().data());
         }),
         bestMbPerSec([&] {
             kernels::scalar::pack3bit(f.acgtn.data(),
                                       SeqFixture::kBases, pk3.data());
         }),
         bestMbPerSec([&] {
             kernels::pack3bit(f.acgtn.data(), SeqFixture::kBases,
                               pk3.data());
         })});
    rows.push_back(
        {"reverseComplement",
         bestMbPerSec([&] {
             for (size_t i = 0; i < SeqFixture::kBases; i++)
                 out[i] = complementBase(
                     f.acgtn[SeqFixture::kBases - 1 - i]);
         }),
         bestMbPerSec([&] {
             kernels::scalar::reverseComplement(
                 f.acgtn.data(), SeqFixture::kBases, out.data());
         }),
         bestMbPerSec([&] {
             kernels::reverseComplement(f.acgtn.data(),
                                        SeqFixture::kBases,
                                        out.data());
         })});

    FILE *json = std::fopen(path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return;
    }
    std::fprintf(json, "{\n  \"bench\": \"kernels\",\n");
    std::fprintf(json, "  \"host\": %s,\n",
                 bench::hostMetaJson().c_str());
    std::fprintf(json, "  \"megabases\": %zu,\n",
                 SeqFixture::kBases / (1 << 20));
    std::fprintf(json, "  \"kernels\": [\n");
    for (size_t i = 0; i < rows.size(); i++) {
        const KernelRow &r = rows[i];
        std::fprintf(json,
                     "    {\"kernel\": \"%s\", "
                     "\"perBitMbPerSec\": %.1f, "
                     "\"scalarLutMbPerSec\": %.1f, "
                     "\"dispatchedMbPerSec\": %.1f, "
                     "\"speedupOverPerBit\": %.2f}%s\n",
                     r.kernel, r.perBit, r.scalarLut, r.dispatched,
                     r.perBit > 0.0 ? r.dispatched / r.perBit : 0.0,
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s (dispatch tier: %s)\n", path.c_str(),
                kernels::activeLevelName());
}

} // namespace
} // namespace sage

int
main(int argc, char **argv)
{
    // MB/s table + JSON first (deterministic, independent of
    // google-benchmark's timers); path from SAGE_BENCH_JSON_DIR, or
    // pass --json=<path> explicitly.
    std::string json_path = sage::bench::jsonReportPath("kernels");
    for (int i = 1; i < argc; i++) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
    }
    std::printf("sequence-kernel dispatch: %s (hardware %s%s)\n",
                sage::kernels::activeLevelName(),
                sage::simdLevelName(sage::hardwareSimdLevel()),
                sage::simdForcedScalar() ? ", SAGE_FORCE_SCALAR" : "");
    if (!json_path.empty())
        sage::writeKernelJson(json_path);

    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    return 0;
}
