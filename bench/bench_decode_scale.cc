/**
 * @file
 * Decode-scaling benchmark for the v2 chunked container: SAGe software
 * decode throughput (DNA-only, the accelerator-feeding path) at 1/2/4/8
 * threads, plus a chunk-size sweep at a fixed thread count.
 *
 * This is the software analogue of the paper's parallel Scan Units
 * (§5.2): every chunk is an independently decodable slice, so decode
 * throughput should scale with cores until memory bandwidth saturates.
 *
 * Writes a machine-readable JSON report (default BENCH_decode.json,
 * override with argv[1]) so CI can archive baselines and later perf
 * PRs can diff against them.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_common.hh"
#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/timing.hh"

using namespace sage;

namespace {

/** Median wall-clock of @p reps runs of @p fn. */
double
timeMedian(unsigned reps, const std::function<void()> &fn)
{
    std::vector<double> times;
    for (unsigned r = 0; r < std::max(1u, reps); r++) {
        Stopwatch clock;
        fn();
        times.push_back(clock.seconds());
    }
    std::sort(times.begin(), times.end());
    return times[times.size() / 2];
}

struct ScalePoint
{
    unsigned threads = 0;
    uint32_t chunkReads = 0;
    size_t chunks = 0;
    double seconds = 0.0;
    double mbPerSec = 0.0;
};

ScalePoint
measureDecode(const std::vector<uint8_t> &archive, uint64_t total_bases,
              unsigned threads, unsigned reps)
{
    ThreadPool pool(threads);
    ScalePoint point;
    point.threads = threads;
    {
        SageDecoder probe(archive, /*dna_only=*/true);
        point.chunks = probe.chunkCount();
    }
    point.seconds = timeMedian(reps, [&] {
        SageDecoder decoder(archive, /*dna_only=*/true);
        const ReadSet out = decoder.decodeAll(&pool);
        (void)out;
    });
    point.mbPerSec = point.seconds > 0.0
        ? static_cast<double>(total_bases) / 1e6 / point.seconds
        : 0.0;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_decode.json";

    bench::printHeader(
        "Decode scaling: chunk-parallel SAGe software decode",
        "per-Scan-Unit slices (paper Fig. 9/§5.2) realized in software "
        "as independently decodable chunks");

    // A short-read set big enough that decode dominates setup:
    // ~125k reads of 150 bp (depth 18 over a 1 MiB reference).
    DatasetSpec spec = makeRs2Spec();
    spec.name = "decode-scale";
    spec.genome.referenceLength = 1 << 20;
    spec.depth = 18.0;
    std::fprintf(stderr, "[bench] synthesizing %s ...\n",
                 spec.name.c_str());
    const SimulatedDataset ds = synthesizeDataset(spec);
    const uint64_t reads = ds.readSet.reads.size();
    const uint64_t bases = ds.readSet.totalBases();
    std::printf("read set: %llu reads, %llu bases\n",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(bases));

    const unsigned hw_threads = std::thread::hardware_concurrency();
    const unsigned reps = 3;

    // ---- Thread sweep at a fixed chunk size --------------------------
    SageConfig config;
    config.keepQuality = true;
    config.chunkReads = 4096; // ~32 chunks: enough grains for 8 threads.
    std::fprintf(stderr, "[bench] compressing (chunkReads=%u) ...\n",
                 config.chunkReads);
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    std::vector<ScalePoint> thread_sweep;
    TextTable threads_table;
    threads_table.setHeader({"threads", "chunks", "seconds", "MB/s",
                             "speedup"});
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        const ScalePoint point =
            measureDecode(archive.bytes, bases, threads, reps);
        thread_sweep.push_back(point);
        const double speedup =
            thread_sweep.front().seconds / point.seconds;
        threads_table.addRow({std::to_string(point.threads),
                              std::to_string(point.chunks),
                              TextTable::num(point.seconds, 3),
                              TextTable::num(point.mbPerSec, 1),
                              TextTable::timesFactor(speedup)});
    }
    std::printf("\nthread sweep (chunkReads=%u):\n", config.chunkReads);
    threads_table.print();
    if (hw_threads < 4) {
        std::printf("note: this host exposes %u hardware thread(s); "
                    "speedups above 1 thread are not observable here.\n",
                    hw_threads);
    }

    // ---- Chunk-size sweep at a fixed thread count --------------------
    const unsigned sweep_threads = std::min(4u, std::max(1u, hw_threads));
    std::vector<ScalePoint> chunk_sweep;
    TextTable chunks_table;
    chunks_table.setHeader({"chunkReads", "chunks", "archiveMB",
                            "seconds", "MB/s"});
    for (uint32_t chunk_reads : {1024u, 4096u, 16384u, 65536u}) {
        SageConfig sweep_config;
        sweep_config.chunkReads = chunk_reads;
        std::fprintf(stderr,
                     "[bench] compressing (chunkReads=%u) ...\n",
                     chunk_reads);
        const SageArchive swept =
            sageCompress(ds.readSet, ds.reference, sweep_config);
        ScalePoint point =
            measureDecode(swept.bytes, bases, sweep_threads, reps);
        point.chunkReads = chunk_reads;
        chunk_sweep.push_back(point);
        chunks_table.addRow(
            {std::to_string(chunk_reads), std::to_string(point.chunks),
             TextTable::num(static_cast<double>(swept.bytes.size())
                            / 1e6, 2),
             TextTable::num(point.seconds, 3),
             TextTable::num(point.mbPerSec, 1)});
    }
    std::printf("\nchunk-size sweep (%u threads):\n", sweep_threads);
    chunks_table.print();

    // ---- JSON report -------------------------------------------------
    const double speedup4 =
        thread_sweep[0].seconds / thread_sweep[2].seconds;
    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"decode_scale\",\n");
    std::fprintf(json, "  \"host\": %s,\n",
                 bench::hostMetaJson().c_str());
    std::fprintf(json, "  \"reads\": %llu,\n",
                 static_cast<unsigned long long>(reads));
    std::fprintf(json, "  \"bases\": %llu,\n",
                 static_cast<unsigned long long>(bases));
    std::fprintf(json, "  \"hardwareConcurrency\": %u,\n", hw_threads);
    std::fprintf(json, "  \"chunkReads\": %u,\n", config.chunkReads);
    std::fprintf(json, "  \"speedupAt4Threads\": %.3f,\n", speedup4);
    std::fprintf(json, "  \"threadSweep\": [\n");
    for (size_t i = 0; i < thread_sweep.size(); i++) {
        const ScalePoint &p = thread_sweep[i];
        std::fprintf(json,
                     "    {\"threads\": %u, \"chunks\": %zu, "
                     "\"seconds\": %.6f, \"mbPerSec\": %.2f}%s\n",
                     p.threads, p.chunks, p.seconds, p.mbPerSec,
                     i + 1 < thread_sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(json, "  \"chunkSweep\": [\n");
    for (size_t i = 0; i < chunk_sweep.size(); i++) {
        const ScalePoint &p = chunk_sweep[i];
        std::fprintf(json,
                     "    {\"chunkReads\": %u, \"chunks\": %zu, "
                     "\"threads\": %u, \"seconds\": %.6f, "
                     "\"mbPerSec\": %.2f}%s\n",
                     p.chunkReads, p.chunks, p.threads, p.seconds,
                     p.mbPerSec,
                     i + 1 < chunk_sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote %s (4-thread speedup: %.2fx on %u-core host)\n",
                json_path.c_str(), speedup4, hw_threads);
    return 0;
}
