/**
 * @file
 * Reproduces paper Fig. 1: the motivational timeline showing that data
 * preparation caps accelerated analysis.
 *
 * Three configurations over one short-read workload:
 *   Baseline:       software mapper + (N)Spr preparation
 *   Acc. Analysis:  GEM accelerator + (N)Spr preparation
 *   Acc.+IdealPrep: GEM accelerator + zero-time preparation
 *
 * Expected shape: accelerated analysis is dramatically faster than the
 * baseline, but most of that benefit is lost to preparation unless
 * preparation itself is idealized (or handled by SAGe).
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "accel/mappers.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Fig. 1: effect of data preparation on analysis performance",
        "baseline analysis 446 KR/s; accelerated 69200 KR/s; baseline "
        "prep 2563 KR/s caps the accelerated pipeline");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();
    const auto &art = all[1]; // RS2: the deep short-read set.

    SystemConfig sw_system;
    sw_system.mapper = softwareMapper();
    SystemConfig acc_system;
    acc_system.mapper = gemAccelerator();

    const auto baseline =
        evaluateEndToEnd(art.work, PrepConfig::NSpr, sw_system);
    const auto accel =
        evaluateEndToEnd(art.work, PrepConfig::NSpr, acc_system);
    const auto ideal =
        evaluateEndToEnd(art.work, PrepConfig::ZeroTimeDec, acc_system);

    auto kreads = [&](double seconds) {
        return static_cast<double>(art.work.totalReads) / seconds / 1e3;
    };

    TextTable table;
    table.setHeader({"configuration", "end-to-end", "prep stage",
                     "analysis stage", "throughput"});
    auto row = [&](const char *name, const EndToEndResult &r) {
        table.addRow({name,
                      TextTable::num(r.seconds, 4) + " s",
                      TextTable::num(r.prepSeconds, 4) + " s",
                      TextTable::num(r.mapSeconds, 4) + " s",
                      TextTable::num(kreads(r.seconds), 0) + " KR/s"});
    };
    row("Baseline (SW mapper)", baseline);
    row("Acc. Analysis", accel);
    row("Acc. + Ideal Prep.", ideal);
    table.print();

    std::printf("\npotential benefit of acceleration: %.1fx\n",
                baseline.seconds / ideal.seconds);
    std::printf("benefit actually realized with real prep: %.1fx\n",
                baseline.seconds / accel.seconds);
    std::printf("benefit lost to the data preparation bottleneck: "
                "%.1fx (paper point [2])\n",
                accel.seconds / ideal.seconds);
    return 0;
}
