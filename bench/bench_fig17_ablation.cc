/**
 * @file
 * Reproduces paper Fig. 17: size breakdown of the reads' mismatch
 * information under the optimization ladder NO..O4, for one short
 * (RS2) and one long (RS4) read set, normalized to NO.
 *
 * Expected shape: O1 slashes matching positions for short reads; O2
 * slashes mismatch counts (short) and mismatch positions (long); O3
 * cuts bases for long reads (chimeras) while growing positions a bit,
 * and cuts types everywhere; O4 removes corner-case labeling bits.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

using namespace sage;

namespace {

/** Components of the per-read mismatch information (Fig. 17 legend).
 *  Quality/headers/consensus excluded — the figure covers mismatch
 *  information only. */
struct Breakdown
{
    uint64_t matchingPos = 0;   // mpa+mpga+sga+sgga
    uint64_t mismatchCounts = 0; // mca+mcga
    uint64_t mismatchPos = 0;   // mmpa+mmpga
    uint64_t basesAndTypes = 0; // mbta
    uint64_t readLength = 0;    // rla+rlga
    uint64_t flags = 0;         // rev + segment + escape-label bits
    uint64_t escapes = 0;       // unmapped / contains-N payloads

    uint64_t
    total() const
    {
        return matchingPos + mismatchCounts + mismatchPos +
               basesAndTypes + readLength + flags + escapes;
    }
};

Breakdown
breakdownOf(const std::map<std::string, uint64_t> &sizes)
{
    auto get = [&](const char *name) -> uint64_t {
        auto it = sizes.find(name);
        return it == sizes.end() ? 0 : it->second;
    };
    Breakdown b;
    b.matchingPos = get("mpa") + get("mpga") + get("sga") + get("sgga");
    b.mismatchCounts = get("mca") + get("mcga");
    b.mismatchPos = get("mmpa") + get("mmpga");
    b.basesAndTypes = get("mbta");
    b.readLength = get("rla") + get("rlga");
    b.flags = get("flags");
    b.escapes = get("escape");
    return b;
}

void
runReadSet(const DatasetSpec &spec)
{
    std::printf("\n--- %s (%s reads) ---\n", spec.name.c_str(),
                spec.sequencer.longRead ? "long" : "short");
    const SimulatedDataset ds = synthesizeDataset(spec);
    ThreadPool pool;

    TextTable table;
    table.setHeader({"level", "MatchPos", "MMCounts", "MMPos",
                     "Bases+Types", "ReadLen", "Flags", "Escape",
                     "total(norm)"});
    double base_total = 0.0;
    for (unsigned level = 0; level <= 4; level++) {
        const SageConfig config = SageConfig::atLevel(level);
        const SageArchive archive =
            sageCompress(ds.readSet, ds.reference, config, &pool);
        const Breakdown b = breakdownOf(archive.streamSizes);
        if (level == 0)
            base_total = static_cast<double>(b.total());
        auto norm = [&](uint64_t v) {
            return TextTable::num(static_cast<double>(v) / base_total,
                                  3);
        };
        const char *names[] = {"NO", "O1", "O2", "O3", "O4"};
        table.addRow({names[level], norm(b.matchingPos),
                      norm(b.mismatchCounts), norm(b.mismatchPos),
                      norm(b.basesAndTypes), norm(b.readLength),
                      norm(b.flags), norm(b.escapes),
                      norm(b.total())});
    }
    table.print();
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fig. 17: effect of SAGe optimizations on mismatch-info size",
        "O1 cuts matching positions (short); O2 cuts counts (short) "
        "and positions (long); O3 cuts bases/types (long); O4 cuts "
        "corner labels");
    bench::printScaleNote();

    runReadSet(makeRs2Spec()); // Short.
    runReadSet(makeRs4Spec()); // Long.
    return 0;
}
