/**
 * @file
 * Archive-service benchmark: aggregate serving throughput of one
 * SageArchiveService (service/service.hh) as the number of concurrent
 * clients grows, across decoded-chunk cache budgets — the shared-
 * archive analogue of bench_decode_scale. Every client performs a full
 * sequential walk through its own ServiceSession, so N clients demand
 * N copies of the read stream while the cache bounds how many times a
 * chunk is actually decoded.
 *
 * Also measures the warm-cache effect directly: the same client fleet
 * re-run against an already-populated cache, reported as a speedup
 * over the cold pass (acceptance figure for the serving layer).
 *
 * Writes a machine-readable JSON report (default BENCH_service.json,
 * override with argv[1]) with host metadata so CI can archive
 * baselines.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/bench_common.hh"
#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/timing.hh"

using namespace sage;

namespace {

struct ServePoint
{
    unsigned clients = 0;
    uint64_t cacheBudgetBytes = 0;
    double seconds = 0.0;
    double aggMbPerSec = 0.0;  ///< clients x bases / wall.
    double hitRate = 0.0;
    uint64_t evictions = 0;
    uint64_t ghostHits = 0;
    double p50Ms = 0.0;  ///< Client-visible (Normal priority) only.
    double p99Ms = 0.0;
};

/** Outcome of the mixed interactive/batch scenario. */
struct MixedPoint
{
    unsigned streamers = 0;
    uint64_t cacheBudgetBytes = 0;
    double streamersOnlySeconds = 0.0;
    double streamersOnlyAggMbPerSec = 0.0;
    double mixedSeconds = 0.0;
    double batchAggMbPerSec = 0.0;
    uint64_t interactiveRequests = 0;
    uint64_t interactiveExpired = 0;
    double interactiveP50Ms = 0.0;
    double interactiveP99Ms = 0.0;
    double batchP50Ms = 0.0;
    double batchP99Ms = 0.0;
};

/** All @p clients walk the full archive concurrently; returns wall
 *  seconds. The service (and its cache state) is the caller's. */
double
runClients(SageArchiveService &service, unsigned clients,
           RequestPriority priority = RequestPriority::Normal)
{
    Stopwatch clock;
    std::vector<std::thread> fleet;
    for (unsigned c = 0; c < clients; c++) {
        fleet.emplace_back([&service, priority] {
            RequestOptions options;
            options.priority = priority;
            ServiceSession session = service.openSession(options);
            while (session.hasNext())
                session.read(1024);  // Bulk stride: copy out and drop.
        });
    }
    for (auto &client : fleet)
        client.join();
    return clock.seconds();
}

ServePoint
measureServe(const std::string &path, uint64_t bases, unsigned clients,
             uint64_t cache_budget)
{
    ServiceOptions options;
    options.cacheBudgetBytes = cache_budget;
    SageArchiveService service(path, options);
    ServePoint point;
    point.clients = clients;
    point.cacheBudgetBytes = cache_budget;
    point.seconds = runClients(service, clients);
    const ServiceStats stats = service.stats();
    point.aggMbPerSec = point.seconds > 0.0
        ? static_cast<double>(clients) * static_cast<double>(bases)
            / 1e6 / point.seconds
        : 0.0;
    point.hitRate = stats.cache.hitRate();
    point.evictions = stats.cache.evictions;
    point.ghostHits = stats.cache.ghostHits;
    // Client-visible latency: the Normal-priority histogram only.
    // The all-priority mix also counts Background readahead warms,
    // which by design soak at the queue tail and used to inflate the
    // reported p99 by ~10x at 64 clients.
    const LatencySummary &client_latency =
        stats.latencyByPriority[static_cast<size_t>(
            RequestPriority::Normal)];
    point.p50Ms = client_latency.p50Seconds * 1e3;
    point.p99Ms = client_latency.p99Seconds * 1e3;
    return point;
}

/**
 * The QoS scenario: @p streamers full-walk Background sessions
 * (batch) contending with one Interactive client issuing small
 * deadline-bearing range reads over a fixed hot set. A streamers-only
 * pass on a fresh service provides the batch-throughput baseline the
 * mixed pass is judged against.
 */
MixedPoint
measureMixed(const std::string &path, uint64_t bases,
             unsigned streamers, uint64_t cache_budget,
             uint64_t read_count)
{
    MixedPoint point;
    point.streamers = streamers;
    point.cacheBudgetBytes = cache_budget;

    // Few shards so one decoded chunk (~1 MiB here) fits a shard's
    // slice of the budget: the hot set is retainable and admission
    // policy — not the oversized-entry bypass — decides who stays.
    ServiceOptions shared_options;
    shared_options.cacheBudgetBytes = cache_budget;
    shared_options.cacheShards = 2;

    // Several passes per streamer so the mixed run is long enough to
    // give the interactive client a real sample count for its p99;
    // the streamers-only baseline uses the same pass count so both
    // passes see the same cold/warm mix.
    constexpr unsigned kStreamerPasses = 4;
    const auto run_streamers = [&](SageArchiveService &svc) {
        Stopwatch pass_clock;
        std::vector<std::thread> walkers;
        for (unsigned c = 0; c < streamers; c++) {
            walkers.emplace_back([&svc] {
                for (unsigned pass = 0; pass < kStreamerPasses;
                     pass++) {
                    RequestOptions session_options;
                    session_options.priority =
                        RequestPriority::Background;
                    ServiceSession session =
                        svc.openSession(session_options);
                    while (session.hasNext())
                        session.read(1024);
                }
            });
        }
        for (auto &walker : walkers)
            walker.join();
        return pass_clock.seconds();
    };
    const double served_mb = static_cast<double>(streamers)
        * kStreamerPasses * static_cast<double>(bases) / 1e6;

    {
        SageArchiveService service(path, shared_options);
        point.streamersOnlySeconds = run_streamers(service);
        point.streamersOnlyAggMbPerSec = point.streamersOnlySeconds > 0.0
            ? served_mb / point.streamersOnlySeconds
            : 0.0;
    }

    SageArchiveService service(path, shared_options);

    std::atomic<bool> streaming{true};
    std::thread fleet([&] {
        point.mixedSeconds = run_streamers(service);
        streaming.store(false, std::memory_order_release);
    });
    // The interactive client: small reads over a fixed hot set (the
    // scan-resistance case — these chunks must survive the streamers'
    // sequential sweeps), each with a deadline, paced with think time.
    uint64_t issued = 0;
    std::thread interactive([&] {
        const uint64_t span = 128;  // Reads per request.
        const uint64_t hot_starts[] = {0, 4096, 8192, 12288};
        size_t next = 0;
        while (streaming.load(std::memory_order_acquire)) {
            RequestOptions request;
            request.priority = RequestPriority::Interactive;
            request.deadline = RequestOptions::deadlineIn(0.250);
            uint64_t start = hot_starts[next % 4];
            next++;
            if (start + span > read_count)
                start = 0;
            service.readRange(start, span, request);
            issued++;
            // Think time sized so the interactive client is a light
            // load (<10% duty cycle) even on a single-core host,
            // where its CPU time comes straight out of batch agg.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(15));
        }
    });
    fleet.join();
    interactive.join();

    const ServiceStats stats = service.stats();
    point.batchAggMbPerSec = point.mixedSeconds > 0.0
        ? served_mb / point.mixedSeconds
        : 0.0;
    point.interactiveRequests = issued;
    point.interactiveExpired = stats.expired;
    const LatencySummary &interactive_latency =
        stats.latencyByPriority[static_cast<size_t>(
            RequestPriority::Interactive)];
    const LatencySummary &batch_latency =
        stats.latencyByPriority[static_cast<size_t>(
            RequestPriority::Background)];
    point.interactiveP50Ms = interactive_latency.p50Seconds * 1e3;
    point.interactiveP99Ms = interactive_latency.p99Seconds * 1e3;
    point.batchP50Ms = batch_latency.p50Seconds * 1e3;
    point.batchP99Ms = batch_latency.p99Seconds * 1e3;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_service.json";

    bench::printHeader(
        "Archive service: multi-client serving throughput",
        "shared, scheduled archive access (the at-scale consumer of "
        "SAGe's cheap decode; cf. paper §7 end-to-end pipeline)");

    // Same shape as bench_decode_scale but smaller: 64 clients walk
    // the whole thing, so total served volume is ~64x the read set.
    DatasetSpec spec = makeRs2Spec();
    spec.name = "service-bench";
    spec.genome.referenceLength = 1 << 19;
    spec.depth = 12.0;
    std::fprintf(stderr, "[bench] synthesizing %s ...\n",
                 spec.name.c_str());
    const SimulatedDataset ds = synthesizeDataset(spec);
    const uint64_t bases = ds.readSet.totalBases();
    const uint64_t payload =
        ds.readSet.dnaBytes() + ds.readSet.qualityBytes();

    SageConfig config;
    config.chunkReads = 4096;
    std::fprintf(stderr, "[bench] compressing (chunkReads=%u) ...\n",
                 config.chunkReads);
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    // Serve off a real file, as a deployment would.
    const std::string path = "sage_bench_service." +
        std::to_string(static_cast<long>(::getpid())) + ".sage.tmp";
    {
        FileSink sink(path);
        sink.writeBytes(archive.bytes);
    }
    std::printf("archive: %zu B, %zu reads, %llu bases (payload %llu "
                "B/client)\n",
                archive.bytes.size(), ds.readSet.reads.size(),
                static_cast<unsigned long long>(bases),
                static_cast<unsigned long long>(payload));

    // ---- client x cache-budget sweep ---------------------------------
    const std::vector<unsigned> client_counts = {1, 4, 16, 64};
    // 0 = decode per request; 4 MiB = partial working set (eviction
    // traffic); 256 MiB = whole decoded archive stays resident.
    const std::vector<uint64_t> budgets = {0, 4ull << 20, 256ull << 20};
    std::vector<ServePoint> sweep;
    TextTable table;
    table.setHeader({"clients", "cacheMB", "seconds", "aggMB/s",
                     "hitRate", "evict", "ghost", "p50ms", "p99ms"});
    for (uint64_t budget : budgets) {
        for (unsigned clients : client_counts) {
            const ServePoint point =
                measureServe(path, bases, clients, budget);
            sweep.push_back(point);
            table.addRow(
                {std::to_string(point.clients),
                 TextTable::num(static_cast<double>(budget) / 1e6, 0),
                 TextTable::num(point.seconds, 3),
                 TextTable::num(point.aggMbPerSec, 1),
                 TextTable::num(point.hitRate, 3),
                 std::to_string(point.evictions),
                 std::to_string(point.ghostHits),
                 TextTable::num(point.p50Ms, 2),
                 TextTable::num(point.p99Ms, 2)});
        }
    }
    std::printf("\nclient x cache-budget sweep (full session walks):\n");
    table.print();
    const unsigned hw_threads = std::thread::hardware_concurrency();
    if (hw_threads < 4) {
        std::printf("note: this host exposes %u hardware thread(s); "
                    "client scaling is concurrency-limited here.\n",
                    hw_threads);
    }

    // ---- warm-cache speedup ------------------------------------------
    // One service, big budget: pass 1 decodes every chunk (cold), pass
    // 2 serves entirely from the decoded-chunk cache (warm).
    double cold_seconds = 0.0, warm_seconds = 0.0, warm_hit_rate = 0.0;
    {
        ServiceOptions options;
        options.cacheBudgetBytes = 256ull << 20;
        SageArchiveService service(path, options);
        cold_seconds = runClients(service, 4);
        const uint64_t cold_misses = service.stats().cache.misses;
        warm_seconds = runClients(service, 4);
        const ServiceStats stats = service.stats();
        warm_hit_rate = stats.cache.hitRate();
        if (stats.cache.misses != cold_misses) {
            std::printf("WARNING: warm pass decoded %llu chunks\n",
                        static_cast<unsigned long long>(
                            stats.cache.misses - cold_misses));
        }
    }
    const double warm_speedup =
        warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
    std::printf("\nwarm-cache effect (4 clients, resident budget): "
                "cold %.3fs -> warm %.3fs (%.2fx, hit rate %.3f)\n",
                cold_seconds, warm_seconds, warm_speedup,
                warm_hit_rate);

    // ---- mixed interactive/batch scenario ----------------------------
    // Background streamers sweep the archive while one Interactive
    // client reads a small hot set under a deadline. The budget holds
    // the hot chunks plus part of the sweep, so SIEVE admission has
    // real work; acceptance: interactive p99 < batch p50, batch
    // throughput within 10% of the streamers-only pass.
    const MixedPoint mixed = measureMixed(
        path, bases, /*streamers=*/8, /*cache_budget=*/8ull << 20,
        ds.readSet.reads.size());
    std::printf(
        "\nmixed QoS scenario (%u background streamers + 1 "
        "interactive client, 8 MiB cache):\n"
        "  streamers-only: %.3fs (%.1f MB/s agg)\n"
        "  mixed batch:    %.3fs (%.1f MB/s agg, %.1f%% of "
        "streamers-only)\n"
        "  interactive:    %llu requests, %llu expired, p50 %.2fms, "
        "p99 %.2fms\n"
        "  batch latency:  p50 %.2fms, p99 %.2fms\n",
        mixed.streamers, mixed.streamersOnlySeconds,
        mixed.streamersOnlyAggMbPerSec, mixed.mixedSeconds,
        mixed.batchAggMbPerSec,
        mixed.streamersOnlyAggMbPerSec > 0.0
            ? 100.0 * mixed.batchAggMbPerSec
                / mixed.streamersOnlyAggMbPerSec
            : 0.0,
        static_cast<unsigned long long>(mixed.interactiveRequests),
        static_cast<unsigned long long>(mixed.interactiveExpired),
        mixed.interactiveP50Ms, mixed.interactiveP99Ms,
        mixed.batchP50Ms, mixed.batchP99Ms);

    std::remove(path.c_str());

    // ---- JSON report -------------------------------------------------
    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"service\",\n");
    std::fprintf(json, "  \"host\": %s,\n",
                 bench::hostMetaJson().c_str());
    std::fprintf(json, "  \"reads\": %zu,\n", ds.readSet.reads.size());
    std::fprintf(json, "  \"bases\": %llu,\n",
                 static_cast<unsigned long long>(bases));
    std::fprintf(json, "  \"payloadBytesPerClient\": %llu,\n",
                 static_cast<unsigned long long>(payload));
    std::fprintf(json, "  \"chunkReads\": %u,\n", config.chunkReads);
    std::fprintf(json, "  \"coldSeconds\": %.6f,\n", cold_seconds);
    std::fprintf(json, "  \"warmSeconds\": %.6f,\n", warm_seconds);
    std::fprintf(json, "  \"warmSpeedup\": %.3f,\n", warm_speedup);
    std::fprintf(json, "  \"warmHitRate\": %.4f,\n", warm_hit_rate);
    std::fprintf(json, "  \"clientSweep\": [\n");
    for (size_t i = 0; i < sweep.size(); i++) {
        const ServePoint &p = sweep[i];
        std::fprintf(
            json,
            "    {\"clients\": %u, \"cacheBudgetBytes\": %llu, "
            "\"seconds\": %.6f, \"aggMbPerSec\": %.2f, "
            "\"hitRate\": %.4f, \"evictions\": %llu, "
            "\"ghostHits\": %llu, "
            "\"p50Ms\": %.3f, \"p99Ms\": %.3f}%s\n",
            p.clients,
            static_cast<unsigned long long>(p.cacheBudgetBytes),
            p.seconds, p.aggMbPerSec, p.hitRate,
            static_cast<unsigned long long>(p.evictions),
            static_cast<unsigned long long>(p.ghostHits), p.p50Ms,
            p.p99Ms, i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ],\n");
    std::fprintf(
        json,
        "  \"mixed\": {\"streamers\": %u, \"cacheBudgetBytes\": %llu, "
        "\"streamersOnlySeconds\": %.6f, "
        "\"streamersOnlyAggMbPerSec\": %.2f, "
        "\"mixedSeconds\": %.6f, \"batchAggMbPerSec\": %.2f, "
        "\"interactiveRequests\": %llu, \"interactiveExpired\": %llu, "
        "\"interactiveP50Ms\": %.3f, \"interactiveP99Ms\": %.3f, "
        "\"batchP50Ms\": %.3f, \"batchP99Ms\": %.3f}\n",
        mixed.streamers,
        static_cast<unsigned long long>(mixed.cacheBudgetBytes),
        mixed.streamersOnlySeconds, mixed.streamersOnlyAggMbPerSec,
        mixed.mixedSeconds, mixed.batchAggMbPerSec,
        static_cast<unsigned long long>(mixed.interactiveRequests),
        static_cast<unsigned long long>(mixed.interactiveExpired),
        mixed.interactiveP50Ms, mixed.interactiveP99Ms,
        mixed.batchP50Ms, mixed.batchP99Ms);
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote %s (warm-cache speedup: %.2fx)\n",
                json_path.c_str(), warm_speedup);
    return 0;
}
