/**
 * @file
 * Archive-service benchmark: aggregate serving throughput of one
 * SageArchiveService (service/service.hh) as the number of concurrent
 * clients grows, across decoded-chunk cache budgets — the shared-
 * archive analogue of bench_decode_scale. Every client performs a full
 * sequential walk through its own ServiceSession, so N clients demand
 * N copies of the read stream while the cache bounds how many times a
 * chunk is actually decoded.
 *
 * Also measures the warm-cache effect directly: the same client fleet
 * re-run against an already-populated cache, reported as a speedup
 * over the cold pass (acceptance figure for the serving layer).
 *
 * Writes a machine-readable JSON report (default BENCH_service.json,
 * override with argv[1]) with host metadata so CI can archive
 * baselines.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "common/bench_common.hh"
#include "core/sage.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/timing.hh"

using namespace sage;

namespace {

struct ServePoint
{
    unsigned clients = 0;
    uint64_t cacheBudgetBytes = 0;
    double seconds = 0.0;
    double aggMbPerSec = 0.0;  ///< clients x bases / wall.
    double hitRate = 0.0;
    uint64_t evictions = 0;
    double p50Ms = 0.0;
    double p99Ms = 0.0;
};

/** All @p clients walk the full archive concurrently; returns wall
 *  seconds. The service (and its cache state) is the caller's. */
double
runClients(SageArchiveService &service, unsigned clients)
{
    Stopwatch clock;
    std::vector<std::thread> fleet;
    for (unsigned c = 0; c < clients; c++) {
        fleet.emplace_back([&service] {
            ServiceSession session = service.openSession();
            while (session.hasNext())
                session.read(1024);  // Bulk stride: copy out and drop.
        });
    }
    for (auto &client : fleet)
        client.join();
    return clock.seconds();
}

ServePoint
measureServe(const std::string &path, uint64_t bases, unsigned clients,
             uint64_t cache_budget)
{
    ServiceOptions options;
    options.cacheBudgetBytes = cache_budget;
    SageArchiveService service(path, options);
    ServePoint point;
    point.clients = clients;
    point.cacheBudgetBytes = cache_budget;
    point.seconds = runClients(service, clients);
    const ServiceStats stats = service.stats();
    point.aggMbPerSec = point.seconds > 0.0
        ? static_cast<double>(clients) * static_cast<double>(bases)
            / 1e6 / point.seconds
        : 0.0;
    point.hitRate = stats.cache.hitRate();
    point.evictions = stats.cache.evictions;
    point.p50Ms = stats.p50LatencySeconds * 1e3;
    point.p99Ms = stats.p99LatencySeconds * 1e3;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string json_path =
        argc > 1 ? argv[1] : "BENCH_service.json";

    bench::printHeader(
        "Archive service: multi-client serving throughput",
        "shared, scheduled archive access (the at-scale consumer of "
        "SAGe's cheap decode; cf. paper §7 end-to-end pipeline)");

    // Same shape as bench_decode_scale but smaller: 64 clients walk
    // the whole thing, so total served volume is ~64x the read set.
    DatasetSpec spec = makeRs2Spec();
    spec.name = "service-bench";
    spec.genome.referenceLength = 1 << 19;
    spec.depth = 12.0;
    std::fprintf(stderr, "[bench] synthesizing %s ...\n",
                 spec.name.c_str());
    const SimulatedDataset ds = synthesizeDataset(spec);
    const uint64_t bases = ds.readSet.totalBases();
    const uint64_t payload =
        ds.readSet.dnaBytes() + ds.readSet.qualityBytes();

    SageConfig config;
    config.chunkReads = 4096;
    std::fprintf(stderr, "[bench] compressing (chunkReads=%u) ...\n",
                 config.chunkReads);
    const SageArchive archive =
        sageCompress(ds.readSet, ds.reference, config);

    // Serve off a real file, as a deployment would.
    const std::string path = "sage_bench_service." +
        std::to_string(static_cast<long>(::getpid())) + ".sage.tmp";
    {
        FileSink sink(path);
        sink.writeBytes(archive.bytes);
    }
    std::printf("archive: %zu B, %zu reads, %llu bases (payload %llu "
                "B/client)\n",
                archive.bytes.size(), ds.readSet.reads.size(),
                static_cast<unsigned long long>(bases),
                static_cast<unsigned long long>(payload));

    // ---- client x cache-budget sweep ---------------------------------
    const std::vector<unsigned> client_counts = {1, 4, 16, 64};
    // 0 = decode per request; 4 MiB = partial working set (eviction
    // traffic); 256 MiB = whole decoded archive stays resident.
    const std::vector<uint64_t> budgets = {0, 4ull << 20, 256ull << 20};
    std::vector<ServePoint> sweep;
    TextTable table;
    table.setHeader({"clients", "cacheMB", "seconds", "aggMB/s",
                     "hitRate", "evict", "p50ms", "p99ms"});
    for (uint64_t budget : budgets) {
        for (unsigned clients : client_counts) {
            const ServePoint point =
                measureServe(path, bases, clients, budget);
            sweep.push_back(point);
            table.addRow(
                {std::to_string(point.clients),
                 TextTable::num(static_cast<double>(budget) / 1e6, 0),
                 TextTable::num(point.seconds, 3),
                 TextTable::num(point.aggMbPerSec, 1),
                 TextTable::num(point.hitRate, 3),
                 std::to_string(point.evictions),
                 TextTable::num(point.p50Ms, 2),
                 TextTable::num(point.p99Ms, 2)});
        }
    }
    std::printf("\nclient x cache-budget sweep (full session walks):\n");
    table.print();
    const unsigned hw_threads = std::thread::hardware_concurrency();
    if (hw_threads < 4) {
        std::printf("note: this host exposes %u hardware thread(s); "
                    "client scaling is concurrency-limited here.\n",
                    hw_threads);
    }

    // ---- warm-cache speedup ------------------------------------------
    // One service, big budget: pass 1 decodes every chunk (cold), pass
    // 2 serves entirely from the decoded-chunk cache (warm).
    double cold_seconds = 0.0, warm_seconds = 0.0, warm_hit_rate = 0.0;
    {
        ServiceOptions options;
        options.cacheBudgetBytes = 256ull << 20;
        SageArchiveService service(path, options);
        cold_seconds = runClients(service, 4);
        const uint64_t cold_misses = service.stats().cache.misses;
        warm_seconds = runClients(service, 4);
        const ServiceStats stats = service.stats();
        warm_hit_rate = stats.cache.hitRate();
        if (stats.cache.misses != cold_misses) {
            std::printf("WARNING: warm pass decoded %llu chunks\n",
                        static_cast<unsigned long long>(
                            stats.cache.misses - cold_misses));
        }
    }
    const double warm_speedup =
        warm_seconds > 0.0 ? cold_seconds / warm_seconds : 0.0;
    std::printf("\nwarm-cache effect (4 clients, resident budget): "
                "cold %.3fs -> warm %.3fs (%.2fx, hit rate %.3f)\n",
                cold_seconds, warm_seconds, warm_speedup,
                warm_hit_rate);

    std::remove(path.c_str());

    // ---- JSON report -------------------------------------------------
    FILE *json = std::fopen(json_path.c_str(), "w");
    if (!json) {
        std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
        return 1;
    }
    std::fprintf(json, "{\n");
    std::fprintf(json, "  \"bench\": \"service\",\n");
    std::fprintf(json, "  \"host\": %s,\n",
                 bench::hostMetaJson().c_str());
    std::fprintf(json, "  \"reads\": %zu,\n", ds.readSet.reads.size());
    std::fprintf(json, "  \"bases\": %llu,\n",
                 static_cast<unsigned long long>(bases));
    std::fprintf(json, "  \"payloadBytesPerClient\": %llu,\n",
                 static_cast<unsigned long long>(payload));
    std::fprintf(json, "  \"chunkReads\": %u,\n", config.chunkReads);
    std::fprintf(json, "  \"coldSeconds\": %.6f,\n", cold_seconds);
    std::fprintf(json, "  \"warmSeconds\": %.6f,\n", warm_seconds);
    std::fprintf(json, "  \"warmSpeedup\": %.3f,\n", warm_speedup);
    std::fprintf(json, "  \"warmHitRate\": %.4f,\n", warm_hit_rate);
    std::fprintf(json, "  \"clientSweep\": [\n");
    for (size_t i = 0; i < sweep.size(); i++) {
        const ServePoint &p = sweep[i];
        std::fprintf(
            json,
            "    {\"clients\": %u, \"cacheBudgetBytes\": %llu, "
            "\"seconds\": %.6f, \"aggMbPerSec\": %.2f, "
            "\"hitRate\": %.4f, \"evictions\": %llu, "
            "\"p50Ms\": %.3f, \"p99Ms\": %.3f}%s\n",
            p.clients,
            static_cast<unsigned long long>(p.cacheBudgetBytes),
            p.seconds, p.aggMbPerSec, p.hitRate,
            static_cast<unsigned long long>(p.evictions), p.p50Ms,
            p.p99Ms, i + 1 < sweep.size() ? "," : "");
    }
    std::fprintf(json, "  ]\n");
    std::fprintf(json, "}\n");
    std::fclose(json);
    std::printf("\nwrote %s (warm-cache speedup: %.2fx)\n",
                json_path.c_str(), warm_speedup);
    return 0;
}
