/**
 * @file
 * Reproduces paper Table 1: area and power of SAGe's logic units at
 * 1 GHz, 22 nm, per channel and summed for an 8-channel SSD, plus the
 * §8.1 claim that the total is ~0.7% of the three SSD-controller
 * cores.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "hw/sage_hw.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Table 1: area and power of SAGe's logic (22 nm, 1 GHz)",
        "totals: 0.002 mm^2, 0.49 mW (+0.28 mW for in-storage mode)");

    TextTable table;
    table.setHeader({"logic unit", "instances", "area [mm^2]",
                     "power [mW]"});
    auto row = [&](const char *name, const SageHwUnitSpec &spec) {
        table.addRow({name, "1 per channel",
                      TextTable::num(spec.areaMm2, 6),
                      TextTable::num(spec.powerMw, 3)});
    };
    row("Scan Unit", SageHwModel::scanUnit());
    row("Read Construction Unit", SageHwModel::readConstructionUnit());
    row("Double Registers (mode 3)", SageHwModel::doubleRegisters());
    row("Control Unit", SageHwModel::controlUnit());

    SageHwModel host_attached;
    SageHwConfig mode3_config;
    mode3_config.inStorageRegisters = true;
    SageHwModel mode3(mode3_config);
    table.addRow({"Total (8-channel SSD)", "-",
                  TextTable::num(host_attached.totalAreaMm2(), 4),
                  TextTable::num(host_attached.totalPowerMw(), 2) +
                      " (+" +
                      TextTable::num(mode3.totalPowerMw()
                                     - host_attached.totalPowerMw(), 2) +
                      " mode 3)"});
    table.print();

    std::printf("\nfraction of three SSD-controller cores: %.2f%% "
                "(paper: 0.7%%)\n",
                host_attached.fractionOfControllerCores() * 100.0);
    std::printf("FPGA framing (paper §6): the logic is ~2.5%% of LUTs "
                "/ 0.8%% of FFs of a mid-range FPGA.\n");
    return 0;
}
