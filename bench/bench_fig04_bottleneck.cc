/**
 * @file
 * Reproduces paper Fig. 4: end-to-end throughput (prep + GEM analysis)
 * for pigz, (N)Spr and Ideal preparation, normalized to (N)Spr, per
 * read set plus geometric mean.
 *
 * Expected shape: eliminating preparation gives ~12.3x over pigz and
 * ~4.0x over (N)Spr on average; pigz trails (N)Spr everywhere.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "accel/mappers.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Fig. 4: end-to-end throughput, normalized to (N)Spr",
        "Ideal/(N)Spr avg 4.0x; Ideal/pigz avg 12.3x");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();
    SystemConfig system;
    system.mapper = gemAccelerator();

    TextTable table;
    table.setHeader({"RS", "pigz", "(N)Spr", "Ideal"});
    std::vector<double> pigz_norm, ideal_norm;
    for (const auto &art : all) {
        const double t_pigz =
            evaluateEndToEnd(art.work, PrepConfig::Pigz, system).seconds;
        const double t_spr =
            evaluateEndToEnd(art.work, PrepConfig::NSpr, system).seconds;
        const double t_ideal =
            evaluateEndToEnd(art.work, PrepConfig::ZeroTimeDec, system)
                .seconds;
        // Throughput normalized to (N)Spr = t_spr / t_config.
        pigz_norm.push_back(t_spr / t_pigz);
        ideal_norm.push_back(t_spr / t_ideal);
        table.addRow({art.work.name,
                      TextTable::num(t_spr / t_pigz),
                      "1.00",
                      TextTable::num(t_spr / t_ideal)});
    }
    table.addRow({"GMean", TextTable::num(bench::geomean(pigz_norm)),
                  "1.00", TextTable::num(bench::geomean(ideal_norm))});
    table.print();

    std::printf("\nIdeal vs (N)Spr speedup: %.1fx (paper: 4.0x)\n",
                bench::geomean(ideal_norm));
    std::printf("Ideal vs pigz speedup: %.1fx (paper: 12.3x)\n",
                bench::geomean(ideal_norm)
                    / bench::geomean(pigz_norm));
    return 0;
}
