#include "bench_common.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "genomics/kernels.hh"
#include "util/cpu.hh"
#include "util/logging.hh"

namespace sage {
namespace bench {

namespace {

std::string
cachePath()
{
    return "sage_bench_cache_v" + std::to_string(kCacheVersion) + ".txt";
}

/** Flat key=value serialization of one MeasuredArtifacts. */
void
writeArtifacts(std::ostream &out, const MeasuredArtifacts &art)
{
    const WorkloadMeasurement &w = art.work;
    out << "begin " << w.name << "\n";
    out << "fastqBytes " << w.fastqBytes << "\n";
    out << "totalReads " << w.totalReads << "\n";
    out << "totalBases " << w.totalBases << "\n";
    out << "pigzBytes " << w.pigzBytes << "\n";
    out << "springBytes " << w.springBytes << "\n";
    out << "sageBytes " << w.sageBytes << "\n";
    out << "sageDnaStreamBytes " << w.sageDnaStreamBytes << "\n";
    out << "pigzDecompSeconds " << w.pigzDecompSeconds << "\n";
    out << "springDecompSeconds " << w.springDecompSeconds << "\n";
    out << "springBackendSeconds " << w.springBackendSeconds << "\n";
    out << "sageSwDecompSeconds " << w.sageSwDecompSeconds << "\n";
    out << "sageSwParDecompSeconds " << w.sageSwParDecompSeconds << "\n";
    out << "sageSwDecodeThreads " << w.sageSwDecodeThreads << "\n";
    out << "sageSwFileDecompSeconds " << w.sageSwFileDecompSeconds
        << "\n";
    out << "sageSwFilePrefetchSeconds " << w.sageSwFilePrefetchSeconds
        << "\n";
    out << "sageSwServeSeconds " << w.sageSwServeSeconds << "\n";
    out << "sageSwServeClients " << w.sageSwServeClients << "\n";
    out << "isfFilterFraction " << w.isfFilterFraction << "\n";
    if (!w.sageChunkBytes.empty()) {
        out << "sageChunkBytes ";
        for (size_t c = 0; c < w.sageChunkBytes.size(); c++)
            out << (c == 0 ? "" : ",") << w.sageChunkBytes[c];
        out << "\n";
    }
    out << "dnaBytesUncompressed " << art.dnaBytesUncompressed << "\n";
    out << "qualBytesUncompressed " << art.qualBytesUncompressed << "\n";
    out << "pigzDnaBytes " << art.pigzDnaBytes << "\n";
    out << "pigzQualBytes " << art.pigzQualBytes << "\n";
    out << "springDnaBytes " << art.springDnaBytes << "\n";
    out << "springQualBytes " << art.springQualBytes << "\n";
    out << "sageDnaBytes " << art.sageDnaBytes << "\n";
    out << "sageQualBytes " << art.sageQualBytes << "\n";
    out << "pigzCompressSeconds " << art.pigzCompressSeconds << "\n";
    out << "springCompressSeconds " << art.springCompressSeconds << "\n";
    out << "springMapSeconds " << art.springMapSeconds << "\n";
    out << "sageCompressSeconds " << art.sageCompressSeconds << "\n";
    out << "sageMapSeconds " << art.sageMapSeconds << "\n";
    out << "sageTuneSeconds " << art.sageTuneSeconds << "\n";
    out << "springWorkingSetBytes " << art.springWorkingSetBytes << "\n";
    out << "sageWorkingSetBytes " << art.sageWorkingSetBytes << "\n";
    out << "end\n";
}

bool
readArtifacts(std::istream &in, MeasuredArtifacts &art)
{
    std::string line;
    std::map<std::string, std::string> kv;
    bool began = false;
    while (std::getline(in, line)) {
        std::istringstream iss(line);
        std::string key;
        iss >> key;
        if (key == "begin") {
            iss >> art.work.name;
            began = true;
            continue;
        }
        if (key == "end")
            break;
        std::string value;
        iss >> value;
        kv[key] = value;
    }
    if (!began)
        return false;

    auto u64 = [&](const char *key) -> uint64_t {
        return kv.count(key) ? std::stoull(kv[key]) : 0;
    };
    auto f64 = [&](const char *key) -> double {
        return kv.count(key) ? std::stod(kv[key]) : 0.0;
    };
    WorkloadMeasurement &w = art.work;
    w.fastqBytes = u64("fastqBytes");
    w.totalReads = u64("totalReads");
    w.totalBases = u64("totalBases");
    w.pigzBytes = u64("pigzBytes");
    w.springBytes = u64("springBytes");
    w.sageBytes = u64("sageBytes");
    w.sageDnaStreamBytes = u64("sageDnaStreamBytes");
    w.pigzDecompSeconds = f64("pigzDecompSeconds");
    w.springDecompSeconds = f64("springDecompSeconds");
    w.springBackendSeconds = f64("springBackendSeconds");
    w.sageSwDecompSeconds = f64("sageSwDecompSeconds");
    w.sageSwParDecompSeconds = f64("sageSwParDecompSeconds");
    w.sageSwDecodeThreads = f64("sageSwDecodeThreads");
    w.sageSwFileDecompSeconds = f64("sageSwFileDecompSeconds");
    w.sageSwFilePrefetchSeconds = f64("sageSwFilePrefetchSeconds");
    w.sageSwServeSeconds = f64("sageSwServeSeconds");
    w.sageSwServeClients = f64("sageSwServeClients");
    w.isfFilterFraction = f64("isfFilterFraction");
    if (kv.count("sageChunkBytes")) {
        std::istringstream list(kv["sageChunkBytes"]);
        std::string item;
        while (std::getline(list, item, ','))
            w.sageChunkBytes.push_back(std::stoull(item));
    }
    art.dnaBytesUncompressed = u64("dnaBytesUncompressed");
    art.qualBytesUncompressed = u64("qualBytesUncompressed");
    art.pigzDnaBytes = u64("pigzDnaBytes");
    art.pigzQualBytes = u64("pigzQualBytes");
    art.springDnaBytes = u64("springDnaBytes");
    art.springQualBytes = u64("springQualBytes");
    art.sageDnaBytes = u64("sageDnaBytes");
    art.sageQualBytes = u64("sageQualBytes");
    art.pigzCompressSeconds = f64("pigzCompressSeconds");
    art.springCompressSeconds = f64("springCompressSeconds");
    art.springMapSeconds = f64("springMapSeconds");
    art.sageCompressSeconds = f64("sageCompressSeconds");
    art.sageMapSeconds = f64("sageMapSeconds");
    art.sageTuneSeconds = f64("sageTuneSeconds");
    art.springWorkingSetBytes = u64("springWorkingSetBytes");
    art.sageWorkingSetBytes = u64("sageWorkingSetBytes");
    return true;
}

std::vector<MeasuredArtifacts>
loadCache()
{
    std::ifstream in(cachePath());
    std::vector<MeasuredArtifacts> all;
    if (!in)
        return all;
    for (;;) {
        MeasuredArtifacts art;
        if (!readArtifacts(in, art))
            break;
        all.push_back(std::move(art));
    }
    return all;
}

} // namespace

std::vector<MeasuredArtifacts>
remeasureAllPresets(bool verbose)
{
    std::vector<MeasuredArtifacts> all;
    for (const DatasetSpec &spec : allReadSetSpecs()) {
        if (verbose)
            std::fprintf(stderr, "[bench] measuring %s ...\n",
                         spec.name.c_str());
        all.push_back(measurePreset(spec));
    }
    std::ofstream out(cachePath());
    for (const auto &art : all)
        writeArtifacts(out, art);
    if (verbose)
        std::fprintf(stderr, "[bench] cached measurements in %s\n",
                     cachePath().c_str());
    return all;
}

std::vector<MeasuredArtifacts>
measureAllPresets(bool verbose)
{
    std::vector<MeasuredArtifacts> cached = loadCache();
    if (cached.size() == allReadSetSpecs().size()) {
        if (verbose)
            std::fprintf(stderr,
                         "[bench] using cached measurements (%s)\n",
                         cachePath().c_str());
        return cached;
    }
    return remeasureAllPresets(verbose);
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    size_t n = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            n++;
        }
    }
    return n == 0 ? 0.0 : std::exp(log_sum / static_cast<double>(n));
}

void
printHeader(const std::string &experiment,
            const std::string &paper_summary)
{
    std::printf("=======================================================\n");
    std::printf("%s\n", experiment.c_str());
    std::printf("Paper reference: %s\n", paper_summary.c_str());
    std::printf("=======================================================\n");
}

std::string
jsonReportPath(const std::string &name)
{
    const char *dir = std::getenv("SAGE_BENCH_JSON_DIR");
    if (!dir || !*dir)
        return "";
    return std::string(dir) + "/BENCH_" + name + ".json";
}

std::string
hostMetaJson()
{
    std::ostringstream out;
    out << "{\"hardwareConcurrency\": " << hardwareConcurrency()
        << ", \"compiler\": \"" << compilerVersion() << "\""
        << ", \"simdDetected\": \""
        << simdLevelName(hardwareSimdLevel()) << "\""
        << ", \"kernelDispatch\": \"" << kernels::activeLevelName()
        << "\"" << ", \"forcedScalar\": "
        << (simdForcedScalar() ? "true" : "false") << "}";
    return out.str();
}

void
printScaleNote()
{
    std::printf("note: datasets are synthetic RS1-RS5 analogues, ~1000x\n"
                "smaller than the paper's; compare shapes and orderings,\n"
                "not absolute values (DESIGN.md section 2).\n\n");
}

} // namespace bench
} // namespace sage
