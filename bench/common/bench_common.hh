/**
 * @file
 * Shared benchmark-harness support: preset measurement with a disk
 * cache (measuring all five read sets takes minutes; every bench
 * binary reuses one measurement pass), geometric means, and the
 * paper's reference numbers for side-by-side shape comparison.
 */

#ifndef SAGE_BENCH_COMMON_HH
#define SAGE_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "pipeline/measure.hh"
#include "pipeline/pipeline.hh"

namespace sage {
namespace bench {

/** Bump when any format/measurement change invalidates cached runs. */
constexpr int kCacheVersion = 10;

/**
 * Measure all five RS presets (synthesize + compress with every tool +
 * time decompression), caching results in ./sage_bench_cache_v*.txt so
 * subsequent bench binaries skip the ~minutes-long measurement pass.
 */
std::vector<MeasuredArtifacts> measureAllPresets(bool verbose = true);

/** Force re-measurement (ignores and rewrites the cache). */
std::vector<MeasuredArtifacts> remeasureAllPresets(bool verbose = true);

/** Geometric mean (ignores non-positive entries). */
double geomean(const std::vector<double> &values);

/** Standard banner for a bench binary. */
void printHeader(const std::string &experiment,
                 const std::string &paper_summary);

/**
 * Path for this bench's machine-readable report:
 * $SAGE_BENCH_JSON_DIR/BENCH_<name>.json, or "" when the env var is
 * unset (benches then skip JSON emission). CI sets the variable and
 * uploads the BENCH_*.json files as baseline artifacts.
 */
std::string jsonReportPath(const std::string &name);

/**
 * Host-metadata JSON object value for bench reports: hardware
 * concurrency, compiler, detected SIMD level and the active kernel
 * dispatch (after SAGE_FORCE_SCALAR). Every BENCH_*.json embeds it as
 * `"host": ...` so a committed baseline names the machine shape it was
 * measured on — a 1-core container baseline is then self-documenting
 * instead of a trap (ROADMAP perf follow-on).
 */
std::string hostMetaJson();

/** Scale note: our datasets are ~1000x smaller than the paper's. */
void printScaleNote();

} // namespace bench
} // namespace sage

#endif // SAGE_BENCH_COMMON_HH
