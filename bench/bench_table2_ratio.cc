/**
 * @file
 * Reproduces paper Table 2: compression ratios (DNA and quality) of
 * pigz, (N)Spr and SAGe across the five read sets.
 *
 * Expected shape: SAGe's DNA ratio ~3x pigz's and within a few percent
 * of (N)Spr's; quality ratios identical between SAGe and (N)Spr (same
 * quality codec, paper §5.1.5).
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Table 2: compression ratios per read set",
        "SAGe DNA ratio: 2.9x pigz avg; -4.6% vs (N)Spr avg; "
        "quality same as (N)Spr");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();

    // Paper Table 2 values for reference (DNA ratio columns).
    const double paper_pigz_dna[] = {3.39, 12.5, 3.41, 3.93, 3.5};
    const double paper_spring_dna[] = {24.8, 40.2, 7.2, 4.8, 7.6};

    TextTable table;
    table.setHeader({"RS", "uncomp", "pigz-DNA", "pigz-Q", "Spr-DNA",
                     "Spr-Q", "SAGe-DNA", "SAGe-Q", "paper(pigz/Spr)"});
    std::vector<double> r_pigz, r_spring, r_sage, sage_vs_spring;
    for (size_t i = 0; i < all.size(); i++) {
        const auto &art = all[i];
        const double dna =
            static_cast<double>(art.dnaBytesUncompressed);
        const double qual =
            static_cast<double>(art.qualBytesUncompressed);
        const double pigz_dna = dna / art.pigzDnaBytes;
        const double pigz_q = qual / art.pigzQualBytes;
        const double spr_dna = dna / art.springDnaBytes;
        const double spr_q = qual / art.springQualBytes;
        const double sage_dna = dna / art.sageDnaBytes;
        const double sage_q = qual / art.sageQualBytes;
        r_pigz.push_back(pigz_dna);
        r_spring.push_back(spr_dna);
        r_sage.push_back(sage_dna);
        sage_vs_spring.push_back(sage_dna / spr_dna);
        table.addRow({art.work.name,
                      TextTable::bytesHuman(
                          static_cast<double>(art.work.fastqBytes)),
                      TextTable::num(pigz_dna), TextTable::num(pigz_q),
                      TextTable::num(spr_dna), TextTable::num(spr_q),
                      TextTable::num(sage_dna), TextTable::num(sage_q),
                      TextTable::num(paper_pigz_dna[i], 1) + "/" +
                          TextTable::num(paper_spring_dna[i], 1)});
    }
    table.addRow({"GMean", "",
                  TextTable::num(bench::geomean(r_pigz)), "",
                  TextTable::num(bench::geomean(r_spring)), "",
                  TextTable::num(bench::geomean(r_sage)), "", ""});
    table.print();

    std::printf("\nSAGe DNA ratio vs pigz: %.2fx larger "
                "(paper: 2.9x)\n",
                bench::geomean(r_sage) / bench::geomean(r_pigz));
    std::printf("SAGe DNA ratio vs (N)Spr: %.1f%% "
                "(paper: -4.6%% on average)\n",
                (bench::geomean(sage_vs_spring) - 1.0) * 100.0);
    return 0;
}
