/**
 * @file
 * Reproduces paper Fig. 16: end-to-end energy reduction (prep + GEM
 * analysis), normalized to (N)SprAC (higher is better).
 *
 * Expected shape: SAGe reduces energy by ~34x/16.9x/13x vs
 * pigz/(N)Spr/(N)SprAC on average; SAGeSW sits between (N)Spr and
 * SAGe.
 */

#include <cstdio>

#include "common/bench_common.hh"
#include "accel/mappers.hh"
#include "util/table.hh"

using namespace sage;

int
main()
{
    bench::printHeader(
        "Fig. 16: end-to-end energy reduction vs (N)SprAC",
        "SAGe avg: 34.0x vs pigz, 16.9x vs (N)Spr, 13.0x vs (N)SprAC");
    bench::printScaleNote();

    const auto all = bench::measureAllPresets();
    SystemConfig system;
    system.mapper = gemAccelerator();

    TextTable table;
    table.setHeader({"RS", "pigz", "(N)Spr", "SAGeSW", "SAGe"});
    std::vector<double> g_pigz, g_spr, g_sagesw, g_sage;
    for (const auto &art : all) {
        const double e_ref =
            evaluateEndToEnd(art.work, PrepConfig::NSprAC, system)
                .energy.total();
        auto reduction = [&](PrepConfig config) {
            return e_ref
                / evaluateEndToEnd(art.work, config, system)
                      .energy.total();
        };
        const double pigz = reduction(PrepConfig::Pigz);
        const double spr = reduction(PrepConfig::NSpr);
        const double sagesw = reduction(PrepConfig::SageSW);
        const double sage = reduction(PrepConfig::SageHW);
        g_pigz.push_back(pigz);
        g_spr.push_back(spr);
        g_sagesw.push_back(sagesw);
        g_sage.push_back(sage);
        table.addRow({art.work.name, TextTable::timesFactor(pigz),
                      TextTable::timesFactor(spr),
                      TextTable::timesFactor(sagesw),
                      TextTable::timesFactor(sage)});
    }
    table.addRow({"GMean",
                  TextTable::timesFactor(bench::geomean(g_pigz)),
                  TextTable::timesFactor(bench::geomean(g_spr)),
                  TextTable::timesFactor(bench::geomean(g_sagesw)),
                  TextTable::timesFactor(bench::geomean(g_sage))});
    table.print();

    std::printf("\nSAGe energy reduction vs pigz: %.1fx (paper: 34.0x)\n",
                bench::geomean(g_sage) / bench::geomean(g_pigz));
    std::printf("SAGe energy reduction vs (N)Spr: %.1fx "
                "(paper: 16.9x)\n",
                bench::geomean(g_sage) / bench::geomean(g_spr));
    std::printf("SAGe energy reduction vs (N)SprAC: %.1fx "
                "(paper: 13.0x)\n",
                bench::geomean(g_sage));
    return 0;
}
