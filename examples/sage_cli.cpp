/**
 * @file
 * sage_cli: a command-line front end over the library — the shape of
 * tool a downstream genomics user would actually invoke.
 *
 *   sage_cli compress   <in.fastq> <reference.txt> <out.sage> [--drop-quality] [--keep-order]
 *   sage_cli decompress <in.sage> <out.fastq> [--threads N]
 *   sage_cli inspect    <in.sage>
 *   sage_cli demo       <workdir>      (generates inputs, runs all three)
 *
 * The reference file is plain text of A/C/G/T (one consensus sequence).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/sage.hh"
#include "genomics/fastq.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

using namespace sage;

std::string
readTextFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    std::string text = oss.str();
    // Strip whitespace/newlines from reference files.
    std::string clean;
    clean.reserve(text.size());
    for (char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c)))
            clean.push_back(c);
    }
    return clean;
}

std::vector<uint8_t>
readBinaryFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeBinaryFile(const std::string &path, const std::vector<uint8_t> &data)
{
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char *>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

int
cmdCompress(int argc, char **argv)
{
    if (argc < 5) {
        std::fprintf(stderr, "usage: sage_cli compress <in.fastq> "
                             "<reference.txt> <out.sage> "
                             "[--drop-quality] [--keep-order]\n");
        return 1;
    }
    SageConfig config;
    for (int i = 5; i < argc; i++) {
        if (std::strcmp(argv[i], "--drop-quality") == 0)
            config.keepQuality = false;
        else if (std::strcmp(argv[i], "--keep-order") == 0)
            config.preserveOrder = true;
    }
    const ReadSet rs = readFastqFile(argv[2]);
    const std::string reference = readTextFile(argv[3]);
    const SageArchive archive = sageCompress(rs, reference, config);
    writeBinaryFile(argv[4], archive.bytes);
    std::printf("%s: %llu B -> %zu B (%.2fx); DNA %.2fx, quality %s\n",
                argv[4],
                static_cast<unsigned long long>(rs.fastqBytes()),
                archive.bytes.size(),
                static_cast<double>(rs.fastqBytes())
                    / archive.bytes.size(),
                static_cast<double>(rs.dnaBytes()) / archive.dnaBytes,
                archive.qualityBytes == 0
                    ? "dropped"
                    : TextTable::num(
                          static_cast<double>(rs.qualityBytes())
                          / archive.qualityBytes).c_str());
    return 0;
}

int
cmdDecompress(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: sage_cli decompress <in.sage> <out.fastq> "
                     "[--threads N]\n");
        return 1;
    }
    unsigned threads = 0; // 0 = hardware concurrency.
    for (int i = 4; i < argc; i++) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            const int n = std::atoi(argv[++i]);
            if (n < 0 || n > 1024) {
                std::fprintf(stderr, "--threads must be in [0, 1024]\n");
                return 1;
            }
            threads = static_cast<unsigned>(n);
        }
    }
    const auto archive = readBinaryFile(argv[2]);
    ThreadPool pool(threads);
    SageDecoder decoder(archive);
    const ReadSet rs = decoder.decodeAll(&pool);
    writeFastqFile(rs, argv[3]);
    std::printf("%s: %zu reads restored (%zu chunks, %zu threads)\n",
                argv[3], rs.reads.size(), decoder.chunkCount(),
                pool.threadCount());
    return 0;
}

int
cmdInspect(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: sage_cli inspect <in.sage>\n");
        return 1;
    }
    const auto archive = readBinaryFile(argv[2]);
    SageDecoder decoder(archive, /*dna_only=*/true);
    const ArchiveInfo &info = decoder.info();
    std::printf("SAGe archive %s\n", argv[2]);
    std::printf("  reads:            %llu\n",
                static_cast<unsigned long long>(info.params.numReads));
    std::printf("  consensus length: %llu\n",
                static_cast<unsigned long long>(
                    info.params.consensusLength));
    std::printf("  quality stream:   %s\n",
                info.params.hasQuality ? "yes" : "no");
    std::printf("  order preserved:  %s\n",
                info.params.preservedOrder ? "yes" : "no");
    std::printf("  modal read len:   %llu%s\n",
                static_cast<unsigned long long>(
                    info.params.modalReadLength),
                info.params.constantReadLength ? " (constant)" : "");
    std::printf("  optimizations:    reorder=%d tuned=%d segments=%u "
                "infer-types=%d corner-trick=%d\n",
                info.params.reorderReads, info.params.tuneArrays,
                info.params.maxSegments, info.params.inferTypes,
                info.params.cornerTrick);
    std::printf("  matching-pos widths (bits):");
    for (uint8_t width : info.params.matchPos.widthByRank)
        std::printf(" %u", width);
    std::printf("\n  mismatch-pos widths (bits):");
    for (uint8_t width : info.params.mismatchPos.widthByRank)
        std::printf(" %u", width);
    std::printf("\n  streams:\n");
    for (const auto &[name, size] : info.streamSizes) {
        std::printf("    %-10s %10llu B\n", name.c_str(),
                    static_cast<unsigned long long>(size));
    }
    return 0;
}

int
cmdDemo(int argc, char **argv)
{
    const std::string dir = argc > 2 ? argv[2] : "/tmp";
    const std::string fastq = dir + "/cli_demo.fastq";
    const std::string ref = dir + "/cli_demo.ref.txt";
    const std::string archive = dir + "/cli_demo.sage";
    const std::string restored = dir + "/cli_demo.out.fastq";

    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    writeFastqFile(ds.readSet, fastq);
    {
        std::ofstream out(ref);
        out << ds.reference;
    }
    std::printf("generated %s and %s\n", fastq.c_str(), ref.c_str());

    char prog[] = "sage_cli";
    char c0[] = "compress";
    std::vector<char *> cargs = {prog, c0,
                                 const_cast<char *>(fastq.c_str()),
                                 const_cast<char *>(ref.c_str()),
                                 const_cast<char *>(archive.c_str())};
    cmdCompress(static_cast<int>(cargs.size()), cargs.data());

    char c1[] = "inspect";
    std::vector<char *> iargs = {prog, c1,
                                 const_cast<char *>(archive.c_str())};
    cmdInspect(static_cast<int>(iargs.size()), iargs.data());

    char c2[] = "decompress";
    std::vector<char *> dargs = {prog, c2,
                                 const_cast<char *>(archive.c_str()),
                                 const_cast<char *>(restored.c_str())};
    return cmdDecompress(static_cast<int>(dargs.size()), dargs.data());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: sage_cli <compress|decompress|inspect|demo> "
                     "...\n");
        return 1;
    }
    if (std::strcmp(argv[1], "compress") == 0)
        return cmdCompress(argc, argv);
    if (std::strcmp(argv[1], "decompress") == 0)
        return cmdDecompress(argc, argv);
    if (std::strcmp(argv[1], "inspect") == 0)
        return cmdInspect(argc, argv);
    if (std::strcmp(argv[1], "demo") == 0)
        return cmdDemo(argc, argv);
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return 1;
}
