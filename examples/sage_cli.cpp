/**
 * @file
 * sage_cli: a command-line front end over the library — the shape of
 * tool a downstream genomics user would actually invoke.
 *
 *   sage_cli compress     <in.fastq> <reference.txt> <out.sage> [--drop-quality] [--keep-order]
 *   sage_cli decompress   <in.sage> <out.fastq> [--threads N]
 *   sage_cli range        <in.sage> <out.fastq> <first-chunk> <count> [--threads N]
 *   sage_cli inspect      <in.sage>
 *   sage_cli verify       <in.sage>
 *   sage_cli serve-stress <in.sage|@synth> [--clients N] [--cache-mb M] [--threads N] [--passes P]
 *                         [--deadline-ms D] [--cancel-every K]
 *                         [--fault-rate R] [--fault-seed S]
 *                         [--connect host:port]   (drive a live server instead)
 *   sage_cli serve        <dir> [--port P] [--budget-mb M] [--max-open N]
 *                         [--high-water H] [--threads N]
 *                         [--fault-rate R] [--fault-seed S]
 *                         [--drain-seconds D]
 *   sage_cli net-get      <host:port> <archive-name> <out.fastq>
 *   sage_cli chaos-proxy  <upstream-host:port> [--seed S] [--reset-rate R]
 *                         [--corrupt-rate R] [--stall-rate R]
 *                         [--stall-ms N] [--split-rate R]
 *   sage_cli demo         <workdir>    (generates inputs, runs all of the above)
 *
 * `serve` and `chaos-proxy` print a machine-parseable "PORT <n>" line
 * on stdout once listening (the ephemeral port when --port is 0), and
 * both drain gracefully on SIGTERM/SIGINT. net-get exits 75
 * (EX_TEMPFAIL) when the server is draining, so wrappers can retry.
 *
 * The reference file is plain text of A/C/G/T (one consensus sequence).
 * Built on the streaming session API (io/session.hh): compression
 * streams the archive to disk through a FileSink; decompression,
 * range extraction and inspection open the archive through a
 * FileSource, so `inspect` and `range` never load the whole file.
 */

#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/sage.hh"
#include "genomics/fastq.hh"
#include "io/fault_injection.hh"
#include "simgen/synthesize.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/timing.hh"

namespace {

using namespace sage;

/** Load a consensus/reference file, dropping all whitespace. I/O
 *  failures are fatal with the offending path (FileSource). */
std::string
readReferenceFile(const std::string &path)
{
    const FileSource source(path);
    const std::vector<uint8_t> text = source.readAll();
    std::string clean;
    clean.reserve(text.size());
    for (uint8_t c : text) {
        if (!std::isspace(static_cast<int>(c)))
            clean.push_back(static_cast<char>(c));
    }
    return clean;
}

/** Parse a trailing  --threads N  option (0 = hardware concurrency). */
bool
parseThreads(int argc, char **argv, int from, unsigned &threads)
{
    threads = 0;
    for (int i = from; i < argc; i++) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            const int n = std::atoi(argv[++i]);
            if (n < 0 || n > 1024) {
                std::fprintf(stderr, "--threads must be in [0, 1024]\n");
                return false;
            }
            threads = static_cast<unsigned>(n);
        }
    }
    return true;
}

int
cmdCompress(int argc, char **argv)
{
    if (argc < 5) {
        std::fprintf(stderr, "usage: sage_cli compress <in.fastq> "
                             "<reference.txt> <out.sage> "
                             "[--drop-quality] [--keep-order]\n");
        return 1;
    }
    SageConfig config;
    for (int i = 5; i < argc; i++) {
        if (std::strcmp(argv[i], "--drop-quality") == 0)
            config.keepQuality = false;
        else if (std::strcmp(argv[i], "--keep-order") == 0)
            config.preserveOrder = true;
    }
    ReadSet rs = readFastqFile(argv[2]);
    const std::string reference = readReferenceFile(argv[3]);
    const uint64_t fastq_bytes = rs.fastqBytes();
    const uint64_t dna_bytes = rs.dnaBytes();
    const uint64_t quality_bytes = rs.qualityBytes();

    SageWriter writer(argv[4], config);
    writer.add(std::move(rs)); // No second resident copy of the reads.
    const SageWriteStats stats = writer.finish(reference);
    std::printf("%s: %llu B -> %llu B (%.2fx); DNA %.2fx, quality %s\n",
                argv[4],
                static_cast<unsigned long long>(fastq_bytes),
                static_cast<unsigned long long>(stats.archiveBytes),
                static_cast<double>(fastq_bytes)
                    / static_cast<double>(stats.archiveBytes),
                static_cast<double>(dna_bytes) / stats.dnaBytes,
                stats.qualityBytes == 0
                    ? "dropped"
                    : TextTable::num(
                          static_cast<double>(quality_bytes)
                          / stats.qualityBytes).c_str());
    return 0;
}

int
cmdDecompress(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: sage_cli decompress <in.sage> <out.fastq> "
                     "[--threads N]\n");
        return 1;
    }
    unsigned threads = 0;
    if (!parseThreads(argc, argv, 4, threads))
        return 1;
    ThreadPool pool(threads);
    SageReader reader(argv[2]);
    const ReadSet rs = reader.decodeAll(&pool);
    writeFastqFile(rs, argv[3]);
    std::printf("%s: %zu reads restored (%zu chunks, %zu threads)\n",
                argv[3], rs.reads.size(), reader.chunkCount(),
                pool.threadCount());
    return 0;
}

int
cmdRange(int argc, char **argv)
{
    if (argc < 6) {
        std::fprintf(stderr,
                     "usage: sage_cli range <in.sage> <out.fastq> "
                     "<first-chunk> <count> [--threads N]\n");
        return 1;
    }
    unsigned threads = 0;
    if (!parseThreads(argc, argv, 6, threads))
        return 1;
    const size_t first = static_cast<size_t>(std::atoll(argv[4]));
    const size_t count = static_cast<size_t>(std::atoll(argv[5]));

    SageReader reader(argv[2]);
    if (first > reader.chunkCount() ||
        count > reader.chunkCount() - first) {
        std::fprintf(stderr, "chunk range [%zu, %zu) exceeds the "
                             "archive's %zu chunks\n",
                     first, first + count, reader.chunkCount());
        return 1;
    }
    ThreadPool pool(threads);
    const ReadSet rs = reader.decodeRange(first, count, &pool);
    writeFastqFile(rs, argv[3]);
    std::printf("%s: %zu reads from chunks [%zu, %zu) of %zu "
                "(stored order)\n",
                argv[3], rs.reads.size(), first, first + count,
                reader.chunkCount());
    return 0;
}

int
cmdInspect(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: sage_cli inspect <in.sage>\n");
        return 1;
    }
    SageReaderOptions options;
    options.dnaOnly = true; // Header-only open: no payload decode.
    SageReader reader(argv[2], options);
    const ArchiveInfo &info = reader.info();
    std::printf("SAGe archive %s\n", argv[2]);
    std::printf("  reads:            %llu\n",
                static_cast<unsigned long long>(info.params.numReads));
    std::printf("  chunks:           %zu\n", reader.chunkCount());
    std::printf("  consensus length: %llu\n",
                static_cast<unsigned long long>(
                    info.params.consensusLength));
    std::printf("  quality stream:   %s\n",
                info.params.hasQuality ? "yes" : "no");
    std::printf("  order preserved:  %s\n",
                info.params.preservedOrder ? "yes" : "no");
    std::printf("  modal read len:   %llu%s\n",
                static_cast<unsigned long long>(
                    info.params.modalReadLength),
                info.params.constantReadLength ? " (constant)" : "");
    std::printf("  optimizations:    reorder=%d tuned=%d segments=%u "
                "infer-types=%d corner-trick=%d\n",
                info.params.reorderReads, info.params.tuneArrays,
                info.params.maxSegments, info.params.inferTypes,
                info.params.cornerTrick);
    std::printf("  matching-pos widths (bits):");
    for (uint8_t width : info.params.matchPos.widthByRank)
        std::printf(" %u", width);
    std::printf("\n  mismatch-pos widths (bits):");
    for (uint8_t width : info.params.mismatchPos.widthByRank)
        std::printf(" %u", width);
    std::printf("\n  streams:\n");
    for (const auto &[name, size] : info.streamSizes) {
        std::printf("    %-10s %10llu B\n", name.c_str(),
                    static_cast<unsigned long long>(size));
    }
    return 0;
}

/**
 * End-to-end integrity check: recompute the archive CRC and compare
 * it against the stored trailer. A mismatch (bit rot, truncation,
 * torn write) is an ordinary non-zero exit with the Status printed —
 * never an abort — so scripts can gate on `sage_cli verify`.
 */
int
cmdVerify(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr, "usage: sage_cli verify <in.sage>\n");
        return 1;
    }
    // The recoverable open: header corruption comes back as a Status
    // (not a fatal abort), and verify_checksum covers the payload.
    const FileSource source(argv[2]);
    const StatusOr<std::unique_ptr<SageDecoder>> opened =
        SageDecoder::tryOpen(source, /*dna_only=*/true,
                             /*verify_checksum=*/true);
    if (!opened.ok()) {
        const Status &status = opened.status();
        std::fprintf(stderr, "%s: FAILED (%s): %s\n", argv[2],
                     statusCodeName(status.code()),
                     status.message().c_str());
        return 1;
    }
    const SageDecoder &decoder = *opened.value();
    std::printf("%s: OK (%zu chunks, %llu reads, checksum verified)\n",
                argv[2], decoder.chunkCount(),
                static_cast<unsigned long long>(
                    decoder.info().params.numReads));
    return 0;
}

/** Split "host:port"; false (with a message) on a malformed spec. */
bool
parseHostPort(const std::string &spec, std::string &host,
              uint16_t &port)
{
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == spec.size()) {
        std::fprintf(stderr, "bad host:port spec: %s\n", spec.c_str());
        return false;
    }
    const long value = std::atol(spec.c_str() + colon + 1);
    if (value <= 0 || value > 65535) {
        std::fprintf(stderr, "bad port in: %s\n", spec.c_str());
        return false;
    }
    host = spec.substr(0, colon);
    port = static_cast<uint16_t>(value);
    return true;
}

/**
 * serve-stress --connect: the same fleet walk, but through the
 * socket path against a live `sage_cli serve` — every walker on a
 * ResilientClient (net/resilient_client.hh), so connection resets,
 * stalls and corrupted frames from a chaos proxy in the path are
 * absorbed by reconnect + retry instead of failing the walk. A read
 * the resilience layer still cannot deliver is a *lost read* and
 * fails the run (non-zero exit): under chaos the contract is "slower,
 * never wrong, never silently short". Per-client resilience costs
 * (reconnects, retries, backoff time) are reported at the end.
 */
int
serveStressConnect(const std::string &connect,
                   const std::string &archive_name, unsigned clients,
                   unsigned passes, unsigned deadline_ms,
                   unsigned cancel_every, double fault_rate)
{
    std::string host;
    uint16_t port = 0;
    if (!parseHostPort(connect, host, port))
        return 1;
    if (archive_name == "@synth") {
        std::fprintf(stderr,
                     "--connect serves named archives; @synth is "
                     "in-process only\n");
        return 1;
    }
    if (cancel_every || fault_rate > 0.0)
        std::fprintf(stderr,
                     "note: --cancel-every/--fault-rate are "
                     "in-process flags; the server side owns faults "
                     "(serve --fault-rate)\n");

    std::printf("driving %s:%u, archive '%s': %u clients x %u "
                "passes%s\n",
                host.c_str(), port, archive_name.c_str(), clients,
                std::max(1u, passes),
                deadline_ms ? ", per-request deadline" : "");

    std::atomic<uint64_t> total_bytes{0}, total_reads{0};
    std::atomic<uint64_t> overloaded{0}, expired{0}, errors{0};
    std::atomic<uint64_t> lost_reads{0}, failures{0};
    std::vector<net::ResilientClientStats> costs(clients);
    Stopwatch clock;
    std::vector<std::thread> fleet;
    for (unsigned c = 0; c < clients; c++) {
        fleet.emplace_back([&, c] {
            net::ResilientClientOptions options;
            options.retry.seed = 0x5a6e0000u + c;
            options.retry.maxAttempts = 64;
            // A corrupted length prefix can leave a recv waiting for
            // bytes that never come; keep that bounded so the retry
            // loop (not the socket) owns recovery time.
            options.client.ioTimeoutSeconds = 5.0;
            net::ResilientClient client(host, port, options);
            auto opened = client.open(archive_name);
            if (!opened.ok()) {
                std::fprintf(stderr, "client %u open: %s\n", c,
                             opened.status().toString().c_str());
                failures.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            const uint64_t expect = opened->readCount;
            for (unsigned pass = 0; pass < std::max(1u, passes);
                 pass++) {
                uint64_t delivered = 0, at = 0;
                bool abandoned = false;
                while (at < expect) {
                    const uint64_t batch =
                        std::min<uint64_t>(1024, expect - at);
                    auto reply = client.readRange(
                        opened->archive, at, batch,
                        RequestPriority::Normal, deadline_ms);
                    if (!reply.ok()) {
                        std::fprintf(
                            stderr, "client %u read: %s\n", c,
                            reply.status().toString().c_str());
                        failures.fetch_add(1,
                                           std::memory_order_relaxed);
                        return;
                    }
                    if (reply->status == net::WireStatus::Expired ||
                        reply->status == net::WireStatus::Cancelled) {
                        expired.fetch_add(1,
                                          std::memory_order_relaxed);
                        abandoned = true;
                        break;
                    }
                    if (reply->status ==
                        net::WireStatus::Overloaded) {
                        // Retry budget exhausted while shed; the
                        // walk is short but the outcome was honest.
                        overloaded.fetch_add(
                            1, std::memory_order_relaxed);
                        abandoned = true;
                        break;
                    }
                    if (!reply->ok()) {
                        errors.fetch_add(1, std::memory_order_relaxed);
                        abandoned = true;
                        break;
                    }
                    for (const Read &read : reply->reads)
                        total_bytes.fetch_add(
                            read.bases.size() + read.quals.size(),
                            std::memory_order_relaxed);
                    total_reads.fetch_add(reply->reads.size(),
                                          std::memory_order_relaxed);
                    delivered += reply->reads.size();
                    at += batch;
                }
                // Deadline walks may legitimately stop short; a
                // plain walk must deliver everything it asked for.
                if (!deadline_ms && !abandoned && delivered != expect)
                    lost_reads.fetch_add(expect - delivered,
                                         std::memory_order_relaxed);
            }
            costs[c] = client.stats();
        });
    }
    for (auto &client : fleet)
        client.join();
    const double seconds = clock.seconds();
    const uint64_t bytes = total_bytes.load();
    std::printf("served %.1f MB (%llu reads) over the socket in "
                "%.3fs (%.1f MB/s aggregate)\n",
                static_cast<double>(bytes) / 1e6,
                static_cast<unsigned long long>(total_reads.load()),
                seconds,
                seconds > 0.0
                    ? static_cast<double>(bytes) / 1e6 / seconds
                    : 0.0);
    std::printf("  overloaded %llu, expired %llu, errors %llu\n",
                static_cast<unsigned long long>(overloaded.load()),
                static_cast<unsigned long long>(expired.load()),
                static_cast<unsigned long long>(errors.load()));
    net::ResilientClientStats sum;
    for (const net::ResilientClientStats &cost : costs) {
        sum.connects += cost.connects;
        sum.reconnects += cost.reconnects;
        sum.retries += cost.retries;
        sum.transportRetries += cost.transportRetries;
        sum.overloadedRetries += cost.overloadedRetries;
        sum.backoffSeconds += cost.backoffSeconds;
    }
    std::printf("  resilience:  %llu reconnects, %llu retries "
                "(%llu transport, %llu in-band), %.3fs backoff "
                "across %u clients\n",
                static_cast<unsigned long long>(sum.reconnects),
                static_cast<unsigned long long>(sum.retries),
                static_cast<unsigned long long>(sum.transportRetries),
                static_cast<unsigned long long>(
                    sum.overloadedRetries),
                sum.backoffSeconds, clients);
    if (failures.load() != 0 || lost_reads.load() != 0) {
        std::fprintf(stderr,
                     "FAILED: %llu client failures, %llu lost "
                     "reads\n",
                     static_cast<unsigned long long>(failures.load()),
                     static_cast<unsigned long long>(
                         lost_reads.load()));
        return 1;
    }
    return 0;
}

/**
 * Drive a SageArchiveService with a fleet of concurrent session
 * clients (service/service.hh) and report the aggregate serving
 * throughput plus the service's own counters — a smoke/perf harness
 * for shared-archive deployments. `--deadline-ms` puts a deadline on
 * every client session; `--cancel-every K` gives every Kth client a
 * cancel token that a churn thread fires mid-walk (the nightly
 * cancellation-churn stress in .github/workflows/bench.yml). The
 * special input `@synth` synthesizes and serves a throwaway archive,
 * so CI needs no checked-in test data.
 */
int
cmdServeStress(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: sage_cli serve-stress <in.sage|@synth> "
                     "[--clients N] [--cache-mb M] [--threads N] "
                     "[--passes P] [--deadline-ms D] "
                     "[--cancel-every K] "
                     "[--fault-rate R] [--fault-seed S] "
                     "[--connect host:port]\n");
        return 1;
    }
    unsigned clients = 16, cache_mb = 256, threads = 0, passes = 1;
    unsigned deadline_ms = 0, cancel_every = 0, fault_seed = 1;
    double fault_rate = 0.0;
    std::string connect;
    bool bad_value = false;
    for (int i = 3; i < argc; i++) {
        const auto uintArg = [&](const char *flag, unsigned &out,
                                 int max) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                const int n = std::atoi(argv[++i]);
                if (n < 0 || n > max) {
                    std::fprintf(stderr, "%s must be in [0, %d]\n",
                                 flag, max);
                    bad_value = true;
                }
                out = static_cast<unsigned>(n);
                return true;
            }
            return false;
        };
        const auto rateArg = [&](const char *flag, double &out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                out = std::atof(argv[++i]);
                if (out < 0.0 || out > 1.0) {
                    std::fprintf(stderr, "%s must be in [0, 1]\n",
                                 flag);
                    bad_value = true;
                }
                return true;
            }
            return false;
        };
        const auto strArg = [&](const char *flag, std::string &out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                out = argv[++i];
                return true;
            }
            return false;
        };
        if (!uintArg("--clients", clients, 4096) &&
            !uintArg("--cache-mb", cache_mb, 1 << 20) &&
            !uintArg("--threads", threads, 1024) &&
            !uintArg("--passes", passes, 1 << 20) &&
            !uintArg("--deadline-ms", deadline_ms, 1 << 20) &&
            !uintArg("--cancel-every", cancel_every, 1 << 20) &&
            !uintArg("--fault-seed", fault_seed, 1 << 30) &&
            !rateArg("--fault-rate", fault_rate) &&
            !strArg("--connect", connect)) {
            std::fprintf(stderr, "unknown option: %s\n", argv[i]);
            return 1;
        }
    }
    if (bad_value)
        return 1;
    if (clients == 0) {
        std::fprintf(stderr, "--clients must be at least 1\n");
        return 1;
    }
    if (!connect.empty())
        return serveStressConnect(connect, argv[2], clients, passes,
                                  deadline_ms, cancel_every,
                                  fault_rate);

    std::string archive_path = argv[2];
    bool synthesized = false;
    if (archive_path == "@synth") {
        DatasetSpec spec = makeRs2Spec();
        spec.name = "serve-stress";
        spec.genome.referenceLength = 1 << 19;
        spec.depth = 12.0;
        std::fprintf(stderr, "synthesizing throwaway archive ...\n");
        const SimulatedDataset ds = synthesizeDataset(spec);
        SageConfig config;
        config.chunkReads = 4096;  // ~10 chunks: real cache traffic.
        const SageArchive archive =
            sageCompress(ds.readSet, ds.reference, config);
        archive_path = "serve_stress_synth.sage.tmp";
        FileSink sink(archive_path);
        sink.writeBytes(archive.bytes);
        synthesized = true;
    }

    ServiceOptions options;
    options.cacheBudgetBytes = static_cast<uint64_t>(cache_mb) << 20;
    options.ownedPoolThreads = threads;

    // Chaos mode: interpose a deterministic fault injector between the
    // service and the file so every decode's reads can fail or flip a
    // bit. The service must degrade (per-request Error), never abort.
    std::unique_ptr<FileSource> file;
    std::unique_ptr<FaultInjectionSource> faulty;
    std::unique_ptr<SageArchiveService> owned;
    if (fault_rate > 0.0) {
        file = std::make_unique<FileSource>(archive_path);
        FaultConfig fault_config;
        fault_config.seed = fault_seed;
        fault_config.ioErrorRate = fault_rate;
        fault_config.bitFlipRate = fault_rate;
        faulty = std::make_unique<FaultInjectionSource>(*file,
                                                        fault_config);
        // Open cleanly (the container parse uses try-reads too), then
        // arm the schedule for the workload.
        faulty->setArmed(false);
        owned = std::make_unique<SageArchiveService>(*faulty, options);
        faulty->setArmed(true);
    } else {
        owned = std::make_unique<SageArchiveService>(archive_path,
                                                     options);
    }
    SageArchiveService &service = *owned;
    std::printf("serving %s: %llu reads in %zu chunks, cache budget "
                "%u MiB, %zu workers\n",
                archive_path.c_str(),
                static_cast<unsigned long long>(service.readCount()),
                service.chunkCount(), cache_mb,
                service.pool().threadCount());
    if (deadline_ms)
        std::printf("  per-session deadline: %u ms\n", deadline_ms);
    if (cancel_every)
        std::printf("  cancellation churn: every %uth client\n",
                    cancel_every);
    if (fault_rate > 0.0)
        std::printf("  fault injection: io-error %.3f%% + bit-flip "
                    "%.3f%% per read, seed %u\n",
                    fault_rate * 100.0, fault_rate * 100.0,
                    fault_seed);

    double total_seconds = 0.0;
    uint64_t total_bytes = 0;
    std::atomic<uint64_t> error_retries{0};  // Client-visible Errors.
    std::atomic<uint64_t> incomplete_walks{0};
    for (unsigned pass = 0; pass < std::max(1u, passes); pass++) {
        const uint64_t bytes_before = service.stats().bytesServed;
        Stopwatch clock;
        // Every Kth client carries a cancel token; the churn thread
        // fires them with a small stagger so cancellation races every
        // phase of a walk (queued, decoding, between chunks).
        std::vector<std::shared_ptr<CancelSource>> victims;
        std::vector<std::thread> fleet;
        for (unsigned c = 0; c < clients; c++) {
            RequestOptions session_options;
            if (deadline_ms) {
                session_options.deadline = RequestOptions::deadlineIn(
                    static_cast<double>(deadline_ms) / 1e3);
            }
            if (cancel_every && (c + 1) % cancel_every == 0) {
                victims.push_back(std::make_shared<CancelSource>());
                session_options.cancel = victims.back()->token();
            }
            fleet.emplace_back([&service, session_options,
                                &error_retries, &incomplete_walks] {
                ServiceSession session =
                    service.openSession(session_options);
                const uint64_t expect = service.readCount();
                uint64_t delivered = 0;
                uint64_t retries_left = 100000;
                while (session.hasNext()) {
                    const size_t got = session.read(1024).size();
                    delivered += got;
                    if (got != 0 ||
                        session.lastStatus() == RequestStatus::Ok)
                        continue;
                    // Error is not sticky: the cursor is parked before
                    // the failed chunk and the next read retries it.
                    if (session.lastStatus() == RequestStatus::Error &&
                        retries_left-- > 0) {
                        error_retries.fetch_add(
                            1, std::memory_order_relaxed);
                        continue;
                    }
                    break;  // Expired or cancelled: walk is over.
                }
                // A fault-free or fully retried walk must deliver
                // every read exactly once, in order.
                if (!session_options.cancel.connected() &&
                    !session_options.hasDeadline() &&
                    delivered != expect)
                    incomplete_walks.fetch_add(
                        1, std::memory_order_relaxed);
            });
        }
        std::thread churn;
        if (!victims.empty()) {
            churn = std::thread([&victims] {
                for (auto &victim : victims) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                    victim->cancel();
                }
            });
        }
        for (auto &client : fleet)
            client.join();
        if (churn.joinable())
            churn.join();
        const double seconds = clock.seconds();
        const uint64_t bytes =
            service.stats().bytesServed - bytes_before;
        total_seconds += seconds;
        total_bytes += bytes;
        std::printf("pass %u: %u clients x full walk in %.3fs "
                    "(%.1f MB/s aggregate)\n",
                    pass + 1, clients, seconds,
                    seconds > 0.0
                        ? static_cast<double>(bytes) / 1e6 / seconds
                        : 0.0);
    }

    const ServiceStats stats = service.stats();
    std::printf("served %.1f MB in %.3fs (%.1f MB/s aggregate)\n",
                static_cast<double>(total_bytes) / 1e6, total_seconds,
                total_seconds > 0.0 ? static_cast<double>(total_bytes)
                        / 1e6 / total_seconds
                                    : 0.0);
    std::printf("  requests:        %llu (interactive %llu / normal "
                "%llu / background %llu)\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(
                    stats.requestsByPriority[0]),
                static_cast<unsigned long long>(
                    stats.requestsByPriority[1]),
                static_cast<unsigned long long>(
                    stats.requestsByPriority[2]));
    std::printf("  cache:           %.1f%% hit rate, %llu decodes, "
                "%llu evictions, %.1f MB resident\n",
                100.0 * stats.cache.hitRate(),
                static_cast<unsigned long long>(stats.cache.misses),
                static_cast<unsigned long long>(stats.cache.evictions),
                static_cast<double>(stats.cache.residentBytes) / 1e6);
    std::printf("  request latency: p50 %.2fms, p99 %.2fms, max "
                "%.2fms (%llu samples)\n",
                stats.p50LatencySeconds * 1e3,
                stats.p99LatencySeconds * 1e3,
                stats.maxLatencySeconds * 1e3,
                static_cast<unsigned long long>(stats.latencySamples));
    for (size_t p = 0; p < kRequestPriorityCount; p++) {
        const LatencySummary &lat = stats.latencyByPriority[p];
        if (lat.samples == 0)
            continue;
        std::printf("    %-12s   p50 %.2fms, p99 %.2fms "
                    "(%llu samples)\n",
                    requestPriorityName(
                        static_cast<RequestPriority>(p)),
                    lat.p50Seconds * 1e3, lat.p99Seconds * 1e3,
                    static_cast<unsigned long long>(lat.samples));
    }
    std::printf("  qos outcomes:    %llu expired, %llu cancelled, "
                "%llu abandoned waits\n",
                static_cast<unsigned long long>(stats.expired),
                static_cast<unsigned long long>(stats.cancelled),
                static_cast<unsigned long long>(
                    stats.cache.abandonedWaits));
    std::printf("  queue depth:     max %llu, readahead warms %llu\n",
                static_cast<unsigned long long>(stats.maxQueueDepth),
                static_cast<unsigned long long>(stats.readaheadWarms));
    std::printf("  degradation:     %llu errored requests, %llu io "
                "errors, %llu corrupt chunks, %llu decode retries\n",
                static_cast<unsigned long long>(stats.errored),
                static_cast<unsigned long long>(stats.ioErrors),
                static_cast<unsigned long long>(stats.corruptChunks),
                static_cast<unsigned long long>(stats.retries));
    if (faulty) {
        const FaultCounters injected = faulty->counters();
        std::printf("fault injection: %llu try-reads saw %llu io "
                    "errors + %llu bit flips injected\n",
                    static_cast<unsigned long long>(
                        injected.operations),
                    static_cast<unsigned long long>(injected.ioErrors),
                    static_cast<unsigned long long>(injected.bitFlips));
        std::printf("  observed: %llu client-visible errors (all "
                    "retried), %llu failed decodes "
                    "(%llu io / %llu corrupt), %llu absorbed by "
                    "retry\n",
                    static_cast<unsigned long long>(
                        error_retries.load()),
                    static_cast<unsigned long long>(
                        stats.ioErrors + stats.corruptChunks),
                    static_cast<unsigned long long>(stats.ioErrors),
                    static_cast<unsigned long long>(
                        stats.corruptChunks),
                    static_cast<unsigned long long>(stats.retries));
        const uint64_t incomplete = incomplete_walks.load();
        if (incomplete != 0) {
            std::fprintf(stderr,
                         "FAILED: %llu walks delivered the wrong "
                         "read count\n",
                         static_cast<unsigned long long>(incomplete));
            if (synthesized)
                std::remove(archive_path.c_str());
            return 1;
        }
        std::printf("  all %u clients x %u passes delivered every "
                    "read despite faults; zero aborts\n",
                    clients, std::max(1u, passes));
    }
    if (synthesized)
        std::remove(archive_path.c_str());
    return 0;
}

volatile std::sig_atomic_t g_serveStop = 0;

void
onServeSignal(int)
{
    g_serveStop = 1;
}

/**
 * Serve a directory of archives over TCP (net/server.hh): OPEN names
 * resolve to `<dir>/<name>`, a multi-archive LRU keeps at most
 * --max-open decoders live under a --budget-mb decoded-chunk budget,
 * and --high-water sheds reads as Overloaded once the summed queue
 * depth crosses it. --fault-rate/--fault-seed wrap every archive
 * open in a FaultInjectionSource (server-side chaos: remote clients
 * see Error replies, never a dead server). SIGINT/SIGTERM start a
 * graceful drain (Server::beginDrain): the listener closes, new
 * requests get ShuttingDown, in-flight replies flush, and the
 * process exits 0 within --drain-seconds. Once listening, a
 * machine-parseable "PORT <n>" line goes to stdout so wrappers can
 * use --port 0 (ephemeral) instead of racing for a fixed port.
 */
int
cmdServe(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: sage_cli serve <dir> [--port P] "
                     "[--budget-mb M] [--max-open N] "
                     "[--high-water H] [--threads N] "
                     "[--fault-rate R] [--fault-seed S] "
                     "[--drain-seconds D]\n");
        return 1;
    }
    unsigned port = 0, budget_mb = 256, max_open = 8, high_water = 0;
    unsigned threads = 0, fault_seed = 1, drain_seconds = 5;
    double fault_rate = 0.0;
    bool bad_value = false;
    for (int i = 3; i < argc; i++) {
        const auto uintArg = [&](const char *flag, unsigned &out,
                                 int max) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                const int n = std::atoi(argv[++i]);
                if (n < 0 || n > max) {
                    std::fprintf(stderr, "%s must be in [0, %d]\n",
                                 flag, max);
                    bad_value = true;
                }
                out = static_cast<unsigned>(n);
                return true;
            }
            return false;
        };
        const auto rateArg = [&](const char *flag, double &out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                out = std::atof(argv[++i]);
                if (out < 0.0 || out > 1.0) {
                    std::fprintf(stderr, "%s must be in [0, 1]\n",
                                 flag);
                    bad_value = true;
                }
                return true;
            }
            return false;
        };
        if (!uintArg("--port", port, 65535) &&
            !uintArg("--budget-mb", budget_mb, 1 << 20) &&
            !uintArg("--max-open", max_open, 4096) &&
            !uintArg("--high-water", high_water, 1 << 20) &&
            !uintArg("--threads", threads, 1024) &&
            !uintArg("--fault-seed", fault_seed, 1 << 30) &&
            !uintArg("--drain-seconds", drain_seconds, 3600) &&
            !rateArg("--fault-rate", fault_rate)) {
            std::fprintf(stderr, "unknown option: %s\n", argv[i]);
            return 1;
        }
    }
    if (bad_value)
        return 1;

    MultiArchiveOptions service_options;
    service_options.globalCacheBudgetBytes =
        static_cast<uint64_t>(budget_mb) << 20;
    service_options.maxOpenArchives = max_open;
    service_options.admissionHighWater = high_water;
    service_options.ownedPoolThreads = threads;
    service_options.faultRate = fault_rate;
    service_options.faultSeed = fault_seed;
    MultiArchiveService service(argv[2], service_options);

    net::ServerOptions server_options;
    server_options.port = static_cast<uint16_t>(port);
    server_options.drainDeadlineSeconds =
        static_cast<double>(drain_seconds);
    net::Server server(service, server_options);
    const Status started = server.start();
    if (!started.ok()) {
        std::fprintf(stderr, "serve: %s\n",
                     started.toString().c_str());
        return 1;
    }
    std::signal(SIGINT, onServeSignal);
    std::signal(SIGTERM, onServeSignal);
    std::printf("listening on %s:%u, serving %s (budget %u MiB / %u "
                "open archives%s%s)\n",
                server_options.bindAddress.c_str(), server.port(),
                argv[2], budget_mb, std::max(1u, max_open),
                high_water ? ", admission high-water set" : "",
                fault_rate > 0.0 ? ", fault injection armed" : "");
    std::printf("PORT %u\n", server.port());
    std::fflush(stdout);
    while (!g_serveStop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("draining (deadline %us) ...\n", drain_seconds);
    std::fflush(stdout);
    server.beginDrain();
    const bool drained_cleanly = server.drainWait();
    std::printf("drain %s\n",
                drained_cleanly ? "complete" : "deadline forced");

    const MultiArchiveStats stats = service.stats();
    const net::ServerNetStats socket_stats = server.netStats();
    std::printf("  connections: %llu accepted, %llu frames in, %llu "
                "replies out, %llu protocol errors\n",
                static_cast<unsigned long long>(
                    socket_stats.accepted),
                static_cast<unsigned long long>(
                    socket_stats.framesIn),
                static_cast<unsigned long long>(
                    socket_stats.repliesOut),
                static_cast<unsigned long long>(
                    socket_stats.protocolErrors));
    std::printf("  hygiene:     %llu timed out, %llu shed at cap, "
                "%llu CRC + %llu version rejects, %llu drain "
                "rejects\n",
                static_cast<unsigned long long>(
                    socket_stats.timedOutConnections),
                static_cast<unsigned long long>(
                    socket_stats.shedConnections),
                static_cast<unsigned long long>(
                    socket_stats.crcMismatches),
                static_cast<unsigned long long>(
                    socket_stats.versionMismatches),
                static_cast<unsigned long long>(
                    socket_stats.drainRejects));
    std::printf("  archives:    %u known, %llu opens + %llu reopens, "
                "%llu evictions\n",
                stats.knownArchives,
                static_cast<unsigned long long>(stats.opens),
                static_cast<unsigned long long>(stats.reopens),
                static_cast<unsigned long long>(stats.evictions));
    std::printf("  requests:    %llu admitted, %llu overloaded, "
                "%llu reads / %.1f MB served\n",
                static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.overloaded),
                static_cast<unsigned long long>(stats.readsServed),
                static_cast<double>(stats.bytesServed) / 1e6);
    return 0;
}

/** Fetch one archive over the socket into a FASTQ file. */
int
cmdNetGet(int argc, char **argv)
{
    if (argc < 5) {
        std::fprintf(stderr,
                     "usage: sage_cli net-get <host:port> "
                     "<archive-name> <out.fastq>\n");
        return 1;
    }
    std::string host;
    uint16_t port = 0;
    if (!parseHostPort(argv[2], host, port))
        return 1;

    auto connected = net::Client::connect(host, port);
    if (!connected.ok()) {
        std::fprintf(stderr, "net-get: %s\n",
                     connected.status().toString().c_str());
        return 1;
    }
    net::Client &client = *connected.value();
    auto opened = client.open(argv[3]);
    if (!opened.ok()) {
        std::fprintf(stderr, "net-get open: %s\n",
                     opened.status().toString().c_str());
        return 1;
    }

    ReadSet rs;
    rs.name = argv[3];
    rs.reads.reserve(opened->readCount);
    uint64_t at = 0;
    unsigned overload_retries = 1000;
    while (at < opened->readCount) {
        const uint64_t batch =
            std::min<uint64_t>(4096, opened->readCount - at);
        auto reply = client.readRange(opened->archive, at, batch);
        if (!reply.ok()) {
            std::fprintf(stderr, "net-get read: %s\n",
                         reply.status().toString().c_str());
            return 1;
        }
        if (reply->status == net::WireStatus::Overloaded) {
            if (overload_retries-- == 0) {
                std::fprintf(stderr,
                             "net-get: server stayed overloaded\n");
                return 1;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            continue;
        }
        if (reply->status == net::WireStatus::ShuttingDown) {
            // EX_TEMPFAIL: the server is draining; a wrapper should
            // retry against a live replica rather than treat this as
            // data loss.
            std::fprintf(stderr,
                         "net-get: server is draining; retry "
                         "elsewhere\n");
            return 75;
        }
        if (!reply->ok()) {
            std::fprintf(stderr, "net-get read [%llu, +%llu): %s: "
                         "%s\n",
                         static_cast<unsigned long long>(at),
                         static_cast<unsigned long long>(batch),
                         net::wireStatusName(reply->status),
                         reply->message.c_str());
            return 1;
        }
        for (Read &read : reply->reads)
            rs.reads.push_back(std::move(read));
        at += batch;
    }
    writeFastqFile(rs, argv[4]);
    std::printf("fetched %zu reads from %s:%u/%s into %s\n",
                rs.reads.size(), host.c_str(), port, argv[3],
                argv[4]);
    return 0;
}

/**
 * Stand up a ChaosProxy (net/chaos_proxy.hh) in front of an upstream
 * server and keep it running until SIGINT/SIGTERM — the fault
 * injection side of a resilience smoke: point serve-stress --connect
 * at the printed PORT and every byte flows through deterministic
 * resets/corruption/stalls/splits. Seeded like serve --fault-seed, so
 * a failing run replays.
 */
int
cmdChaosProxy(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: sage_cli chaos-proxy "
                     "<upstream-host:port> [--seed S] "
                     "[--reset-rate R] [--corrupt-rate R] "
                     "[--stall-rate R] [--stall-ms N] "
                     "[--split-rate R]\n");
        return 1;
    }
    std::string host;
    uint16_t port = 0;
    if (!parseHostPort(argv[2], host, port))
        return 1;

    net::ChaosConfig config;
    unsigned seed = 1, stall_ms = 200;
    bool bad_value = false;
    for (int i = 3; i < argc; i++) {
        const auto uintArg = [&](const char *flag, unsigned &out,
                                 int max) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                const int n = std::atoi(argv[++i]);
                if (n < 0 || n > max) {
                    std::fprintf(stderr, "%s must be in [0, %d]\n",
                                 flag, max);
                    bad_value = true;
                }
                out = static_cast<unsigned>(n);
                return true;
            }
            return false;
        };
        const auto rateArg = [&](const char *flag, double &out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                out = std::atof(argv[++i]);
                if (out < 0.0 || out > 1.0) {
                    std::fprintf(stderr, "%s must be in [0, 1]\n",
                                 flag);
                    bad_value = true;
                }
                return true;
            }
            return false;
        };
        if (!uintArg("--seed", seed, 1 << 30) &&
            !uintArg("--stall-ms", stall_ms, 60000) &&
            !rateArg("--reset-rate", config.resetRate) &&
            !rateArg("--corrupt-rate", config.corruptRate) &&
            !rateArg("--stall-rate", config.stallRate) &&
            !rateArg("--split-rate", config.splitRate)) {
            std::fprintf(stderr, "unknown option: %s\n", argv[i]);
            return 1;
        }
    }
    if (bad_value)
        return 1;
    config.seed = seed;
    config.stallMs = stall_ms;

    net::ChaosProxy proxy(host, port, config);
    const Status started = proxy.start();
    if (!started.ok()) {
        std::fprintf(stderr, "chaos-proxy: %s\n",
                     started.toString().c_str());
        return 1;
    }
    std::printf("proxying 127.0.0.1:%u -> %s:%u (reset %.3f, "
                "corrupt %.3f, stall %.3f/%ums, split %.3f, "
                "seed %u)\n",
                proxy.port(), host.c_str(), port, config.resetRate,
                config.corruptRate, config.stallRate, config.stallMs,
                config.splitRate, seed);
    std::printf("PORT %u\n", proxy.port());
    std::fflush(stdout);

    std::signal(SIGINT, onServeSignal);
    std::signal(SIGTERM, onServeSignal);
    while (!g_serveStop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    proxy.stop();
    const net::ChaosProxyStats stats = proxy.stats();
    std::printf("chaos: %llu connections, %llu buffers / %.1f MB "
                "forwarded; %llu resets, %llu corrupted, %llu "
                "stalls, %llu splits\n",
                static_cast<unsigned long long>(stats.connections),
                static_cast<unsigned long long>(stats.buffers),
                static_cast<double>(stats.bytes) / 1e6,
                static_cast<unsigned long long>(stats.resets),
                static_cast<unsigned long long>(stats.corrupted),
                static_cast<unsigned long long>(stats.stalls),
                static_cast<unsigned long long>(stats.splits));
    return 0;
}

int
cmdDemo(int argc, char **argv)
{
    const std::string dir = argc > 2 ? argv[2] : "/tmp";
    const std::string fastq = dir + "/cli_demo.fastq";
    const std::string ref = dir + "/cli_demo.ref.txt";
    const std::string archive = dir + "/cli_demo.sage";
    const std::string restored = dir + "/cli_demo.out.fastq";
    const std::string ranged = dir + "/cli_demo.range.fastq";

    const SimulatedDataset ds = synthesizeDataset(makeTinySpec(false));
    writeFastqFile(ds.readSet, fastq);
    {
        std::ofstream out(ref);
        out << ds.reference;
    }
    std::printf("generated %s and %s\n", fastq.c_str(), ref.c_str());

    char prog[] = "sage_cli";
    char c0[] = "compress";
    std::vector<char *> cargs = {prog, c0,
                                 const_cast<char *>(fastq.c_str()),
                                 const_cast<char *>(ref.c_str()),
                                 const_cast<char *>(archive.c_str())};
    cmdCompress(static_cast<int>(cargs.size()), cargs.data());

    char c1[] = "inspect";
    std::vector<char *> iargs = {prog, c1,
                                 const_cast<char *>(archive.c_str())};
    cmdInspect(static_cast<int>(iargs.size()), iargs.data());

    char c5[] = "verify";
    std::vector<char *> vargs = {prog, c5,
                                 const_cast<char *>(archive.c_str())};
    cmdVerify(static_cast<int>(vargs.size()), vargs.data());

    char c2[] = "range";
    char first[] = "0";
    char count[] = "1";
    std::vector<char *> rargs = {prog, c2,
                                 const_cast<char *>(archive.c_str()),
                                 const_cast<char *>(ranged.c_str()),
                                 first, count};
    cmdRange(static_cast<int>(rargs.size()), rargs.data());

    char c3[] = "serve-stress";
    char copt[] = "--clients";
    char cnum[] = "4";
    std::vector<char *> sargs = {prog, c3,
                                 const_cast<char *>(archive.c_str()),
                                 copt, cnum};
    cmdServeStress(static_cast<int>(sargs.size()), sargs.data());

    char c4[] = "decompress";
    std::vector<char *> dargs = {prog, c4,
                                 const_cast<char *>(archive.c_str()),
                                 const_cast<char *>(restored.c_str())};
    return cmdDecompress(static_cast<int>(dargs.size()), dargs.data());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: sage_cli "
                     "<compress|decompress|range|inspect|verify|"
                     "serve-stress|serve|net-get|chaos-proxy|demo> "
                     "...\n");
        return 1;
    }
    if (std::strcmp(argv[1], "compress") == 0)
        return cmdCompress(argc, argv);
    if (std::strcmp(argv[1], "decompress") == 0)
        return cmdDecompress(argc, argv);
    if (std::strcmp(argv[1], "range") == 0)
        return cmdRange(argc, argv);
    if (std::strcmp(argv[1], "inspect") == 0)
        return cmdInspect(argc, argv);
    if (std::strcmp(argv[1], "verify") == 0)
        return cmdVerify(argc, argv);
    if (std::strcmp(argv[1], "serve-stress") == 0)
        return cmdServeStress(argc, argv);
    if (std::strcmp(argv[1], "serve") == 0)
        return cmdServe(argc, argv);
    if (std::strcmp(argv[1], "net-get") == 0)
        return cmdNetGet(argc, argv);
    if (std::strcmp(argv[1], "chaos-proxy") == 0)
        return cmdChaosProxy(argc, argv);
    if (std::strcmp(argv[1], "demo") == 0)
        return cmdDemo(argc, argv);
    std::fprintf(stderr, "unknown command: %s\n", argv[1]);
    return 1;
}
